//! # maxkcov
//!
//! Single-pass streaming **maximum k-coverage** with tight
//! space/approximation trade-offs — a from-scratch Rust implementation
//! of
//!
//! > Piotr Indyk, Ali Vakilian. *Tight Trade-offs for the Maximum
//! > k-Coverage Problem in the General Streaming Model.* PODS 2019.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`core`] ([`kcov_core`]) — the paper's contribution:
//!   [`core::MaxCoverEstimator`] (`Õ(m/α²)` space, Theorem 3.1) and
//!   [`core::MaxCoverReporter`] (`Õ(m/α² + k)`, Theorem 3.2) over
//!   edge-arrival streams.
//! * [`sketch`] ([`kcov_sketch`]) — the vector-sketching toolkit (§2):
//!   `L0`, AMS `F2`, CountSketch, `F2` heavy hitters, `F2`-contributing
//!   classes, and the [`sketch::SpaceUsage`] accounting trait.
//! * [`stream`] ([`kcov_stream`]) — set systems, arrival orders,
//!   workload generators (including the §5 hard instances).
//! * [`baselines`] ([`kcov_baselines`]) — greedy, exact, and the
//!   streaming baselines of Table 1.
//! * [`lowerbound`] ([`kcov_lowerbound`]) — the Theorem 3.3 harness:
//!   protocol simulation and hard-instance distinguishers.
//! * [`hash`] ([`kcov_hash`]) — limited-independence hash families
//!   (Appendix A).
//!
//! ## Quick start
//!
//! ```
//! use maxkcov::core::{EstimatorConfig, MaxCoverEstimator};
//! use maxkcov::stream::{edge_stream, ArrivalOrder, gen::planted_cover};
//!
//! // 100 sets over 1000 elements with a planted 5-cover of 800.
//! let inst = planted_cover(1000, 100, 5, 0.8, 40, 7);
//! let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
//!
//! // Estimate the optimum within a factor ~4 in one pass.
//! let out = MaxCoverEstimator::run(1000, 100, 5, 4.0,
//!     &EstimatorConfig::practical(42), &edges);
//! assert!(out.estimate > 0.0 && out.estimate <= 1.2 * inst.planted_coverage as f64);
//! ```

pub use kcov_baselines as baselines;
pub use kcov_core as core;
pub use kcov_hash as hash;
pub use kcov_lowerbound as lowerbound;
pub use kcov_obs as obs;
pub use kcov_sketch as sketch;
pub use kcov_stream as stream;
