//! `maxkcov` — command-line front end.
//!
//! ```text
//! maxkcov gen      --kind uniform|zipf|planted|common|few-large|many-small \
//!                  --n N --m M [--k K] [--seed S] --out FILE
//! maxkcov stats    --input FILE
//! maxkcov greedy   --input FILE --k K
//! maxkcov exact    --input FILE --k K
//! maxkcov estimate --input FILE --k K --alpha A [--seed S] [--order ORDER] \
//!                  [--threads T] [--batch B] [--shards S]
//! maxkcov report   --input FILE --k K --alpha A [--seed S] [--order ORDER] \
//!                  [--threads T] [--batch B] [--shards S]
//! ```
//!
//! `ORDER` is one of `set`, `element`, `roundrobin`, `shuffle:SEED`
//! (default `shuffle:0`). Instances use the plain-text format of
//! `kcov_stream::io`. `--batch B` routes ingestion through the batched
//! engine in chunks of `B` edges and `--threads T` shards the guess ×
//! repetition lanes across `T` OS threads; both are bit-identical to
//! the default per-edge serial pass. `--shards S` instead partitions
//! the *stream* across `S` full estimator replicas (scoped threads)
//! merged at finalize — estimates are identical to the serial pass up
//! to the merge contract of DESIGN.md §8.
//!
//! Observability: `--metrics` appends a human summary (counters,
//! gauges, per-subroutine estimates) after the normal output, and
//! `--trace FILE` writes the full structured NDJSON event log. With
//! either enabled, `--heartbeat N` additionally captures a per-lane
//! fill snapshot every `N` (shard-local) edges — cadenced by edge
//! count only, never wall-clock, so estimates stay bit-identical
//! (DESIGN.md §10). All of these only *add* output — estimates and the
//! default output lines are byte-identical with or without them.
//! Unknown flags are rejected per subcommand rather than silently
//! ignored; every flag is registered exactly once in [`FLAG_SPECS`].
//!
//! `maxkcov trace-summarize FILE` renders an NDJSON trace written by
//! `--trace`: aggregate phase timings, heartbeat fill (and cumulative
//! lane-ns) trajectories, histogram percentiles, and the time-ledger
//! leaf report, and re-checks the trace's accounting invariants (phase
//! event nanos vs `time_ns.*` counters, subroutine space vs the
//! summary total, heartbeat eviction monotonicity vs the final sketch
//! totals, time-ledger parent sums and ns conservation against the
//! batch wall clock), failing on violation.
//!
//! `maxkcov prof` renders the space-attribution ledger (DESIGN.md §13)
//! as a sorted words / % / updates / updates-per-word report — either
//! from a `--trace` file's `"ledger"` events (`maxkcov prof TRACE`,
//! re-checking the parent-sum, summary-total, and per-subroutine
//! invariants like `trace-summarize`) or from a live run (`maxkcov
//! prof --input FILE --k K --alpha A …`, checking the exact-sum
//! invariant against the estimator's `space_words`). Violations exit
//! non-zero. `maxkcov prof --time` renders the *time*-attribution
//! ledger instead (DESIGN.md §15) — sorted ns / % per leaf, audited
//! for parent sums and ns conservation — and `--folded` switches the
//! output to Brendan Gregg folded-stacks text (`frame;frame;... ns`,
//! one line per leaf) ready for `flamegraph.pl` or
//! `inferno-flamegraph`.
//!
//! Distributed ingestion (DESIGN.md §11): `maxkcov worker` ingests one
//! contiguous shard of the stream (`--shards N --shard I`) and writes
//! its full serialized estimator replica (versioned wire format) to
//! `--out FILE`; `maxkcov merge-from FILE...` decodes the replicas,
//! folds them through the commutative merge, and finalizes — emitting
//! the same estimate, metrics, and trace events as a single-process
//! `--shards N` run (byte-identical modulo wall-clock `ns` fields).
//! Workers checkpoint with `--snapshot FILE --snapshot-every E` and
//! recover with `--resume FILE` (resuming at the recorded edge offset,
//! no replay of ingested edges); `--stop-after E` simulates a crash.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter};
use std::process::ExitCode;
use std::time::Instant;

use kcov_baselines::{greedy_max_cover, max_cover_exact};
use kcov_core::{EstimatorConfig, MaxCoverEstimator, MaxCoverReporter, ParamMode};
use kcov_obs::json::Json;
use kcov_obs::{
    render_ledger_report, render_time_report, Histogram, LedgerRow, Recorder, TimeLedgerRow, Value,
};
use kcov_sketch::{SpaceUsage, WireEncode};
use kcov_stream::gen;
use kcov_stream::{
    coverage_of, edge_stream, read_set_system, write_set_system, ArrivalOrder, CoverageStats,
    SetSystem,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  maxkcov gen      --kind KIND --n N --m M [--k K] [--seed S] --out FILE
  maxkcov stats    --input FILE
  maxkcov greedy   --input FILE --k K
  maxkcov exact    --input FILE --k K
  maxkcov estimate --input FILE --k K --alpha A [--seed S] [--order ORDER] [--mode paper|practical]
                   [--threads T] [--batch B] [--shards S] [--metrics] [--trace FILE] [--heartbeat N]
  maxkcov report   --input FILE --k K --alpha A [--seed S] [--order ORDER] [--mode paper|practical]
                   [--threads T] [--batch B] [--shards S] [--metrics] [--trace FILE] [--heartbeat N]
  maxkcov twopass  --input FILE --k K --alpha A [--seed S] [--order ORDER] [--threads T] [--batch B]
                   [--shards S] [--metrics] [--trace FILE] [--heartbeat N]
  maxkcov setcover --input FILE [--fraction F]
  maxkcov budget   --input FILE --k K --words W [--seed S] [--order ORDER] [--threads T] [--batch B]
                   [--shards S] [--metrics] [--trace FILE] [--heartbeat N]
  maxkcov worker   --input FILE --k K --alpha A --shards N --shard I --out FILE [--seed S]
                   [--order ORDER] [--mode paper|practical] [--threads T] [--batch B]
                   [--snapshot FILE --snapshot-every E] [--resume FILE] [--stop-after E]
                   [--metrics] [--trace FILE] [--heartbeat N]
  maxkcov merge-from FILE... [--metrics] [--trace FILE]
  maxkcov trace-summarize FILE
  maxkcov prof     TRACE [--top N] [--time [--folded]]
  maxkcov prof     --input FILE --k K --alpha A [--seed S] [--order ORDER] [--mode paper|practical]
                   [--threads T] [--batch B] [--shards S] [--top N] [--time [--folded]]
KIND: uniform | zipf | planted | common | few-large | many-small
ORDER: set | element | roundrobin | shuffle:SEED (default shuffle:0)
--batch B ingests B edges per observe_batch call (default: per-edge observe);
--threads T shards lanes across T threads. Results are bit-identical either way.
--shards S partitions the stream across S estimator replicas merged at
finalize; estimates are identical to the serial pass (DESIGN.md sec. 8).
--metrics prints a counters/gauges/subroutine summary after the normal output;
--trace FILE writes the structured NDJSON event log; --heartbeat N (with either)
snapshots per-lane fills every N edges into the event log. None changes estimates.
trace-summarize renders phase timings, heartbeat trajectories, and histogram
percentiles from a --trace file and re-checks its accounting invariants.
worker ingests shard I of N (contiguous split of the arrival order) and writes
its serialized replica to --out; merge-from folds replica files through the
commutative merge and finalizes, matching a single-process --shards N run.
--snapshot FILE --snapshot-every E checkpoints the worker every E shard edges;
--resume FILE restarts from a checkpoint (no replay); --stop-after E simulates
a crash after E edges (exits non-zero, periodic snapshots left for recovery).
prof renders the space-attribution ledger (words / % / updates / upd-per-word)
from a --trace file's ledger events or from a live run, re-checking the ledger
invariants (parent sums, summary total, per-subroutine match); --top N limits
the report to the N hottest leaves (default 20, 0 = all). prof --time renders
the time-attribution ledger instead (ns / % per leaf, DESIGN.md sec. 15),
re-checking its parent-sum and ns-conservation invariants; --folded emits
Brendan Gregg folded-stacks text (one 'path ns' line per leaf, frames joined
by ';') ready for flamegraph.pl / inferno-flamegraph.";

/// Whether a flag takes a value or is a bare boolean.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FlagKind {
    Value,
    Bool,
}

/// One CLI flag: registered in [`FLAG_SPECS`] exactly once, with the
/// subcommands that accept it. Adding a flag means adding one row here
/// (plus the USAGE string) — nothing else to keep in sync.
struct FlagSpec {
    name: &'static str,
    kind: FlagKind,
    commands: &'static [&'static str],
}

/// The streaming subcommands: everything that ingests an edge stream
/// through an estimator and therefore shares the ingestion/observability
/// flag set.
const STREAM_CMDS: &[&str] = &["estimate", "report", "twopass", "budget", "worker"];

/// Subcommands that can *run* an ingestion pass: the streaming
/// subcommands plus `prof`'s live mode (which profiles the ledger
/// instead of reporting estimates, but configures ingestion the same
/// way).
const RUN_CMDS: &[&str] = &["estimate", "report", "twopass", "budget", "worker", "prof"];

/// Subcommands with an observability surface. `merge-from` never
/// ingests (no `--heartbeat`) but emits the merged trace and metrics.
const OBS_CMDS: &[&str] = &["estimate", "report", "twopass", "budget", "worker", "merge-from"];

const FLAG_SPECS: &[FlagSpec] = &[
    FlagSpec { name: "kind", kind: FlagKind::Value, commands: &["gen"] },
    FlagSpec { name: "n", kind: FlagKind::Value, commands: &["gen"] },
    FlagSpec { name: "m", kind: FlagKind::Value, commands: &["gen"] },
    FlagSpec { name: "out", kind: FlagKind::Value, commands: &["gen", "worker"] },
    FlagSpec {
        name: "k",
        kind: FlagKind::Value,
        commands: &[
            "gen", "greedy", "exact", "estimate", "report", "twopass", "budget", "worker", "prof",
        ],
    },
    FlagSpec {
        name: "seed",
        kind: FlagKind::Value,
        commands: &["gen", "estimate", "report", "twopass", "budget", "worker", "prof"],
    },
    FlagSpec {
        name: "input",
        kind: FlagKind::Value,
        commands: &[
            "stats", "greedy", "exact", "setcover", "estimate", "report", "twopass", "budget",
            "worker", "prof",
        ],
    },
    FlagSpec {
        name: "alpha",
        kind: FlagKind::Value,
        commands: &["estimate", "report", "twopass", "worker", "prof"],
    },
    FlagSpec { name: "words", kind: FlagKind::Value, commands: &["budget"] },
    FlagSpec { name: "fraction", kind: FlagKind::Value, commands: &["setcover"] },
    FlagSpec { name: "top", kind: FlagKind::Value, commands: &["prof"] },
    FlagSpec { name: "order", kind: FlagKind::Value, commands: RUN_CMDS },
    FlagSpec { name: "mode", kind: FlagKind::Value, commands: RUN_CMDS },
    FlagSpec { name: "threads", kind: FlagKind::Value, commands: RUN_CMDS },
    FlagSpec { name: "batch", kind: FlagKind::Value, commands: RUN_CMDS },
    FlagSpec { name: "shards", kind: FlagKind::Value, commands: RUN_CMDS },
    FlagSpec { name: "shard", kind: FlagKind::Value, commands: &["worker"] },
    FlagSpec { name: "snapshot", kind: FlagKind::Value, commands: &["worker"] },
    FlagSpec { name: "snapshot-every", kind: FlagKind::Value, commands: &["worker"] },
    FlagSpec { name: "resume", kind: FlagKind::Value, commands: &["worker"] },
    FlagSpec { name: "stop-after", kind: FlagKind::Value, commands: &["worker"] },
    FlagSpec { name: "trace", kind: FlagKind::Value, commands: OBS_CMDS },
    FlagSpec { name: "heartbeat", kind: FlagKind::Value, commands: STREAM_CMDS },
    FlagSpec { name: "metrics", kind: FlagKind::Bool, commands: OBS_CMDS },
    FlagSpec { name: "time", kind: FlagKind::Bool, commands: &["prof"] },
    FlagSpec { name: "folded", kind: FlagKind::Bool, commands: &["prof"] },
];

/// Look up a flag for a subcommand in [`FLAG_SPECS`].
fn flag_spec(cmd: &str, key: &str) -> Option<&'static FlagSpec> {
    FLAG_SPECS
        .iter()
        .find(|s| s.name == key && s.commands.contains(&cmd))
}

/// Parse `--key value` (and bare boolean `--key`) flags after the
/// subcommand, rejecting flags the subcommand does not accept.
fn parse_flags(cmd: &str, args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{a}'"))?;
        if flags.contains_key(key) {
            return Err(format!("duplicate flag --{key}"));
        }
        let spec = flag_spec(cmd, key)
            .ok_or_else(|| format!("unknown flag --{key} for subcommand '{cmd}'"))?;
        match spec.kind {
            FlagKind::Bool => {
                flags.insert(key.to_string(), "true".to_string());
            }
            FlagKind::Value => {
                let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                flags.insert(key.to_string(), val.clone());
            }
        }
    }
    Ok(flags)
}

/// `--trace FILE` / `--metrics` / `--heartbeat N` — the CLI
/// observability surface.
struct ObsOpts {
    trace: Option<String>,
    metrics: bool,
    heartbeat: Option<u64>,
}

impl ObsOpts {
    fn parse(flags: &HashMap<String, String>) -> Result<ObsOpts, String> {
        let opts = ObsOpts {
            trace: flags.get("trace").cloned(),
            metrics: flags.contains_key("metrics"),
            heartbeat: match flags.get("heartbeat") {
                None => None,
                Some(s) => {
                    let every: u64 = parse_num(s, "heartbeat")?;
                    if every == 0 {
                        return Err("--heartbeat must be >= 1".into());
                    }
                    Some(every)
                }
            },
        };
        if opts.heartbeat.is_some() && opts.trace.is_none() && !opts.metrics {
            return Err("--heartbeat requires --trace or --metrics (heartbeats go to the event log)".into());
        }
        Ok(opts)
    }

    /// A live recorder only when some output was requested, so the
    /// default path keeps the zero-cost disabled handle.
    fn recorder(&self) -> Recorder {
        if self.trace.is_some() || self.metrics {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Wire the recorder and heartbeat cadence into the estimator
    /// config, returning the recorder handle for spans/emission.
    fn configure(&self, config: &mut EstimatorConfig) -> Recorder {
        let rec = self.recorder();
        config.recorder = rec.clone();
        config.heartbeat_every = self.heartbeat;
        rec
    }

    /// Append metrics/trace output *after* the normal result lines
    /// (default stdout stays byte-identical when neither is requested).
    fn emit(&self, rec: &Recorder) -> Result<(), String> {
        if self.metrics {
            print!("{}", rec.summary_table());
            let subs = rec.events_of("subroutine");
            if !subs.is_empty() {
                println!("subroutine                                estimate      space");
                for ev in &subs {
                    let lane = ev.u64_field("lane").unwrap_or(0);
                    let name = ev.str_field("name").unwrap_or("?");
                    let est = ev.f64_field("estimate").unwrap_or(f64::NAN);
                    let words = ev.u64_field("space_words").unwrap_or(0);
                    let est = if est.is_finite() {
                        format!("{est:.1}")
                    } else {
                        "-".to_string()
                    };
                    println!("  lane{lane:<3} {name:<30}  {est:>10}  {words:>9}");
                }
            }
        }
        if let Some(path) = &self.trace {
            let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            rec.write_ndjson(BufWriter::new(file))
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        Ok(())
    }
}

fn req<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: '{s}'"))
}

fn load(flags: &HashMap<String, String>) -> Result<SetSystem, String> {
    let path = req(flags, "input")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_set_system(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn parse_order(flags: &HashMap<String, String>) -> Result<ArrivalOrder, String> {
    match flags.get("order").map(String::as_str) {
        None => Ok(ArrivalOrder::Shuffled(0)),
        Some("set") => Ok(ArrivalOrder::SetContiguous),
        Some("element") => Ok(ArrivalOrder::ElementContiguous),
        Some("roundrobin") => Ok(ArrivalOrder::RoundRobin),
        Some(s) if s.starts_with("shuffle:") => {
            Ok(ArrivalOrder::Shuffled(parse_num(&s[8..], "shuffle seed")?))
        }
        Some(s) => Err(format!("unknown order '{s}'")),
    }
}

fn parse_config(flags: &HashMap<String, String>) -> Result<EstimatorConfig, String> {
    let seed = match flags.get("seed") {
        Some(s) => parse_num(s, "seed")?,
        None => 0,
    };
    let mut config = EstimatorConfig::practical(seed);
    match flags.get("mode").map(String::as_str) {
        None | Some("practical") => {}
        Some("paper") => config.mode = ParamMode::Paper,
        Some(s) => return Err(format!("unknown mode '{s}'")),
    }
    if let Some(t) = flags.get("threads") {
        config.threads = parse_num(t, "threads")?;
    }
    if let Some(s) = flags.get("shards") {
        let shards: usize = parse_num(s, "shards")?;
        if shards == 0 {
            return Err("--shards must be >= 1".into());
        }
        config.shards = shards;
    }
    Ok(config)
}

/// `--batch B` chunk size; `None` keeps the per-edge `observe` path.
fn parse_batch(flags: &HashMap<String, String>) -> Result<Option<usize>, String> {
    match flags.get("batch") {
        None => Ok(None),
        Some(s) => {
            let b: usize = parse_num(s, "batch")?;
            if b == 0 {
                return Err("--batch must be >= 1".into());
            }
            Ok(Some(b))
        }
    }
}


fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no subcommand".into());
    };
    if cmd == "trace-summarize" {
        // Takes a positional FILE argument instead of --flags.
        let [path] = rest else {
            return Err("trace-summarize takes exactly one argument: the trace file".into());
        };
        return cmd_trace_summarize(path);
    }
    if cmd == "merge-from" {
        // Takes positional replica FILEs plus --flags.
        let (files, flags) = split_positional(cmd, rest)?;
        return cmd_merge_from(&files, &flags);
    }
    if cmd == "prof" {
        // Takes either a positional TRACE file or --input for a live run.
        let (files, flags) = split_positional(cmd, rest)?;
        return cmd_prof(&files, &flags);
    }
    if !matches!(
        cmd.as_str(),
        "gen" | "stats" | "greedy" | "exact" | "estimate" | "report" | "twopass" | "setcover"
            | "budget" | "worker"
    ) {
        return Err(format!("unknown subcommand '{cmd}'"));
    }
    let flags = parse_flags(cmd, rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "stats" => cmd_stats(&flags),
        "greedy" => cmd_greedy(&flags),
        "exact" => cmd_exact(&flags),
        "estimate" => cmd_estimate(&flags),
        "report" => cmd_report(&flags),
        "twopass" => cmd_twopass(&flags),
        "setcover" => cmd_setcover(&flags),
        "budget" => cmd_budget(&flags),
        "worker" => cmd_worker(&flags),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Split `args` into positional operands and `--flag` arguments, then
/// parse the flags for `cmd`. Value-taking flags consume the following
/// argument, so positionals and flags can be freely interleaved.
fn split_positional(
    cmd: &str,
    args: &[String],
) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flag_args = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            flag_args.push(a.clone());
            if let Some(spec) = flag_spec(cmd, key) {
                if spec.kind == FlagKind::Value {
                    if let Some(v) = it.next() {
                        flag_args.push(v.clone());
                    }
                }
            }
        } else {
            positional.push(a.clone());
        }
    }
    let flags = parse_flags(cmd, &flag_args)?;
    Ok((positional, flags))
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = req(flags, "kind")?;
    let n: usize = parse_num(req(flags, "n")?, "n")?;
    let m: usize = parse_num(req(flags, "m")?, "m")?;
    let seed: u64 = match flags.get("seed") {
        Some(s) => parse_num(s, "seed")?,
        None => 0,
    };
    let k: usize = match flags.get("k") {
        Some(s) => parse_num(s, "k")?,
        None => (m / 20).max(1),
    };
    let system = match kind {
        "uniform" => gen::uniform_fixed_size(n, m, (n / 50).max(2).min(n), seed),
        "zipf" => gen::zipf_set_sizes(n, m, (n / 5).max(2).min(n), 1.05, seed),
        "planted" => gen::planted_cover(n, m, k, 0.8, ((n / k) / 4).max(1), seed).system,
        "common" => gen::common_heavy(n, m, seed),
        "few-large" => gen::few_large(n, m, 3.min(m - 1).max(1), (n / 5).max(1), seed),
        "many-small" => gen::many_small(n, m, k.min(m), 0.6, seed),
        other => return Err(format!("unknown kind '{other}'")),
    };
    let path = req(flags, "out")?;
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    write_set_system(&system, BufWriter::new(file)).map_err(|e| format!("write: {e}"))?;
    println!(
        "wrote {path}: n={} m={} edges={}",
        system.num_elements(),
        system.num_sets(),
        system.total_edges()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let st = CoverageStats::of(&system);
    println!("n              = {}", st.n);
    println!("m              = {}", st.m);
    println!("edges          = {}", st.total_edges);
    println!("max set size   = {}", st.max_set_size);
    println!("max frequency  = {}", st.max_frequency);
    println!("covered elems  = {}", st.covered_elements);
    Ok(())
}

fn cmd_greedy(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let r = greedy_max_cover(&system, k);
    println!("greedy coverage = {}", r.coverage);
    println!("sets = {:?}", r.chosen);
    Ok(())
}

fn cmd_exact(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    if system.num_sets() > 64 {
        eprintln!(
            "warning: exact search on m = {} sets may take very long",
            system.num_sets()
        );
    }
    let (chosen, cov) = max_cover_exact(&system, k);
    println!("exact optimum = {cov}");
    println!("sets = {chosen:?}");
    Ok(())
}

fn cmd_estimate(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags)?;
    let rec = obs.configure(&mut config);
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let mut est = MaxCoverEstimator::new(system.num_elements(), system.num_sets(), k, alpha, &config);
    let span = rec.span("ingest");
    if config.shards > 1 {
        est.ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        match batch {
            None => {
                for &e in &edges {
                    est.observe(e);
                }
            }
            Some(b) => {
                for chunk in edges.chunks(b) {
                    est.observe_batch(chunk);
                }
            }
        }
    }
    span.finish();
    let out = est.finalize();
    println!("estimate      = {:.1}", out.estimate);
    println!("winning z     = {}", out.winning_z);
    println!("winner        = {:?}", out.winner);
    println!("trivial       = {}", out.trivial);
    println!("space (words) = {}", est.space_words());
    println!("stream edges  = {}", edges.len());
    obs.emit(&rec)
}

/// Mirror of `telemetry::crosses_beat`: true when `[seen_before,
/// seen_before + added]` crosses a multiple of `every` — the snapshot
/// cadence is a pure function of the chunking, never of the clock.
fn crosses_beat(seen_before: u64, added: u64, every: u64) -> bool {
    every > 0 && added > 0 && (seen_before + added) / every > seen_before / every
}

/// Serialize a replica to `path` atomically (tmp + rename), so a
/// crash mid-write never leaves a truncated snapshot behind. Returns
/// the encoded size in bytes.
fn write_replica(path: &str, est: &MaxCoverEstimator) -> Result<usize, String> {
    let bytes = est.to_bytes();
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| format!("write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {tmp} -> {path}: {e}"))?;
    Ok(bytes.len())
}

fn cmd_worker(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags)?;
    let rec = obs.configure(&mut config);
    let shards = config.shards;
    let shard: usize = parse_num(req(flags, "shard")?, "shard")?;
    if shard >= shards {
        return Err(format!("--shard {shard} out of range for --shards {shards}"));
    }
    let out_path = req(flags, "out")?;
    let batch = parse_batch(flags)?.unwrap_or(1024);
    let snapshot = flags.get("snapshot").cloned();
    let snapshot_every: u64 = match flags.get("snapshot-every") {
        Some(s) => parse_num(s, "snapshot-every")?,
        None => 0,
    };
    if snapshot_every > 0 && snapshot.is_none() {
        return Err("--snapshot-every needs --snapshot FILE".into());
    }
    let stop_after: Option<u64> = match flags.get("stop-after") {
        Some(s) => Some(parse_num(s, "stop-after")?),
        None => None,
    };

    // This worker owns the `shard`-th of `shards` contiguous chunks of
    // the arrival order — the same split `ingest_sharded` uses, so the
    // replica it writes is the state an in-process shard would hold.
    let edges = edge_stream(&system, order);
    let chunk_len = edges.len().div_ceil(shards);
    let lo = (shard * chunk_len).min(edges.len());
    let hi = (lo + chunk_len).min(edges.len());
    let chunk = &edges[lo..hi];

    let (n, m) = (system.num_elements(), system.num_sets());
    let mut est = match flags.get("resume") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
            let mut est = MaxCoverEstimator::from_bytes(&bytes)
                .map_err(|e| format!("decode {path}: {e}"))?;
            if est.shape() != (n, m, k, alpha) {
                return Err(format!(
                    "snapshot {path} was built for a different instance shape"
                ));
            }
            if est.shard() != shard as u64 {
                return Err(format!(
                    "snapshot {path} belongs to shard {}, not {shard}",
                    est.shard()
                ));
            }
            if est.edges_seen() > chunk.len() as u64 {
                return Err(format!(
                    "snapshot {path} records {} edges but shard {shard} only holds {}",
                    est.edges_seen(),
                    chunk.len()
                ));
            }
            est.attach_recorder(&rec);
            est
        }
        None => {
            let mut est = MaxCoverEstimator::new(n, m, k, alpha, &config);
            est.set_shard(shard as u64);
            est
        }
    };

    // Resume at the recorded offset: snapshots are written at batch
    // boundaries, so the remaining sub-chunk boundaries line up with an
    // uninterrupted run and the final replica is bit-identical.
    let skip = est.edges_seen() as usize;
    rec.provenance("worker-start", shard as u64, skip as u64, req(flags, "input")?);
    let span = rec.span("ingest");
    let mut stopped = false;
    for sub in chunk[skip..].chunks(batch) {
        est.observe_batch(sub);
        let done = est.edges_seen();
        // The simulated crash pre-empts this batch's snapshot, so
        // recovery genuinely replays from the previous checkpoint.
        if stop_after.is_some_and(|stop| done >= stop) {
            stopped = true;
            break;
        }
        if crosses_beat(done - sub.len() as u64, sub.len() as u64, snapshot_every) {
            let path = snapshot.as_deref().expect("--snapshot-every implies --snapshot");
            write_replica(path, &est)?;
            rec.provenance("snapshot", shard as u64, done, path);
        }
    }
    span.finish();
    if stopped {
        rec.provenance("crash", shard as u64, est.edges_seen(), "stop-after");
        obs.emit(&rec)?;
        eprintln!(
            "worker shard {shard}: stopped after {} edges (simulated crash; periodic snapshots kept)",
            est.edges_seen()
        );
        std::process::exit(3);
    }
    rec.provenance("worker-done", shard as u64, est.edges_seen(), out_path);
    let bytes = write_replica(out_path, &est)?;
    println!("worker shard   = {shard}/{shards}");
    println!("chunk edges    = {} (resumed at {skip})", chunk.len());
    println!("shard edges    = {}", est.edges_seen());
    println!("replica        = {out_path} ({bytes} bytes)");
    obs.emit(&rec)
}

fn cmd_merge_from(files: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    if files.is_empty() {
        return Err("merge-from needs at least one replica file".into());
    }
    let obs = ObsOpts::parse(flags)?;
    let rec = obs.recorder();
    let mut replicas = Vec::with_capacity(files.len());
    for path in files {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        let start = rec.is_enabled().then(Instant::now);
        let est = MaxCoverEstimator::from_bytes(&bytes)
            .map_err(|e| format!("decode {path}: {e}"))?;
        let ns = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        replicas.push((est, ns));
    }
    let (n0, m0, k0, alpha0) = replicas[0].0.shape();
    for (i, (est, _)) in replicas.iter().enumerate() {
        let (n, m, k, alpha) = est.shape();
        if (n, m, k, alpha.to_bits()) != (n0, m0, k0, alpha0.to_bits())
            || est.num_lanes() != replicas[0].0.num_lanes()
        {
            return Err(format!(
                "replica {} was built for a different instance or configuration than {}",
                files[i], files[0]
            ));
        }
    }
    // Deterministic fold order: ascending shard id, exactly the order
    // the in-process `--shards N` fold uses (shard 0 is the base). The
    // output is therefore independent of how FILEs were listed.
    replicas.sort_by_key(|(est, _)| est.shard());
    for w in replicas.windows(2) {
        if w[0].0.shard() == w[1].0.shard() {
            return Err(format!("two replicas claim shard {}", w[0].0.shard()));
        }
    }

    // Event mimicry (DESIGN.md §11): a single replica — or an entirely
    // empty stream — corresponds to the serial ingestion path (no shard
    // events, no merge span); multiple non-empty replicas correspond to
    // `ingest_sharded` (one "shard" event per non-empty shard, then the
    // merge span). Empty replicas are dropped: the in-process splitter
    // never creates them.
    let serial = files.len() == 1 || replicas.iter().all(|(est, _)| est.edges_seen() == 0);
    let base = if serial {
        let (mut base, _) = replicas.remove(0);
        base.attach_recorder(&rec);
        let span = rec.span("ingest");
        span.finish();
        base
    } else {
        replicas.retain(|(est, _)| est.edges_seen() > 0);
        let mut iter = replicas.into_iter();
        let (mut base, base_ns) = iter.next().expect("at least one non-empty replica");
        base.attach_recorder(&rec);
        let rest: Vec<_> = iter.collect();
        let span = rec.span("ingest");
        for (shard, edges, ns) in std::iter::once((base.shard(), base.edges_seen(), base_ns))
            .chain(rest.iter().map(|(r, ns)| (r.shard(), r.edges_seen(), *ns)))
        {
            rec.event(
                "shard",
                &[
                    ("shard", Value::from(shard)),
                    ("edges", Value::from(edges)),
                    ("ns", Value::from(ns)),
                ],
            );
        }
        let merge_span = rec.span("merge");
        for (replica, _) in &rest {
            base.merge(replica);
        }
        merge_span.finish();
        span.finish();
        base
    };
    let out = base.finalize();
    println!("estimate      = {:.1}", out.estimate);
    println!("winning z     = {}", out.winning_z);
    println!("winner        = {:?}", out.winner);
    println!("trivial       = {}", out.trivial);
    println!("space (words) = {}", base.space_words());
    println!("stream edges  = {}", base.edges_seen());
    obs.emit(&rec)
}

fn cmd_twopass(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags)?;
    let rec = obs.configure(&mut config);
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let (n, m) = (system.num_elements(), system.num_sets());
    let cover = if config.shards > 1 {
        kcov_core::run_two_pass_sharded(n, m, k, alpha, &config, &edges, batch.unwrap_or(1024))
    } else {
        match batch {
            None => kcov_core::run_two_pass(n, m, k, alpha, &config, &edges),
            Some(b) => {
                let mut first = kcov_core::TwoPassFirst::new(n, m, k, alpha, &config);
                let span = rec.span("pass1");
                for chunk in edges.chunks(b) {
                    first.observe_batch(chunk);
                }
                span.finish();
                let mut second = first.into_second_pass();
                let span = rec.span("pass2");
                for chunk in edges.chunks(b) {
                    second.observe_batch(chunk);
                }
                span.finish();
                let cover = second.finalize();
                second.record_snapshot(&cover);
                cover
            }
        }
    };
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    println!("reported sets  = {:?}", cover.sets);
    println!("real coverage  = {}", coverage_of(&system, &chosen));
    println!("estimate       = {:.1}", cover.estimate);
    println!("winner         = {:?}", cover.winner);
    println!("space (words)  = {} (pass 2)", cover.space_words);
    obs.emit(&rec)
}

fn cmd_budget(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let words: usize = parse_num(req(flags, "words")?, "words (space budget)")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags)?;
    let rec = obs.configure(&mut config);
    let (n, m) = (system.num_elements(), system.num_sets());
    let Some(mut fit) = kcov_core::fit_alpha_to_budget(n, m, k, words, &config) else {
        return Err(format!(
            "no alpha in [1, sqrt(m)] fits {words} words; smallest possible is {}",
            kcov_core::predict_space_words(n, m, k, (m as f64).sqrt().max(1.0), &config)
        ));
    };
    println!("budget         = {words} words");
    println!("fitted alpha   = {:.2}", fit.alpha);
    println!("predicted max  = {} words", fit.predicted_words);
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let span = rec.span("ingest");
    if config.shards > 1 {
        fit.estimator
            .ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        match batch {
            None => {
                for &e in &edges {
                    fit.estimator.observe(e);
                }
            }
            Some(b) => {
                for chunk in edges.chunks(b) {
                    fit.estimator.observe_batch(chunk);
                }
            }
        }
    }
    span.finish();
    let out = fit.estimator.finalize();
    println!("estimate       = {:.1}", out.estimate);
    println!("actual space   = {} words", fit.estimator.space_words());
    obs.emit(&rec)
}

/// Fields accumulated per `(stage, shard, at_edges)` heartbeat row.
#[derive(Default)]
struct BeatRow {
    lanes: u64,
    lc_fill: u64,
    ls_fill: u64,
    ss_fill: u64,
    evictions: u64,
    space_words: u64,
    /// Cumulative per-lane ingest wall clock summed over the row's
    /// lanes — the heartbeat-aligned time trajectory (0 when the trace
    /// predates wire v4 or the run was untimed).
    ns: u64,
}

/// Everything `trace-summarize` extracts from one NDJSON trace.
#[derive(Default)]
struct TraceSummary {
    lines: usize,
    /// phase name → (calls, total ns) from `"phase"` events.
    phases: BTreeMap<String, (u64, u64)>,
    /// `"counter"` lines, keyed as written (includes `time_ns.*`).
    counters: BTreeMap<String, u64>,
    /// Sum of `"subroutine"` `space_words` and how many contributed.
    subroutine_space: u64,
    subroutines: u64,
    /// Every `"subroutine"` event as `(lane, name, space_words)` — the
    /// cross-check targets for the ledger subtrees.
    subroutine_events: Vec<(u64, String, u64)>,
    /// `(estimate, space_words, edges)` from the `"summary"` event.
    summary: Option<(f64, u64, u64)>,
    /// `(stage, shard, at_edges)` → per-row aggregate over lanes.
    beats: BTreeMap<(String, u64, u64), BeatRow>,
    /// Reconstructed `"histogram"` events, in emission order.
    histograms: Vec<(String, Histogram)>,
    /// `"ledger"` events as flattened rows, in emission order
    /// (preorder of the attribution tree, subtree totals per row).
    ledger_rows: Vec<LedgerRow>,
    /// `"time_ledger"` events as flattened rows, in emission order
    /// (preorder, subtree ns totals per row). A two-pass trace holds
    /// two trees (`estimator/...` then `pass2/...`), distinguished by
    /// their root path segment.
    time_rows: Vec<TimeLedgerRow>,
    /// `"time_ledger_meta"` events as `(stage, root, threads, ns)` —
    /// one per emitted time-ledger tree, carrying the wall budget
    /// factors for the conservation re-check.
    time_meta: Vec<(String, String, u64, u64)>,
    /// Sum of `"sketch"` event `evictions` and how many contributed —
    /// the finalize-time totals the heartbeat trajectories must stay
    /// below.
    sketch_evictions: u64,
    sketch_events: u64,
}

fn json_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

fn parse_trace(path: &str) -> Result<TraceSummary, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut out = TraceSummary::default();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("read {path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        out.lines += 1;
        let lineno = i + 1;
        let doc = Json::parse(&line).map_err(|e| format!("{path}:{lineno}: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}:{lineno}: missing \"kind\""))?;
        let bad = |field: &str| format!("{path}:{lineno}: {kind} event missing \"{field}\"");
        match kind {
            "phase" => {
                let name = doc
                    .get("phase")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("phase"))?;
                let ns = json_u64(&doc, "ns").ok_or_else(|| bad("ns"))?;
                let e = out.phases.entry(name.to_string()).or_insert((0, 0));
                e.0 += 1;
                e.1 += ns;
            }
            "counter" => {
                let key = doc
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("key"))?;
                let value = json_u64(&doc, "value").ok_or_else(|| bad("value"))?;
                out.counters.insert(key.to_string(), value);
            }
            "subroutine" => {
                let words = json_u64(&doc, "space_words").ok_or_else(|| bad("space_words"))?;
                let lane = json_u64(&doc, "lane").ok_or_else(|| bad("lane"))?;
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("name"))?;
                out.subroutine_space += words;
                out.subroutines += 1;
                out.subroutine_events.push((lane, name.to_string(), words));
            }
            "sketch" => {
                out.sketch_evictions += json_u64(&doc, "evictions").ok_or_else(|| bad("evictions"))?;
                out.sketch_events += 1;
            }
            "ledger" => {
                let path = doc
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("path"))?;
                out.ledger_rows.push(LedgerRow {
                    path: path.to_string(),
                    words: json_u64(&doc, "words").ok_or_else(|| bad("words"))?,
                    updates: json_u64(&doc, "updates").ok_or_else(|| bad("updates"))?,
                    touched_words: json_u64(&doc, "touched_words")
                        .ok_or_else(|| bad("touched_words"))?,
                    children: json_u64(&doc, "children").ok_or_else(|| bad("children"))? as usize,
                });
            }
            "time_ledger" => {
                let path = doc
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("path"))?;
                out.time_rows.push(TimeLedgerRow {
                    path: path.to_string(),
                    ns: json_u64(&doc, "ns").ok_or_else(|| bad("ns"))?,
                    children: json_u64(&doc, "children").ok_or_else(|| bad("children"))? as usize,
                });
            }
            "time_ledger_meta" => {
                let stage = doc
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("stage"))?;
                let root = doc
                    .get("root")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("root"))?;
                out.time_meta.push((
                    stage.to_string(),
                    root.to_string(),
                    json_u64(&doc, "threads").ok_or_else(|| bad("threads"))?,
                    json_u64(&doc, "ns").ok_or_else(|| bad("ns"))?,
                ));
            }
            "summary" => {
                let est = doc
                    .get("estimate")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("estimate"))?;
                let words = json_u64(&doc, "space_words").ok_or_else(|| bad("space_words"))?;
                let edges = json_u64(&doc, "edges").ok_or_else(|| bad("edges"))?;
                out.summary = Some((est, words, edges));
            }
            "heartbeat" => {
                let stage = doc
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("stage"))?;
                let shard = json_u64(&doc, "shard").ok_or_else(|| bad("shard"))?;
                let at = json_u64(&doc, "at_edges").ok_or_else(|| bad("at_edges"))?;
                let row = out
                    .beats
                    .entry((stage.to_string(), shard, at))
                    .or_default();
                row.lanes += 1;
                row.lc_fill += json_u64(&doc, "lc_fill").unwrap_or(0);
                row.ls_fill += json_u64(&doc, "ls_fill").unwrap_or(0);
                row.ss_fill += json_u64(&doc, "ss_fill").unwrap_or(0);
                row.evictions += json_u64(&doc, "evictions").unwrap_or(0);
                row.space_words += json_u64(&doc, "space_words").unwrap_or(0);
                row.ns += json_u64(&doc, "ns").unwrap_or(0);
            }
            "histogram" => {
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("name"))?;
                let sum = json_u64(&doc, "sum").ok_or_else(|| bad("sum"))?;
                let min = json_u64(&doc, "min").ok_or_else(|| bad("min"))?;
                let max = json_u64(&doc, "max").ok_or_else(|| bad("max"))?;
                let mut buckets: Vec<(usize, u64)> = Vec::new();
                if let Json::Obj(entries) = &doc {
                    for (k, v) in entries {
                        if let Some(idx) =
                            k.strip_prefix('b').and_then(|s| s.parse::<usize>().ok())
                        {
                            buckets.push((idx, v.as_f64().unwrap_or(0.0) as u64));
                        }
                    }
                }
                let hist = Histogram::from_parts(&buckets, sum, min, max).ok_or_else(|| {
                    format!("{path}:{lineno}: inconsistent histogram '{name}'")
                })?;
                let count = json_u64(&doc, "count").ok_or_else(|| bad("count"))?;
                if hist.count() != count {
                    return Err(format!(
                        "{path}:{lineno}: histogram '{name}' says count={count} but buckets sum to {}",
                        hist.count()
                    ));
                }
                out.histograms.push((name.to_string(), hist));
            }
            // Other kinds (lane, shard, twopass, gauge, …) are valid
            // trace content but carry nothing this summary needs.
            _ => {}
        }
    }
    Ok(out)
}

/// Re-check the accounting invariants a well-formed trace satisfies:
/// phase event nanos sum to the matching `time_ns.*` counter in both
/// directions, and per-subroutine resident space sums to the summary
/// total. Returns all violations rather than stopping at the first.
fn trace_invariant_violations(t: &TraceSummary) -> Vec<String> {
    let mut violations = Vec::new();
    for (name, &(_, total_ns)) in &t.phases {
        match t.counters.get(&format!("time_ns.{name}")) {
            Some(&c) if c == total_ns => {}
            Some(&c) => violations.push(format!(
                "phase '{name}': events sum to {total_ns} ns but counter time_ns.{name} = {c}"
            )),
            None => violations.push(format!(
                "phase '{name}': {total_ns} ns of events but no time_ns.{name} counter"
            )),
        }
    }
    for (key, &value) in &t.counters {
        if let Some(name) = key.strip_prefix("time_ns.") {
            if !t.phases.contains_key(name) {
                violations
                    .push(format!("counter {key} = {value} has no matching phase events"));
            }
        }
    }
    if let Some((_, summary_words, _)) = t.summary {
        if t.subroutines > 0 && t.subroutine_space != summary_words {
            violations.push(format!(
                "subroutine space_words sum to {} but summary reports {summary_words}",
                t.subroutine_space
            ));
        }
    }
    // Every heartbeat records a fill/eviction delta into the ingest
    // histograms, so a trace with heartbeats but no histogram events
    // has been truncated or hand-edited.
    if !t.beats.is_empty() && t.histograms.is_empty() {
        violations.push(format!(
            "{} heartbeat row(s) but no histogram events (every heartbeat records a delta)",
            t.beats.len()
        ));
    }
    // Heartbeat ↔ SketchStats cross-check: eviction counters are
    // monotone per (stage, shard) in stream position (the BTreeMap
    // iterates `at_edges` ascending within each group), and the final
    // per-shard snapshots can never exceed the finalize-time sketch
    // totals — the merged totals include every shard's evictions plus
    // any the merge itself performed.
    let mut final_ev: BTreeMap<(&str, u64), u64> = BTreeMap::new();
    for ((stage, shard, at), row) in &t.beats {
        let prev = final_ev.entry((stage.as_str(), *shard)).or_insert(0);
        if row.evictions < *prev {
            violations.push(format!(
                "heartbeat evictions not monotone: stage '{stage}' shard {shard} \
                 drops from {prev} to {} at {at} edges",
                row.evictions
            ));
        }
        *prev = (*prev).max(row.evictions);
    }
    if t.sketch_events > 0 && !final_ev.is_empty() {
        // Only the estimate-stage trajectories: the "sketch" events are
        // the estimator's finalize snapshot, while pass-2 lanes evict
        // into sketches no such event covers.
        let beats_total: u64 = final_ev
            .iter()
            .filter(|((stage, _), _)| *stage == "estimate")
            .map(|(_, v)| v)
            .sum();
        if beats_total > t.sketch_evictions {
            violations.push(format!(
                "final heartbeats record {beats_total} evictions across shards but the \
                 finalize-time sketch totals only {}",
                t.sketch_evictions
            ));
        }
    }
    violations
}

/// Re-check the invariants of a trace's `"ledger"` events (DESIGN.md
/// §13): every interior row's subtree totals equal the sum of its
/// immediate children's, the root's resident words equal the summary
/// total, and each per-subroutine subtree matches its `"subroutine"`
/// event's `space_words` exactly. Returns all violations.
fn ledger_invariant_violations(t: &TraceSummary) -> Vec<String> {
    let rows = &t.ledger_rows;
    let mut violations = Vec::new();
    for parent in rows.iter().filter(|r| r.children > 0) {
        let prefix = format!("{}/", parent.path);
        let children: Vec<&LedgerRow> = rows
            .iter()
            .filter(|r| r.path.strip_prefix(&prefix).is_some_and(|rest| !rest.contains('/')))
            .collect();
        if children.len() != parent.children {
            violations.push(format!(
                "ledger '{}' declares {} children but the trace holds {}",
                parent.path,
                parent.children,
                children.len()
            ));
            continue;
        }
        let sum = |f: fn(&LedgerRow) -> u64| children.iter().map(|r| f(r)).sum::<u64>();
        let sums = (sum(|r| r.words), sum(|r| r.updates), sum(|r| r.touched_words));
        if sums != (parent.words, parent.updates, parent.touched_words) {
            violations.push(format!(
                "ledger '{}' totals ({}, {}, {}) != children sums ({}, {}, {})",
                parent.path,
                parent.words,
                parent.updates,
                parent.touched_words,
                sums.0,
                sums.1,
                sums.2
            ));
        }
    }
    let root = rows.iter().find(|r| !r.path.contains('/'));
    if let (Some(root), Some((_, summary_words, _))) = (root, t.summary) {
        if root.words != summary_words {
            violations.push(format!(
                "ledger root '{}' attributes {} words but the summary reports {summary_words}",
                root.path, root.words
            ));
        }
    }
    // Per-subroutine partial sums: the lane-subtree child names are the
    // subroutine event names by construction; `trivial`, `fingerprints`
    // and the shared `universe` mix are estimator-global (their events
    // carry lane 0).
    for (lane, name, words) in &t.subroutine_events {
        let path = match name.as_str() {
            "trivial" | "fingerprints" | "universe" => format!("estimator/{name}"),
            _ => format!("estimator/lane{lane}/{name}"),
        };
        match rows.iter().find(|r| r.path == path) {
            Some(r) if r.words == *words => {}
            Some(r) => violations.push(format!(
                "ledger '{path}' attributes {} words but subroutine '{name}' \
                 (lane {lane}) reports {words}",
                r.words
            )),
            None => violations.push(format!(
                "subroutine '{name}' (lane {lane}, {words} words) has no ledger subtree at '{path}'"
            )),
        }
    }
    violations
}

/// Re-check the invariants of a trace's `"time_ledger"` events
/// (DESIGN.md §15): every interior row's subtree ns equals the sum of
/// its immediate children's, every emitted tree has a matching
/// `"time_ledger_meta"` event whose total agrees with the root row,
/// and attribution is conserved — a tree's total ns can never exceed
/// its stage's measured batch wall clock (`*.batch_ns` histogram sum)
/// times the worker-thread count, because every attributed interval
/// nests inside a batch interval and at most `threads` lanes overlap.
/// Heartbeat `ns` trajectories must be monotone in stream position.
/// Returns all violations.
fn time_invariant_violations(t: &TraceSummary) -> Vec<String> {
    let rows = &t.time_rows;
    let mut violations = Vec::new();
    for parent in rows.iter().filter(|r| r.children > 0) {
        let prefix = format!("{}/", parent.path);
        let children: Vec<&TimeLedgerRow> = rows
            .iter()
            .filter(|r| r.path.strip_prefix(&prefix).is_some_and(|rest| !rest.contains('/')))
            .collect();
        if children.len() != parent.children {
            violations.push(format!(
                "time ledger '{}' declares {} children but the trace holds {}",
                parent.path,
                parent.children,
                children.len()
            ));
            continue;
        }
        let sum: u64 = children.iter().map(|r| r.ns).sum();
        if sum != parent.ns {
            violations.push(format!(
                "time ledger '{}' totals {} ns != children sum {} ns",
                parent.path, parent.ns, sum
            ));
        }
    }
    for (stage, root, threads, meta_ns) in &t.time_meta {
        match rows.iter().find(|r| &r.path == root) {
            Some(r) if r.ns == *meta_ns => {}
            Some(r) => violations.push(format!(
                "time ledger root '{root}' attributes {} ns but its meta event reports {meta_ns}",
                r.ns
            )),
            None => violations.push(format!(
                "time_ledger_meta for stage '{stage}' has no time ledger rows at root '{root}'"
            )),
        }
        // The wall budget of each stage: the batch-granular clocks only
        // run inside `observe_batch`, whose wall intervals the
        // `batch_ns` histogram records (merged additively across shards
        // and replicas, exactly like the ledger's ns totals).
        let hist = match stage.as_str() {
            "estimate" => "ingest.batch_ns",
            "pass2" => "pass2.ingest.batch_ns",
            other => {
                violations.push(format!("time_ledger_meta names unknown stage '{other}'"));
                continue;
            }
        };
        let wall: u64 = t
            .histograms
            .iter()
            .filter(|(name, _)| name == hist)
            .map(|(_, h)| h.sum())
            .sum();
        let budget = wall.saturating_mul((*threads).max(1));
        if *meta_ns > budget {
            violations.push(format!(
                "time ledger stage '{stage}' attributes {meta_ns} ns but the wall budget is \
                 {budget} ns ({hist} sum {wall} x {threads} thread(s))"
            ));
        }
    }
    // Heartbeat `ns` payloads are cumulative per lane, so each
    // (stage, shard) trajectory summed over its (constant) lane set is
    // monotone in stream position.
    let mut last_ns: BTreeMap<(&str, u64), u64> = BTreeMap::new();
    for ((stage, shard, at), row) in &t.beats {
        let prev = last_ns.entry((stage.as_str(), *shard)).or_insert(0);
        if row.ns < *prev {
            violations.push(format!(
                "heartbeat ns not monotone: stage '{stage}' shard {shard} drops from {prev} \
                 to {} at {at} edges",
                row.ns
            ));
        }
        *prev = (*prev).max(row.ns);
    }
    violations
}

/// `maxkcov prof` — render the space-attribution ledger, from a trace
/// file (positional) or a live run (`--input`), re-checking the ledger
/// invariants either way.
fn cmd_prof(files: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let top: usize = match flags.get("top") {
        Some(s) => parse_num(s, "top")?,
        None => 20,
    };
    let time = flags.contains_key("time");
    if flags.contains_key("folded") && !time {
        return Err("--folded needs --time (folded stacks are a time-ledger rendering)".into());
    }
    let folded = flags.contains_key("folded");
    match (files, flags.contains_key("input")) {
        ([path], false) if time => cmd_prof_time_trace(path, top, folded),
        ([path], false) => cmd_prof_trace(path, top),
        ([], true) if time => cmd_prof_time_live(flags, top, folded),
        ([], true) => cmd_prof_live(flags, top),
        ([], false) => Err("prof needs a TRACE file or --input FILE for a live run".into()),
        (_, true) => Err("prof takes a TRACE file or --input, not both".into()),
        (_, false) => Err("prof takes exactly one TRACE file".into()),
    }
}

/// `maxkcov prof --time TRACE` — render the time-attribution ledger of
/// a trace (one report per emitted tree: `estimator`, and `pass2` for
/// two-pass traces), or its folded stacks with `--folded`, re-checking
/// the time invariants either way.
fn cmd_prof_time_trace(path: &str, top: usize, folded: bool) -> Result<(), String> {
    let t = parse_trace(path)?;
    if t.time_rows.is_empty() {
        return Err(format!(
            "trace {path} contains no time_ledger events (written by --trace since the \
             time-attribution ledger landed; re-run the traced command)"
        ));
    }
    let violations = time_invariant_violations(&t);
    if folded {
        // Folded stacks only on stdout, so the output pipes straight
        // into flamegraph.pl / inferno-flamegraph.
        for row in t.time_rows.iter().filter(|r| r.children == 0) {
            println!("{} {}", row.path.replace('/', ";"), row.ns);
        }
    } else {
        println!("trace          = {path}");
        println!("time nodes     = {}", t.time_rows.len());
        // Emission order groups each tree's preorder rows contiguously;
        // rendering per root keeps the % column scaled per tree.
        let mut trees: Vec<Vec<TimeLedgerRow>> = Vec::new();
        for row in &t.time_rows {
            let root = row.path.split('/').next().unwrap_or("");
            match trees.last_mut() {
                Some(rows)
                    if rows
                        .first()
                        .is_some_and(|r| r.path.split('/').next() == Some(root)) =>
                {
                    rows.push(row.clone());
                }
                _ => trees.push(vec![row.clone()]),
            }
        }
        for rows in &trees {
            println!();
            print!("{}", render_time_report(rows, top));
        }
        println!();
    }
    if violations.is_empty() {
        if !folded {
            println!("time invariants OK");
        }
        Ok(())
    } else {
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
        Err(format!(
            "{} time invariant(s) violated in {path}",
            violations.len()
        ))
    }
}

/// `maxkcov prof --time --input FILE …` — run an ingest with the
/// batch-granular clocks live and render the resulting time ledger (or
/// folded stacks), auditing leaves-only attribution and ns
/// conservation against the measured ingest wall clock.
fn cmd_prof_time_live(
    flags: &HashMap<String, String>,
    top: usize,
    folded: bool,
) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    // The batch-granular clocks only run against a live recorder
    // (disabled-recorder runs must stay zero-overhead), so attach one
    // even though prof never emits its event stream.
    config.recorder = Recorder::enabled();
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let mut est =
        MaxCoverEstimator::new(system.num_elements(), system.num_sets(), k, alpha, &config);
    let t0 = Instant::now();
    if config.shards > 1 {
        est.ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        for chunk in edges.chunks(batch.unwrap_or(1024)) {
            est.observe_batch(chunk);
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let times = est.time_ledger_tree();
    let mut violations = times.audit();
    // Conservation against the measured wall clock: every attributed
    // interval nests inside the ingest wall, at most `threads` lanes
    // overlap within a replica, and `shards` replicas run concurrently.
    let budget = wall_ns
        .saturating_mul(config.threads.max(1) as u64)
        .saturating_mul(config.shards.max(1) as u64);
    if times.total_ns() > budget {
        violations.push(format!(
            "time ledger attributes {} ns but the ingest wall budget is {budget} ns \
             ({wall_ns} ns x {} thread(s) x {} shard(s))",
            times.total_ns(),
            config.threads.max(1),
            config.shards.max(1)
        ));
    }
    if folded {
        print!("{}", times.folded());
    } else {
        println!("live run       = {} edges, k={k}, alpha={alpha}", edges.len());
        println!("time nodes     = {}", times.rows().len());
        println!();
        print!("{}", times.report(top));
        println!();
    }
    if violations.is_empty() {
        if !folded {
            println!("time invariants OK");
        }
        Ok(())
    } else {
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
        Err(format!("{} time invariant(s) violated", violations.len()))
    }
}

fn cmd_prof_trace(path: &str, top: usize) -> Result<(), String> {
    let t = parse_trace(path)?;
    if t.ledger_rows.is_empty() {
        return Err(format!(
            "trace {path} contains no ledger events (written by --trace since the \
             space-attribution ledger landed; re-run the traced command)"
        ));
    }
    println!("trace          = {path}");
    println!("ledger nodes   = {}", t.ledger_rows.len());
    println!();
    print!("{}", render_ledger_report(&t.ledger_rows, top));
    let violations = ledger_invariant_violations(&t);
    println!();
    if violations.is_empty() {
        println!("ledger invariants OK");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
        Err(format!(
            "{} ledger invariant(s) violated in {path}",
            violations.len()
        ))
    }
}

fn cmd_prof_live(flags: &HashMap<String, String>, top: usize) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let config = parse_config(flags)?;
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let mut est =
        MaxCoverEstimator::new(system.num_elements(), system.num_sets(), k, alpha, &config);
    if config.shards > 1 {
        est.ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        for chunk in edges.chunks(batch.unwrap_or(1024)) {
            est.observe_batch(chunk);
        }
    }
    let ledger = est.space_ledger_tree();
    println!("live run       = {} edges, k={k}, alpha={alpha}", edges.len());
    println!("ledger nodes   = {}", ledger.rows().len());
    println!();
    print!("{}", ledger.report(top));
    println!();
    let mut violations = ledger.audit();
    let (total, expected) = (ledger.total_words(), est.space_words() as u64);
    if total != expected {
        violations.push(format!(
            "ledger attributes {total} words but space_words reports {expected}"
        ));
    }
    if violations.is_empty() {
        println!("ledger invariants OK");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
        Err(format!("{} ledger invariant(s) violated", violations.len()))
    }
}

fn cmd_trace_summarize(path: &str) -> Result<(), String> {
    let t = parse_trace(path)?;
    if t.lines == 0 {
        return Err(format!("trace {path} contains no events"));
    }
    println!("trace          = {path}");
    println!("events         = {}", t.lines);
    if !t.phases.is_empty() {
        println!();
        println!("phase                    calls      total ns");
        for (name, (calls, ns)) in &t.phases {
            println!("  {name:<22} {calls:>5}  {ns:>12}");
        }
    }
    if let Some((est, words, edges)) = t.summary {
        println!();
        println!("summary estimate         = {est:.1}");
        println!("summary space (words)    = {words}");
        println!("summary edges            = {edges}");
        if t.subroutines > 0 {
            println!(
                "subroutine space (words) = {} across {} subroutines",
                t.subroutine_space, t.subroutines
            );
        }
    }
    if !t.beats.is_empty() {
        println!();
        println!("heartbeats (fills and cumulative lane ns summed over lanes)");
        println!("  stage     shard    at_edges  lanes   lc_fill   ls_fill   ss_fill  evictions     space            ns");
        for ((stage, shard, at), row) in &t.beats {
            println!(
                "  {stage:<8} {shard:>6}  {at:>10}  {lanes:>5}  {lc:>8}  {ls:>8}  {ss:>8}  {ev:>9}  {sp:>8}  {ns:>12}",
                lanes = row.lanes,
                lc = row.lc_fill,
                ls = row.ls_fill,
                ss = row.ss_fill,
                ev = row.evictions,
                sp = row.space_words,
                ns = row.ns,
            );
        }
    }
    if !t.time_rows.is_empty() {
        println!();
        println!("time ledger ({} nodes; prof --time for the full report)", t.time_rows.len());
        for (stage, root, threads, ns) in &t.time_meta {
            println!("  stage {stage:<9} root {root:<10} threads {threads}  {ns:>12} ns attributed");
        }
    }
    if !t.histograms.is_empty() {
        println!();
        println!("histogram                   count         sum        mean       p50       p90       p99       max");
        for (name, h) in &t.histograms {
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            println!(
                "  {name:<24} {count:>8}  {sum:>10}  {mean:>10.1}  {p50:>8}  {p90:>8}  {p99:>8}  {max:>8}",
                count = h.count(),
                sum = h.sum(),
                mean = h.mean(),
                p50 = q(0.5),
                p90 = q(0.9),
                p99 = q(0.99),
                max = h.max().unwrap_or(0),
            );
        }
    }
    let mut violations = trace_invariant_violations(&t);
    violations.extend(time_invariant_violations(&t));
    println!();
    if violations.is_empty() {
        println!("invariants OK");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
        Err(format!(
            "{} trace invariant(s) violated in {path}",
            violations.len()
        ))
    }
}

fn cmd_setcover(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let fraction: f64 = match flags.get("fraction") {
        Some(s) => parse_num(s, "fraction")?,
        None => 1.0,
    };
    if !(0.0..=1.0).contains(&fraction) {
        return Err("fraction must be in [0, 1]".into());
    }
    let r = kcov_baselines::partial_set_cover(&system, fraction);
    println!("target fraction = {fraction}");
    println!("sets used       = {}", r.chosen.len());
    println!("covered         = {}", r.covered);
    println!("complete        = {}", r.complete);
    println!("sets            = {:?}", r.chosen);
    Ok(())
}

fn cmd_report(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags)?;
    let rec = obs.configure(&mut config);
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let mut rep = MaxCoverReporter::new(system.num_elements(), system.num_sets(), k, alpha, &config);
    let span = rec.span("ingest");
    if config.shards > 1 {
        rep.ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        match batch {
            None => {
                for &e in &edges {
                    rep.observe(e);
                }
            }
            Some(b) => {
                for chunk in edges.chunks(b) {
                    rep.observe_batch(chunk);
                }
            }
        }
    }
    span.finish();
    let cover = rep.finalize();
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    println!("reported sets  = {:?}", cover.sets);
    println!("real coverage  = {}", coverage_of(&system, &chosen));
    println!("estimate       = {:.1}", cover.estimate);
    println!("winner         = {:?}", cover.winner);
    println!("space (words)  = {}", cover.space_words);
    obs.emit(&rec)
}
