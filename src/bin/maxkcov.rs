//! `maxkcov` — command-line front end.
//!
//! ```text
//! maxkcov gen      --kind uniform|zipf|planted|common|few-large|many-small \
//!                  --n N --m M [--k K] [--seed S] --out FILE
//! maxkcov stats    --input FILE
//! maxkcov greedy   --input FILE --k K
//! maxkcov exact    --input FILE --k K
//! maxkcov estimate --input FILE --k K --alpha A [--seed S] [--order ORDER] \
//!                  [--threads T] [--batch B] [--shards S]
//! maxkcov report   --input FILE --k K --alpha A [--seed S] [--order ORDER] \
//!                  [--threads T] [--batch B] [--shards S]
//! ```
//!
//! `ORDER` is one of `set`, `element`, `roundrobin`, `shuffle:SEED`
//! (default `shuffle:0`). Instances use the plain-text format of
//! `kcov_stream::io`. `--batch B` routes ingestion through the batched
//! engine in chunks of `B` edges and `--threads T` shards the guess ×
//! repetition lanes across `T` OS threads; both are bit-identical to
//! the default per-edge serial pass. `--shards S` instead partitions
//! the *stream* across `S` full estimator replicas (scoped threads)
//! merged at finalize — estimates are identical to the serial pass up
//! to the merge contract of DESIGN.md §8.
//!
//! Observability: `--metrics` appends a human summary (counters,
//! gauges, per-subroutine estimates) after the normal output, and
//! `--trace FILE` writes the full structured NDJSON event log. Both
//! only *add* output — estimates and the default output lines are
//! byte-identical with or without them. Unknown flags are rejected
//! per subcommand rather than silently ignored.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use kcov_baselines::{greedy_max_cover, max_cover_exact};
use kcov_core::{EstimatorConfig, MaxCoverEstimator, MaxCoverReporter, ParamMode};
use kcov_obs::Recorder;
use kcov_sketch::SpaceUsage;
use kcov_stream::gen;
use kcov_stream::{
    coverage_of, edge_stream, read_set_system, write_set_system, ArrivalOrder, CoverageStats,
    SetSystem,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  maxkcov gen      --kind KIND --n N --m M [--k K] [--seed S] --out FILE
  maxkcov stats    --input FILE
  maxkcov greedy   --input FILE --k K
  maxkcov exact    --input FILE --k K
  maxkcov estimate --input FILE --k K --alpha A [--seed S] [--order ORDER] [--mode paper|practical]
                   [--threads T] [--batch B] [--shards S] [--metrics] [--trace FILE]
  maxkcov report   --input FILE --k K --alpha A [--seed S] [--order ORDER] [--mode paper|practical]
                   [--threads T] [--batch B] [--shards S] [--metrics] [--trace FILE]
  maxkcov twopass  --input FILE --k K --alpha A [--seed S] [--order ORDER] [--threads T] [--batch B]
                   [--shards S] [--metrics] [--trace FILE]
  maxkcov setcover --input FILE [--fraction F]
  maxkcov budget   --input FILE --k K --words W [--seed S] [--order ORDER] [--threads T] [--batch B]
                   [--shards S] [--metrics] [--trace FILE]
KIND: uniform | zipf | planted | common | few-large | many-small
ORDER: set | element | roundrobin | shuffle:SEED (default shuffle:0)
--batch B ingests B edges per observe_batch call (default: per-edge observe);
--threads T shards lanes across T threads. Results are bit-identical either way.
--shards S partitions the stream across S estimator replicas merged at
finalize; estimates are identical to the serial pass (DESIGN.md sec. 8).
--metrics prints a counters/gauges/subroutine summary after the normal output;
--trace FILE writes the structured NDJSON event log. Neither changes estimates.";

/// Per-subcommand flag allowlists: (flags taking a value, boolean flags).
fn allowed_flags(cmd: &str) -> (&'static [&'static str], &'static [&'static str]) {
    const OBS_BOOL: &[&str] = &["metrics"];
    match cmd {
        "gen" => (&["kind", "n", "m", "k", "seed", "out"], &[]),
        "stats" => (&["input"], &[]),
        "greedy" | "exact" => (&["input", "k"], &[]),
        "estimate" | "report" | "twopass" => (
            &[
                "input", "k", "alpha", "seed", "order", "mode", "threads", "batch", "shards",
                "trace",
            ],
            OBS_BOOL,
        ),
        "budget" => (
            &[
                "input", "k", "words", "seed", "order", "mode", "threads", "batch", "shards",
                "trace",
            ],
            OBS_BOOL,
        ),
        "setcover" => (&["input", "fraction"], &[]),
        _ => (&[], &[]),
    }
}

/// Parse `--key value` (and bare boolean `--key`) flags after the
/// subcommand, rejecting flags the subcommand does not accept.
fn parse_flags(cmd: &str, args: &[String]) -> Result<HashMap<String, String>, String> {
    let (value_flags, bool_flags) = allowed_flags(cmd);
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{a}'"))?;
        if flags.contains_key(key) {
            return Err(format!("duplicate flag --{key}"));
        }
        if bool_flags.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
        } else if value_flags.contains(&key) {
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), val.clone());
        } else {
            return Err(format!("unknown flag --{key} for subcommand '{cmd}'"));
        }
    }
    Ok(flags)
}

/// `--trace FILE` / `--metrics` — the CLI observability surface.
struct ObsOpts {
    trace: Option<String>,
    metrics: bool,
}

impl ObsOpts {
    fn parse(flags: &HashMap<String, String>) -> ObsOpts {
        ObsOpts {
            trace: flags.get("trace").cloned(),
            metrics: flags.contains_key("metrics"),
        }
    }

    /// A live recorder only when some output was requested, so the
    /// default path keeps the zero-cost disabled handle.
    fn recorder(&self) -> Recorder {
        if self.trace.is_some() || self.metrics {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Append metrics/trace output *after* the normal result lines
    /// (default stdout stays byte-identical when neither is requested).
    fn emit(&self, rec: &Recorder) -> Result<(), String> {
        if self.metrics {
            print!("{}", rec.summary_table());
            let subs = rec.events_of("subroutine");
            if !subs.is_empty() {
                println!("subroutine                                estimate      space");
                for ev in &subs {
                    let lane = ev.u64_field("lane").unwrap_or(0);
                    let name = ev.str_field("name").unwrap_or("?");
                    let est = ev.f64_field("estimate").unwrap_or(f64::NAN);
                    let words = ev.u64_field("space_words").unwrap_or(0);
                    let est = if est.is_finite() {
                        format!("{est:.1}")
                    } else {
                        "-".to_string()
                    };
                    println!("  lane{lane:<3} {name:<30}  {est:>10}  {words:>9}");
                }
            }
        }
        if let Some(path) = &self.trace {
            let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            rec.write_ndjson(BufWriter::new(file))
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        Ok(())
    }
}

fn req<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: '{s}'"))
}

fn load(flags: &HashMap<String, String>) -> Result<SetSystem, String> {
    let path = req(flags, "input")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_set_system(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn parse_order(flags: &HashMap<String, String>) -> Result<ArrivalOrder, String> {
    match flags.get("order").map(String::as_str) {
        None => Ok(ArrivalOrder::Shuffled(0)),
        Some("set") => Ok(ArrivalOrder::SetContiguous),
        Some("element") => Ok(ArrivalOrder::ElementContiguous),
        Some("roundrobin") => Ok(ArrivalOrder::RoundRobin),
        Some(s) if s.starts_with("shuffle:") => {
            Ok(ArrivalOrder::Shuffled(parse_num(&s[8..], "shuffle seed")?))
        }
        Some(s) => Err(format!("unknown order '{s}'")),
    }
}

fn parse_config(flags: &HashMap<String, String>) -> Result<EstimatorConfig, String> {
    let seed = match flags.get("seed") {
        Some(s) => parse_num(s, "seed")?,
        None => 0,
    };
    let mut config = EstimatorConfig::practical(seed);
    match flags.get("mode").map(String::as_str) {
        None | Some("practical") => {}
        Some("paper") => config.mode = ParamMode::Paper,
        Some(s) => return Err(format!("unknown mode '{s}'")),
    }
    if let Some(t) = flags.get("threads") {
        config.threads = parse_num(t, "threads")?;
    }
    if let Some(s) = flags.get("shards") {
        let shards: usize = parse_num(s, "shards")?;
        if shards == 0 {
            return Err("--shards must be >= 1".into());
        }
        config.shards = shards;
    }
    Ok(config)
}

/// `--batch B` chunk size; `None` keeps the per-edge `observe` path.
fn parse_batch(flags: &HashMap<String, String>) -> Result<Option<usize>, String> {
    match flags.get("batch") {
        None => Ok(None),
        Some(s) => {
            let b: usize = parse_num(s, "batch")?;
            if b == 0 {
                return Err("--batch must be >= 1".into());
            }
            Ok(Some(b))
        }
    }
}


fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no subcommand".into());
    };
    if !matches!(
        cmd.as_str(),
        "gen" | "stats" | "greedy" | "exact" | "estimate" | "report" | "twopass" | "setcover"
            | "budget"
    ) {
        return Err(format!("unknown subcommand '{cmd}'"));
    }
    let flags = parse_flags(cmd, rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "stats" => cmd_stats(&flags),
        "greedy" => cmd_greedy(&flags),
        "exact" => cmd_exact(&flags),
        "estimate" => cmd_estimate(&flags),
        "report" => cmd_report(&flags),
        "twopass" => cmd_twopass(&flags),
        "setcover" => cmd_setcover(&flags),
        "budget" => cmd_budget(&flags),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = req(flags, "kind")?;
    let n: usize = parse_num(req(flags, "n")?, "n")?;
    let m: usize = parse_num(req(flags, "m")?, "m")?;
    let seed: u64 = match flags.get("seed") {
        Some(s) => parse_num(s, "seed")?,
        None => 0,
    };
    let k: usize = match flags.get("k") {
        Some(s) => parse_num(s, "k")?,
        None => (m / 20).max(1),
    };
    let system = match kind {
        "uniform" => gen::uniform_fixed_size(n, m, (n / 50).max(2).min(n), seed),
        "zipf" => gen::zipf_set_sizes(n, m, (n / 5).max(2).min(n), 1.05, seed),
        "planted" => gen::planted_cover(n, m, k, 0.8, ((n / k) / 4).max(1), seed).system,
        "common" => gen::common_heavy(n, m, seed),
        "few-large" => gen::few_large(n, m, 3.min(m - 1).max(1), (n / 5).max(1), seed),
        "many-small" => gen::many_small(n, m, k.min(m), 0.6, seed),
        other => return Err(format!("unknown kind '{other}'")),
    };
    let path = req(flags, "out")?;
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    write_set_system(&system, BufWriter::new(file)).map_err(|e| format!("write: {e}"))?;
    println!(
        "wrote {path}: n={} m={} edges={}",
        system.num_elements(),
        system.num_sets(),
        system.total_edges()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let st = CoverageStats::of(&system);
    println!("n              = {}", st.n);
    println!("m              = {}", st.m);
    println!("edges          = {}", st.total_edges);
    println!("max set size   = {}", st.max_set_size);
    println!("max frequency  = {}", st.max_frequency);
    println!("covered elems  = {}", st.covered_elements);
    Ok(())
}

fn cmd_greedy(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let r = greedy_max_cover(&system, k);
    println!("greedy coverage = {}", r.coverage);
    println!("sets = {:?}", r.chosen);
    Ok(())
}

fn cmd_exact(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    if system.num_sets() > 64 {
        eprintln!(
            "warning: exact search on m = {} sets may take very long",
            system.num_sets()
        );
    }
    let (chosen, cov) = max_cover_exact(&system, k);
    println!("exact optimum = {cov}");
    println!("sets = {chosen:?}");
    Ok(())
}

fn cmd_estimate(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags);
    let rec = obs.recorder();
    config.recorder = rec.clone();
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let mut est = MaxCoverEstimator::new(system.num_elements(), system.num_sets(), k, alpha, &config);
    let span = rec.span("ingest");
    if config.shards > 1 {
        est.ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        match batch {
            None => {
                for &e in &edges {
                    est.observe(e);
                }
            }
            Some(b) => {
                for chunk in edges.chunks(b) {
                    est.observe_batch(chunk);
                }
            }
        }
    }
    span.finish();
    let out = est.finalize();
    println!("estimate      = {:.1}", out.estimate);
    println!("winning z     = {}", out.winning_z);
    println!("winner        = {:?}", out.winner);
    println!("trivial       = {}", out.trivial);
    println!("space (words) = {}", est.space_words());
    println!("stream edges  = {}", edges.len());
    obs.emit(&rec)
}

fn cmd_twopass(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags);
    let rec = obs.recorder();
    config.recorder = rec.clone();
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let (n, m) = (system.num_elements(), system.num_sets());
    let cover = if config.shards > 1 {
        kcov_core::run_two_pass_sharded(n, m, k, alpha, &config, &edges, batch.unwrap_or(1024))
    } else {
        match batch {
            None => kcov_core::run_two_pass(n, m, k, alpha, &config, &edges),
            Some(b) => {
                let mut first = kcov_core::TwoPassFirst::new(n, m, k, alpha, &config);
                let span = rec.span("pass1");
                for chunk in edges.chunks(b) {
                    first.observe_batch(chunk);
                }
                span.finish();
                let mut second = first.into_second_pass();
                let span = rec.span("pass2");
                for chunk in edges.chunks(b) {
                    second.observe_batch(chunk);
                }
                span.finish();
                second.finalize()
            }
        }
    };
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    println!("reported sets  = {:?}", cover.sets);
    println!("real coverage  = {}", coverage_of(&system, &chosen));
    println!("estimate       = {:.1}", cover.estimate);
    println!("winner         = {:?}", cover.winner);
    println!("space (words)  = {} (pass 2)", cover.space_words);
    obs.emit(&rec)
}

fn cmd_budget(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let words: usize = parse_num(req(flags, "words")?, "words (space budget)")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags);
    let rec = obs.recorder();
    config.recorder = rec.clone();
    let (n, m) = (system.num_elements(), system.num_sets());
    let Some(mut fit) = kcov_core::fit_alpha_to_budget(n, m, k, words, &config) else {
        return Err(format!(
            "no alpha in [1, sqrt(m)] fits {words} words; smallest possible is {}",
            kcov_core::predict_space_words(n, m, k, (m as f64).sqrt().max(1.0), &config)
        ));
    };
    println!("budget         = {words} words");
    println!("fitted alpha   = {:.2}", fit.alpha);
    println!("predicted max  = {} words", fit.predicted_words);
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let span = rec.span("ingest");
    if config.shards > 1 {
        fit.estimator
            .ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        match batch {
            None => {
                for &e in &edges {
                    fit.estimator.observe(e);
                }
            }
            Some(b) => {
                for chunk in edges.chunks(b) {
                    fit.estimator.observe_batch(chunk);
                }
            }
        }
    }
    span.finish();
    let out = fit.estimator.finalize();
    println!("estimate       = {:.1}", out.estimate);
    println!("actual space   = {} words", fit.estimator.space_words());
    obs.emit(&rec)
}

fn cmd_setcover(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let fraction: f64 = match flags.get("fraction") {
        Some(s) => parse_num(s, "fraction")?,
        None => 1.0,
    };
    if !(0.0..=1.0).contains(&fraction) {
        return Err("fraction must be in [0, 1]".into());
    }
    let r = kcov_baselines::partial_set_cover(&system, fraction);
    println!("target fraction = {fraction}");
    println!("sets used       = {}", r.chosen.len());
    println!("covered         = {}", r.covered);
    println!("complete        = {}", r.complete);
    println!("sets            = {:?}", r.chosen);
    Ok(())
}

fn cmd_report(flags: &HashMap<String, String>) -> Result<(), String> {
    let system = load(flags)?;
    let k: usize = parse_num(req(flags, "k")?, "k")?;
    let alpha: f64 = parse_num(req(flags, "alpha")?, "alpha")?;
    let order = parse_order(flags)?;
    let mut config = parse_config(flags)?;
    let obs = ObsOpts::parse(flags);
    let rec = obs.recorder();
    config.recorder = rec.clone();
    let batch = parse_batch(flags)?;
    let edges = edge_stream(&system, order);
    let mut rep = MaxCoverReporter::new(system.num_elements(), system.num_sets(), k, alpha, &config);
    let span = rec.span("ingest");
    if config.shards > 1 {
        rep.ingest_sharded(&edges, config.shards, batch.unwrap_or(1024));
    } else {
        match batch {
            None => {
                for &e in &edges {
                    rep.observe(e);
                }
            }
            Some(b) => {
                for chunk in edges.chunks(b) {
                    rep.observe_batch(chunk);
                }
            }
        }
    }
    span.finish();
    let cover = rep.finalize();
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    println!("reported sets  = {:?}", cover.sets);
    println!("real coverage  = {}", coverage_of(&system, &chosen));
    println!("estimate       = {:.1}", cover.estimate);
    println!("winner         = {:?}", cover.winner);
    println!("space (words)  = {}", cover.space_words);
    obs.emit(&rec)
}
