//! Cross-crate integration: the full pipeline — generators → streams →
//! estimator/reporter → verified against exact/greedy ground truth.

use maxkcov::baselines::{greedy_max_cover, max_cover_exact};
use maxkcov::core::{EstimatorConfig, MaxCoverEstimator, MaxCoverReporter};
use maxkcov::sketch::SpaceUsage;
use maxkcov::stream::gen::{planted_cover, uniform_incidence};
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder};

/// Coarse, fast estimator config for integration tests.
fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(2);
    config
}

#[test]
fn estimator_sandwich_against_exact_optimum() {
    // Small instance where the exact optimum is computable: the
    // estimate must be ≤ OPT (soundness, with sketch-noise slack) and
    // ≥ OPT/Õ(α) (usefulness).
    let ss = uniform_incidence(600, 80, 0.04, 3);
    let k = 6;
    let (_, opt) = max_cover_exact(&ss, k);
    let alpha = 3.0;
    let edges = edge_stream(&ss, ArrivalOrder::Shuffled(1));
    let out = MaxCoverEstimator::run(600, 80, k, alpha, &fast_config(9, 600), &edges);
    assert!(out.estimate > 0.0, "estimator silent");
    assert!(
        out.estimate <= opt as f64 * 1.15,
        "estimate {} exceeds exact OPT {opt}",
        out.estimate
    );
    assert!(
        out.estimate >= opt as f64 / (alpha * 30.0),
        "estimate {} uselessly small vs OPT {opt}",
        out.estimate
    );
}

#[test]
fn reporter_cover_verified_against_instance() {
    let inst = planted_cover(2_500, 300, 15, 0.8, 60, 5);
    let n = inst.system.num_elements();
    let m = inst.system.num_sets();
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
    let cover = MaxCoverReporter::run(n, m, 15, 4.0, &fast_config(3, n), &edges);
    assert!(!cover.sets.is_empty());
    assert!(cover.sets.len() <= 15);
    let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
    let real = coverage_of(&inst.system, &chosen);
    assert!(
        real as f64 >= inst.planted_coverage as f64 / (4.0 * 30.0),
        "reported cover too weak: {real} vs planted {}",
        inst.planted_coverage
    );
}

#[test]
fn streaming_never_materializes_the_instance() {
    // Space sanity at scale: estimator state stays far below the stream
    // size on a large instance (the point of streaming).
    let ss = uniform_incidence(20_000, 2_000, 0.01, 7);
    let edges = edge_stream(&ss, ArrivalOrder::Shuffled(4));
    let mut config = fast_config(5, 20_000);
    config.reps = Some(1);
    let mut est = MaxCoverEstimator::new(20_000, 2_000, 40, 16.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let words = est.space_words();
    // At this (moderate) scale the polylog constants still bite; the
    // asymptotic statement is exercised quantitatively in exp_tradeoff.
    // Here: strictly below storing the stream.
    assert!(
        words < edges.len(),
        "estimator uses {words} words vs stream {}",
        edges.len()
    );
}

#[test]
fn all_arrival_orders_give_consistent_estimates() {
    let inst = planted_cover(1_200, 150, 10, 0.7, 40, 8);
    let n = inst.system.num_elements();
    let m = inst.system.num_sets();
    let config = fast_config(11, n);
    let mut estimates = Vec::new();
    for order in [
        ArrivalOrder::SetContiguous,
        ArrivalOrder::ElementContiguous,
        ArrivalOrder::RoundRobin,
        ArrivalOrder::Shuffled(9),
    ] {
        let edges = edge_stream(&inst.system, order);
        let out = MaxCoverEstimator::run(n, m, 10, 4.0, &config, &edges);
        estimates.push(out.estimate);
    }
    let max = estimates.iter().cloned().fold(f64::MIN, f64::max);
    let min = estimates.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min > 0.0, "some order silenced the estimator: {estimates:?}");
    assert!(
        max / min < 2.0,
        "order sensitivity too high: {estimates:?}"
    );
}

#[test]
fn greedy_exact_and_estimator_agree_on_ranking() {
    // A structured instance where coverage differs sharply between
    // k values: all three machineries must rank k=1 below k=8.
    let inst = planted_cover(2_000, 200, 8, 0.8, 50, 13);
    let n = inst.system.num_elements();
    let m = inst.system.num_sets();
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(21));
    let config = fast_config(17, n);
    let small_k = MaxCoverEstimator::run(n, m, 1, 4.0, &config, &edges).estimate;
    let large_k = MaxCoverEstimator::run(n, m, 8, 4.0, &config, &edges).estimate;
    let g1 = greedy_max_cover(&inst.system, 1).coverage as f64;
    let g8 = greedy_max_cover(&inst.system, 8).coverage as f64;
    assert!(g8 > g1);
    assert!(
        large_k >= small_k,
        "estimator ranking inverted: k=8 {large_k} < k=1 {small_k}"
    );
}
