//! Property-based tests on cross-crate invariants, driven by a
//! deterministic SplitMix64 case harness (no external dependency):
//! every run explores the same seed grid, so a failure names a
//! reproducible case index.

use maxkcov::baselines::{greedy_max_cover, max_cover_exact, SieveStreaming};
use maxkcov::core::{EstimatorConfig, MaxCoverEstimator};
use maxkcov::hash::SplitMix64;
use maxkcov::sketch::{L0Estimator, SpaceUsage};
use maxkcov::stream::gen::uniform_incidence;
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

const CASES: u64 = 24;

/// Greedy is always within (1 - 1/e) of the exact optimum.
#[test]
fn greedy_factor_holds() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x6EE ^ case);
        let seed = rng.next_below(5000);
        let m = 4 + rng.next_below(10) as usize;
        let k = 1 + rng.next_below(4) as usize;
        let ss = uniform_incidence(30, m, 0.15, seed);
        let (_, opt) = max_cover_exact(&ss, k);
        let g = greedy_max_cover(&ss, k);
        assert!(
            g.coverage as f64 >= (1.0 - 1.0 / std::f64::consts::E) * opt as f64 - 1e-9,
            "case {case}"
        );
        assert!(g.coverage <= opt, "case {case}");
    }
}

/// Coverage is monotone and subadditive in the chosen collection.
#[test]
fn coverage_monotone_subadditive() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC0 ^ case.wrapping_mul(0x9E37));
        let seed = rng.next_below(5000);
        let ss = uniform_incidence(50, 12, 0.2, seed);
        let a: Vec<usize> = vec![0, 1, 2];
        let b: Vec<usize> = vec![3, 4];
        let ab: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        let ca = coverage_of(&ss, &a);
        let cb = coverage_of(&ss, &b);
        let cab = coverage_of(&ss, &ab);
        assert!(cab >= ca && cab >= cb, "case {case}");
        assert!(cab <= ca + cb, "case {case}");
    }
}

/// The L0 estimator is within (1 ± 1/2) across random stream sizes and
/// seeds (Theorem 2.12 interface).
#[test]
fn l0_within_half() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x10 ^ case.wrapping_mul(0x85EB));
        let seed = rng.next_below(5000);
        let distinct = 50 + rng.next_below(4950);
        let mut est = L0Estimator::with_default_accuracy(seed);
        for i in 0..distinct {
            est.insert(i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed));
        }
        let e = est.estimate();
        assert!(e >= distinct as f64 * 0.5, "case {case}: est {e} vs {distinct}");
        assert!(e <= distinct as f64 * 1.5, "case {case}: est {e} vs {distinct}");
    }
}

/// The estimator never meaningfully exceeds the exact optimum
/// (soundness half of the (α, δ, η)-oracle contract), its space is
/// positive — and the batched multi-threaded path returns bit-identical
/// outcomes to the serial per-edge path.
#[test]
fn estimator_sound_on_random_instances() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xE57 ^ case.wrapping_mul(0x1337));
        let seed = rng.next_below(300);
        let ss = uniform_incidence(300, 40, 0.05, seed);
        let k = 4;
        let (_, opt) = max_cover_exact(&ss, k);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(seed));
        let mut config = EstimatorConfig::practical(seed ^ 0xfeed);
        config.z_guesses = Some(vec![32, 128, 512]);
        config.reps = Some(1);
        let mut est = MaxCoverEstimator::new(300, 40, k, 3.0, &config);
        for &e in &edges {
            est.observe(e);
        }
        let out = est.finalize();
        assert!(
            out.estimate <= opt as f64 * 1.25,
            "case {case}: estimate {} vs exact OPT {}",
            out.estimate,
            opt
        );
        assert!(est.space_words() > 0, "case {case}");

        // Batched + threaded ingestion is bit-identical.
        let batched = MaxCoverEstimator::run_batched(
            300,
            40,
            k,
            3.0,
            &config.clone().with_threads(2),
            &edges,
            64,
        );
        assert_eq!(
            out.estimate.to_bits(),
            batched.estimate.to_bits(),
            "case {case}: batched path diverged"
        );
        assert_eq!(out.winning_z, batched.winning_z, "case {case}");
    }
}

/// Sieve streaming returns a valid solution: at most k sets whose
/// reported coverage is exact.
#[test]
fn sieve_solutions_valid() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x51E ^ case.wrapping_mul(0xBEEF));
        let seed = rng.next_below(5000);
        let k = 1 + rng.next_below(7) as usize;
        let ss = uniform_incidence(100, 30, 0.1, seed);
        let r = SieveStreaming::run(&ss, k, 0.2);
        assert!(r.chosen.len() <= k, "case {case}");
        let dedup: std::collections::HashSet<_> = r.chosen.iter().collect();
        assert_eq!(dedup.len(), r.chosen.len(), "case {case}: duplicate sets chosen");
        assert_eq!(
            coverage_of(&ss, &r.chosen) as f64,
            r.estimated_coverage,
            "case {case}"
        );
    }
}

/// SetSystem edge round-trip: from_edges(edges(s)) == s.
#[test]
fn set_system_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5E7 ^ case.wrapping_mul(0xD00D));
        let seed = rng.next_below(5000);
        let ss = uniform_incidence(40, 10, 0.25, seed);
        let rebuilt = SetSystem::from_edges(40, 10, &ss.edges());
        assert_eq!(ss, rebuilt, "case {case}");
    }
}
