//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;

use maxkcov::baselines::{greedy_max_cover, max_cover_exact, SieveStreaming};
use maxkcov::core::{EstimatorConfig, MaxCoverEstimator};
use maxkcov::sketch::{L0Estimator, SpaceUsage};
use maxkcov::stream::gen::uniform_incidence;
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Greedy is always within (1 - 1/e) of the exact optimum.
    #[test]
    fn greedy_factor_holds(seed in 0u64..5000, m in 4usize..14, k in 1usize..5) {
        let ss = uniform_incidence(30, m, 0.15, seed);
        let (_, opt) = max_cover_exact(&ss, k);
        let g = greedy_max_cover(&ss, k);
        prop_assert!(g.coverage as f64 >= (1.0 - 1.0/std::f64::consts::E) * opt as f64 - 1e-9);
        prop_assert!(g.coverage <= opt);
    }

    /// Coverage is monotone and subadditive in the chosen collection.
    #[test]
    fn coverage_monotone_subadditive(seed in 0u64..5000) {
        let ss = uniform_incidence(50, 12, 0.2, seed);
        let a: Vec<usize> = vec![0, 1, 2];
        let b: Vec<usize> = vec![3, 4];
        let ab: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        let ca = coverage_of(&ss, &a);
        let cb = coverage_of(&ss, &b);
        let cab = coverage_of(&ss, &ab);
        prop_assert!(cab >= ca && cab >= cb);
        prop_assert!(cab <= ca + cb);
    }

    /// The L0 estimator is within (1 ± 1/2) across random stream sizes
    /// and seeds (Theorem 2.12 interface).
    #[test]
    fn l0_within_half(seed in 0u64..5000, distinct in 50u64..5000) {
        let mut est = L0Estimator::with_default_accuracy(seed);
        for i in 0..distinct {
            est.insert(i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed));
        }
        let e = est.estimate();
        prop_assert!(e >= distinct as f64 * 0.5, "est {e} vs {distinct}");
        prop_assert!(e <= distinct as f64 * 1.5, "est {e} vs {distinct}");
    }

    /// The estimator never meaningfully exceeds the exact optimum
    /// (soundness half of the (α, δ, η)-oracle contract), and its space
    /// is below the stream size.
    #[test]
    fn estimator_sound_on_random_instances(seed in 0u64..300) {
        let ss = uniform_incidence(300, 40, 0.05, seed);
        let k = 4;
        let (_, opt) = max_cover_exact(&ss, k);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(seed));
        let mut config = EstimatorConfig::practical(seed ^ 0xfeed);
        config.z_guesses = Some(vec![32, 128, 512]);
        config.reps = Some(1);
        let mut est = MaxCoverEstimator::new(300, 40, k, 3.0, &config);
        for &e in &edges {
            est.observe(e);
        }
        let out = est.finalize();
        prop_assert!(out.estimate <= opt as f64 * 1.25,
            "estimate {} vs exact OPT {}", out.estimate, opt);
        prop_assert!(est.space_words() > 0);
    }

    /// Sieve streaming returns a valid solution: at most k sets whose
    /// reported coverage is exact.
    #[test]
    fn sieve_solutions_valid(seed in 0u64..5000, k in 1usize..8) {
        let ss = uniform_incidence(100, 30, 0.1, seed);
        let r = SieveStreaming::run(&ss, k, 0.2);
        prop_assert!(r.chosen.len() <= k);
        let dedup: std::collections::HashSet<_> = r.chosen.iter().collect();
        prop_assert_eq!(dedup.len(), r.chosen.len(), "duplicate sets chosen");
        prop_assert_eq!(coverage_of(&ss, &r.chosen) as f64, r.estimated_coverage);
    }

    /// SetSystem edge round-trip: from_edges(edges(s)) == s.
    #[test]
    fn set_system_roundtrip(seed in 0u64..5000) {
        let ss = uniform_incidence(40, 10, 0.25, seed);
        let rebuilt = SetSystem::from_edges(40, 10, &ss.edges());
        prop_assert_eq!(ss, rebuilt);
    }
}
