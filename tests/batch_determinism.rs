//! Differential determinism suite for the batched ingestion engine
//! (the test harness the ingestion refactor is gated on): for every
//! generator family × arrival order × seed, the batched / multi-threaded
//! estimator must finalize to a *bit-identical* outcome to the serial
//! per-edge reference — at any thread count and any batch size.
//!
//! This is the contract documented on `EstimatorConfig::threads`: lanes
//! are mutually independent seeded states, so sharding whole lanes
//! across threads and amortizing hashes over chunks can never change
//! the answer, only the wall-clock.

use maxkcov::core::{EstimateOutcome, EstimatorConfig, MaxCoverEstimator};
use maxkcov::stream::gen::{
    planted_cover, rmat_incidence, uniform_incidence, zipf_popularity, RmatParams,
};
use maxkcov::stream::{edge_stream, ArrivalOrder, SetSystem};

/// Coarse z-grid config so the full matrix stays fast.
fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(2);
    config
}

fn generator_zoo(seed: u64) -> Vec<(&'static str, SetSystem)> {
    vec![
        ("uniform", uniform_incidence(600, 48, 0.04, seed)),
        ("zipf", zipf_popularity(500, 40, 14, 1.1, seed)),
        ("planted", planted_cover(500, 40, 5, 0.8, 12, seed).system),
        ("rmat", rmat_incidence(512, 64, 5_000, RmatParams::default(), seed)),
    ]
}

fn assert_outcomes_identical(a: &EstimateOutcome, b: &EstimateOutcome, ctx: &str) {
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{ctx}: estimate");
    assert_eq!(a.trivial, b.trivial, "{ctx}: trivial flag");
    assert_eq!(a.winning_z, b.winning_z, "{ctx}: winning z");
    assert_eq!(a.winner, b.winner, "{ctx}: winning subroutine");
    assert_eq!(a.space_words, b.space_words, "{ctx}: space accounting");
}

/// The full differential matrix: generators × arrival orders × seeds,
/// batched at threads ∈ {1, 2, 4} and several batch sizes, all compared
/// bit-for-bit against the serial per-edge reference.
#[test]
fn batched_matches_serial_across_generators_orders_seeds() {
    let orders = [
        ArrivalOrder::SetContiguous,
        ArrivalOrder::ElementContiguous,
        ArrivalOrder::RoundRobin,
        ArrivalOrder::Shuffled(0xC0FFEE),
    ];
    for seed in [1u64, 42, 1009] {
        for (name, system) in generator_zoo(seed) {
            let n = system.num_elements();
            let m = system.num_sets();
            let k = 4;
            let alpha = 3.0;
            let config = fast_config(seed ^ 0xBA7C4, n);
            for order in orders {
                let edges = edge_stream(&system, order);
                let serial = MaxCoverEstimator::run(n, m, k, alpha, &config, &edges);
                for threads in [1usize, 2, 4] {
                    let config = config.clone().with_threads(threads);
                    for batch in [1usize, 7, 256] {
                        let batched =
                            MaxCoverEstimator::run_batched(n, m, k, alpha, &config, &edges, batch);
                        assert_outcomes_identical(
                            &serial,
                            &batched,
                            &format!(
                                "{name} seed={seed} order={order:?} threads={threads} batch={batch}"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Interleaving per-edge `observe` with `observe_batch` mid-stream (the
/// way a reader that sometimes buffers would) is also exact.
#[test]
fn mixed_observe_and_batch_is_exact() {
    let system = uniform_incidence(400, 32, 0.05, 77);
    let n = system.num_elements();
    let m = system.num_sets();
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(3));
    let config = fast_config(0x717, n).with_threads(4);

    let serial = MaxCoverEstimator::run(400, 32, 3, 2.0, &config, &edges);

    let mut est = MaxCoverEstimator::new(n, m, 3, 2.0, &config);
    let mut i = 0usize;
    let mut step = 1usize;
    while i < edges.len() {
        if step.is_multiple_of(3) {
            est.observe(edges[i]);
            i += 1;
        } else {
            let hi = (i + step * 5).min(edges.len());
            est.observe_batch(&edges[i..hi]);
            i = hi;
        }
        step += 1;
    }
    let mixed = est.finalize();
    assert_outcomes_identical(&serial, &mixed, "mixed observe/observe_batch");
}

/// Empty batches and degenerate thread counts (0, huge) are inert.
#[test]
fn degenerate_batches_and_thread_counts() {
    let system = uniform_incidence(300, 24, 0.06, 5);
    let edges = edge_stream(&system, ArrivalOrder::RoundRobin);
    let config = fast_config(12, 300);
    let serial = MaxCoverEstimator::run(300, 24, 2, 2.0, &config, &edges);

    for threads in [0usize, 1, 64] {
        let config = config.clone().with_threads(threads);
        let mut est = MaxCoverEstimator::new(300, 24, 2, 2.0, &config);
        est.observe_batch(&[]);
        for chunk in edges.chunks(13) {
            est.observe_batch(chunk);
            est.observe_batch(&[]);
        }
        let out = est.finalize();
        assert_outcomes_identical(&serial, &out, &format!("threads={threads} with empty batches"));
    }
}
