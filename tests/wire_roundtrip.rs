//! Exhaustive wire-format hardening: every `WireEncode` type —
//! individual sketches, telemetry, and the full estimator / pass-2
//! states that root the distributed replica files — must (a)
//! round-trip to byte-identical encodings, (b) reject **every** strict
//! truncation with a typed error, and (c) survive a single-byte-flip
//! corruption sweep without ever panicking (flips may decode
//! successfully when they land in free payload like a counter value;
//! they must never bring the process down).

use maxkcov::core::{
    EdgeFingerprints, EstimatorConfig, LargeCommon, LargeSet, MaxCoverEstimator, Oracle, Params,
    SmallSet, TwoPassFirst, UniverseReducer,
};
use maxkcov::obs::{Histogram, Recorder, SketchStats};
use maxkcov::sketch::{
    AmsF2, Bjkst, ContributingConfig, CountMin, CountSketch, F2Contributing, F2HeavyHitter,
    Kmv, L0Estimator, WireEncode,
};
use maxkcov::stream::gen::zipf_popularity;
use maxkcov::stream::{edge_stream, ArrivalOrder};

/// Truncation cut points: every strict prefix for small encodings;
/// for large ones, dense over the framing prefix (headers and every
/// section opening live there), sampled through the body, and the
/// final 16 bytes.
fn cut_points(len: usize) -> Vec<usize> {
    if len <= 2048 {
        return (0..len).collect();
    }
    let mut cuts: Vec<usize> = (0..512).collect();
    cuts.extend((512..len).step_by(len / 256 + 1));
    cuts.extend(len - 16..len);
    cuts
}

/// Byte-flip positions, sampled the same way.
fn flip_points(len: usize) -> Vec<usize> {
    if len <= 1024 {
        return (0..len).collect();
    }
    let mut flips: Vec<usize> = (0..256).collect();
    flips.extend((256..len).step_by(len / 256 + 1));
    flips
}

/// The full battery for one value: round-trip byte identity, the
/// truncation sweep, and the corruption sweep.
fn exhaust<T: WireEncode>(label: &str, value: &T) {
    let bytes = value.to_bytes();
    let decoded =
        T::from_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: decode failed: {e}"));
    assert_eq!(
        decoded.to_bytes(),
        bytes,
        "{label}: decoded value re-encodes differently"
    );

    // Decode consumes the whole buffer, so every strict prefix must
    // run out of input somewhere and surface a typed error.
    for cut in cut_points(bytes.len()) {
        match T::from_bytes(&bytes[..cut]) {
            Err(e) => assert!(
                !e.to_string().is_empty(),
                "{label}: truncation to {cut} produced an empty error"
            ),
            Ok(_) => panic!("{label}: truncation to {cut} of {} was accepted", bytes.len()),
        }
    }

    // Corruption never panics; when it happens to decode, the value
    // must still be usable enough to re-encode.
    for flip in flip_points(bytes.len()) {
        let mut corrupted = bytes.clone();
        corrupted[flip] ^= 0xa5;
        if let Ok(v) = T::from_bytes(&corrupted) {
            let _ = v.to_bytes();
        }
    }
}

#[test]
fn individual_sketches_roundtrip_and_reject_mangling() {
    let items: Vec<u64> = (0..300).map(|i| i * 2654435761 % 1000).collect();

    let mut kmv = Kmv::new(16, 7);
    let mut l0 = L0Estimator::new(8, 5, 3);
    let mut ams = AmsF2::new(5, 64, 11);
    let mut bjkst = Bjkst::new(32, 19);
    let mut hh = F2HeavyHitter::for_phi(0.05, 23);
    let mut fc = F2Contributing::new(ContributingConfig::new(0.1, 64), 40, 1000, 29);
    for &x in &items {
        kmv.insert(x);
        l0.insert(x);
        ams.insert(x);
        bjkst.insert(x);
        hh.insert(x);
        fc.insert(x);
    }
    // Skew so the heavy hitter actually holds candidates.
    for _ in 0..200 {
        hh.insert(42);
        fc.insert(42);
    }
    exhaust("Kmv", &kmv);
    exhaust("L0Estimator", &l0);
    exhaust("AmsF2", &ams);
    exhaust("Bjkst", &bjkst);
    exhaust("F2HeavyHitter", &hh);
    exhaust("F2Contributing", &fc);

    // The paired two-tier finder (DESIGN.md §14): its level schedule
    // mixes the wide Case-1 heavy-hitter config on shallow levels with
    // the narrow Case-2 config past the wide tier's class-size bound,
    // so the per-level self-describing encoding is what keeps a
    // round-trip honest — exercise it with deliberately divergent
    // tier configs.
    let mut wide = ContributingConfig::new(0.02, 8);
    let mut narrow = ContributingConfig::new(0.25, 256);
    for c in [&mut wide, &mut narrow] {
        c.survivors_per_class = 4;
        c.sampling_degree = Some(2);
        c.hh_rows = 2;
    }
    wide.hh_width_factor = 2.0;
    let mut paired = F2Contributing::new_paired(wide, narrow, 1000, 5000, 31);
    for &x in &items {
        paired.insert(x);
    }
    for _ in 0..200 {
        paired.insert(42);
    }
    exhaust("F2Contributing(paired)", &paired);

    let mut cs = CountSketch::new(3, 32, 13);
    let mut cm = CountMin::new(3, 32, 17);
    for &x in &items {
        cs.update(x, (x % 7) as i64 - 3);
        cm.insert(x, x % 5 + 1);
    }
    exhaust("CountSketch", &cs);
    exhaust("CountMin", &cm);
}

#[test]
fn telemetry_types_roundtrip_and_reject_mangling() {
    let mut hist = Histogram::new();
    for v in [0u64, 1, 2, 17, 1000, 65_000, u64::MAX / 2] {
        hist.record(v);
    }
    exhaust("Histogram", &hist);
    exhaust("Histogram(empty)", &Histogram::new());

    let stats = SketchStats {
        updates: 500,
        fill: 12,
        capacity: 64,
        evictions: 3,
        prunes: 1,
        merges: 2,
    };
    exhaust("SketchStats", &stats);
    exhaust("UniverseReducer", &UniverseReducer::new(64, 99));
}

/// The hash-once front end and every subroutine that now carries a
/// shared set-fingerprint base section: these encodings were reshaped
/// by the batched hot-path refactor (DESIGN.md §12), so each gets the
/// full battery standalone, fed through its fingerprint entry points.
#[test]
fn hash_once_structures_roundtrip_and_reject_mangling() {
    exhaust("EdgeFingerprints(d8)", &EdgeFingerprints::new(77, 8));
    exhaust("EdgeFingerprints(d16)", &EdgeFingerprints::new(78, 16));

    let system = zipf_popularity(500, 40, 12, 1.1, 11);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(4));
    let params = Params::practical(40, 500, 6, 3.0);
    let fps = EdgeFingerprints::new(91, Params::hash_degree(params.mode, 40, 500));
    let fp_sets: Vec<u64> = edges.iter().map(|e| fps.fingerprint(*e).0).collect();

    let mut oracle = Oracle::with_base(500, &params, false, 13, fps.set_base().clone());
    let mut lc = LargeCommon::with_base(500, &params, false, 15, fps.set_base().clone());
    let mut ls = LargeSet::with_base(500, &params, 17, fps.set_base().clone());
    let mut ss = SmallSet::with_base(500, &params, 19, fps.set_base().clone());
    for (chunk, fp_chunk) in edges.chunks(64).zip(fp_sets.chunks(64)) {
        oracle.observe_fp_batch(chunk, fp_chunk);
        lc.observe_fp_batch(chunk, fp_chunk);
        ls.observe_fp_batch(chunk, fp_chunk);
        ss.observe_fp_batch(chunk, fp_chunk);
    }
    exhaust("Oracle", &oracle);
    exhaust("LargeCommon", &lc);
    exhaust("LargeSet", &ls);
    exhaust("SmallSet", &ss);
}

/// Coarse config so the estimator state stays small enough for the
/// dense part of the sweeps.
fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(2);
    config
}

/// The root of the distributed wire format: a fed estimator in the
/// lane regime. Its encoding nests every core `WireEncode` impl
/// (lanes → reducer + oracle → LargeCommon / LargeSet / SmallSet →
/// sketches → telemetry sidecars), so the truncation sweep crosses
/// every section of the versioned format.
#[test]
fn full_estimator_state_roundtrips_and_rejects_mangling() {
    let system = zipf_popularity(400, 32, 12, 1.1, 5);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(1));
    let config = fast_config(21, 400);
    let mut est = MaxCoverEstimator::new(400, 32, 4, 2.0, &config);
    for chunk in edges.chunks(64) {
        est.observe_batch(chunk);
    }
    exhaust("MaxCoverEstimator", &est);

    // A replica that never saw an edge must also survive the battery
    // (workers of short streams write these).
    let empty = MaxCoverEstimator::new(400, 32, 4, 2.0, &config);
    exhaust("MaxCoverEstimator(empty)", &empty);
}

/// Wire v4 carries the time-attribution sidecars (per-lane and
/// per-stage ns counters). An *untraced* estimator encodes them as
/// zeros, so the battery above never exercises nonzero ns bytes: feed a
/// traced replica here, check the attribution survives the round trip
/// exactly (this is what merge-from relies on to credit replica time),
/// and run the full mangling battery over the populated sidecars.
#[test]
fn traced_estimator_attribution_survives_wire_and_rejects_mangling() {
    let system = zipf_popularity(400, 32, 12, 1.1, 5);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(1));
    let config = fast_config(21, 400);
    let mut est = MaxCoverEstimator::new(400, 32, 4, 2.0, &config);
    est.attach_recorder(&Recorder::enabled());
    for chunk in edges.chunks(64) {
        est.observe_batch(chunk);
    }
    let before = est.time_ledger_tree();
    assert!(
        before.root.total_ns() > 0,
        "traced ingestion accumulated no attribution — sidecars would be vacuous"
    );

    let decoded = MaxCoverEstimator::from_bytes(&est.to_bytes())
        .expect("traced estimator must round-trip");
    let after = decoded.time_ledger_tree();
    assert_eq!(
        after.root.total_ns(),
        before.root.total_ns(),
        "total attribution changed across the wire"
    );
    for (name, node) in before.root.children() {
        let got = after.root.get(name).map_or(0, maxkcov::obs::TimeNode::total_ns);
        assert_eq!(got, node.total_ns(), "subtree '{name}' ns changed across the wire");
    }

    exhaust("MaxCoverEstimator(traced)", &est);
}

/// The trivial regime (k ≥ m) serializes a different state section.
#[test]
fn trivial_regime_estimator_roundtrips_and_rejects_mangling() {
    let system = zipf_popularity(120, 6, 4, 1.1, 9);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(2));
    let config = fast_config(33, 120);
    let mut est = MaxCoverEstimator::new(120, 6, 6, 1.5, &config);
    for chunk in edges.chunks(32) {
        est.observe_batch(chunk);
    }
    assert!(est.finalize().trivial, "expected the trivial regime");
    exhaust("MaxCoverEstimator(trivial)", &est);
}

#[test]
fn two_pass_second_state_roundtrips_and_rejects_mangling() {
    let system = zipf_popularity(300, 24, 10, 1.1, 7);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(3));
    let config = fast_config(17, 300);
    let mut first = TwoPassFirst::new(300, 24, 4, 2.0, &config);
    for chunk in edges.chunks(64) {
        first.observe_batch(chunk);
    }
    let mut second = first.into_second_pass();
    for chunk in edges.chunks(64) {
        second.observe_batch(chunk);
    }
    exhaust("TwoPassSecond", &second);
}
