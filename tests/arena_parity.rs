//! Differential proof that the cache-resident arena backend
//! (`SortedSlab` / `OaMap`, the default) is byte-for-byte equivalent to
//! the pre-arena reference layout (`BTreeSet` / `std` `HashMap`).
//!
//! The backend is resolved once per process from `KCOV_SKETCH_BACKEND`,
//! so the comparison has to cross a process boundary: each cell of the
//! matrix runs the `maxkcov` CLI twice — once with the variable unset
//! (arena) and once with `reference` — and demands identical stdout
//! down to the last byte, across generators × seeds × shard counts.
//! The worker path additionally compares the serialized replica files
//! themselves, so the wire bytes (not just the finalized numbers) are
//! pinned to the reference layout.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_maxkcov")
}

/// Run the CLI with the given storage backend (`None` = arena default).
fn run_with_backend(args: &[&str], backend: Option<&str>) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    // The parent test harness never sets the variable, but scrub it
    // anyway so the arena arm really is the shipped default.
    cmd.env_remove("KCOV_SKETCH_BACKEND");
    if let Some(b) = backend {
        cmd.env("KCOV_SKETCH_BACKEND", b);
    }
    cmd.output().expect("binary should execute")
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("maxkcov-arena-parity-{}-{name}", std::process::id()));
    p
}

/// stdout of a successful run, as raw bytes.
fn stdout_of(args: &[&str], backend: Option<&str>) -> Vec<u8> {
    let out = run_with_backend(args, backend);
    assert!(
        out.status.success(),
        "{args:?} (backend {backend:?}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// The full matrix: every generator kind × seed × shard count must
/// finalize to byte-identical stdout under both backends. Shard counts
/// include a non-power-of-two (7) so merge order and ragged shard
/// boundaries are exercised, not just clean halvings.
#[test]
fn estimates_are_byte_identical_across_backends() {
    let kinds = ["uniform", "zipf", "planted"];
    let seeds = ["3", "11"];
    let shards = ["1", "2", "4", "7"];
    for kind in kinds {
        for seed in seeds {
            let input = tmp_file(&format!("{kind}-{seed}.txt"));
            let input_s = input.to_str().unwrap();
            let gen_args = [
                "gen", "--kind", kind, "--n", "400", "--m", "60", "--k", "6", "--seed", seed,
                "--out", input_s,
            ];
            // The generator must itself be backend-neutral: it writes
            // the instance file both times and the second write must
            // reproduce the first.
            let _ = stdout_of(&gen_args, None);
            let arena_instance = std::fs::read(&input).expect("instance written");
            let _ = stdout_of(&gen_args, Some("reference"));
            let reference_instance = std::fs::read(&input).expect("instance written");
            assert_eq!(
                arena_instance, reference_instance,
                "{kind} seed {seed}: generated instance differs across backends"
            );
            for shard in shards {
                let est_args = [
                    "estimate", "--input", input_s, "--k", "6", "--alpha", "4", "--seed", seed,
                    "--batch", "128", "--shards", shard,
                ];
                let arena = stdout_of(&est_args, None);
                let reference = stdout_of(&est_args, Some("reference"));
                assert_eq!(
                    arena,
                    reference,
                    "{kind} seed {seed} shards {shard}: estimate stdout differs \
                     (arena vs reference backend)"
                );
            }
            let _ = std::fs::remove_file(&input);
        }
    }
}

/// The distributed path, one level deeper than stdout: each worker's
/// serialized replica file must be byte-identical across backends (the
/// wire format never leaks storage layout), and the merged finalize
/// must match a single-process sharded run under either backend.
#[test]
fn worker_replica_files_are_byte_identical_across_backends() {
    let input = tmp_file("worker-input.txt");
    let input_s = input.to_str().unwrap();
    let _ = stdout_of(
        &[
            "gen", "--kind", "zipf", "--n", "400", "--m", "60", "--k", "6", "--seed", "11",
            "--out", input_s,
        ],
        None,
    );
    let shards = 3;
    let mut replica_paths = Vec::new();
    for i in 0..shards {
        let arena_out = tmp_file(&format!("rep-arena-{i}.bin"));
        let reference_out = tmp_file(&format!("rep-reference-{i}.bin"));
        for (path, backend) in [(&arena_out, None), (&reference_out, Some("reference"))] {
            let _ = stdout_of(
                &[
                    "worker", "--input", input_s, "--k", "6", "--alpha", "4", "--seed", "11",
                    "--shards", "3", "--shard", &i.to_string(), "--batch", "128",
                    "--out", path.to_str().unwrap(),
                ],
                backend,
            );
        }
        let arena_bytes = std::fs::read(&arena_out).expect("arena replica written");
        let reference_bytes = std::fs::read(&reference_out).expect("reference replica written");
        assert_eq!(
            arena_bytes, reference_bytes,
            "shard {i}: replica wire bytes differ across backends"
        );
        let _ = std::fs::remove_file(&reference_out);
        replica_paths.push(arena_out);
    }

    let mut merge_args = vec!["merge-from".to_string()];
    merge_args.extend(replica_paths.iter().map(|p| p.to_str().unwrap().to_string()));
    let merge_refs: Vec<&str> = merge_args.iter().map(String::as_str).collect();
    let merged_arena = stdout_of(&merge_refs, None);
    let merged_reference = stdout_of(&merge_refs, Some("reference"));
    assert_eq!(
        merged_arena, merged_reference,
        "merge-from output differs across backends"
    );

    let coord = stdout_of(
        &[
            "estimate", "--input", input_s, "--k", "6", "--alpha", "4", "--seed", "11",
            "--batch", "128", "--shards", "3",
        ],
        None,
    );
    assert_eq!(
        merged_arena, coord,
        "merged replicas disagree with the single-process sharded run"
    );

    for p in replica_paths {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(&input);
}
