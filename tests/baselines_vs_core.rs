//! Table-1-shaped integration: every algorithm class runs on the same
//! workload; the coverage/space relationships the paper's Table 1
//! predicts must hold.

use maxkcov::baselines::{
    greedy_max_cover, mv_set_arrival, MvEdgeArrival, SieveStreaming, SketchedGreedy,
    SwapStreaming,
};
use maxkcov::core::{EstimatorConfig, MaxCoverReporter};
use maxkcov::sketch::SpaceUsage;
use maxkcov::stream::gen::planted_cover;
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder};

#[test]
fn table1_relationships_hold_on_planted_workload() {
    let inst = planted_cover(4_000, 600, 16, 0.8, 60, 31);
    let system = &inst.system;
    let (n, m, k) = (4_000usize, 600usize, 16usize);
    let edges = edge_stream(system, ArrivalOrder::Shuffled(3));

    let greedy = greedy_max_cover(system, k).coverage as f64;
    assert!(greedy >= inst.planted_coverage as f64 * (1.0 - 1.0 / std::f64::consts::E) - 1.0);

    // Set-arrival baselines: constant factor of greedy.
    let sieve = SieveStreaming::run(system, k, 0.2);
    let swap = SwapStreaming::run(system, k);
    let mv = mv_set_arrival(system, k, 0.2);
    for (name, r) in [("sieve", &sieve), ("swap", &swap), ("mv", &mv)] {
        let cov = coverage_of(system, &r.chosen) as f64;
        assert!(
            cov >= greedy / 4.5,
            "{name} too weak: {cov} vs greedy {greedy}"
        );
    }

    // Edge-arrival Õ(m): constant factor.
    let bem = SketchedGreedy::run(m, 48, 5, &edges, k);
    let bem_cov = coverage_of(
        system,
        &bem.chosen,
    ) as f64;
    assert!(bem_cov >= greedy / 3.0, "BEM too weak: {bem_cov}");

    let mut mv_edge = MvEdgeArrival::new(n, m, k, 0.4, 7);
    for &e in &edges {
        mv_edge.observe(e);
    }
    let mv_edge_res = mv_edge.finish();
    let mv_edge_cov = coverage_of(
        system,
        &mv_edge_res.chosen,
    ) as f64;
    assert!(mv_edge_cov >= greedy / 4.0, "MV-edge too weak: {mv_edge_cov}");

    // This paper at two alphas: coverage within Õ(α) of greedy, space
    // strictly decreasing in α.
    let mut spaces = Vec::new();
    for alpha in [4.0f64, 16.0] {
        let mut config = EstimatorConfig::practical(13);
        config.reps = Some(1);
        let mut rep = MaxCoverReporter::new(n, m, k, alpha, &config);
        for &e in &edges {
            rep.observe(e);
        }
        let r = rep.finalize();
        let chosen: Vec<usize> = r.sets.iter().map(|&s| s as usize).collect();
        let cov = coverage_of(system, &chosen) as f64;
        assert!(
            cov >= greedy / (alpha * 30.0),
            "alpha={alpha}: coverage {cov} vs greedy {greedy}"
        );
        spaces.push(rep.space_words());
    }
    assert!(
        spaces[0] > spaces[1],
        "space must fall with alpha: {spaces:?}"
    );
}
