//! Differential suite for the mergeable-state refactor (the harness the
//! shard-merge lift is gated on): two or more estimator replicas built
//! from the same config + seed, fed disjoint shards of the edge stream,
//! and folded back with `merge` must finalize to the same outcome as
//! single-stream serial ingestion — for every generator family ×
//! arrival order × seed × shard count, including uneven and empty
//! splits — and the merge itself must be associative and commutative.
//!
//! Outcome comparison deliberately excludes `space_words`: the
//! heavy-hitter candidate lists are rebuilt canonically on merge, so a
//! merged state can sit below the serial state's post-prune fill level
//! while still reporting identical estimates (DESIGN.md §8).

use maxkcov::core::{
    EstimateOutcome, EstimatorConfig, MaxCoverEstimator, MaxCoverReporter,
};
use maxkcov::stream::gen::{
    planted_cover, rmat_incidence, uniform_incidence, zipf_popularity, RmatParams,
};
use maxkcov::stream::{edge_stream, ArrivalOrder, Edge, SetSystem};

/// Coarse z-grid config so the full matrix stays fast.
fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(2);
    config
}

fn generator_zoo(seed: u64) -> Vec<(&'static str, SetSystem)> {
    vec![
        ("uniform", uniform_incidence(600, 48, 0.04, seed)),
        ("zipf", zipf_popularity(500, 40, 14, 1.1, seed)),
        ("planted", planted_cover(500, 40, 5, 0.8, 12, seed).system),
        ("rmat", rmat_incidence(512, 64, 5_000, RmatParams::default(), seed)),
    ]
}

/// Outcome equality under the merge contract: everything except the
/// space accounting must be bit-identical.
fn assert_outcomes_equivalent(a: &EstimateOutcome, b: &EstimateOutcome, ctx: &str) {
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{ctx}: estimate");
    assert_eq!(a.trivial, b.trivial, "{ctx}: trivial flag");
    assert_eq!(a.winning_z, b.winning_z, "{ctx}: winning z");
    assert_eq!(a.winner, b.winner, "{ctx}: winning subroutine");
}

/// Feed `edges` into a fresh replica of `proto` serially.
fn fed_replica(proto: &MaxCoverEstimator, edges: &[Edge]) -> MaxCoverEstimator {
    let mut est = proto.clone();
    for &e in edges {
        est.observe(e);
    }
    est
}

/// The full differential matrix: generators × arrival orders × seeds ×
/// shard counts {1, 2, 4, 7}, merged at finalize and compared against
/// the serial per-edge reference.
#[test]
fn sharded_matches_serial_across_generators_orders_seeds() {
    let orders = [
        ArrivalOrder::SetContiguous,
        ArrivalOrder::ElementContiguous,
        ArrivalOrder::Shuffled(0xC0FFEE),
    ];
    for seed in [1u64, 42] {
        for (name, system) in generator_zoo(seed) {
            let n = system.num_elements();
            let m = system.num_sets();
            let k = 4;
            let alpha = 3.0;
            let config = fast_config(seed ^ 0x54A2D, n);
            for order in orders {
                let edges = edge_stream(&system, order);
                let serial = MaxCoverEstimator::run(n, m, k, alpha, &config, &edges);
                for shards in [1usize, 2, 4, 7] {
                    let config = config.clone().with_shards(shards);
                    let sharded =
                        MaxCoverEstimator::run_sharded(n, m, k, alpha, &config, &edges, 64);
                    assert_outcomes_equivalent(
                        &serial,
                        &sharded,
                        &format!("{name} seed={seed} order={order:?} shards={shards}"),
                    );
                }
            }
        }
    }
}

/// Uneven and empty splits: merging replicas fed wildly unbalanced
/// shards — including completely empty ones — is exact. A fresh replica
/// is the merge identity.
#[test]
fn uneven_and_empty_splits_merge_exactly() {
    let system = uniform_incidence(500, 40, 0.05, 9);
    let n = system.num_elements();
    let m = system.num_sets();
    let config = fast_config(0xE11, n);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(7));
    let serial = MaxCoverEstimator::run(n, m, 4, 3.0, &config, &edges);
    let proto = MaxCoverEstimator::new(n, m, 4, 3.0, &config);

    // Split points producing: an empty first shard, a one-edge shard, a
    // huge middle shard, and an empty tail shard.
    let cuts = [0usize, 1, edges.len() - 2, edges.len(), edges.len()];
    let mut merged = proto.clone();
    let mut lo = 0usize;
    for &hi in &cuts {
        let part = fed_replica(&proto, &edges[lo..hi]);
        merged.merge(&part);
        lo = hi;
    }
    let tail = fed_replica(&proto, &edges[lo..]);
    merged.merge(&tail);
    assert_outcomes_equivalent(&serial, &merged.finalize(), "uneven/empty splits");
}

/// `merge` is associative and commutative on the finalize outcome:
/// `(a ⊔ b) ⊔ c ≡ a ⊔ (b ⊔ c)` and `a ⊔ b ≡ b ⊔ a` for replicas fed
/// disjoint thirds of the stream.
#[test]
fn merge_is_associative_and_commutative() {
    for (name, system) in generator_zoo(7) {
        let n = system.num_elements();
        let m = system.num_sets();
        let config = fast_config(0xA550C, n);
        let edges = edge_stream(&system, ArrivalOrder::Shuffled(11));
        let third = edges.len() / 3;
        let proto = MaxCoverEstimator::new(n, m, 4, 3.0, &config);
        let a = fed_replica(&proto, &edges[..third]);
        let b = fed_replica(&proto, &edges[third..2 * third]);
        let c = fed_replica(&proto, &edges[2 * third..]);

        // (a ⊔ b) ⊔ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_outcomes_equivalent(
            &left.finalize(),
            &right.finalize(),
            &format!("{name}: associativity"),
        );

        // b ⊔ a ⊔ c (commuted first pair).
        let mut commuted = b.clone();
        commuted.merge(&a);
        commuted.merge(&c);
        assert_outcomes_equivalent(
            &left.finalize(),
            &commuted.finalize(),
            &format!("{name}: commutativity"),
        );

        // And both agree with serial single-stream ingestion.
        let serial = MaxCoverEstimator::run(n, m, 4, 3.0, &config, &edges);
        assert_outcomes_equivalent(&serial, &left.finalize(), &format!("{name}: vs serial"));
    }
}

/// The reporter (reporting machinery on: group trackers, witnesses)
/// reports the same cover sets from merged shards as from the serial
/// stream.
#[test]
fn reporter_sharded_matches_serial() {
    let inst = planted_cover(600, 80, 6, 0.7, 20, 15);
    let n = inst.system.num_elements();
    let m = inst.system.num_sets();
    let config = fast_config(0x8e9, n);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
    let serial = MaxCoverReporter::run(n, m, 6, 3.0, &config, &edges);
    for shards in [2usize, 4, 7] {
        let config = config.clone().with_shards(shards);
        let sharded = MaxCoverReporter::run_sharded(n, m, 6, 3.0, &config, &edges, 64);
        assert_eq!(serial.sets, sharded.sets, "shards={shards}: cover sets");
        assert_eq!(
            serial.estimate.to_bits(),
            sharded.estimate.to_bits(),
            "shards={shards}: estimate"
        );
        assert_eq!(serial.winner, sharded.winner, "shards={shards}: winner");
    }
}

/// The documented space divergence (DESIGN.md §8): merging rebuilds
/// every heavy-hitter candidate list canonically and re-prunes, so a
/// merged estimator's `space_words` sits at or below the serial
/// state's post-prune fill on these workloads — never above — while
/// the outcome stays identical. Everything here is seeded, so this is
/// a deterministic regression pin, not a statistical claim.
#[test]
fn merged_space_never_exceeds_serial_on_zoo() {
    let mut diverged = false;
    for seed in [1u64, 42] {
        for (name, system) in generator_zoo(seed) {
            let n = system.num_elements();
            let m = system.num_sets();
            let config = fast_config(seed ^ 0x5ACE, n);
            let edges = edge_stream(&system, ArrivalOrder::Shuffled(3));
            let serial = MaxCoverEstimator::run(n, m, 4, 3.0, &config, &edges);
            for shards in [2usize, 4] {
                let config = config.clone().with_shards(shards);
                let sharded = MaxCoverEstimator::run_sharded(n, m, 4, 3.0, &config, &edges, 64);
                assert_outcomes_equivalent(
                    &serial,
                    &sharded,
                    &format!("{name} seed={seed} shards={shards}"),
                );
                assert!(
                    sharded.space_words <= serial.space_words,
                    "{name} seed={seed} shards={shards}: merged {} > serial {}",
                    sharded.space_words,
                    serial.space_words
                );
                diverged |= sharded.space_words < serial.space_words;
            }
        }
    }
    assert!(
        diverged,
        "expected at least one workload where the canonical merge rebuild \
         shrinks the candidate lists below the serial post-prune fill"
    );
}

/// The divergence mechanism in isolation: feed `1.5·capacity + 80`
/// distinct items. Serially the list overflows its high-water mark
/// once, prunes down to ≈ capacity, then refills with the remaining
/// items — ending well *above* capacity. Split into two sub-threshold
/// shards (no shard ever prunes), the merged union exceeds the
/// high-water mark, so the canonical rebuild prunes to ≤ capacity:
/// strictly below the serial post-prune fill.
#[test]
fn merge_rebuild_prunes_below_serial_candidate_fill() {
    use maxkcov::sketch::F2HeavyHitter;
    let mut serial = F2HeavyHitter::for_phi(0.05, 9);
    let capacity = serial.stats().capacity;
    let hi_water = capacity + capacity / 2;
    let distinct = hi_water + capacity / 2;
    for item in 0..distinct {
        serial.insert(item);
    }
    let st = serial.stats();
    assert_eq!(st.prunes, 1, "serial run must overflow exactly once");
    assert!(
        st.fill > capacity,
        "serial post-prune refill must end above capacity: fill {} <= {}",
        st.fill,
        capacity
    );

    let mut left = F2HeavyHitter::for_phi(0.05, 9);
    let mut right = F2HeavyHitter::for_phi(0.05, 9);
    for item in 0..distinct / 2 {
        left.insert(item);
    }
    for item in distinct / 2..distinct {
        right.insert(item);
    }
    assert_eq!(left.stats().prunes, 0, "shards must stay below the prune threshold");
    assert_eq!(right.stats().prunes, 0);
    left.merge(&right);
    let merged = left.stats();
    assert!(
        merged.fill <= capacity,
        "canonical rebuild must prune the union to capacity: fill {} > {}",
        merged.fill,
        capacity
    );
    assert!(
        merged.fill < st.fill,
        "merged fill {} must diverge strictly below serial fill {}",
        merged.fill,
        st.fill
    );
    assert_eq!(merged.updates, st.updates, "items_seen merges by addition");
}

/// The space ledger under merge: every replica and the merged state
/// attribute exactly their `space_words`, and the heat counters
/// (updates, touched words) are additive — the merged ledger's totals
/// equal the sum of the shard replicas' totals.
#[test]
fn ledger_words_stay_exact_and_heat_adds_across_shards() {
    use maxkcov::sketch::SpaceUsage;
    let inst = planted_cover(600, 80, 6, 0.7, 20, 15);
    let n = inst.system.num_elements();
    let m = inst.system.num_sets();
    let config = fast_config(0x1ED6, n);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(4));
    let proto = MaxCoverEstimator::new(n, m, 6, 3.0, &config);
    for shards in [2usize, 4] {
        let chunk = edges.len().div_ceil(shards);
        let replicas: Vec<MaxCoverEstimator> =
            edges.chunks(chunk).map(|part| fed_replica(&proto, part)).collect();
        let mut updates = 0u64;
        let mut touched = 0u64;
        for (i, r) in replicas.iter().enumerate() {
            let ledger = r.space_ledger_tree();
            assert!(ledger.audit().is_empty(), "shard {i}: {:?}", ledger.audit());
            assert_eq!(
                ledger.total_words(),
                r.space_words() as u64,
                "shard {i}: ledger must attribute every resident word"
            );
            updates += ledger.root.total_updates();
            touched += ledger.root.total_touched_words();
        }
        assert!(updates > 0, "shards must record heat");
        let mut merged = proto.clone();
        for r in &replicas {
            merged.merge(r);
        }
        let ledger = merged.space_ledger_tree();
        assert!(ledger.audit().is_empty());
        assert_eq!(ledger.total_words(), merged.space_words() as u64, "shards={shards}");
        assert_eq!(ledger.root.total_updates(), updates, "shards={shards}: updates are additive");
        assert_eq!(
            ledger.root.total_touched_words(),
            touched,
            "shards={shards}: touched words are additive"
        );
    }
}

/// The trivial regime (`k·α ≥ m`) merges bit-exactly — every group and
/// the total are union-merged L0 sketches, so even the space accounting
/// agrees.
#[test]
fn trivial_branch_shards_merge_bit_exactly() {
    let system = uniform_incidence(200, 12, 0.1, 21);
    let n = system.num_elements();
    let m = system.num_sets();
    let config = EstimatorConfig::practical(31);
    let edges = edge_stream(&system, ArrivalOrder::RoundRobin);
    // k·α = 8·4 = 32 ≥ m = 12 → trivial regime.
    let serial = MaxCoverEstimator::run(n, m, 8, 4.0, &config, &edges);
    assert!(serial.trivial);
    for shards in [2usize, 5] {
        let config = config.clone().with_shards(shards);
        let sharded = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &config, &edges, 32);
        assert!(sharded.trivial);
        assert_eq!(serial.estimate.to_bits(), sharded.estimate.to_bits());
        assert_eq!(serial.space_words, sharded.space_words, "trivial merge is bit-exact");
    }
}
