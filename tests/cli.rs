//! End-to-end tests of the `maxkcov` CLI binary (gen → stats →
//! greedy/exact → estimate → report over the text format).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_maxkcov")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary should execute")
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("maxkcov-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_stats_greedy_estimate_report_pipeline() {
    let path = tmp_file("planted.txt");
    let path_s = path.to_str().unwrap();

    // gen
    let out = run(&[
        "gen", "--kind", "planted", "--n", "800", "--m", "120", "--k", "8", "--seed", "5",
        "--out", path_s,
    ]);
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));

    // stats
    let out = run(&["stats", "--input", path_s]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n              = 800"), "{text}");
    assert!(text.contains("m              = 120"), "{text}");

    // greedy
    let out = run(&["greedy", "--input", path_s, "--k", "8"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let cov: f64 = text
        .lines()
        .find(|l| l.starts_with("greedy coverage"))
        .and_then(|l| l.split('=').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("greedy coverage line");
    assert!(cov >= 600.0, "planted 0.8 coverage expected, got {cov}");

    // estimate
    let out = run(&[
        "estimate", "--input", path_s, "--k", "8", "--alpha", "4", "--seed", "3",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("estimate"), "{text}");
    assert!(text.contains("space (words)"), "{text}");

    // report
    let out = run(&[
        "report", "--input", path_s, "--k", "8", "--alpha", "4", "--order", "roundrobin",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("reported sets"), "{text}");
    assert!(text.contains("real coverage"), "{text}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn twopass_and_setcover_subcommands() {
    let path = tmp_file("tp.txt");
    let out = run(&[
        "gen", "--kind", "planted", "--n", "600", "--m", "90", "--k", "6", "--seed", "2",
        "--out", path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = run(&[
        "twopass", "--input", path.to_str().unwrap(), "--k", "6", "--alpha", "4",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("real coverage"), "{text}");

    let out = run(&[
        "setcover", "--input", path.to_str().unwrap(), "--fraction", "0.9",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sets used"), "{text}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn budget_subcommand_fits_alpha() {
    let path = tmp_file("budget.txt");
    let out = run(&[
        "gen", "--kind", "uniform", "--n", "2000", "--m", "300", "--seed", "4",
        "--out", path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "budget", "--input", path.to_str().unwrap(), "--k", "10", "--words", "2000000",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fitted alpha"), "{text}");
    // An absurdly small budget must fail with a helpful message.
    let out = run(&[
        "budget", "--input", path.to_str().unwrap(), "--k", "10", "--words", "5",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no alpha"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn exact_runs_on_tiny_instances() {
    let path = tmp_file("tiny.txt");
    std::fs::write(&path, "6 3\n0 0\n0 1\n1 2\n1 3\n2 4\n2 5\n").unwrap();
    let out = run(&["exact", "--input", path.to_str().unwrap(), "--k", "2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exact optimum = 4"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_ingestion_flag_on_all_stream_subcommands() {
    let path = tmp_file("shards.txt");
    let path_s = path.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "600", "--m", "90", "--k", "6", "--seed", "8",
        "--out", path_s,
    ]);
    assert!(out.status.success());

    // estimate: --shards 1 must print exactly what the serial pass
    // prints, and higher shard counts must report the same estimate.
    let serial = run(&["estimate", "--input", path_s, "--k", "6", "--alpha", "4", "--seed", "3"]);
    assert!(serial.status.success());
    let one = run(&[
        "estimate", "--input", path_s, "--k", "6", "--alpha", "4", "--seed", "3",
        "--shards", "1",
    ]);
    assert!(one.status.success());
    assert_eq!(serial.stdout, one.stdout, "--shards 1 must equal no flag");
    let serial_text = String::from_utf8_lossy(&serial.stdout).to_string();
    let serial_estimate = serial_text
        .lines()
        .find(|l| l.starts_with("estimate"))
        .expect("estimate line")
        .to_string();
    for shards in ["2", "4"] {
        let out = run(&[
            "estimate", "--input", path_s, "--k", "6", "--alpha", "4", "--seed", "3",
            "--shards", shards,
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(&serial_estimate), "shards={shards}: {text}\nvs {serial_estimate}");
    }

    // report: same cover sets under sharding.
    let serial = run(&["report", "--input", path_s, "--k", "6", "--alpha", "4", "--seed", "3"]);
    assert!(serial.status.success());
    let serial_sets = String::from_utf8_lossy(&serial.stdout)
        .lines()
        .find(|l| l.starts_with("reported sets"))
        .expect("reported sets line")
        .to_string();
    let out = run(&[
        "report", "--input", path_s, "--k", "6", "--alpha", "4", "--seed", "3",
        "--shards", "3",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(&serial_sets), "{text}\nvs {serial_sets}");

    // twopass and budget accept the flag and produce output.
    let out = run(&[
        "twopass", "--input", path_s, "--k", "6", "--alpha", "4", "--shards", "2",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("real coverage"));
    let out = run(&[
        "budget", "--input", path_s, "--k", "6", "--words", "2000000", "--shards", "2",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("fitted alpha"));

    // --shards 0 is rejected on every stream subcommand.
    for cmd in [
        &["estimate", "--input", path_s, "--k", "6", "--alpha", "4", "--shards", "0"][..],
        &["report", "--input", path_s, "--k", "6", "--alpha", "4", "--shards", "0"][..],
        &["twopass", "--input", path_s, "--k", "6", "--alpha", "4", "--shards", "0"][..],
        &["budget", "--input", path_s, "--k", "6", "--words", "2000000", "--shards", "0"][..],
    ] {
        let out = run(cmd);
        assert!(!out.status.success(), "{cmd:?} should fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--shards must be >= 1"),
            "{cmd:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_usage_fails_with_usage_message() {
    for args in [
        &["frobnicate"][..],
        &["estimate", "--input"][..],
        &["estimate", "--k", "3"][..],
        &[][..],
    ] {
        let out = run(args);
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "missing usage for {args:?}: {err}");
    }
}

#[test]
fn unknown_flags_are_rejected_per_subcommand() {
    let path = tmp_file("flags.txt");
    let path_s = path.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "400", "--m", "60", "--k", "5", "--seed", "1",
        "--out", path_s,
    ]);
    assert!(out.status.success());

    // A typo'd flag fails loudly instead of being silently ignored…
    let out = run(&[
        "estimate", "--input", path_s, "--k", "5", "--alpha", "4", "--allpha", "9",
    ]);
    assert!(!out.status.success(), "typo'd flag must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --allpha"), "{err}");
    assert!(err.contains("'estimate'"), "{err}");

    // …flags valid elsewhere are rejected where they make no sense…
    let out = run(&["stats", "--input", path_s, "--alpha", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --alpha"));
    let out = run(&["gen", "--kind", "planted", "--n", "10", "--m", "5", "--out", path_s,
        "--metrics"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --metrics"));

    // …and repeating a flag is an error, not a silent overwrite.
    let out = run(&[
        "estimate", "--input", path_s, "--k", "5", "--alpha", "4", "--alpha", "8",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("duplicate flag --alpha"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_and_metrics_add_output_without_changing_estimates() {
    let path = tmp_file("obs.txt");
    let path_s = path.to_str().unwrap();
    let trace = tmp_file("obs.ndjson");
    let trace_s = trace.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "800", "--m", "120", "--k", "8", "--seed", "5",
        "--out", path_s,
    ]);
    assert!(out.status.success());

    let base = &["estimate", "--input", path_s, "--k", "8", "--alpha", "4", "--seed", "3"][..];
    let plain = run(base);
    assert!(plain.status.success());

    // --trace alone: stdout byte-identical to the plain run.
    let mut args = base.to_vec();
    args.extend(["--trace", trace_s]);
    let traced = run(&args);
    assert!(traced.status.success(), "{}", String::from_utf8_lossy(&traced.stderr));
    assert_eq!(plain.stdout, traced.stdout, "--trace must not change stdout");

    // The trace file is line-delimited JSON with the required records,
    // and its accounting matches the stream and the reported space.
    let ndjson = std::fs::read_to_string(&trace).expect("trace file written");
    let mut lanes = 0u64;
    let mut sub_space = 0u64;
    let mut summary_space = None;
    let mut summary_edges = None;
    let mut phases = Vec::new();
    for line in ndjson.lines() {
        let doc = maxkcov::obs::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("invalid NDJSON line: {e}\n{line}"));
        let kind = doc.get("kind").and_then(|k| k.as_str()).expect("kind key").to_string();
        assert!(doc.get("seq").and_then(|s| s.as_f64()).is_some(), "seq key: {line}");
        match kind.as_str() {
            "lane" => lanes += 1,
            "subroutine" => {
                sub_space += doc.get("space_words").and_then(|v| v.as_f64()).unwrap() as u64;
            }
            "summary" => {
                summary_space = doc.get("space_words").and_then(|v| v.as_f64());
                summary_edges = doc.get("edges").and_then(|v| v.as_f64());
            }
            "phase" => {
                phases.push(doc.get("phase").and_then(|p| p.as_str()).unwrap().to_string());
            }
            _ => {}
        }
    }
    assert!(lanes > 0, "per-lane records present");
    let summary_space = summary_space.expect("summary record") as u64;
    assert_eq!(sub_space, summary_space, "subroutine snapshots sum to the total");
    assert!(phases.contains(&"ingest".to_string()));
    assert!(phases.contains(&"finalize".to_string()));

    // The reported space and edge count agree with the normal output.
    let text = String::from_utf8_lossy(&plain.stdout);
    let stdout_space: u64 = text
        .lines()
        .find(|l| l.starts_with("space (words)"))
        .and_then(|l| l.split('=').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("space line");
    assert_eq!(summary_space, stdout_space);
    let stdout_edges: f64 = text
        .lines()
        .find(|l| l.starts_with("stream edges"))
        .and_then(|l| l.split('=').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("edges line");
    assert_eq!(summary_edges.unwrap(), stdout_edges);

    // --metrics: the plain lines come first, then the summary table.
    let mut args = base.to_vec();
    args.push("--metrics");
    let metrics = run(&args);
    assert!(metrics.status.success());
    let mtext = String::from_utf8_lossy(&metrics.stdout);
    assert!(mtext.starts_with(&*String::from_utf8_lossy(&plain.stdout)),
        "normal output must be an unchanged prefix:\n{mtext}");
    assert!(mtext.contains("edges.total"), "{mtext}");
    assert!(mtext.contains("large_common"), "subroutine diagnostics shown: {mtext}");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn heartbeat_flag_is_validated() {
    let path = tmp_file("hb-validate.txt");
    let path_s = path.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "300", "--m", "40", "--k", "4", "--seed", "2",
        "--out", path_s,
    ]);
    assert!(out.status.success());

    // Zero cadence is rejected.
    let out = run(&[
        "estimate", "--input", path_s, "--k", "4", "--alpha", "4", "--heartbeat", "0",
        "--metrics",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--heartbeat must be >= 1"));

    // Heartbeats land in the event log, so a sink must be requested.
    let out = run(&[
        "estimate", "--input", path_s, "--k", "4", "--alpha", "4", "--heartbeat", "100",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--heartbeat requires --trace or --metrics"));

    // Non-streaming subcommands do not take the flag at all.
    let out = run(&["stats", "--input", path_s, "--heartbeat", "100"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --heartbeat"));

    std::fs::remove_file(&path).ok();
}

/// A trace file reduced to its deterministic content: wall-clock
/// payloads are dropped (`ns` fields, `*_ns` histograms, `time_ns.*`
/// counters) and every surviving line must be byte-identical across
/// identical runs — the heartbeat determinism contract of DESIGN.md §10.
fn normalized_trace(path: &std::path::Path) -> Vec<String> {
    use maxkcov::obs::json::Json;
    let text = std::fs::read_to_string(path).expect("trace file");
    let mut out = Vec::new();
    for line in text.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON: {e}\n{line}"));
        let kind = doc.get("kind").and_then(Json::as_str).expect("kind").to_string();
        let str_of = |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_string);
        if kind == "counter" && str_of("key").is_some_and(|k| k.starts_with("time_ns.")) {
            continue;
        }
        if kind == "histogram" && str_of("name").is_some_and(|n| n.ends_with("_ns")) {
            continue;
        }
        let Json::Obj(entries) = doc else { panic!("non-object line: {line}") };
        let kept: Vec<_> = entries.into_iter().filter(|(k, _)| k != "ns").collect();
        out.push(Json::Obj(kept).render());
    }
    out
}

#[test]
fn heartbeat_keeps_stdout_identical_and_traces_deterministic() {
    let path = tmp_file("hb-det.txt");
    let path_s = path.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "900", "--m", "130", "--k", "8", "--seed", "11",
        "--out", path_s,
    ]);
    assert!(out.status.success());

    // Heartbeats must not perturb any estimate/report output line.
    for cmd in ["estimate", "report", "twopass"] {
        let base = &[cmd, "--input", path_s, "--k", "8", "--alpha", "4", "--seed", "6"][..];
        let plain = run(base);
        assert!(plain.status.success(), "{cmd} plain run failed");
        let trace = tmp_file(&format!("hb-det-{cmd}.ndjson"));
        let mut args = base.to_vec();
        args.extend(["--heartbeat", "400", "--trace", trace.to_str().unwrap()]);
        let beating = run(&args);
        assert!(beating.status.success(), "{cmd} heartbeat run failed");
        assert_eq!(
            plain.stdout, beating.stdout,
            "--heartbeat must not change {cmd} stdout"
        );
        std::fs::remove_file(&trace).ok();
    }

    // Two identical sharded + threaded + batched traced runs agree
    // byte-for-byte once wall-clock payloads are stripped.
    let t1 = tmp_file("hb-det-1.ndjson");
    let t2 = tmp_file("hb-det-2.ndjson");
    for t in [&t1, &t2] {
        let out = run(&[
            "estimate", "--input", path_s, "--k", "8", "--alpha", "4", "--seed", "6",
            "--shards", "3", "--threads", "2", "--batch", "128", "--heartbeat", "400",
            "--trace", t.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let (n1, n2) = (normalized_trace(&t1), normalized_trace(&t2));
    assert!(!n1.is_empty());
    assert_eq!(n1, n2, "identical runs must produce identical traces modulo wall-clock");
    assert!(
        n1.iter().any(|l| l.contains("\"kind\":\"heartbeat\"")),
        "sharded trace carries heartbeat events"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&t1).ok();
    std::fs::remove_file(&t2).ok();
}

#[test]
fn trace_summarize_renders_and_checks_a_trace() {
    let path = tmp_file("ts.txt");
    let path_s = path.to_str().unwrap();
    let trace = tmp_file("ts.ndjson");
    let trace_s = trace.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "700", "--m", "110", "--k", "7", "--seed", "9",
        "--out", path_s,
    ]);
    assert!(out.status.success());
    let out = run(&[
        "estimate", "--input", path_s, "--k", "7", "--alpha", "4", "--seed", "4",
        "--batch", "256", "--heartbeat", "500", "--trace", trace_s,
    ]);
    assert!(out.status.success());

    // The summary renders phases, heartbeats, histograms, and the
    // invariant verdict, and exits zero on a healthy trace.
    let out = run(&["trace-summarize", trace_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "phase", "ingest", "finalize", "summary estimate", "heartbeats",
        "ingest.batch_edges", "invariants OK",
    ] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }

    // An orphan time_ns counter (no matching phase events) trips the
    // invariant check: non-zero exit, violation named on stderr.
    let mut ndjson = std::fs::read_to_string(&trace).unwrap();
    ndjson.push_str("{\"seq\":99999,\"kind\":\"counter\",\"key\":\"time_ns.bogus\",\"value\":5}\n");
    std::fs::write(&trace, &ndjson).unwrap();
    let out = run(&["trace-summarize", trace_s]);
    assert!(!out.status.success(), "corrupt trace must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("time_ns.bogus"), "{err}");

    // Arity and I/O errors are reported, not panicked.
    let out = run(&["trace-summarize"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one argument"));
    let out = run(&["trace-summarize", "/nonexistent/trace.ndjson"]);
    assert!(!out.status.success());

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trace).ok();
}

/// Degenerate traces must be clear non-zero exits, not quiet
/// summaries of nothing: an empty file has no events to audit, and a
/// trace carrying heartbeats but no histograms has lost the delta
/// records every heartbeat writes.
#[test]
fn trace_summarize_rejects_empty_and_histogram_free_traces() {
    // Empty file (and a whitespace-only one, which parses to zero
    // events the same way).
    let empty = tmp_file("empty.ndjson");
    let empty_s = empty.to_str().unwrap();
    for contents in ["", "\n\n  \n"] {
        std::fs::write(&empty, contents).unwrap();
        let out = run(&["trace-summarize", empty_s]);
        assert!(!out.status.success(), "empty trace must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("contains no events"), "{err}");
    }
    std::fs::remove_file(&empty).ok();

    // Heartbeats but no histogram events: every heartbeat records a
    // fill/eviction delta, so this shape only arises from truncation
    // or hand-editing. The summary still renders, then the invariant
    // check fails.
    let beats = tmp_file("beats-only.ndjson");
    let beats_s = beats.to_str().unwrap();
    let ndjson = concat!(
        "{\"seq\":0,\"kind\":\"heartbeat\",\"stage\":\"ingest\",\"shard\":0,\
         \"at_edges\":500,\"lane\":0,\"lc_fill\":3,\"ls_fill\":2,\"ss_fill\":1,\
         \"evictions\":0,\"space_words\":100}\n",
        "{\"seq\":1,\"kind\":\"heartbeat\",\"stage\":\"ingest\",\"shard\":0,\
         \"at_edges\":1000,\"lane\":0,\"lc_fill\":4,\"ls_fill\":2,\"ss_fill\":1,\
         \"evictions\":1,\"space_words\":100}\n",
    );
    std::fs::write(&beats, ndjson).unwrap();
    let out = run(&["trace-summarize", beats_s]);
    assert!(!out.status.success(), "heartbeats without histograms must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("no histogram events"),
        "expected the heartbeat/histogram invariant, got: {err}"
    );
    assert!(err.contains("2 heartbeat row(s)"), "{err}");
    std::fs::remove_file(&beats).ok();
}

/// The `prof` subcommand: attribution report from a traced run or a
/// live run, self-auditing the ledger invariants with a non-zero exit
/// on violation.
#[test]
fn prof_renders_attribution_and_audits_the_ledger() {
    let path = tmp_file("prof.txt");
    let path_s = path.to_str().unwrap();
    let trace = tmp_file("prof.ndjson");
    let trace_s = trace.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "700", "--m", "110", "--k", "7", "--seed", "9",
        "--out", path_s,
    ]);
    assert!(out.status.success());
    let out = run(&[
        "estimate", "--input", path_s, "--k", "7", "--alpha", "4", "--seed", "4",
        "--batch", "256", "--trace", trace_s,
    ]);
    assert!(out.status.success());

    // Trace mode: sorted attribution plus the invariant verdict.
    let out = run(&["prof", trace_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["ledger nodes", "estimator/", "upd/word", "total:", "ledger invariants OK"] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }

    // --top truncates the leaf table and says what it dropped.
    let out = run(&["prof", trace_s, "--top", "3"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("more leaves"));

    // Live mode reruns the estimator and audits its own ledger.
    let out = run(&[
        "prof", "--input", path_s, "--k", "7", "--alpha", "4", "--seed", "4", "--shards", "2",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("live run"), "{text}");
    assert!(text.contains("ledger invariants OK"), "{text}");

    // A tampered trace (a ledger leaf the tree never had) must be a
    // non-zero exit naming the violation.
    let mut ndjson = std::fs::read_to_string(&trace).unwrap();
    ndjson.push_str(
        "{\"seq\":99999,\"kind\":\"ledger\",\"path\":\"estimator/bogus\",\
         \"words\":7,\"updates\":0,\"touched_words\":0,\"children\":0}\n",
    );
    std::fs::write(&trace, &ndjson).unwrap();
    let out = run(&["prof", trace_s]);
    assert!(!out.status.success(), "tampered ledger must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invariant violated"), "{err}");

    // Flag and arity validation: trace and --input are exclusive, a
    // bare call has nothing to profile, and stream-only flags are
    // rejected.
    let out = run(&["prof", trace_s, "--input", path_s, "--k", "7", "--alpha", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not both"));
    let out = run(&["prof"]);
    assert!(!out.status.success());
    let out = run(&[
        "prof", "--input", path_s, "--k", "7", "--alpha", "4", "--heartbeat", "100",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --heartbeat"));

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trace).ok();
}

/// `prof --time`: the time-attribution twin of the ledger report —
/// rendered trees and folded stacks from a trace or a live run, with
/// the ns-conservation audit deciding the exit status.
#[test]
fn prof_time_renders_folded_stacks_and_audits_conservation() {
    let path = tmp_file("proftime.txt");
    let path_s = path.to_str().unwrap();
    let trace = tmp_file("proftime.ndjson");
    let trace_s = trace.to_str().unwrap();
    let out = run(&[
        "gen", "--kind", "planted", "--n", "700", "--m", "110", "--k", "7", "--seed", "9",
        "--out", path_s,
    ]);
    assert!(out.status.success());
    let out = run(&[
        "estimate", "--input", path_s, "--k", "7", "--alpha", "4", "--seed", "4",
        "--batch", "256", "--heartbeat", "500", "--trace", trace_s,
    ]);
    assert!(out.status.success());

    // Trace mode: per-tree report plus the invariant verdict.
    let out = run(&["prof", trace_s, "--time"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["time nodes", "estimator", "time invariants OK"] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }

    // Folded mode: every stdout line is a flamegraph.pl-ready
    // "frame;frame;... ns" stack, nothing else (no banner, no verdict).
    let out = run(&["prof", trace_s, "--time", "--folded"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "folded output is empty");
    for line in &lines {
        let (stack, ns) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad stack: {line}"));
        assert!(!stack.is_empty() && !stack.contains('/'), "unfolded path in: {line}");
        ns.parse::<u64>().unwrap_or_else(|_| panic!("non-numeric sample count: {line}"));
    }
    assert!(
        lines.iter().any(|l| l.starts_with("estimator;")),
        "no estimator frames in:\n{text}"
    );

    // --folded is a rendering of --time, not a mode of its own.
    let out = run(&["prof", trace_s, "--folded"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--folded"));

    // Live mode reruns the ingest with the batch clocks on and audits
    // attribution against its own wall-clock budget.
    let out = run(&[
        "prof", "--input", path_s, "--k", "7", "--alpha", "4", "--seed", "4", "--time",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("live run"), "{text}");
    assert!(text.contains("time invariants OK"), "{text}");
    let out = run(&[
        "prof", "--input", path_s, "--k", "7", "--alpha", "4", "--seed", "4",
        "--shards", "2", "--time", "--folded",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!String::from_utf8_lossy(&out.stdout).trim().is_empty());

    // Tampering with a single time_ledger leaf breaks the parent-sum
    // walk: both prof --time and trace-summarize must refuse the trace.
    let ndjson = std::fs::read_to_string(&trace).unwrap();
    let mut tampered = String::new();
    let mut done = false;
    for line in ndjson.lines() {
        if !done && line.contains("\"kind\":\"time_ledger\"") && line.contains("\"children\":0") {
            if let Some(i) = line.find("\"ns\":") {
                let digits: String =
                    line[i + 5..].chars().take_while(char::is_ascii_digit).collect();
                let bumped: u64 = digits.parse::<u64>().unwrap() + 999_999_999_999;
                tampered.push_str(&line[..i + 5]);
                tampered.push_str(&bumped.to_string());
                tampered.push_str(&line[i + 5 + digits.len()..]);
                tampered.push('\n');
                done = true;
                continue;
            }
        }
        tampered.push_str(line);
        tampered.push('\n');
    }
    assert!(done, "no time_ledger leaf found to tamper with");
    std::fs::write(&trace, &tampered).unwrap();
    for args in [&["prof", trace_s, "--time"][..], &["trace-summarize", trace_s][..]] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} accepted a tampered time ledger");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invariant violated"), "{err}");
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trace).ok();
}

/// Overhead budget for the batch-granular clocks: a traced ingest must
/// hold at least 95% of untraced throughput. Timing-sensitive, so it
/// is ignored by default and run explicitly (in release) by the CI
/// bench-smoke job.
#[test]
#[ignore = "timing-sensitive; CI bench-smoke runs it in release"]
fn traced_ingest_overhead_stays_within_budget() {
    use maxkcov::core::{EstimatorConfig, MaxCoverEstimator};
    use maxkcov::obs::Recorder;
    use maxkcov::stream::gen::zipf_popularity;
    use maxkcov::stream::{edge_stream, ArrivalOrder};
    use std::time::Instant;

    let system = zipf_popularity(20_000, 400, 30, 1.05, 7);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(3));
    let (n, m) = (system.num_elements(), system.num_sets());
    let config = EstimatorConfig::practical(11);

    // Best-of-3 on each side so a single scheduler hiccup cannot fail
    // the gate; the traced side carries a live recorder the whole run.
    let best_edges_per_s = |rec: &Recorder| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let mut est = MaxCoverEstimator::new(n, m, 20, 4.0, &config);
            est.attach_recorder(rec);
            let t = Instant::now();
            for chunk in edges.chunks(1024) {
                est.observe_batch(chunk);
            }
            best = best.max(edges.len() as f64 / t.elapsed().as_secs_f64());
        }
        best
    };
    let untraced = best_edges_per_s(&Recorder::disabled());
    let traced = best_edges_per_s(&Recorder::enabled());
    assert!(
        traced >= 0.95 * untraced,
        "tracing overhead above budget: {traced:.0} edges/s traced vs {untraced:.0} untraced \
         ({:.1}% slowdown, budget 5%)",
        (1.0 - traced / untraced) * 100.0
    );
}

#[test]
fn malformed_input_reports_line() {
    let path = tmp_file("bad.txt");
    std::fs::write(&path, "4 2\n9 9\n").unwrap();
    let out = run(&["stats", "--input", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
    std::fs::remove_file(&path).ok();
}
