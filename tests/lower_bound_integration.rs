//! Integration of the lower-bound harness with the core estimator:
//! the §5 reduction end-to-end.

use maxkcov::lowerbound::distinguisher::l2_sweep_point;
use maxkcov::lowerbound::{run_one_way_protocol, OracleDistinguisher};
use maxkcov::stream::gen::{dsj_max_cover_instance, DsjKind};
use maxkcov::stream::Edge;

#[test]
fn l2_distinguisher_space_success_tradeoff() {
    // Coarse two-point check of the E4 sweep: generous width works,
    // starved width does not (reliably).
    let (m, alpha, ipp) = (4096usize, 16usize, 128usize);
    let wide = l2_sweep_point(m, alpha, ipp, 5, 16 * m / (alpha * alpha), 8, 5);
    let narrow = l2_sweep_point(m, alpha, ipp, 5, 2, 8, 5);
    assert!(wide.success() >= 0.75, "wide: {wide:?}");
    assert!(wide.success() >= narrow.success(), "no improvement: {wide:?} vs {narrow:?}");
    assert!(wide.space_words > narrow.space_words);
}

#[test]
fn reduction_yes_no_gap_preserved_through_estimator() {
    // Claims 5.3/5.4 seen through the full estimator as a one-way
    // protocol (Corollary 5.2's construction).
    let (m, alpha, ipp) = (1024usize, 32usize, 16usize);
    let mut gaps = Vec::new();
    for seed in 0..3u64 {
        let run_case = |kind: DsjKind| {
            let inst = dsj_max_cover_instance(m, alpha, ipp, kind, seed);
            let mut est = maxkcov::core::MaxCoverEstimator::new(
                alpha,
                m,
                1,
                2.0,
                &maxkcov::core::EstimatorConfig::practical(41 + seed),
            );
            let players: Vec<Vec<Edge>> = inst
                .players
                .iter()
                .enumerate()
                .map(|(i, t)| t.iter().map(|&j| Edge::new(j, i as u32)).collect())
                .collect();
            run_one_way_protocol(&mut est, &players)
        };
        let no = run_case(DsjKind::No);
        let yes = run_case(DsjKind::Yes);
        assert!(
            no.answer > yes.answer,
            "seed {seed}: gap lost (no {} vs yes {})",
            no.answer,
            yes.answer
        );
        assert!(!no.message_words.is_empty());
        gaps.push(no.answer / yes.answer.max(1e-9));
    }
    // The multiplicative gap should be substantial on average.
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(mean_gap > 2.0, "mean gap {mean_gap} too small: {gaps:?}");
}

#[test]
fn oracle_distinguisher_end_to_end() {
    let (m, alpha, ipp) = (2048usize, 64usize, 16usize);
    let no = dsj_max_cover_instance(m, alpha, ipp, DsjKind::No, 9);
    let yes = dsj_max_cover_instance(m, alpha, ipp, DsjKind::Yes, 9);
    let (dn, sn) = OracleDistinguisher::new(m, alpha, 2.0, 1).decide_no_case(&no);
    let (dy, _) = OracleDistinguisher::new(m, alpha, 2.0, 1).decide_no_case(&yes);
    assert!(dn, "No case missed");
    assert!(!dy, "Yes case false positive");
    assert!(sn > 0);
}
