//! Coordinator–worker differential harness (DESIGN.md §11): N worker
//! processes each ingest one contiguous stream shard and serialize
//! their full estimator replica; `merge-from` folds the replica files
//! through the commutative merge. The result must be **bit-identical**
//! to a single-process `--shards N` run — same stdout, same trace
//! events — modulo wall-clock `ns` fields, which are normalized away
//! exactly as in `tests/cli.rs`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_maxkcov")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary should execute")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("maxkcov-dist-{}-{name}", std::process::id()));
    p
}

/// Stdout minus nondeterministic timing lines (`time_ns.*` counters
/// and `*_ns` histograms in the `--metrics` summary).
fn normalized_stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.contains("time_ns.") && !l.contains("_ns"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Trace lines with wall-clock payloads removed: `time_ns.*` counter
/// lines and `*_ns` histogram lines are dropped, and the `ns` field is
/// stripped from every remaining event.
fn normalized_trace(path: &Path) -> Vec<String> {
    use maxkcov::obs::json::Json;
    let text = std::fs::read_to_string(path).expect("trace file");
    let mut out = Vec::new();
    for line in text.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON: {e}\n{line}"));
        let kind = doc.get("kind").and_then(Json::as_str).expect("kind").to_string();
        let str_of = |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_string);
        if kind == "counter" && str_of("key").is_some_and(|k| k.starts_with("time_ns.")) {
            continue;
        }
        if kind == "histogram" && str_of("name").is_some_and(|n| n.ends_with("_ns")) {
            continue;
        }
        let Json::Obj(entries) = doc else { panic!("non-object line: {line}") };
        let kept: Vec<_> = entries.into_iter().filter(|(k, _)| k != "ns").collect();
        out.push(Json::Obj(kept).render());
    }
    out
}

/// Generate a test instance; returns its path.
fn gen_instance(label: &str, kind: &str, seed: &str) -> PathBuf {
    let path = tmp(&format!("{label}-{kind}-{seed}.txt"));
    let out = run(&[
        "gen", "--kind", kind, "--n", "400", "--m", "36", "--k", "5", "--seed", seed,
        "--out", path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    path
}

const K: &str = "5";
const ALPHA: &str = "2.0";
const BATCH: &str = "64";
const HEARTBEAT: &str = "150";

/// One single-process coordinator run with `--shards n`. Always passes
/// `--batch` so the N = 1 case uses the same batched engine (and hence
/// the same heartbeat boundaries) as the workers.
fn coordinator(input: &Path, seed: &str, n_shards: usize, trace: &Path) -> Output {
    let shards = n_shards.to_string();
    let out = run(&[
        "estimate", "--input", input.to_str().unwrap(), "--k", K, "--alpha", ALPHA,
        "--seed", seed, "--batch", BATCH, "--shards", &shards,
        "--heartbeat", HEARTBEAT, "--metrics", "--trace", trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "coordinator failed: {}", String::from_utf8_lossy(&out.stderr));
    out
}

/// Run worker `i` of `n_shards`, writing its replica to the returned
/// path. `extra` appends snapshot/resume/stop-after flags.
fn worker(
    label: &str,
    input: &Path,
    seed: &str,
    n_shards: usize,
    i: usize,
    extra: &[&str],
) -> (Output, PathBuf) {
    let replica = tmp(&format!("{label}-r{i}.bin"));
    let wtrace = tmp(&format!("{label}-w{i}.ndjson"));
    let shards = n_shards.to_string();
    let shard = i.to_string();
    let mut args = vec![
        "worker", "--input", input.to_str().unwrap(), "--k", K, "--alpha", ALPHA,
        "--seed", seed, "--batch", BATCH, "--shards", &shards, "--shard", &shard,
        "--heartbeat", HEARTBEAT, "--trace", wtrace.to_str().unwrap(),
    ];
    let replica_s = replica.to_str().unwrap().to_string();
    args.extend(["--out", &replica_s]);
    args.extend_from_slice(extra);
    (run(&args), replica)
}

fn merge_from(replicas: &[&Path], trace: &Path) -> Output {
    let mut args = vec!["merge-from"];
    for r in replicas {
        args.push(r.to_str().unwrap());
    }
    args.extend(["--metrics", "--trace", trace.to_str().unwrap()]);
    run(&args)
}

/// The headline differential: generators × seeds × worker counts
/// {1, 2, 4, 7}, each N-process pipeline byte-identical to the
/// single-process `--shards N` run.
#[test]
fn n_process_pipeline_matches_single_process_run() {
    for kind in ["zipf", "planted"] {
        for seed in ["3", "11"] {
            let input = gen_instance("diff", kind, seed);
            for n_shards in [1usize, 2, 4, 7] {
                let label = format!("diff-{kind}-{seed}-{n_shards}");
                let ctrace = tmp(&format!("{label}-coord.ndjson"));
                let coord = coordinator(&input, seed, n_shards, &ctrace);

                let replicas: Vec<PathBuf> = (0..n_shards)
                    .map(|i| {
                        let (out, replica) = worker(&label, &input, seed, n_shards, i, &[]);
                        assert!(
                            out.status.success(),
                            "worker {i}/{n_shards} failed: {}",
                            String::from_utf8_lossy(&out.stderr)
                        );
                        replica
                    })
                    .collect();
                let mtrace = tmp(&format!("{label}-merge.ndjson"));
                let refs: Vec<&Path> = replicas.iter().map(PathBuf::as_path).collect();
                let merged = merge_from(&refs, &mtrace);
                assert!(
                    merged.status.success(),
                    "merge-from failed: {}",
                    String::from_utf8_lossy(&merged.stderr)
                );

                assert_eq!(
                    normalized_stdout(&coord),
                    normalized_stdout(&merged),
                    "stdout diverged: {kind} seed {seed} N = {n_shards}"
                );
                assert_eq!(
                    normalized_trace(&ctrace),
                    normalized_trace(&mtrace),
                    "trace diverged: {kind} seed {seed} N = {n_shards}"
                );

                for r in &replicas {
                    std::fs::remove_file(r).ok();
                }
                std::fs::remove_file(&ctrace).ok();
                std::fs::remove_file(&mtrace).ok();
            }
            std::fs::remove_file(&input).ok();
        }
    }
}

/// merge-from sorts replicas by shard id before folding, so the
/// output is byte-identical for *every* ordering of the file list.
#[test]
fn merge_order_permutation_invariance() {
    let input = gen_instance("perm", "zipf", "7");
    let replicas: Vec<PathBuf> = (0..4)
        .map(|i| {
            let (out, replica) = worker("perm", &input, "7", 4, i, &[]);
            assert!(out.status.success());
            replica
        })
        .collect();

    let canonical_trace = tmp("perm-canonical.ndjson");
    let refs: Vec<&Path> = replicas.iter().map(PathBuf::as_path).collect();
    let canonical = merge_from(&refs, &canonical_trace);
    assert!(canonical.status.success());

    for (name, order) in [
        ("reversed", vec![3usize, 2, 1, 0]),
        ("rotated", vec![1, 2, 3, 0]),
        ("interleaved", vec![2, 0, 3, 1]),
    ] {
        let trace = tmp(&format!("perm-{name}.ndjson"));
        let permuted: Vec<&Path> = order.iter().map(|&i| replicas[i].as_path()).collect();
        let out = merge_from(&permuted, &trace);
        assert!(out.status.success(), "{name} order failed");
        assert_eq!(
            normalized_stdout(&canonical),
            normalized_stdout(&out),
            "stdout depends on file order ({name})"
        );
        assert_eq!(
            normalized_trace(&canonical_trace),
            normalized_trace(&trace),
            "trace depends on file order ({name})"
        );
        std::fs::remove_file(&trace).ok();
    }

    for r in &replicas {
        std::fs::remove_file(r).ok();
    }
    std::fs::remove_file(&canonical_trace).ok();
    std::fs::remove_file(&input).ok();
}

/// Kill one worker mid-shard (`--stop-after`, non-zero exit), restart
/// it from its periodic snapshot, and verify the merged output is
/// still bit-identical to the uninterrupted single-process run.
#[test]
fn killed_worker_restarts_from_snapshot_bit_identical() {
    let input = gen_instance("crash", "planted", "13");
    let seed = "13";
    let n_shards = 4;

    let ctrace = tmp("crash-coord.ndjson");
    let coord = coordinator(&input, seed, n_shards, &ctrace);

    // Shards 0, 2, 3 run to completion.
    let mut replicas: Vec<PathBuf> = Vec::new();
    for i in [0usize, 2, 3] {
        let (out, replica) = worker("crash", &input, seed, n_shards, i, &[]);
        assert!(out.status.success());
        replicas.push(replica);
    }

    // Shard 1 crashes mid-chunk: batch 64, snapshot at the first
    // 64-edge boundary, killed at ≥ 65 edges. The final replica must
    // never have been written.
    let snap = tmp("crash-snap.bin");
    let snap_s = snap.to_str().unwrap().to_string();
    let (out, dead_replica) = worker(
        "crash-dead", &input, seed, n_shards, 1,
        &["--snapshot", &snap_s, "--snapshot-every", "64", "--stop-after", "65"],
    );
    assert!(!out.status.success(), "--stop-after must exit non-zero");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("simulated crash"),
        "stderr should explain the stop: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!dead_replica.exists(), "crashed worker must not write its replica");
    assert!(snap.exists(), "periodic snapshot must exist before the crash point");

    // Restart shard 1 from the snapshot; it resumes at the recorded
    // offset without replaying edges (stdout reports the resume point).
    let (out, replica1) = worker("crash-resume", &input, seed, n_shards, 1, &["--resume", &snap_s]);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("(resumed at 64)"),
        "worker should resume at the snapshot offset: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    replicas.push(replica1);

    let mtrace = tmp("crash-merge.ndjson");
    let refs: Vec<&Path> = replicas.iter().map(PathBuf::as_path).collect();
    let merged = merge_from(&refs, &mtrace);
    assert!(merged.status.success(), "{}", String::from_utf8_lossy(&merged.stderr));

    assert_eq!(normalized_stdout(&coord), normalized_stdout(&merged));
    assert_eq!(normalized_trace(&ctrace), normalized_trace(&mtrace));

    for r in &replicas {
        std::fs::remove_file(r).ok();
    }
    for p in [&ctrace, &mtrace, &snap, &input] {
        std::fs::remove_file(p).ok();
    }
}

/// Decoded `KCOVWIRE` replicas carry the exact space ledger: every
/// decoded worker state attributes each resident word, the wire v3
/// telemetry sidecars restore nonzero heat, and folding the decoded
/// replicas keeps the word sum exact while adding the heat counters.
#[test]
fn decoded_replicas_preserve_ledger_words_and_heat() {
    use maxkcov::core::MaxCoverEstimator;
    use maxkcov::sketch::{SpaceUsage, WireEncode};
    let input = gen_instance("ledger", "planted", "17");
    let n_shards = 3;
    let replicas: Vec<PathBuf> = (0..n_shards)
        .map(|i| {
            let (out, replica) = worker("ledger", &input, "17", n_shards, i, &[]);
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
            replica
        })
        .collect();
    let mut decoded: Vec<MaxCoverEstimator> = replicas
        .iter()
        .map(|r| {
            let bytes = std::fs::read(r).expect("replica bytes");
            MaxCoverEstimator::from_bytes(&bytes).expect("decode replica")
        })
        .collect();

    let mut updates = 0u64;
    let mut touched = 0u64;
    for (i, est) in decoded.iter().enumerate() {
        let ledger = est.space_ledger_tree();
        assert!(ledger.audit().is_empty(), "worker {i}: {:?}", ledger.audit());
        assert_eq!(
            ledger.total_words(),
            est.space_words() as u64,
            "worker {i}: decoded replica must attribute every resident word"
        );
        assert!(
            ledger.root.total_updates() > 0,
            "worker {i}: heat must survive the wire round trip"
        );
        updates += ledger.root.total_updates();
        touched += ledger.root.total_touched_words();
    }

    let mut merged = decoded.remove(0);
    for r in &decoded {
        merged.merge(r);
    }
    let ledger = merged.space_ledger_tree();
    assert!(ledger.audit().is_empty());
    assert_eq!(ledger.total_words(), merged.space_words() as u64);
    assert_eq!(ledger.root.total_updates(), updates, "heat adds across decoded workers");
    assert_eq!(ledger.root.total_touched_words(), touched);

    for r in &replicas {
        std::fs::remove_file(r).ok();
    }
    std::fs::remove_file(&input).ok();
}

/// Truncations and corruptions of a replica file must be rejected with
/// a clean decode error — never a panic (exit 101), never a success.
#[test]
fn corrupted_and_truncated_replicas_are_rejected() {
    let input = gen_instance("fuzz", "zipf", "5");
    let (out, replica) = worker("fuzz", &input, "5", 2, 0, &[]);
    assert!(out.status.success());
    let bytes = std::fs::read(&replica).expect("replica bytes");
    assert!(bytes.len() > 512, "replica unexpectedly small: {}", bytes.len());

    let mangled = tmp("fuzz-mangled.bin");
    let mangled_s = mangled.to_str().unwrap();

    // Truncation sweep: dense over the header + shape/state section
    // openings (every new wire section starts in this prefix), then
    // sampled through the body, plus the final byte.
    let mut cuts: Vec<usize> = (0..256.min(bytes.len())).collect();
    cuts.extend((256..bytes.len()).step_by(bytes.len() / 64 + 1));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        std::fs::write(&mangled, &bytes[..cut]).unwrap();
        let out = run(&["merge-from", mangled_s]);
        assert!(
            !out.status.success(),
            "truncation to {cut} bytes was accepted"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "truncation to {cut} crashed: {stderr}");
        assert!(!stderr.contains("panicked"), "truncation to {cut} panicked: {stderr}");
        assert!(stderr.contains("decode"), "no decode error for cut {cut}: {stderr}");
    }

    // Single-byte-flip sweep: dense over the framing prefix, sampled
    // through the body. A flip may land in a telemetry counter and
    // decode successfully — but it must never panic.
    let mut flips: Vec<usize> = (0..128.min(bytes.len())).collect();
    flips.extend((128..bytes.len()).step_by(bytes.len() / 64 + 1));
    for flip in flips {
        let mut corrupted = bytes.clone();
        corrupted[flip] ^= 0xa5;
        std::fs::write(&mangled, &corrupted).unwrap();
        let out = run(&["merge-from", mangled_s]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_ne!(out.status.code(), Some(101), "flip at {flip} panicked: {stderr}");
        assert!(!stderr.contains("panicked"), "flip at {flip} panicked: {stderr}");
    }

    std::fs::remove_file(&mangled).ok();
    std::fs::remove_file(&replica).ok();
    std::fs::remove_file(&input).ok();
}

/// Worker flag validation: out-of-range shard, orphaned
/// `--snapshot-every`, and resuming a snapshot into the wrong shard
/// all fail fast with a clear error.
#[test]
fn worker_flag_and_resume_validation() {
    let input = gen_instance("val", "zipf", "9");
    let input_s = input.to_str().unwrap();

    let out = run(&[
        "worker", "--input", input_s, "--k", K, "--alpha", ALPHA, "--shards", "2",
        "--shard", "2", "--out", "/dev/null",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    let out = run(&[
        "worker", "--input", input_s, "--k", K, "--alpha", ALPHA, "--shards", "2",
        "--shard", "0", "--out", "/dev/null", "--snapshot-every", "10",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--snapshot"));

    // A finished replica doubles as a snapshot — but only for its own
    // shard.
    let (out, replica) = worker("val", &input, "9", 2, 0, &[]);
    assert!(out.status.success());
    let replica_s = replica.to_str().unwrap().to_string();
    let (out, _) = worker("val-wrong", &input, "9", 2, 1, &["--resume", &replica_s]);
    assert!(!out.status.success(), "resuming shard 0's snapshot as shard 1 must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("belongs to shard"));

    std::fs::remove_file(&replica).ok();
    std::fs::remove_file(&input).ok();
}
