//! Randomized stress: many instance shapes × seeds through the full
//! estimator, asserting the global invariants that must never break —
//! no panics, soundness against a greedy-derived upper bound, space
//! accounting sanity, and reporting validity.

use maxkcov::baselines::greedy_max_cover;
use maxkcov::core::{EstimatorConfig, MaxCoverReporter};
use maxkcov::hash::SplitMix64;
use maxkcov::sketch::SpaceUsage;
use maxkcov::stream::gen::{
    community_sets, rmat_incidence, uniform_incidence, zipf_popularity, RmatParams,
};
use maxkcov::stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(1);
    config
}

fn shape_zoo(seed: u64) -> Vec<SetSystem> {
    vec![
        uniform_incidence(500 + (seed % 7) as usize * 100, 60, 0.05, seed),
        zipf_popularity(400, 80, 12, 1.1, seed),
        community_sets(600, 70, 5, 30, 3, seed),
        rmat_incidence(512, 128, 3_000, RmatParams::default(), seed),
        // Degenerate shapes.
        SetSystem::new(100, vec![vec![]; 20]),
        SetSystem::new(64, vec![(0..64).collect::<Vec<u32>>(); 5]),
    ]
}

#[test]
fn estimator_invariants_across_shape_zoo() {
    let mut rng = SplitMix64::new(0xdead);
    for seed in 0..4u64 {
        for (idx, system) in shape_zoo(seed).into_iter().enumerate() {
            let n = system.num_elements();
            let m = system.num_sets();
            let k = 1 + (rng.next_below(8) as usize).min(m.saturating_sub(1));
            let alpha = [2.0, 4.0, 7.0][(rng.next_below(3)) as usize];
            let config = fast_config(seed * 31 + idx as u64, n);
            let mut rep = MaxCoverReporter::new(n, m, k, alpha, &config);
            for e in edge_stream(&system, ArrivalOrder::Shuffled(seed)) {
                rep.observe(e);
            }
            let cover = rep.finalize();

            // Soundness vs greedy-derived OPT upper bound.
            let g = greedy_max_cover(&system, k).coverage as f64;
            let opt_ub = g / (1.0 - 1.0 / std::f64::consts::E);
            assert!(
                cover.estimate <= opt_ub * 1.25 + 4.0,
                "zoo[{idx}] seed {seed} k={k} alpha={alpha}: estimate {} > OPT ≤ {opt_ub}",
                cover.estimate
            );

            // Reporting validity.
            assert!(cover.sets.len() <= k);
            assert!(cover.sets.iter().all(|&s| (s as usize) < m));
            let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
            let _ = coverage_of(&system, &chosen); // must not panic

            // Space accounting is positive and finite.
            assert!(rep.space_words() < 100_000_000);
        }
    }
}

/// A large RMAT instance through the batched ingestion path: the final
/// state (estimate, winner, space) must be bit-identical to serial
/// per-edge ingestion, and the batch engine must not inflate space.
#[test]
fn batched_rmat_matches_serial_and_space_no_regression() {
    let system = rmat_incidence(4096, 512, 60_000, RmatParams::default(), 0xA11);
    let n = system.num_elements();
    let m = system.num_sets();
    let k = 8;
    let alpha = 3.0;
    let config = fast_config(0xA11, n);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(7));

    // Serial per-edge reference.
    let mut serial = maxkcov::core::MaxCoverEstimator::new(n, m, k, alpha, &config);
    for &e in &edges {
        serial.observe(e);
    }
    let serial_space = serial.space_words();
    let serial_out = serial.finalize();

    for threads in [1usize, 2, 4] {
        for batch in [1usize, 64, 4096] {
            let config = config.clone().with_threads(threads);
            let mut est = maxkcov::core::MaxCoverEstimator::new(n, m, k, alpha, &config);
            for chunk in edges.chunks(batch) {
                est.observe_batch(chunk);
            }
            assert_eq!(
                est.space_words(),
                serial_space,
                "threads={threads} batch={batch}: batched path changed space"
            );
            let out = est.finalize();
            assert_eq!(
                serial_out.estimate.to_bits(),
                out.estimate.to_bits(),
                "threads={threads} batch={batch}: estimate diverged"
            );
            assert_eq!(serial_out.winning_z, out.winning_z, "threads={threads} batch={batch}");
            assert_eq!(serial_out.winner, out.winner, "threads={threads} batch={batch}");
        }
    }
}

/// Smoke test at the machine's maximum parallelism: oversubscribing
/// threads beyond the lane count must clamp gracefully and still agree
/// with the serial result.
#[test]
fn batched_smoke_at_max_threads() {
    let max_threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let system = rmat_incidence(1024, 128, 12_000, RmatParams::default(), 0x5A0);
    let n = system.num_elements();
    let m = system.num_sets();
    let edges = edge_stream(&system, ArrivalOrder::RoundRobin);
    let config = fast_config(9, n);

    let serial = maxkcov::core::MaxCoverEstimator::run(n, m, 4, 2.5, &config, &edges);
    let wide = maxkcov::core::MaxCoverEstimator::run_batched(
        n,
        m,
        4,
        2.5,
        &config.clone().with_threads(max_threads * 2),
        &edges,
        1024,
    );
    assert_eq!(serial.estimate.to_bits(), wide.estimate.to_bits());
    assert_eq!(serial.winning_z, wide.winning_z);
    assert_eq!(serial.space_words, wide.space_words);
}

#[test]
fn empty_and_singleton_streams() {
    for (n, m, k) in [(1usize, 1usize, 1usize), (2, 1, 1), (10, 3, 2)] {
        let config = fast_config(1, n);
        let rep = MaxCoverReporter::new(n, m, k, 1.5, &config);
        // No edges at all.
        let cover = rep.finalize();
        assert!(cover.estimate >= 0.0);
        // One edge.
        let mut rep = MaxCoverReporter::new(n, m, k, 1.5, &config);
        rep.observe(maxkcov::stream::Edge::new(0, 0));
        let cover = rep.finalize();
        assert!(cover.estimate <= n as f64 + 1.0);
    }
}
