//! The literal Table 2 constants (`ParamMode::Paper`) must at least be
//! runnable and sound: at laptop scale the sampling rates are so
//! conservative that most subroutines see nothing — that is the
//! documented reason for the Practical mode — but nothing may panic,
//! overestimate, or leak unbounded space.

use kcov_core::{EstimatorConfig, MaxCoverEstimator, ParamMode, Params};
use kcov_sketch::SpaceUsage;
use kcov_stream::gen::planted_cover;
use kcov_stream::{edge_stream, ArrivalOrder};

#[test]
fn paper_constants_resolve_to_finite_values() {
    for (m, n, k, alpha) in [
        (100usize, 100usize, 5usize, 2.0f64),
        (10_000, 10_000, 100, 16.0),
        (1_000_000, 1_000_000, 1000, 512.0),
    ] {
        let p = Params::paper(m, n, k, alpha);
        assert!(p.s_alpha.is_finite() && p.s_alpha > 0.0);
        assert!(p.f.is_finite() && p.f > 0.0);
        assert!(p.sigma.is_finite() && p.sigma > 0.0);
        assert!(p.large_set_sample.is_finite() && p.large_set_sample >= 0.0);
        assert!(p.phi1() > 0.0 && p.phi1() <= 1.0);
        assert!(p.phi2() > 0.0 && p.phi2() <= 1.0);
        assert!(p.num_supersets(p.large_set_w()) >= 1);
    }
}

#[test]
fn paper_mode_estimator_runs_and_stays_sound() {
    let inst = planted_cover(600, 100, 8, 0.8, 20, 3);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
    let mut config = EstimatorConfig::practical(7);
    config.mode = ParamMode::Paper;
    config.z_guesses = Some(vec![128, 512]);
    config.reps = Some(1);
    let mut est = MaxCoverEstimator::new(600, 100, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();
    // Soundness must hold even when the conservative constants make the
    // estimate small or zero.
    assert!(
        out.estimate <= inst.planted_coverage as f64 * 1.1,
        "paper-mode overestimate: {}",
        out.estimate
    );
    assert!(est.space_words() > 0);
}

#[test]
fn paper_mode_space_still_scales_with_m_over_alpha_squared() {
    // Even with the literal constants, the functional form must hold.
    // m is chosen large enough that phi1 does not clamp at 1 (the paper
    // mode's w/(sα) dampening is itself a large polylog at small m).
    let small_alpha = Params::paper(100_000_000, 50_000, 500, 8.0);
    let large_alpha = Params::paper(100_000_000, 50_000, 500, 32.0);
    assert!(large_alpha.phi1() < 1.0, "phi1 clamped; m too small for the test");
    let ratio = small_alpha.phi1() / large_alpha.phi1();
    // phi1 ∝ alpha² (modulo the slowly-varying log(sα) factor).
    assert!(
        ratio > 1.0 / 20.0 && ratio < 1.0 / 10.0,
        "phi1 ratio {ratio} not ~1/16"
    );
}
