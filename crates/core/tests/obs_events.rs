//! Contract suite for the observability layer: enabling a recorder
//! must never change an estimate (bit-for-bit), and the emitted events
//! must account exactly — per-lane edge counts match the stream
//! length, per-subroutine `space_words` snapshots sum to the reported
//! total, shard timings cover every shard, and the phase spans cover
//! ingest/merge/finalize.

use kcov_core::{EstimatorConfig, MaxCoverEstimator};
use kcov_obs::Recorder;
use kcov_sketch::SpaceUsage;
use kcov_stream::gen::planted_cover;
use kcov_stream::{edge_stream, ArrivalOrder, Edge};

fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(2);
    config
}

fn workload() -> (usize, usize, Vec<Edge>) {
    let inst = planted_cover(1_500, 150, 8, 0.8, 30, 5);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
    (inst.system.num_elements(), inst.system.num_sets(), edges)
}

#[test]
fn recorder_never_changes_the_estimate() {
    let (n, m, edges) = workload();
    let plain = fast_config(3, n);
    let mut traced = fast_config(3, n);
    traced.recorder = Recorder::enabled();
    let a = MaxCoverEstimator::run(n, m, 8, 4.0, &plain, &edges);
    let b = MaxCoverEstimator::run(n, m, 8, 4.0, &traced, &edges);
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    assert_eq!(a.winning_z, b.winning_z);
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.space_words, b.space_words);
    // Same for the sharded path.
    let plain = plain.with_shards(3);
    let mut traced = fast_config(3, n).with_shards(3);
    traced.recorder = Recorder::enabled();
    let a = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &plain, &edges, 64);
    let b = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &traced, &edges, 64);
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
}

#[test]
fn lane_events_account_for_every_edge() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(7, n);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();

    let lanes = rec.events_of("lane");
    assert_eq!(lanes.len(), est.num_lanes(), "one lane event per (z, rep) lane");
    for ev in &lanes {
        // Every lane consumes every edge of the stream.
        assert_eq!(ev.u64_field("edges").unwrap(), edges.len() as u64);
        assert!(ev.str_field("winner").is_some());
        assert!(ev.field("qualifying").is_some());
    }
    assert_eq!(est.edges_seen(), edges.len() as u64);

    let summary = &rec.events_of("summary")[0];
    assert_eq!(summary.u64_field("edges").unwrap(), edges.len() as u64);
    assert_eq!(
        summary.f64_field("estimate").unwrap().to_bits(),
        out.estimate.to_bits()
    );
}

#[test]
fn subroutine_space_snapshots_sum_to_the_total() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(11, n);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    est.finalize();

    let sub_sum: u64 = rec
        .events_of("subroutine")
        .iter()
        .map(|e| e.u64_field("space_words").unwrap())
        .sum();
    assert_eq!(
        sub_sum,
        est.space_words() as u64,
        "per-subroutine snapshots must sum exactly to the estimator total"
    );
    // The per-lane space fields also partition the total.
    let lane_sum: u64 = rec
        .events_of("lane")
        .iter()
        .map(|e| e.u64_field("space_words").unwrap())
        .sum();
    assert_eq!(lane_sum, est.space_words() as u64);
}

#[test]
fn shard_events_cover_the_stream_and_merge_is_timed() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(13, n).with_shards(4);
    config.recorder = rec.clone();
    MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &config, &edges, 64);

    let shards = rec.events_of("shard");
    assert_eq!(shards.len(), 4, "one shard event per replica");
    let edge_sum: u64 = shards.iter().map(|e| e.u64_field("edges").unwrap()).sum();
    assert_eq!(edge_sum, edges.len() as u64, "shard edge counts partition the stream");

    let phases: Vec<String> = rec
        .events_of("phase")
        .iter()
        .map(|e| e.str_field("phase").unwrap().to_string())
        .collect();
    assert!(phases.contains(&"ingest".to_string()));
    assert!(phases.contains(&"merge".to_string()));
    assert!(phases.contains(&"finalize".to_string()));
}

#[test]
fn disabled_recorder_emits_nothing() {
    let (n, m, edges) = workload();
    let config = fast_config(17, n);
    assert!(!config.recorder.is_enabled());
    MaxCoverEstimator::run(n, m, 8, 4.0, &config, &edges);
    assert!(config.recorder.events().is_empty());
    assert!(config.recorder.counters().is_empty());
    let mut buf = Vec::new();
    config.recorder.write_ndjson(&mut buf).unwrap();
    assert!(buf.is_empty(), "the disabled recorder writes no NDJSON");
}

#[test]
fn trivial_regime_snapshot_accounts_exactly() {
    // k·α ≥ m → the trivial branch; its single subroutine snapshot is
    // the whole space.
    let inst = planted_cover(300, 12, 8, 0.8, 20, 9);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
    let rec = Recorder::enabled();
    let mut config = EstimatorConfig::practical(19);
    config.recorder = rec.clone();
    let (n, m) = (inst.system.num_elements(), inst.system.num_sets());
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();
    assert!(out.trivial);
    let subs = rec.events_of("subroutine");
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].str_field("name").unwrap(), "trivial");
    assert_eq!(subs[0].u64_field("space_words").unwrap(), est.space_words() as u64);
    assert!(rec.events_of("lane").is_empty(), "no lanes run in the trivial regime");
}
