//! Contract suite for the observability layer: enabling a recorder
//! must never change an estimate (bit-for-bit), and the emitted events
//! must account exactly — per-lane edge counts match the stream
//! length, per-subroutine `space_words` snapshots sum to the reported
//! total, shard timings cover every shard, and the phase spans cover
//! ingest/merge/finalize.

use kcov_core::{EstimatorConfig, MaxCoverEstimator};
use kcov_obs::Recorder;
use kcov_sketch::SpaceUsage;
use kcov_stream::gen::planted_cover;
use kcov_stream::{edge_stream, ArrivalOrder, Edge};

fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
    let mut config = EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(2);
    config
}

fn workload() -> (usize, usize, Vec<Edge>) {
    let inst = planted_cover(1_500, 150, 8, 0.8, 30, 5);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
    (inst.system.num_elements(), inst.system.num_sets(), edges)
}

#[test]
fn recorder_never_changes_the_estimate() {
    let (n, m, edges) = workload();
    let plain = fast_config(3, n);
    let mut traced = fast_config(3, n);
    traced.recorder = Recorder::enabled();
    let a = MaxCoverEstimator::run(n, m, 8, 4.0, &plain, &edges);
    let b = MaxCoverEstimator::run(n, m, 8, 4.0, &traced, &edges);
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    assert_eq!(a.winning_z, b.winning_z);
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.space_words, b.space_words);
    // Same for the sharded path.
    let plain = plain.with_shards(3);
    let mut traced = fast_config(3, n).with_shards(3);
    traced.recorder = Recorder::enabled();
    let a = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &plain, &edges, 64);
    let b = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &traced, &edges, 64);
    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
}

#[test]
fn lane_events_account_for_every_edge() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(7, n);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();

    let lanes = rec.events_of("lane");
    assert_eq!(lanes.len(), est.num_lanes(), "one lane event per (z, rep) lane");
    for ev in &lanes {
        // Every lane consumes every edge of the stream.
        assert_eq!(ev.u64_field("edges").unwrap(), edges.len() as u64);
        assert!(ev.str_field("winner").is_some());
        assert!(ev.field("qualifying").is_some());
    }
    assert_eq!(est.edges_seen(), edges.len() as u64);

    let summary = &rec.events_of("summary")[0];
    assert_eq!(summary.u64_field("edges").unwrap(), edges.len() as u64);
    assert_eq!(
        summary.f64_field("estimate").unwrap().to_bits(),
        out.estimate.to_bits()
    );
}

#[test]
fn subroutine_space_snapshots_sum_to_the_total() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(11, n);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    est.finalize();

    let sub_sum: u64 = rec
        .events_of("subroutine")
        .iter()
        .map(|e| e.u64_field("space_words").unwrap())
        .sum();
    assert_eq!(
        sub_sum,
        est.space_words() as u64,
        "per-subroutine snapshots must sum exactly to the estimator total"
    );
    // The per-lane space fields partition the total minus the
    // estimator-global shared state: the hash-once front end (the
    // "fingerprints" subroutine event) and the lane-invariant universe
    // mix (the "universe" event), which belong to no lane.
    let lane_sum: u64 = rec
        .events_of("lane")
        .iter()
        .map(|e| e.u64_field("space_words").unwrap())
        .sum();
    let global_words = |name: &str| -> u64 {
        rec.events_of("subroutine")
            .iter()
            .filter(|e| e.str_field("name") == Some(name))
            .map(|e| e.u64_field("space_words").unwrap())
            .sum()
    };
    let fps_words = global_words("fingerprints");
    let umix_words = global_words("universe");
    assert!(fps_words > 0, "hash-once front end must be accounted");
    assert!(umix_words > 0, "shared universe mix must be accounted");
    assert_eq!(lane_sum + fps_words + umix_words, est.space_words() as u64);
}

#[test]
fn shard_events_cover_the_stream_and_merge_is_timed() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(13, n).with_shards(4);
    config.recorder = rec.clone();
    MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &config, &edges, 64);

    let shards = rec.events_of("shard");
    assert_eq!(shards.len(), 4, "one shard event per replica");
    let edge_sum: u64 = shards.iter().map(|e| e.u64_field("edges").unwrap()).sum();
    assert_eq!(edge_sum, edges.len() as u64, "shard edge counts partition the stream");

    let phases: Vec<String> = rec
        .events_of("phase")
        .iter()
        .map(|e| e.str_field("phase").unwrap().to_string())
        .collect();
    assert!(phases.contains(&"ingest".to_string()));
    assert!(phases.contains(&"merge".to_string()));
    assert!(phases.contains(&"finalize".to_string()));
}

#[test]
fn disabled_recorder_emits_nothing() {
    let (n, m, edges) = workload();
    let config = fast_config(17, n);
    assert!(!config.recorder.is_enabled());
    MaxCoverEstimator::run(n, m, 8, 4.0, &config, &edges);
    assert!(config.recorder.events().is_empty());
    assert!(config.recorder.counters().is_empty());
    let mut buf = Vec::new();
    config.recorder.write_ndjson(&mut buf).unwrap();
    assert!(buf.is_empty(), "the disabled recorder writes no NDJSON");
}

#[test]
fn heartbeats_fire_on_edge_count_cadence() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(23, n).with_heartbeat(500);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    est.finalize();

    let beats = rec.events_of("heartbeat");
    assert!(!beats.is_empty(), "expected heartbeats on a {}-edge stream", edges.len());
    // Per-edge ingestion captures at exact multiples of the cadence,
    // one event per lane per snapshot.
    let expected_snaps = edges.len() as u64 / 500;
    assert_eq!(beats.len() as u64, expected_snaps * est.num_lanes() as u64);
    for b in &beats {
        assert_eq!(b.u64_field("at_edges").unwrap() % 500, 0);
        assert_eq!(b.str_field("stage"), Some("estimate"));
        assert_eq!(b.u64_field("shard"), Some(0));
        assert!(b.field("lc_fill").is_some());
        assert!(b.field("space_words").is_some());
    }
    // Fill trajectories are non-decreasing per lane in this workload's
    // early phase — at minimum the last snapshot's space must be
    // positive and lane ids must cycle 0..num_lanes.
    let lanes: Vec<u64> = beats.iter().map(|b| b.u64_field("lane").unwrap()).collect();
    for (i, &l) in lanes.iter().enumerate() {
        assert_eq!(l, i as u64 % est.num_lanes() as u64, "lane order within each beat");
    }
    // The per-heartbeat delta histograms rode along.
    let hists = rec.events_of("histogram");
    assert!(hists
        .iter()
        .any(|h| h.str_field("name") == Some("ingest.fill_delta")));
}

#[test]
fn heartbeats_are_bit_neutral_across_seeds_shards_threads() {
    let (n, m, edges) = workload();
    for seed in [3u64, 29] {
        for (shards, threads) in [(1usize, 1usize), (1, 4), (3, 2)] {
            let plain = fast_config(seed, n).with_shards(shards).with_threads(threads);
            let mut beating = plain.clone().with_heartbeat(300);
            beating.recorder = Recorder::enabled();
            let a = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &plain, &edges, 128);
            let b = MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &beating, &edges, 128);
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "seed {seed} shards {shards} threads {threads}"
            );
            assert_eq!(a.winning_z, b.winning_z);
            assert_eq!(a.winner, b.winner);
            assert_eq!(a.space_words, b.space_words);
        }
    }
}

#[test]
fn sharded_heartbeats_are_sorted_and_deterministic() {
    let (n, m, edges) = workload();
    let run = || {
        let rec = Recorder::enabled();
        let mut config = fast_config(31, n).with_shards(3).with_heartbeat(400);
        config.recorder = rec.clone();
        MaxCoverEstimator::run_sharded(n, m, 8, 4.0, &config, &edges, 128);
        rec.events_of("heartbeat")
    };
    let beats = run();
    assert!(!beats.is_empty());
    // Emission order is sorted by (shard, at_edges, lane) regardless of
    // worker scheduling.
    let keys: Vec<(u64, u64, u64)> = beats
        .iter()
        .map(|b| {
            (
                b.u64_field("shard").unwrap(),
                b.u64_field("at_edges").unwrap(),
                b.u64_field("lane").unwrap(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "heartbeats must emit in deterministic order");
    assert!(keys.iter().any(|k| k.0 > 0), "replica shards must contribute beats");
    // And the full heartbeat payload is identical across two runs —
    // modulo the trailing `ns` field, the cumulative lane wall clock,
    // which like every field named exactly `ns` is a wall-clock
    // payload excluded from determinism comparisons (DESIGN.md §10).
    let strip_ns = |line: String| match line.rfind(",\"ns\":") {
        Some(i) => format!("{}}}", &line[..i]),
        None => line,
    };
    let again = run();
    let lines: Vec<String> = beats.iter().map(|b| strip_ns(b.to_json_line())).collect();
    let lines2: Vec<String> = again.iter().map(|b| strip_ns(b.to_json_line())).collect();
    assert_eq!(lines, lines2, "heartbeat events must be byte-identical across runs");
}

#[test]
fn heartbeat_without_recorder_captures_nothing() {
    let (n, m, edges) = workload();
    let config = fast_config(37, n).with_heartbeat(100);
    assert!(!config.recorder.is_enabled());
    // No sink → no capture; outputs still match a heartbeat-free run.
    let out = MaxCoverEstimator::run(n, m, 8, 4.0, &config, &edges);
    let base = MaxCoverEstimator::run(n, m, 8, 4.0, &fast_config(37, n), &edges);
    assert_eq!(out.estimate.to_bits(), base.estimate.to_bits());
}

#[test]
fn two_pass_heartbeats_tag_both_stages() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(41, n).with_heartbeat(400);
    config.recorder = rec.clone();
    let cover = kcov_core::run_two_pass(n, m, 8, 4.0, &config, &edges);
    // Heartbeat neutrality on the reported cover too.
    let plain = fast_config(41, n);
    let base = kcov_core::run_two_pass(n, m, 8, 4.0, &plain, &edges);
    assert_eq!(cover.sets, base.sets);
    assert_eq!(cover.estimate.to_bits(), base.estimate.to_bits());
    let stages: std::collections::BTreeSet<String> = rec
        .events_of("heartbeat")
        .iter()
        .map(|b| b.str_field("stage").unwrap().to_string())
        .collect();
    assert!(stages.contains("estimate"), "pass-1 heartbeats present: {stages:?}");
    assert!(stages.contains("pass2"), "pass-2 heartbeats present: {stages:?}");
}

#[test]
fn batched_ingestion_records_batch_histograms() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(43, n);
    config.recorder = rec.clone();
    let batched = MaxCoverEstimator::run_batched(n, m, 8, 4.0, &config, &edges, 256);
    let serial = MaxCoverEstimator::run(n, m, 8, 4.0, &fast_config(43, n), &edges);
    assert_eq!(batched.estimate.to_bits(), serial.estimate.to_bits());
    let hists = rec.events_of("histogram");
    let batch_hist = hists
        .iter()
        .find(|h| h.str_field("name") == Some("ingest.batch_edges"))
        .expect("batch-size histogram present");
    assert_eq!(
        batch_hist.u64_field("sum").unwrap(),
        edges.len() as u64,
        "batch sizes sum to the stream length"
    );
    assert_eq!(
        batch_hist.u64_field("count").unwrap(),
        edges.len().div_ceil(256) as u64
    );
    assert!(hists
        .iter()
        .any(|h| h.str_field("name") == Some("ingest.batch_ns")));
}

/// Words attributed to a ledger path, from the emitted "ledger" events.
fn ledger_words(events: &[kcov_obs::Event], path: &str) -> Option<u64> {
    events
        .iter()
        .find(|e| e.str_field("path") == Some(path))
        .map(|e| e.u64_field("words").unwrap())
}

#[test]
fn ledger_rows_attribute_every_word_exactly() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(47, n);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    est.finalize();

    let rows = rec.events_of("ledger");
    assert!(!rows.is_empty(), "finalize must emit the space ledger");
    // The root row (the only path without a separator) is the whole
    // estimator.
    let root = rows
        .iter()
        .find(|e| !e.str_field("path").unwrap().contains('/'))
        .expect("root ledger row");
    assert_eq!(root.str_field("path"), Some("estimator"));
    assert_eq!(root.u64_field("words").unwrap(), est.space_words() as u64);
    // Attribution lives on leaves only: leaf words partition the total.
    let leaf_sum: u64 = rows
        .iter()
        .filter(|e| e.u64_field("children") == Some(0))
        .map(|e| e.u64_field("words").unwrap())
        .sum();
    assert_eq!(leaf_sum, est.space_words() as u64, "leaves must partition the total");
    // Every interior row equals the sum of its immediate children —
    // for words and for both heat counters.
    for parent in rows.iter().filter(|e| e.u64_field("children") != Some(0)) {
        let p = parent.str_field("path").unwrap();
        let depth = p.matches('/').count();
        let kids: Vec<_> = rows
            .iter()
            .filter(|e| {
                let q = e.str_field("path").unwrap();
                q.starts_with(&format!("{p}/")) && q.matches('/').count() == depth + 1
            })
            .collect();
        assert_eq!(kids.len() as u64, parent.u64_field("children").unwrap(), "{p}");
        for field in ["words", "updates", "touched_words"] {
            let sum: u64 = kids.iter().map(|e| e.u64_field(field).unwrap()).sum();
            assert_eq!(sum, parent.u64_field(field).unwrap(), "{p}: {field}");
        }
    }
    // The heat layer saw the stream: some component recorded updates.
    assert!(root.u64_field("updates").unwrap() > 0, "heat counters must be harvested");
    assert!(root.u64_field("touched_words").unwrap() > 0);
}

#[test]
fn ledger_subtrees_match_subroutine_snapshots() {
    let (n, m, edges) = workload();
    let rec = Recorder::enabled();
    let mut config = fast_config(53, n);
    config.recorder = rec.clone();
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    est.finalize();

    let rows = rec.events_of("ledger");
    // Every PR-3 subroutine snapshot has a ledger subtree with exactly
    // the same word count: the two accountings agree leaf-for-leaf.
    let subs = rec.events_of("subroutine");
    assert!(!subs.is_empty());
    for ev in &subs {
        let name = ev.str_field("name").unwrap();
        let lane = ev.u64_field("lane").unwrap();
        let path = if name == "trivial" || name == "fingerprints" || name == "universe" {
            format!("estimator/{name}")
        } else {
            format!("estimator/lane{lane}/{name}")
        };
        assert_eq!(
            ledger_words(&rows, &path),
            Some(ev.u64_field("space_words").unwrap()),
            "subroutine snapshot vs ledger subtree at {path}"
        );
    }
    // And per-lane subtrees match the lane events' space fields.
    for ev in rec.events_of("lane") {
        let lane = ev.u64_field("lane").unwrap();
        assert_eq!(
            ledger_words(&rows, &format!("estimator/lane{lane}")),
            Some(ev.u64_field("space_words").unwrap()),
            "lane {lane} subtree"
        );
    }
}

#[test]
fn trivial_regime_ledger_covers_the_whole_estimator() {
    let inst = planted_cover(300, 12, 8, 0.8, 20, 9);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
    let rec = Recorder::enabled();
    let mut config = EstimatorConfig::practical(19);
    config.recorder = rec.clone();
    let (n, m) = (inst.system.num_elements(), inst.system.num_sets());
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();
    assert!(out.trivial);
    let rows = rec.events_of("ledger");
    assert_eq!(
        ledger_words(&rows, "estimator/trivial"),
        Some(est.space_words() as u64),
        "the trivial branch owns every resident word"
    );
    assert_eq!(ledger_words(&rows, "estimator"), Some(est.space_words() as u64));
    // The per-group L0 sketches saw every edge.
    let trivial = rows
        .iter()
        .find(|e| e.str_field("path") == Some("estimator/trivial"))
        .unwrap();
    assert!(trivial.u64_field("updates").unwrap() > 0);
}

#[test]
fn trivial_regime_snapshot_accounts_exactly() {
    // k·α ≥ m → the trivial branch; its single subroutine snapshot is
    // the whole space.
    let inst = planted_cover(300, 12, 8, 0.8, 20, 9);
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
    let rec = Recorder::enabled();
    let mut config = EstimatorConfig::practical(19);
    config.recorder = rec.clone();
    let (n, m) = (inst.system.num_elements(), inst.system.num_sets());
    let mut est = MaxCoverEstimator::new(n, m, 8, 4.0, &config);
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();
    assert!(out.trivial);
    let subs = rec.events_of("subroutine");
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].str_field("name").unwrap(), "trivial");
    assert_eq!(subs[0].u64_field("space_words").unwrap(), est.space_words() as u64);
    assert!(rec.events_of("lane").is_empty(), "no lanes run in the trivial regime");
}
