//! The `(α, δ, η)`-oracle contract (Definition 3.4) as executable
//! properties over random and structured instances:
//!
//! 1. **Soundness** — the oracle's output never (meaningfully) exceeds
//!    the optimal coverage.
//! 2. **Conditional usefulness** — when the optimum covers ≥ `|U|/η`,
//!    the output is at least `|C(OPT)|/Õ(α)`.
//! 3. **Witness validity** — any witness expands to real set indices
//!    whose true coverage backs a constant fraction of the estimate.

use kcov_baselines::greedy_max_cover;
use kcov_core::{Oracle, Params, Witness};
use kcov_stream::gen::{community_sets, planted_cover, uniform_fixed_size, zipf_set_sizes};
use kcov_stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

fn run_oracle(system: &SetSystem, k: usize, alpha: f64, seed: u64) -> (Oracle, f64) {
    let params = Params::practical(system.num_sets(), system.num_elements(), k, alpha);
    let mut oracle = Oracle::new(system.num_elements(), &params, true, seed);
    for e in edge_stream(system, ArrivalOrder::Shuffled(seed)) {
        oracle.observe(e);
    }
    let est = oracle.finalize().estimate;
    (oracle, est)
}

/// Upper bound on OPT from greedy (OPT ≤ greedy/(1 − 1/e)).
fn opt_upper(system: &SetSystem, k: usize) -> f64 {
    greedy_max_cover(system, k).coverage as f64 / (1.0 - 1.0 / std::f64::consts::E)
}

#[test]
fn soundness_across_workload_zoo() {
    let zoo: Vec<(&str, SetSystem, usize)> = vec![
        ("uniform", uniform_fixed_size(1_500, 300, 30, 1), 10),
        ("zipf", zipf_set_sizes(1_500, 300, 400, 1.1, 2), 10),
        ("planted", planted_cover(1_500, 300, 10, 0.8, 30, 3).system, 10),
        ("communities", community_sets(1_500, 300, 6, 40, 4, 4), 10),
    ];
    for (name, system, k) in zoo {
        for seed in 0..3u64 {
            let (_, est) = run_oracle(&system, k, 4.0, seed);
            let ub = opt_upper(&system, k);
            assert!(
                est <= ub * 1.15,
                "{name} seed {seed}: oracle overestimates ({est} > OPT ≤ {ub})"
            );
        }
    }
}

#[test]
fn usefulness_when_eta_promise_holds() {
    // Instances engineered so OPT ≥ |U|/4 (the η-promise): the oracle
    // must return at least OPT/Õ(α).
    let alpha = 4.0;
    let promise_zoo: Vec<(&str, SetSystem, usize, f64)> = vec![
        (
            "planted-dense",
            planted_cover(1_200, 240, 12, 0.6, 30, 5).system,
            12,
            720.0,
        ),
        (
            "zipf-dense",
            zipf_set_sizes(1_200, 240, 700, 0.9, 6),
            12,
            900.0, // 12 large zipf sets easily cover > 900 of 1200
        ),
    ];
    for (name, system, k, opt_lb) in promise_zoo {
        let (_, est) = run_oracle(&system, k, alpha, 9);
        assert!(
            est >= opt_lb / (alpha * 30.0),
            "{name}: estimate {est} below OPT({opt_lb})/Õ(α)"
        );
    }
}

#[test]
fn witness_backs_the_estimate() {
    let inst = planted_cover(1_200, 240, 12, 0.7, 30, 7);
    let (oracle, est) = run_oracle(&inst.system, 12, 4.0, 3);
    let out = oracle.finalize();
    let Some(witness) = out.witness else {
        panic!("expected a witness at estimate {est}");
    };
    let sets = oracle.expand_witness(&witness);
    assert!(!sets.is_empty());
    let chosen: Vec<usize> = sets.iter().map(|&s| s as usize).collect();
    let cov = coverage_of(&inst.system, &chosen) as f64;
    // The witness collection's true coverage supports the estimate up
    // to the documented slack (group/duplication factors ≤ ~4).
    assert!(
        cov * 4.0 >= est,
        "witness coverage {cov} cannot back estimate {est}"
    );
}

#[test]
fn witness_kinds_match_winners() {
    let inst = planted_cover(1_200, 240, 12, 0.7, 30, 11);
    let (oracle, _) = run_oracle(&inst.system, 12, 4.0, 5);
    let out = oracle.finalize();
    if let (Some(kind), Some(witness)) = (out.winner, out.witness) {
        use kcov_core::SubroutineKind::*;
        match (kind, &witness) {
            (LargeCommon, Witness::SampledGroup { .. })
            | (LargeSet, Witness::Superset { .. })
            | (SmallSet, Witness::ExplicitSets(_)) => {}
            other => panic!("winner/witness mismatch: {other:?}"),
        }
    }
}

#[test]
fn oracle_handles_duplicate_heavy_streams() {
    // Every edge repeated 5 times (duplicates must not inflate
    // coverage estimates — the L0/di-distinct machinery's job).
    let system = uniform_fixed_size(800, 160, 25, 13);
    let k = 8;
    let params = Params::practical(160, 800, k, 4.0);
    let mut oracle = Oracle::new(800, &params, false, 17);
    for e in edge_stream(&system, ArrivalOrder::Shuffled(2)) {
        for _ in 0..5 {
            oracle.observe(e);
        }
    }
    let est = oracle.finalize().estimate;
    let ub = opt_upper(&system, k);
    assert!(
        est <= ub * 1.15,
        "duplicates inflated the estimate: {est} > {ub}"
    );
}
