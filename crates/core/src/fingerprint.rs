//! Hash-once edge fingerprints — the shared front of the hot path.
//!
//! Profiling showed the estimator's per-edge cost was dominated by
//! re-hashing the *same* `(set, element)` pair in every lane: each of
//! the ~15 `(z, rep)` lanes evaluated several degree-`Θ(log mn)`
//! polynomials per edge (the `LargeCommon` sampling gate, two
//! `LargeSet` element/partition hashes per repetition, the `SmallSet`
//! set gate). The fix is structural: hash each raw id **once** per
//! edge with a pair of shared polynomial bases, then let every lane
//! consume the resulting *fingerprints* through cheap 4-wise mixes (a
//! degree-4 Horner step instead of a degree-29 one).
//!
//! [`EdgeFingerprints`] owns the two bases; [`FingerprintBlock`] is the
//! reusable scratch holding one fingerprint pair per edge of a batch,
//! filled with the blocked [`RangeHash::hash_batch`] evaluator (proven
//! bit-identical to the scalar path by the `kcov-hash` equivalence
//! suite). The block is pure scratch — never serialized, never merged —
//! while the bases are part of replica state (wire section of the
//! estimator) because every downstream gate decision depends on them.
//!
//! Soundness note: fingerprints are full 61-bit field points under a
//! k-wise independent polynomial, so any downstream family composed as
//! `mix(fingerprint(key))` with an independent 4-wise `mix` is itself
//! 4-wise independent over the original keys (the composition of
//! independent k-wise families is min(k,k')-wise independent up to the
//! negligible 2^-61 fingerprint-collision probability). The paper's
//! concentration arguments need only pairwise/4-wise independence at
//! the gates, so the hot path keeps the guarantees while hashing each
//! id exactly once.

use std::sync::Arc;

use kcov_hash::{KWise, RangeHash, SeedSequence};
use kcov_sketch::wire::{err, put_kwise, take_kwise, WireError};
use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

/// The shared per-edge fingerprint bases: one polynomial over set ids,
/// one over element ids, both of [`crate::Params::hash_degree`] degree.
#[derive(Debug, Clone)]
pub struct EdgeFingerprints {
    set: Arc<KWise>,
    elem: Arc<KWise>,
}

impl EdgeFingerprints {
    /// Derive the two bases from the estimator seed. The set base is
    /// drawn first, then the element base — this order is part of the
    /// determinism contract (changing it changes every gate decision).
    pub fn new(seed: u64, degree: usize) -> Self {
        let mut seq = SeedSequence::labeled(seed, "edge-fingerprints");
        let set = Arc::new(KWise::new(degree, seq.next_seed()));
        let elem = Arc::new(KWise::new(degree, seq.next_seed()));
        EdgeFingerprints { set, elem }
    }

    /// Fingerprint one edge: `(h_set(set), h_elem(elem))`.
    #[inline]
    pub fn fingerprint(&self, edge: Edge) -> (u64, u64) {
        (self.set.hash(edge.set as u64), self.elem.hash(edge.elem as u64))
    }

    /// Fingerprint a batch into the reusable block, using the blocked
    /// evaluator. State-identical to calling [`Self::fingerprint`] per
    /// edge (the scalar-equivalence contract of `hash_batch`).
    pub fn fill_block(&self, edges: &[Edge], block: &mut FingerprintBlock) {
        block.set_keys.clear();
        block.elem_keys.clear();
        block.set_keys.extend(edges.iter().map(|e| e.set as u64));
        block.elem_keys.extend(edges.iter().map(|e| e.elem as u64));
        self.set.hash_batch(&block.set_keys, &mut block.fp_set);
        self.elem.hash_batch(&block.elem_keys, &mut block.fp_elem);
    }

    /// The set-id base. Every subroutine holds a clone of this `Arc`
    /// (one shared coefficient table per process; wire payloads still
    /// encode the coefficients per holder so they stay self-contained).
    pub fn set_base(&self) -> &Arc<KWise> {
        &self.set
    }

    /// The element-id base (consumed by the universe reducers).
    pub fn elem_base(&self) -> &Arc<KWise> {
        &self.elem
    }

    /// Whether both bases agree with `other` (probe-based, like every
    /// merge precondition in the workspace).
    pub fn same_function(&self, other: &EdgeFingerprints) -> bool {
        (0..4).all(|i| {
            let probe = 0x5eed_c0deu64 ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            self.set.hash(probe) == other.set.hash(probe)
                && self.elem.hash(probe) == other.elem.hash(probe)
        })
    }

}

/// Wire: both coefficient vectors, set base first (the draw order of
/// [`EdgeFingerprints::new`]).
impl kcov_sketch::WireEncode for EdgeFingerprints {
    fn encode(&self, out: &mut Vec<u8>) {
        put_kwise(out, &self.set);
        put_kwise(out, &self.elem);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let set = take_kwise(input).map_err(|e| err(format!("fingerprint set base: {e}")))?;
        let elem = take_kwise(input).map_err(|e| err(format!("fingerprint elem base: {e}")))?;
        Ok(EdgeFingerprints {
            set: Arc::new(set),
            elem: Arc::new(elem),
        })
    }
}

impl SpaceUsage for EdgeFingerprints {
    fn space_words(&self) -> usize {
        self.set.space_words() + self.elem.space_words()
    }

    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        node.leaf("set_base", self.set.space_words());
        node.leaf("elem_base", self.elem.space_words());
    }
}

/// Reusable per-batch scratch: one `(fp_set, fp_elem)` pair per edge of
/// the current chunk. Pure transient state — never serialized, never
/// part of merge preconditions.
#[derive(Debug, Clone, Default)]
pub struct FingerprintBlock {
    set_keys: Vec<u64>,
    elem_keys: Vec<u64>,
    /// `h_set(edge.set)` per edge of the chunk.
    pub fp_set: Vec<u64>,
    /// `h_elem(edge.elem)` per edge of the chunk.
    pub fp_elem: Vec<u64>,
    /// Shared universe-reduction mix applied to `fp_elem`, filled by
    /// the estimator's dispatch (one evaluation per chunk, consumed by
    /// every lane's range reduction).
    pub umix: Vec<u64>,
}

impl FingerprintBlock {
    /// Empty block (fills on first use, then reuses its allocations).
    pub fn new() -> Self {
        FingerprintBlock::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_sketch::WireEncode;

    #[test]
    fn block_matches_scalar_fingerprints() {
        let fps = EdgeFingerprints::new(42, 8);
        let edges: Vec<Edge> = (0..137u32).map(|i| Edge::new(i % 19, i * 7 % 113)).collect();
        let mut block = FingerprintBlock::new();
        fps.fill_block(&edges, &mut block);
        assert_eq!(block.fp_set.len(), edges.len());
        for (i, &e) in edges.iter().enumerate() {
            let (s, x) = fps.fingerprint(e);
            assert_eq!(block.fp_set[i], s, "set fp diverged at {i}");
            assert_eq!(block.fp_elem[i], x, "elem fp diverged at {i}");
        }
        // Shrinking reuse must not leave stale lanes.
        fps.fill_block(&edges[..3], &mut block);
        assert_eq!(block.fp_set.len(), 3);
    }

    #[test]
    fn bases_are_independent_and_seed_deterministic() {
        let a = EdgeFingerprints::new(7, 8);
        let b = EdgeFingerprints::new(7, 8);
        let c = EdgeFingerprints::new(8, 8);
        assert!(a.same_function(&b));
        assert!(!a.same_function(&c));
        // Set and element bases must differ from each other.
        assert_ne!(a.set_base().hash(12345), a.elem_base().hash(12345));
    }

    #[test]
    fn wire_roundtrip_preserves_behavior() {
        let fps = EdgeFingerprints::new(99, 8);
        let mut buf = Vec::new();
        fps.encode(&mut buf);
        let mut input = buf.as_slice();
        let back = EdgeFingerprints::decode(&mut input).unwrap();
        assert!(input.is_empty());
        assert!(fps.same_function(&back));
        // Truncation fails cleanly.
        let mut short = &buf[..buf.len() - 1];
        assert!(EdgeFingerprints::decode(&mut short).is_err());
    }
}
