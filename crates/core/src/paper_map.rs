//! # Paper → code map
//!
//! Navigation aid: every theorem, lemma, claim, figure and table of
//! Indyk & Vakilian (PODS 2019) with the item that implements it and
//! the test(s) that check it empirically. This module contains no code.
//!
//! | Paper artifact | Implementation | Checked by |
//! |---|---|---|
//! | **Fig 1** `EstimateMaxCover` | [`crate::MaxCoverEstimator`] | `estimate::tests`, `tests/end_to_end.rs` |
//! | **Fig 2** `Oracle` | [`crate::Oracle`] | `oracle::tests` (all three regimes) |
//! | **Fig 3** `LargeCommon` | [`crate::LargeCommon`] | `large_common::tests` |
//! | **Fig 4** `LargeSetSimple` | folded into [`crate::LargeSet`] (the `Ucmn = ∅` case is the ρ = 1 special case) | `large_set::tests` |
//! | **Fig 5** `SmallSet` | [`crate::SmallSet`] | `small_set::tests` |
//! | **Fig 6** `LargeSetComplete` | [`crate::LargeSet`] (three-branch `rep_hit`) | `large_set::tests` |
//! | **Fig 7** `LargeSet` wrapper | [`crate::LargeSet`] (`large_set_reps` repetitions) | `large_set::tests` |
//! | **Table 1** | `kcov-baselines` (each row) + this crate | `tests/baselines_vs_core.rs`, `exp_table1` |
//! | **Table 2** | [`crate::Params`] (`Paper` and `Practical` modes) | `params::tests`, `tests/paper_mode.rs` |
//! | **Thm 2.10** (F2 heavy hitters) | `kcov_sketch::F2HeavyHitter` | its unit tests + `exp_sketches` |
//! | **Thm 2.11** (F2-Contributing) | `kcov_sketch::F2Contributing` | its unit tests + `exp_sketches` |
//! | **Thm 2.12** (L0 estimation) | `kcov_sketch::L0Estimator`, `kcov_sketch::Bjkst` | their unit tests + `exp_sketches` |
//! | **Def 2.1** (λ-common elements) | `kcov_stream::common_elements` | `coverage::tests` |
//! | **Obs 2.4** (group partitioning) | `LargeCommon` reporting groups; `LargeSet::hit_estimate`'s `k/w` factor | `large_common::tests::reporting_groups_yield_concrete_sets` |
//! | **Lemma 2.3 / A.5–A.7** (set sampling, limited independence) | `kcov_hash::log_wise` + `LargeCommon` layers | `large_common::tests`, `exp_ablations` (a) |
//! | **Lemma 2.5** (element sampling) | `SmallSet` γ lanes; `kcov_baselines::MvEdgeArrival` | `small_set::tests` |
//! | **Lemma 3.5** (universe reduction collisions) | [`crate::UniverseReducer`] | `universe::tests::lemma_3_5_image_at_least_quarter`, `exp_universe_reduction` |
//! | **Thm 3.1** (estimation, `Õ(m/α²)`) | [`crate::MaxCoverEstimator`] | `exp_tradeoff` (slope), `tests/end_to_end.rs` (sandwich) |
//! | **Thm 3.2** (reporting, `Õ(m/α² + k)`) | [`crate::MaxCoverReporter`] | `report::tests`, `exp_reporting` |
//! | **Thm 3.3** (lower bound `Ω(m/α²)`) | `kcov-lowerbound` | `exp_lowerbound`, `tests/lower_bound_integration.rs` |
//! | **Thm 3.6** ((α,δ,η)-oracle wrapper) | [`crate::estimate`] acceptance test `est_z ≥ z/(4α)` | `estimate::tests` |
//! | **Def 3.4** ((α,δ,η)-oracle) | [`crate::Oracle`] contract | `tests/oracle_contract.rs` |
//! | **Claim 4.3** (`sα ≥ 2k` ⇒ case II) | [`crate::Params::small_set_active`] | `params::tests::case_split_matches_fig2` |
//! | **Claims 4.9/4.10** (superset partition) | `LargeSet` partition hash | `large_set::tests::superset_membership_is_a_partition` |
//! | **Lemma 4.16 / Cor 4.19** (set subsampling survival) | `SmallSet` M-sampling | `small_set::tests::fires_on_many_small_instances` |
//! | **Lemmas 4.20/4.21** (`Õ(m/α²)` sub-instance) | `Params::small_set_edge_cap` | `params::tests::small_set_edge_cap_scales_like_m_over_alpha_sq` |
//! | **§5 reduction, Claims 5.3/5.4** | `kcov_stream::gen::disjointness` | its unit tests (`gap_is_alpha`) |
//! | **Thm 5.1 / Cor 5.2** (DSJ communication) | `kcov_lowerbound::protocol` | `protocol::tests`, `exp_lowerbound` (c) |
//! | **Appendix A** (limited-independence Chernoff) | `kcov_hash` families + empirical statistics tests | `kcov-hash` unit tests |
//! | **Appendix B** (common-element handling) | `LargeSet` element sampling + bounded class sizes + L0 fallback | `large_set::tests`, `oracle::tests` |
