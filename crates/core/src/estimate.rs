//! `EstimateMaxCover` — the top-level single-pass estimator (paper §3,
//! Fig 1, Theorems 3.1 / 3.6).
//!
//! * Trivial regime: when `k·α ≥ m`, return `n/α` (any `k` sets out of
//!   `m ≤ k·α` contain a `1/α` fraction of the best coverage by
//!   Observation 2.4 — Fig 1's first line).
//! * Otherwise, for every guess `z ∈ {2^i}` of the optimal coverage size
//!   in parallel, and `log(1/δ)` repetitions per guess: reduce the
//!   universe onto `[z]` pseudo-elements with a fresh 4-wise hash
//!   (Lemma 3.5) and feed the reduced stream to an `(α, δ, η)`-oracle.
//! * Answer: the maximum `est_z` over guesses with `est_z ≥ z/(4α)`
//!   (Theorem 3.6's acceptance test).

use std::time::Instant;

use kcov_obs::{
    apportion_by_heat, LedgerNode, Recorder, SketchStats, SpaceLedger, TimeLedger, Value,
};
use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

use crate::fingerprint::{EdgeFingerprints, FingerprintBlock};
use crate::oracle::{Oracle, OracleOutput, SubroutineKind};
use crate::params::{ParamMode, Params};
use crate::telemetry::{self, HeartbeatSnap, IngestHists, LaneBeat, LaneTimes, StageTimes};
use crate::universe::UniverseReducer;
use crate::Witness;

/// Configuration of the estimator.
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// Constant regime for all derived parameters.
    pub mode: ParamMode,
    /// Root seed.
    pub seed: u64,
    /// Repetitions per `z` guess (Fig 1's `log(1/δ)`); `None` uses the
    /// mode default.
    pub reps: Option<usize>,
    /// Explicit `z` guesses; `None` uses powers of two `4, 8, …, ≥ n`.
    pub z_guesses: Option<Vec<u64>>,
    /// Maintain reporting witnesses (Theorem 3.2 machinery).
    pub reporting: bool,
    /// Worker threads for the batched ingestion path
    /// ([`MaxCoverEstimator::observe_batch`]): lanes are sharded across
    /// this many scoped threads per batch. Lanes are mutually
    /// independent and each lane consumes every batch in arrival order,
    /// so any value — including `1`, the serial default — produces
    /// bit-identical results; `0` is treated as `1`.
    pub threads: usize,
    /// Stream shards for the sharded ingestion path
    /// ([`MaxCoverEstimator::ingest_sharded`]): the edge stream is
    /// partitioned into this many contiguous shards, each fed to its own
    /// full estimator replica (a clone sharing every seed), and the
    /// replicas are folded back with [`MaxCoverEstimator::merge`] at
    /// finalize. `0` is treated as `1` (plain serial ingestion).
    pub shards: usize,
    /// Observability sink: a cheap clonable handle recording phase
    /// timings, per-lane/per-subroutine snapshots, and sketch telemetry.
    /// The default ([`Recorder::disabled`]) makes every probe a no-op —
    /// no clock reads, no locking, no allocation — and the determinism
    /// and merge contracts are untouched either way (events are emitted
    /// only from the coordinating thread, never from ingestion workers).
    pub recorder: Recorder,
    /// In-flight heartbeat cadence, in edges: capture a per-lane fill
    /// snapshot at the first observation boundary at or after every
    /// multiple of this many (shard-local) edges, emitted as
    /// `"heartbeat"` events at finalize. Cadenced by edge count only —
    /// never wall-clock — so estimates are bit-identical with
    /// heartbeats on or off (DESIGN.md §10). `None` (the default)
    /// disables capture; ignored while the recorder is disabled.
    pub heartbeat_every: Option<u64>,
}

impl EstimatorConfig {
    /// Practical-mode defaults.
    pub fn practical(seed: u64) -> Self {
        EstimatorConfig {
            mode: ParamMode::Practical,
            seed,
            reps: None,
            z_guesses: None,
            reporting: false,
            threads: 1,
            shards: 1,
            recorder: Recorder::disabled(),
            heartbeat_every: None,
        }
    }

    /// Builder-style thread count for the batched ingestion path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style shard count for the sharded ingestion path.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style observability recorder.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Builder-style heartbeat cadence (in edges).
    pub fn with_heartbeat(mut self, every: u64) -> Self {
        self.heartbeat_every = (every > 0).then_some(every);
        self
    }

    /// The effective heartbeat cadence: 0 (off) unless both a cadence
    /// is configured and the recorder is enabled — capture without a
    /// sink would be pure overhead.
    pub(crate) fn effective_heartbeat(&self) -> u64 {
        if self.recorder.is_enabled() {
            self.heartbeat_every.unwrap_or(0)
        } else {
            0
        }
    }
}

/// One `(z, repetition)` lane.
#[derive(Debug, Clone)]
struct Lane {
    z: u64,
    reducer: UniverseReducer,
    oracle: Oracle,
    /// Batch-granular wall totals for the time-attribution ledger
    /// (plain replica-local data; only the owning worker writes it).
    times: LaneTimes,
}

impl Lane {
    /// Feed one chunk through this lane given the estimator's shared
    /// columns (hashed once against the *raw* stream): `umix` is the
    /// lane-invariant universe mix already applied to the element
    /// fingerprints, so reduction is one widening multiply per edge
    /// (into the caller's scratch buffer); the reduced chunk plus the
    /// set-fingerprint column then drive the oracle's batched path.
    /// Set ids pass through universe reduction unchanged, so one
    /// `fp_set` column serves every lane.
    /// When `timed`, the chunk is bracketed by the lane's only clock
    /// reads (three `Instant`s per chunk, accumulated into
    /// [`LaneTimes`]) — the per-edge loops below stay clock-free, and
    /// untimed ingestion takes a single branch per call.
    fn ingest_fp(
        &mut self,
        edges: &[Edge],
        fp_set: &[u64],
        umix: &[u64],
        scratch: &mut Vec<Edge>,
        timed: bool,
    ) {
        let start = timed.then(Instant::now);
        self.reducer.map_premixed_batch(edges, umix, scratch);
        let reduced_at = start.map(|_| Instant::now());
        self.oracle.observe_fp_batch(scratch, fp_set);
        if let (Some(start), Some(reduced_at)) = (start, reduced_at) {
            self.times.reduce_ns += (reduced_at - start).as_nanos() as u64;
            self.times.ingest_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Merge a sibling lane built from the same config and seed.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.z, other.z, "Lane merge requires identical configuration (z guess)");
        assert!(
            self.reducer.same_function(&other.reducer),
            "Lane merge requires identical hash functions"
        );
        self.oracle.merge(&other.oracle);
        self.times.merge(&other.times);
    }
}

/// State of the trivial regime (`k·α ≥ m`, Fig 1 line 1).
///
/// The paper returns `n/α` outright; that silently assumes the family
/// covers `Θ(n)` elements. We instead track the coverage of the whole
/// family with an `L0` sketch per Observation-2.4 group (`⌈m/k⌉ ≤ α+1`
/// groups of `k` consecutive sets) and return the best group's sound
/// `(2/3)`-discounted estimate — at most `n/α`-ish but never above the
/// true optimum.
#[derive(Debug, Clone)]
struct TrivialState {
    k: usize,
    groups: Vec<kcov_sketch::L0Estimator>,
    total: kcov_sketch::L0Estimator,
}

impl TrivialState {
    fn new(m: usize, k: usize, seed: u64) -> Self {
        let mut seq = kcov_hash::SeedSequence::labeled(seed, "trivial-branch");
        let num_groups = m.div_ceil(k.max(1)).max(1);
        TrivialState {
            k,
            groups: (0..num_groups)
                .map(|_| kcov_sketch::L0Estimator::new(32, 3, seq.next_seed()))
                .collect(),
            total: kcov_sketch::L0Estimator::new(48, 3, seq.next_seed()),
        }
    }

    fn observe(&mut self, edge: Edge) {
        self.total.insert(edge.elem as u64);
        let g = (edge.set as usize / self.k.max(1)).min(self.groups.len() - 1);
        self.groups[g].insert(edge.elem as u64);
    }

    fn observe_batch(&mut self, edges: &[Edge]) {
        for &edge in edges {
            self.observe(edge);
        }
    }

    /// Merge a sibling trivial state (bit-exact: every group and the
    /// total are union-merged `L0` sketches).
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            (self.k, self.groups.len()),
            (other.k, other.groups.len()),
            "TrivialState merge requires identical configuration (k, groups)"
        );
        for (g, og) in self.groups.iter_mut().zip(&other.groups) {
            g.merge(og);
        }
        self.total.merge(&other.total);
    }

    /// Sound estimate: max of (best group's coverage, total/⌈m/k⌉),
    /// both discounted by the L0 error.
    fn estimate(&self) -> f64 {
        let best_group = self
            .groups
            .iter()
            .map(|g| g.estimate())
            .fold(0.0f64, f64::max);
        let by_total = self.total.estimate() / self.groups.len() as f64;
        (2.0 / 3.0) * best_group.max(by_total)
    }

    /// The best group's set indices (for reporting; Observation 2.4).
    fn best_group_sets(&self, m: usize) -> Vec<u32> {
        let best = self
            .groups
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.estimate().partial_cmp(&b.1.estimate()).expect("no NaN"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let lo = best * self.k;
        (lo..(lo + self.k).min(m)).map(|s| s as u32).collect()
    }

    fn space_words(&self) -> usize {
        self.total.space_words()
            + self.groups.iter().map(SpaceUsage::space_words).sum::<usize>()
    }

    /// Ledger attribution mirroring [`TrivialState::space_words`]: the
    /// whole-family `total` sketch and the Observation-2.4 `groups`
    /// family (aggregated into one shared child, like every
    /// variable-count structure in the stack).
    fn space_ledger(&self, node: &mut LedgerNode) {
        self.total.space_ledger(node.child("total"));
        let groups = node.child("groups");
        for g in &self.groups {
            g.space_ledger(groups);
        }
    }
}

/// Outcome of a full run.
#[derive(Debug, Clone)]
pub struct EstimateOutcome {
    /// The final α-approximate estimate of `|C(OPT)|`.
    pub estimate: f64,
    /// Whether the trivial `k·α ≥ m` branch answered.
    pub trivial: bool,
    /// Winning guess `z` (0 in the trivial branch).
    pub winning_z: u64,
    /// Winning subroutine.
    pub winner: Option<SubroutineKind>,
    /// Reporting witness of the winning lane.
    pub witness: Option<Witness>,
    /// Index of the winning lane (for witness expansion).
    pub winning_lane: Option<usize>,
    /// Resident space at finalize, in words.
    pub space_words: usize,
}

/// Single-pass streaming `Õ(α)`-approximate estimator of the optimal
/// coverage size of `Max k-Cover` in `Õ(m/α²)` space (Theorem 3.1).
#[derive(Debug, Clone)]
pub struct MaxCoverEstimator {
    n: usize,
    m: usize,
    k: usize,
    alpha: f64,
    threads: usize,
    trivial: Option<TrivialState>,
    /// The hash-once front end: one set and one element fingerprint per
    /// raw edge, shared by every lane (`None` in the trivial regime).
    fps: Option<EdgeFingerprints>,
    /// Reusable fingerprint-column scratch for the batched path. Pure
    /// scratch: never serialized, never merged, and absent from space
    /// accounting (it is transient working memory, not sketch state).
    block: FingerprintBlock,
    lanes: Vec<Lane>,
    rec: Recorder,
    /// Stream edges ingested (telemetry: merged by addition; every lane
    /// consumes every edge, so this is also each lane's edge count).
    edges_seen: u64,
    /// Heartbeat cadence in edges (0 = off; see
    /// [`EstimatorConfig::heartbeat_every`]).
    heartbeat_every: u64,
    /// Which stream shard this replica ingests (0 = coordinator);
    /// stamped onto buffered heartbeats for deterministic emission.
    shard_id: u64,
    /// Buffered heartbeat snapshots, plain data — never emitted from
    /// ingestion threads; concatenated on merge, sorted and emitted at
    /// finalize.
    heartbeats: Vec<HeartbeatSnap>,
    /// Ingestion histograms (batch sizes/nanos, heartbeat deltas).
    hists: IngestHists,
    /// Aggregate sketch stats at the previous heartbeat (delta base).
    last_stats: SketchStats,
    /// Batch-granular wall totals for the lane-invariant stages
    /// (fingerprint fill, universe mix, trivial branch) — the
    /// stage-level raw material of the time-attribution ledger.
    times: StageTimes,
}

impl MaxCoverEstimator {
    /// Create an estimator for a stream over `n` elements and `m` sets,
    /// budget `k` and approximation target `α ∈ [1, √m]`.
    pub fn new(n: usize, m: usize, k: usize, alpha: f64, config: &EstimatorConfig) -> Self {
        assert!(n >= 1 && m >= 1 && k >= 1, "need n, m, k >= 1");
        assert!(alpha >= 1.0, "alpha must be >= 1");
        // Fig 1 line 1: trivial regime.
        if (k as f64) * alpha >= m as f64 {
            return MaxCoverEstimator {
                n,
                m,
                k,
                alpha,
                threads: config.threads.max(1),
                trivial: Some(TrivialState::new(m, k, config.seed ^ 0x7121a1)),
                fps: None,
                block: FingerprintBlock::default(),
                lanes: Vec::new(),
                rec: config.recorder.clone(),
                edges_seen: 0,
                heartbeat_every: config.effective_heartbeat(),
                shard_id: 0,
                heartbeats: Vec::new(),
                hists: IngestHists::default(),
                last_stats: SketchStats::default(),
                times: StageTimes::default(),
            };
        }
        let mut seq = kcov_hash::SeedSequence::labeled(config.seed, "estimate-max-cover");
        // Hash-once front end: one estimator-global fingerprint pair per
        // raw edge, at a degree sized for the *full* instance (m·n key
        // space) so every lane's cheap downstream mix composes soundly.
        let fps = EdgeFingerprints::new(config.seed, Params::hash_degree(config.mode, m, n));
        // One universe-reduction mix for every `(z, rep)` lane: the mix
        // column is evaluated once per chunk and each lane applies only
        // its own range reduction. The coupling across lanes this
        // introduces is harmless (Lemma 3.5 is per lane; the final max
        // needs no cross-lane independence) and it removes one degree-4
        // polynomial evaluation per lane per edge plus all but one copy
        // of the mix coefficients.
        let umix = UniverseReducer::shared_mix(
            kcov_hash::SeedSequence::labeled(config.seed, "universe-mix").next_seed(),
        );
        let zs: Vec<u64> = config.z_guesses.clone().unwrap_or_else(|| {
            let mut zs = Vec::new();
            let mut z = 4u64;
            while z < 2 * n as u64 {
                zs.push(z);
                z *= 2;
            }
            zs
        });
        let mut lanes = Vec::new();
        for &z in &zs {
            let params = match config.mode {
                ParamMode::Paper => Params::paper(m, z as usize, k, alpha),
                ParamMode::Practical => Params::practical(m, z as usize, k, alpha),
            };
            let reps = config.reps.unwrap_or(params.reduction_reps).max(1);
            for _ in 0..reps {
                lanes.push(Lane {
                    z,
                    reducer: UniverseReducer::with_shared_mix(
                        z,
                        umix.clone(),
                        fps.elem_base().clone(),
                    ),
                    oracle: Oracle::with_base(
                        z as usize,
                        &params,
                        config.reporting,
                        seq.next_seed(),
                        fps.set_base().clone(),
                    ),
                    times: LaneTimes::default(),
                });
            }
        }
        MaxCoverEstimator {
            n,
            m,
            k,
            alpha,
            threads: config.threads.max(1),
            trivial: None,
            fps: Some(fps),
            block: FingerprintBlock::default(),
            lanes,
            rec: config.recorder.clone(),
            edges_seen: 0,
            heartbeat_every: config.effective_heartbeat(),
            shard_id: 0,
            heartbeats: Vec::new(),
            hists: IngestHists::default(),
            last_stats: SketchStats::default(),
            times: StageTimes::default(),
        }
    }

    /// Observe one `(set, element)` edge.
    pub fn observe(&mut self, edge: Edge) {
        self.edges_seen += 1;
        if let Some(t) = &mut self.trivial {
            t.observe(edge);
        } else {
            // Hash once: two base evaluations for the raw edge, then
            // every lane works from the fingerprints (one cheap mix per
            // gate) instead of re-hashing the raw ids.
            let (fp_set, fp_elem) = self
                .fps
                .as_ref()
                .expect("non-trivial estimator has fingerprints")
                .fingerprint(edge);
            for lane in &mut self.lanes {
                let reduced = Edge::new(edge.set, lane.reducer.map_fp(fp_elem) as u32);
                lane.oracle.observe_fp(reduced, fp_set);
            }
        }
        // Heartbeat cadence: edge count only, no clocks. Off (0) means
        // one branch of overhead per edge.
        if self.heartbeat_every != 0 && self.edges_seen.is_multiple_of(self.heartbeat_every) {
            self.capture_heartbeat();
        }
    }

    /// Observe a chunk of edges through the batched ingestion engine.
    ///
    /// Determinism guarantee: lanes are mutually independent (each owns
    /// its seeded reducer hash and oracle state) and every lane consumes
    /// every chunk in arrival order, so the final state — and therefore
    /// [`MaxCoverEstimator::finalize`] — is bit-identical to feeding the
    /// same edges through [`MaxCoverEstimator::observe`] one at a time,
    /// for *any* chunking and *any* thread count. With `threads > 1` the
    /// lanes are sharded across `std::thread::scope` workers per chunk.
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        if edges.is_empty() {
            return;
        }
        // Batch telemetry: one clock read per *batch* (never per edge),
        // recorded into replica-local histograms — no sink access here,
        // so this path stays safe on ingestion worker threads.
        let start = self.rec.is_enabled().then(Instant::now);
        let seen_before = self.edges_seen;
        self.edges_seen += edges.len() as u64;
        self.dispatch_batch(edges);
        if let Some(start) = start {
            self.hists.batch_edges.record(edges.len() as u64);
            self.hists.batch_ns.record(start.elapsed().as_nanos() as u64);
        }
        // Capture at the first batch boundary at or after each multiple
        // of the cadence (one snapshot per batch even when a big batch
        // crosses several multiples) — a pure function of the chunking.
        if telemetry::crosses_beat(seen_before, edges.len() as u64, self.heartbeat_every) {
            self.capture_heartbeat();
        }
    }

    /// The batched ingestion engine behind [`MaxCoverEstimator::observe_batch`].
    ///
    /// Hash-once: the fingerprint columns for the whole chunk are filled
    /// exactly once (two batched base evaluations against the raw
    /// stream), then shared read-only by every lane — serial or across
    /// the scoped worker threads.
    fn dispatch_batch(&mut self, edges: &[Edge]) {
        // Time attribution is batch-granular: a handful of monotonic
        // reads per *chunk* (stage boundaries plus one bracket per lane,
        // each accumulated into replica-local plain `u64`s), never per
        // edge, and none at all while the recorder is disabled.
        let timed = self.rec.is_enabled();
        if let Some(t) = &mut self.trivial {
            let start = timed.then(Instant::now);
            t.observe_batch(edges);
            if let Some(start) = start {
                self.times.trivial_ns += start.elapsed().as_nanos() as u64;
            }
            return;
        }
        let mut block = std::mem::take(&mut self.block);
        let start = timed.then(Instant::now);
        self.fps
            .as_ref()
            .expect("non-trivial estimator has fingerprints")
            .fill_block(edges, &mut block);
        if let Some(start) = start {
            self.times.hash_ns += start.elapsed().as_nanos() as u64;
        }
        // Lane-invariant universe mix: one column for every lane.
        if let Some(first) = self.lanes.first() {
            let start = timed.then(Instant::now);
            first.reducer.mix_batch(&block.fp_elem, &mut block.umix);
            if let Some(start) = start {
                self.times.universe_ns += start.elapsed().as_nanos() as u64;
            }
        }
        let (fp_set, umix) = (&block.fp_set[..], &block.umix[..]);
        let threads = self.threads.clamp(1, self.lanes.len().max(1));
        if threads <= 1 {
            let mut scratch = Vec::with_capacity(edges.len());
            for lane in &mut self.lanes {
                lane.ingest_fp(edges, fp_set, umix, &mut scratch, timed);
            }
        } else {
            let shard = self.lanes.len().div_ceil(threads);
            std::thread::scope(|s| {
                for chunk in self.lanes.chunks_mut(shard) {
                    s.spawn(move || {
                        let mut scratch = Vec::with_capacity(edges.len());
                        for lane in chunk {
                            lane.ingest_fp(edges, fp_set, umix, &mut scratch, timed);
                        }
                    });
                }
            });
        }
        self.block = block;
    }

    /// Snapshot every lane's fill state into the replica-local
    /// heartbeat buffer (plain data — the recorder sink is never
    /// touched here, so capture is safe on sharded worker threads).
    fn capture_heartbeat(&mut self) {
        let mut lanes = Vec::with_capacity(self.lanes.len().max(1));
        let mut total = SketchStats::default();
        if let Some(t) = &self.trivial {
            lanes.push(LaneBeat {
                lane: 0,
                z: 0,
                lc_fill: 0,
                ls_fill: 0,
                ss_fill: 0,
                evictions: 0,
                space_words: t.space_words() as u64,
                ns: self.times.trivial_ns,
            });
        }
        for (i, lane) in self.lanes.iter().enumerate() {
            let (lc, ls, ss) = lane.oracle.heartbeat_stats();
            let ss = ss.unwrap_or_default();
            let mut agg = lc;
            agg.absorb(ls);
            agg.absorb(ss);
            lanes.push(LaneBeat {
                lane: i as u64,
                z: lane.z,
                lc_fill: lc.fill,
                ls_fill: ls.fill,
                ss_fill: ss.fill,
                evictions: agg.evictions,
                space_words: (lane.oracle.space_words() + lane.reducer.space_words()) as u64,
                ns: lane.times.ingest_ns,
            });
            total.absorb(agg);
        }
        self.hists.record_beat_delta(total, &mut self.last_stats);
        self.heartbeats.push(HeartbeatSnap {
            shard: self.shard_id,
            at_edges: self.edges_seen,
            lanes,
        });
    }

    /// Merge another estimator built from the same instance shape,
    /// configuration and seed, as if this estimator had also observed
    /// every edge `other` observed.
    ///
    /// This is the top of the merge monoid lifted through the whole
    /// stack (sketches → subroutines → oracle → lanes): merging two
    /// replicas that ingested disjoint shards of a stream yields a state
    /// equivalent to single-stream ingestion of the concatenation (see
    /// DESIGN.md §8 for which layers are bit-exact and which satisfy a
    /// canonical-equivalence contract). Merge is commutative and
    /// associative; a freshly constructed replica is the identity.
    ///
    /// Panics when the two estimators were built from different shapes,
    /// configurations, or seeds.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            (self.n, self.m, self.k, self.alpha.to_bits()),
            (other.n, other.m, other.k, other.alpha.to_bits()),
            "MaxCoverEstimator merge requires identical configuration (instance shape)"
        );
        self.edges_seen += other.edges_seen;
        self.heartbeats.extend(other.heartbeats.iter().cloned());
        self.hists.merge(&other.hists);
        self.last_stats.absorb(other.last_stats);
        self.times.merge(&other.times);
        match (&mut self.trivial, &other.trivial) {
            (Some(a), Some(b)) => {
                a.merge(b);
                return;
            }
            (None, None) => {}
            _ => panic!("MaxCoverEstimator merge requires identical configuration (regime)"),
        }
        if let (Some(a), Some(b)) = (&self.fps, &other.fps) {
            assert!(
                a.same_function(b),
                "MaxCoverEstimator merge requires identical hash functions (fingerprints)"
            );
        }
        assert_eq!(
            self.lanes.len(),
            other.lanes.len(),
            "MaxCoverEstimator merge requires identical configuration (lane count)"
        );
        for (lane, other_lane) in self.lanes.iter_mut().zip(&other.lanes) {
            lane.merge(other_lane);
        }
    }

    /// Ingest `edges` through `shards` full estimator replicas on scoped
    /// threads, then fold the replicas back into `self` with
    /// [`MaxCoverEstimator::merge`].
    ///
    /// The stream is split into `shards` contiguous chunks; replica `i`
    /// (a clone of `self`, sharing every seed) consumes chunk `i`
    /// through the batched engine in sub-chunks of `batch`. `self`
    /// consumes the first chunk inline. Must be called on a freshly
    /// constructed estimator (a fresh replica is the merge identity, so
    /// cloning pre-fed state would double-count its edges).
    pub fn ingest_sharded(&mut self, edges: &[Edge], shards: usize, batch: usize) {
        let shards = shards.max(1);
        if shards == 1 || edges.is_empty() {
            for chunk in edges.chunks(batch.max(1)) {
                self.observe_batch(chunk);
            }
            return;
        }
        let chunk_len = edges.len().div_ceil(shards);
        let mut parts = edges.chunks(chunk_len);
        let own = parts.next().unwrap_or(&[]);
        // Workers only *measure* (a plain Instant each, no sink access);
        // the coordinator emits every event after the join, so the sink
        // lock is never touched from an ingestion thread.
        let timed = self.rec.is_enabled();
        let mut replicas: Vec<(MaxCoverEstimator, u64)> = Vec::new();
        let mut own_ns = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .enumerate()
                .map(|(i, part)| {
                    let mut replica = self.clone();
                    // Stamp the replica's heartbeats with its shard id so
                    // finalize can emit them in deterministic order.
                    replica.shard_id = i as u64 + 1;
                    s.spawn(move || {
                        let start = timed.then(Instant::now);
                        for chunk in part.chunks(batch.max(1)) {
                            replica.observe_batch(chunk);
                        }
                        let ns = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                        (replica, ns)
                    })
                })
                .collect();
            let start = timed.then(Instant::now);
            for chunk in own.chunks(batch.max(1)) {
                self.observe_batch(chunk);
            }
            own_ns = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            replicas.extend(handles.into_iter().map(|h| h.join().expect("shard worker panicked")));
        });
        if timed {
            self.rec.event(
                "shard",
                &[
                    ("shard", Value::from(0u64)),
                    ("edges", Value::from(own.len() as u64)),
                    ("ns", Value::from(own_ns)),
                ],
            );
            for (i, (replica, ns)) in replicas.iter().enumerate() {
                self.rec.event(
                    "shard",
                    &[
                        ("shard", Value::from(i as u64 + 1)),
                        ("edges", Value::from(replica.edges_seen)),
                        ("ns", Value::from(*ns)),
                    ],
                );
            }
        }
        let merge_span = self.rec.span("merge");
        for (replica, _) in &replicas {
            self.merge(replica);
        }
        merge_span.finish();
    }

    /// Finalize after the pass (Theorem 3.6 acceptance). When the
    /// configured recorder is enabled, this also emits the finalize-time
    /// snapshot: one "lane" event per `(z, rep)` lane, per-subroutine
    /// "subroutine"/"sketch" events whose `space_words` sum to the
    /// reported total exactly, and a closing "summary" event.
    pub fn finalize(&self) -> EstimateOutcome {
        let span = self.rec.span("finalize");
        let outcome = self.finalize_outcome();
        if self.rec.is_enabled() {
            self.record_snapshot(&outcome);
        }
        span.finish();
        outcome
    }

    fn finalize_outcome(&self) -> EstimateOutcome {
        if let Some(t) = &self.trivial {
            return EstimateOutcome {
                estimate: t.estimate().min(self.n as f64 / 1.0),
                trivial: true,
                winning_z: 0,
                winner: None,
                witness: None,
                winning_lane: None,
                space_words: self.space_words(),
            };
        }
        // est_z = max over the z's repetitions.
        let mut per_lane: Vec<(usize, u64, OracleOutput)> = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| (i, lane.z, lane.oracle.finalize()))
            .collect();
        // Prefer qualifying lanes (est_z ≥ z/(4α)); among them, the
        // largest estimate. Fall back to the best overall estimate.
        per_lane.sort_by(|a, b| {
            a.2.estimate
                .partial_cmp(&b.2.estimate)
                .expect("no NaN")
        });
        let qualifying = per_lane
            .iter()
            .rev()
            .find(|(_, z, out)| out.estimate >= *z as f64 / (4.0 * self.alpha));
        let pick = qualifying.or_else(|| per_lane.last());
        match pick {
            Some(&(idx, z, ref out)) if out.estimate > 0.0 => EstimateOutcome {
                estimate: out.estimate,
                trivial: false,
                winning_z: z,
                winner: out.winner,
                witness: out.witness.clone(),
                winning_lane: Some(idx),
                space_words: self.space_words(),
            },
            _ => EstimateOutcome {
                estimate: 0.0,
                trivial: false,
                winning_z: 0,
                winner: None,
                witness: None,
                winning_lane: None,
                space_words: self.space_words(),
            },
        }
    }

    /// Emit the finalize-time observability snapshot (recorder known to
    /// be enabled). The per-lane oracle finalizations here re-run the
    /// (cheap, state-free) estimate extraction; they do not mutate any
    /// stream state.
    fn record_snapshot(&self, outcome: &EstimateOutcome) {
        let rec = &self.rec;
        telemetry::emit_heartbeats(rec, "estimate", &self.heartbeats);
        self.hists.emit(rec, "ingest");
        if let Some(t) = &self.trivial {
            rec.event(
                "subroutine",
                &[
                    ("lane", Value::from(0u64)),
                    ("name", Value::from("trivial")),
                    ("estimate", Value::from(t.estimate())),
                    ("space_words", Value::from(t.space_words())),
                ],
            );
        }
        if let Some(fps) = &self.fps {
            // The estimator-global hash-once front end, shared by every
            // lane (lanes count 1-word handles on the shared bases).
            rec.event(
                "subroutine",
                &[
                    ("lane", Value::from(0u64)),
                    ("name", Value::from("fingerprints")),
                    ("estimate", Value::from(f64::NAN)),
                    ("space_words", Value::from(fps.space_words())),
                ],
            );
        }
        if let Some(lane) = self.lanes.first() {
            // The lane-invariant universe-reduction mix, shared by every
            // lane and attributed once (lanes count 1-word handles).
            rec.event(
                "subroutine",
                &[
                    ("lane", Value::from(0u64)),
                    ("name", Value::from("universe")),
                    ("estimate", Value::from(f64::NAN)),
                    ("space_words", Value::from(lane.reducer.mix_words())),
                ],
            );
        }
        for (i, lane) in self.lanes.iter().enumerate() {
            let out = lane.oracle.finalize();
            let qualifying = out.estimate >= lane.z as f64 / (4.0 * self.alpha);
            rec.event(
                "lane",
                &[
                    ("lane", Value::from(i as u64)),
                    ("z", Value::from(lane.z)),
                    ("edges", Value::from(self.edges_seen)),
                    ("estimate", Value::from(out.estimate)),
                    (
                        "winner",
                        Value::from(out.winner.map_or("none", SubroutineKind::name)),
                    ),
                    ("qualifying", Value::from(qualifying)),
                    (
                        "space_words",
                        Value::from(lane.oracle.space_words() + lane.reducer.space_words()),
                    ),
                ],
            );
            lane.oracle.record_snapshot(rec, i);
            rec.event(
                "subroutine",
                &[
                    ("lane", Value::from(i as u64)),
                    ("name", Value::from("reducer")),
                    ("estimate", Value::from(f64::NAN)),
                    ("space_words", Value::from(lane.reducer.space_words())),
                ],
            );
        }
        rec.event(
            "summary",
            &[
                ("estimate", Value::from(outcome.estimate)),
                ("winning_z", Value::from(outcome.winning_z)),
                (
                    "winner",
                    Value::from(outcome.winner.map_or("none", SubroutineKind::name)),
                ),
                ("trivial", Value::from(outcome.trivial)),
                ("space_words", Value::from(outcome.space_words)),
                ("edges", Value::from(self.edges_seen)),
            ],
        );
        rec.gauge("estimate", outcome.estimate);
        rec.gauge("space_words", outcome.space_words as f64);
        rec.incr("edges.total", self.edges_seen);
        rec.incr("lanes.total", self.lanes.len() as u64);
        // Space-attribution ledger, emitted after every pre-existing
        // event so their sequence numbers are untouched. The exact-sum
        // invariant is the ledger's finalize contract (DESIGN.md §13):
        // a word the tree misses (or double-counts) is a bug, not a
        // rounding artifact.
        let ledger = self.space_ledger_tree();
        assert!(
            ledger.audit().is_empty(),
            "space ledger schema violations: {:?}",
            ledger.audit()
        );
        assert_eq!(
            ledger.total_words(),
            outcome.space_words as u64,
            "space ledger must attribute every resident word exactly"
        );
        ledger.emit(rec);
        // Time-attribution ledger (DESIGN.md §15). Its finalize
        // contract: leaves-only attribution (audited) and ns
        // conservation — the apportioned total can never exceed the
        // measured batch wall-clock times the worker-thread count,
        // because every attributed interval nests inside a batch
        // interval and at most `threads` lanes overlap.
        let times = self.time_ledger_tree();
        assert!(
            times.audit().is_empty(),
            "time ledger schema violations: {:?}",
            times.audit()
        );
        let budget = self.hists.batch_ns.sum().saturating_mul(self.threads.max(1) as u64);
        assert!(
            times.total_ns() <= budget,
            "time ledger attributes {} ns against a wall budget of {} ns",
            times.total_ns(),
            budget
        );
        times.emit(rec);
        rec.event(
            "time_ledger_meta",
            &[
                ("stage", Value::from("estimate")),
                ("root", Value::from(times.name())),
                ("threads", Value::from(self.threads.max(1) as u64)),
                ("ns", Value::from(times.total_ns())),
            ],
        );
    }

    /// Convenience: run over a finite edge stream.
    pub fn run(
        n: usize,
        m: usize,
        k: usize,
        alpha: f64,
        config: &EstimatorConfig,
        edges: &[Edge],
    ) -> EstimateOutcome {
        let mut est = MaxCoverEstimator::new(n, m, k, alpha, config);
        let span = est.rec.span("ingest");
        for &e in edges {
            est.observe(e);
        }
        span.finish();
        est.finalize()
    }

    /// Convenience: run over a finite edge stream through the batched
    /// ingestion engine in chunks of `batch_size`. Returns the same
    /// outcome as [`MaxCoverEstimator::run`] bit-for-bit (see
    /// [`MaxCoverEstimator::observe_batch`]).
    pub fn run_batched(
        n: usize,
        m: usize,
        k: usize,
        alpha: f64,
        config: &EstimatorConfig,
        edges: &[Edge],
        batch_size: usize,
    ) -> EstimateOutcome {
        let mut est = MaxCoverEstimator::new(n, m, k, alpha, config);
        let span = est.rec.span("ingest");
        for chunk in edges.chunks(batch_size.max(1)) {
            est.observe_batch(chunk);
        }
        span.finish();
        est.finalize()
    }

    /// Convenience: run over a finite edge stream through
    /// [`MaxCoverEstimator::ingest_sharded`] with `config.shards`
    /// replicas. Produces the same outcome as
    /// [`MaxCoverEstimator::run`] up to the merge-equivalence contract
    /// (bit-identical estimates; resident space may differ in the
    /// heavy-hitter candidate lists — DESIGN.md §8).
    pub fn run_sharded(
        n: usize,
        m: usize,
        k: usize,
        alpha: f64,
        config: &EstimatorConfig,
        edges: &[Edge],
        batch_size: usize,
    ) -> EstimateOutcome {
        let mut est = MaxCoverEstimator::new(n, m, k, alpha, config);
        let span = est.rec.span("ingest");
        est.ingest_sharded(edges, config.shards.max(1), batch_size);
        span.finish();
        est.finalize()
    }

    /// Access a lane's oracle (witness expansion in the report module).
    pub(crate) fn lane_oracle(&self, idx: usize) -> &Oracle {
        &self.lanes[idx].oracle
    }

    /// The trivial branch's best Observation-2.4 group, when active.
    pub(crate) fn trivial_best_group(&self) -> Option<Vec<u32>> {
        self.trivial.as_ref().map(|t| t.best_group_sets(self.m))
    }

    /// Number of `(z, rep)` lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The hash-once front end (`None` in the trivial regime).
    /// Profiling aid: benches time [`EdgeFingerprints::fill_block`]
    /// against the raw stream to price the hash phase separately.
    pub fn fingerprints(&self) -> Option<&EdgeFingerprints> {
        self.fps.as_ref()
    }

    /// Attach an observability recorder after wire reconstruction (the
    /// recorder is process-local and never serialized; a decoded replica
    /// wakes up with a disabled one).
    pub fn attach_recorder(&mut self, rec: &Recorder) {
        self.rec = rec.clone();
    }

    /// Stamp this replica with its stream-shard id so buffered
    /// heartbeats sort deterministically at finalize. Worker processes
    /// call this with their shard index; in-process sharding does the
    /// equivalent internally.
    pub fn set_shard(&mut self, shard_id: u64) {
        self.shard_id = shard_id;
    }

    /// Total stream edges ingested (telemetry).
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// The stream-shard id stamped by [`MaxCoverEstimator::set_shard`].
    pub fn shard(&self) -> u64 {
        self.shard_id
    }

    /// The instance shape this estimator was built for.
    pub fn shape(&self) -> (usize, usize, usize, f64) {
        (self.n, self.m, self.k, self.alpha)
    }

    /// Build the space-attribution ledger for the current state: a tree
    /// rooted at `"estimator"` attributing every resident word to a
    /// `lane{i}/subroutine/component` path, with per-component heat
    /// counters (DESIGN.md §13). The finalize invariant — Σ leaf words
    /// == [`SpaceUsage::space_words`] exactly — holds at any point, not
    /// just at finalize, because both walk the same structures.
    pub fn space_ledger_tree(&self) -> SpaceLedger {
        let mut ledger = SpaceLedger::new("estimator");
        self.space_ledger(&mut ledger.root);
        ledger
    }

    /// Build the time-attribution ledger for the current state: a tree
    /// rooted at `"estimator"` whose *paths mirror the space ledger's*
    /// (`trivial`, `fingerprints`, the shared `universe` mix, per-lane
    /// `reducer` plus the oracle's subroutine/sketch subtree) and whose
    /// leaf values are the batch-granular wall totals, apportioned onto
    /// sketch leaves by the space ledger's heat counters
    /// ([`apportion_by_heat`], DESIGN.md §15).
    ///
    /// Shape is a pure function of configuration; *values* are
    /// wall-clock and carry no determinism promise. Recomputed on
    /// demand from the merged `ns` totals, so Σ shard trees == the
    /// merged tree exactly. All-zero (but correctly shaped) when the
    /// recorder was disabled or ingestion went through the per-edge
    /// path, which records no time.
    pub fn time_ledger_tree(&self) -> TimeLedger {
        let mut ledger = TimeLedger::new("estimator");
        let root = &mut ledger.root;
        if let Some(t) = &self.trivial {
            let mut space = LedgerNode::new();
            t.space_ledger(&mut space);
            apportion_by_heat(self.times.trivial_ns, &space, root.child("trivial"));
        }
        if self.fps.is_some() {
            root.leaf("fingerprints", self.times.hash_ns);
        }
        if !self.lanes.is_empty() {
            root.leaf("universe", self.times.universe_ns);
        }
        for (i, lane) in self.lanes.iter().enumerate() {
            let ln = root.child(&format!("lane{i}"));
            ln.leaf("reducer", lane.times.reduce_ns);
            let mut space = LedgerNode::new();
            lane.oracle.space_ledger(&mut space);
            apportion_by_heat(lane.times.oracle_ns(), &space, ln);
        }
        ledger
    }
}

// ---- wire format ----------------------------------------------------
//
// The estimator is the root of the full-state format: a versioned
// header (magic, version, payload tag) followed by length-prefixed
// sections, so `merge-from` can reject foreign or stale replica files
// before decoding anything and a corrupt section length cannot walk
// into a neighbor. Inner types reuse the plain tagged encodings.

const TAG_TRIVIAL: u64 = 0x5456; // "TV"
const TAG_LANE: u64 = 0x4c4e; // "LN"
/// Payload tag of a full `MaxCoverEstimator` replica.
pub const TAG_ESTIMATOR: u64 = 0x4553_5449_4d41_5445; // "ESTIMATE"
const SEC_SHAPE: u64 = 0x0053_4841_5045; // "SHAPE"
const SEC_STATE: u64 = 0x0053_5441_5445; // "STATE"
const SEC_TELEMETRY: u64 = 0x0054_454c_454d; // "TELEM"

impl kcov_sketch::WireEncode for TrivialState {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_l0_full, put_u64};
        put_u64(out, TAG_TRIVIAL);
        put_u64(out, self.k as u64);
        put_u64(out, self.groups.len() as u64);
        for g in &self.groups {
            put_l0_full(out, g);
        }
        put_l0_full(out, &self.total);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_l0_full, take_u64};
        if take_u64(input)? != TAG_TRIVIAL {
            return Err(err("bad TrivialState tag"));
        }
        let k = take_u64(input)? as usize;
        let n = take_u64(input)? as usize;
        if n > input.len() {
            return Err(err("TrivialState group count exceeds input"));
        }
        let groups = (0..n).map(|_| take_l0_full(input)).collect::<Result<Vec<_>, _>>()?;
        if groups.is_empty() {
            // `observe` indexes `groups.len() - 1`.
            return Err(err("TrivialState needs at least one group"));
        }
        let total = take_l0_full(input)?;
        Ok(TrivialState { k, groups, total })
    }
}

impl kcov_sketch::WireEncode for Lane {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::put_u64;
        put_u64(out, TAG_LANE);
        put_u64(out, self.z);
        self.reducer.encode(out);
        self.oracle.encode(out);
        self.times.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_u64};
        if take_u64(input)? != TAG_LANE {
            return Err(err("bad Lane tag"));
        }
        let z = take_u64(input)?;
        let reducer = UniverseReducer::decode(input)?;
        if reducer.z() != z {
            return Err(err(format!(
                "Lane z {z} disagrees with its reducer's range {}",
                reducer.z()
            )));
        }
        let oracle = Oracle::decode(input)?;
        let times = LaneTimes::decode(input)?;
        Ok(Lane { z, reducer, oracle, times })
    }
}

impl kcov_sketch::WireEncode for MaxCoverEstimator {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_f64, put_header, put_section, put_u64};
        put_header(out, TAG_ESTIMATOR);
        put_section(out, SEC_SHAPE, |out| {
            put_u64(out, self.n as u64);
            put_u64(out, self.m as u64);
            put_u64(out, self.k as u64);
            put_f64(out, self.alpha);
            put_u64(out, self.threads as u64);
            put_u64(out, self.edges_seen);
            put_u64(out, self.heartbeat_every);
            put_u64(out, self.shard_id);
        });
        put_section(out, SEC_STATE, |out| match &self.trivial {
            Some(t) => {
                put_u64(out, 1);
                t.encode(out);
            }
            None => {
                put_u64(out, 0);
                self.fps
                    .as_ref()
                    .expect("non-trivial estimator has fingerprints")
                    .encode(out);
                put_u64(out, self.lanes.len() as u64);
                for lane in &self.lanes {
                    lane.encode(out);
                }
            }
        });
        put_section(out, SEC_TELEMETRY, |out| {
            put_u64(out, self.heartbeats.len() as u64);
            for snap in &self.heartbeats {
                snap.encode(out);
            }
            self.hists.encode(out);
            self.last_stats.encode(out);
            self.times.encode(out);
        });
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{
            err, expect_section_end, take_f64, take_header, take_section, take_u64,
        };
        take_header(input, TAG_ESTIMATOR)?;

        let mut shape = take_section(input, SEC_SHAPE)?;
        let n = take_u64(&mut shape)? as usize;
        let m = take_u64(&mut shape)? as usize;
        let k = take_u64(&mut shape)? as usize;
        let alpha = take_f64(&mut shape)?;
        let threads = take_u64(&mut shape)? as usize;
        let edges_seen = take_u64(&mut shape)?;
        let heartbeat_every = take_u64(&mut shape)?;
        let shard_id = take_u64(&mut shape)?;
        expect_section_end(SEC_SHAPE, shape)?;
        if n < 1 || m < 1 || k < 1 {
            return Err(err("estimator shape needs n, m, k >= 1"));
        }
        if alpha.is_nan() || alpha < 1.0 {
            return Err(err("estimator alpha must be >= 1"));
        }

        let mut state = take_section(input, SEC_STATE)?;
        let (trivial, fps, lanes) = match take_u64(&mut state)? {
            1 => (Some(TrivialState::decode(&mut state)?), None, Vec::new()),
            0 => {
                let fps = EdgeFingerprints::decode(&mut state)?;
                let num = take_u64(&mut state)? as usize;
                if num > state.len() {
                    return Err(err("estimator lane count exceeds input"));
                }
                let lanes = (0..num).map(|_| Lane::decode(&mut state)).collect::<Result<Vec<_>, _>>()?;
                (None, Some(fps), lanes)
            }
            flag => return Err(err(format!("bad estimator regime flag {flag}"))),
        };
        expect_section_end(SEC_STATE, state)?;

        let mut telem = take_section(input, SEC_TELEMETRY)?;
        let num_snaps = take_u64(&mut telem)? as usize;
        if num_snaps > telem.len() {
            return Err(err("estimator heartbeat count exceeds input"));
        }
        let heartbeats = (0..num_snaps)
            .map(|_| HeartbeatSnap::decode(&mut telem))
            .collect::<Result<Vec<_>, _>>()?;
        let hists = IngestHists::decode(&mut telem)?;
        let last_stats = SketchStats::decode(&mut telem)?;
        let times = StageTimes::decode(&mut telem)?;
        expect_section_end(SEC_TELEMETRY, telem)?;

        Ok(MaxCoverEstimator {
            n,
            m,
            k,
            alpha,
            threads: threads.max(1),
            trivial,
            fps,
            block: FingerprintBlock::default(),
            lanes,
            rec: Recorder::disabled(),
            edges_seen,
            heartbeat_every,
            shard_id,
            heartbeats,
            hists,
            last_stats,
            times,
        })
    }
}

impl SpaceUsage for MaxCoverEstimator {
    fn space_words(&self) -> usize {
        self.trivial.as_ref().map_or(0, TrivialState::space_words)
            + self.fps.as_ref().map_or(0, SpaceUsage::space_words)
            // The shared universe mix, counted once (each lane's reducer
            // carries a 1-word handle).
            + self.lanes.first().map_or(0, |l| l.reducer.mix_words())
            + self
                .lanes
                .iter()
                .map(|l| l.oracle.space_words() + l.reducer.space_words())
                .sum::<usize>()
    }

    /// The root of the space-attribution tree. Child names deliberately
    /// match the finalize-time `"subroutine"` event names (`trivial`,
    /// `fingerprints`, the shared `universe` mix, per-lane
    /// `reducer`/`set_base`/`large_common`/`large_set`/`small_set`) so
    /// `maxkcov prof` can cross-check each subtree against its event's
    /// `space_words`.
    fn space_ledger(&self, node: &mut LedgerNode) {
        if let Some(t) = &self.trivial {
            t.space_ledger(node.child("trivial"));
        }
        if let Some(fps) = &self.fps {
            fps.space_ledger(node.child("fingerprints"));
        }
        if let Some(lane) = self.lanes.first() {
            node.leaf("universe", lane.reducer.mix_words());
        }
        for (i, lane) in self.lanes.iter().enumerate() {
            let ln = node.child(&format!("lane{i}"));
            lane.reducer.space_ledger(ln.child("reducer"));
            lane.oracle.space_ledger(ln);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_baselines::greedy_max_cover;
    use kcov_stream::gen::{common_heavy, few_large, many_small, planted_cover};
    use kcov_stream::{edge_stream, ArrivalOrder};

    /// Test config: coarser z-grid (factor 4) and 2 reps — a constant-
    /// factor coarsening that keeps tests fast; experiments use the
    /// full grid in release builds.
    fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
        let mut config = EstimatorConfig::practical(seed);
        let mut zs = Vec::new();
        let mut z = 16u64;
        while z < 2 * n as u64 {
            zs.push(z);
            z *= 4;
        }
        config.z_guesses = Some(zs);
        config.reps = Some(2);
        config
    }

    fn estimate(
        system: &kcov_stream::SetSystem,
        k: usize,
        alpha: f64,
        seed: u64,
    ) -> EstimateOutcome {
        let config = fast_config(seed, system.num_elements());
        let edges = edge_stream(system, ArrivalOrder::Shuffled(seed));
        MaxCoverEstimator::run(
            system.num_elements(),
            system.num_sets(),
            k,
            alpha,
            &config,
            &edges,
        )
    }

    #[test]
    fn trivial_branch_when_k_alpha_exceeds_m() {
        // k·α = 40 ≥ m = 20 → trivial regime: the estimate is the best
        // Observation-2.4 group's (discounted) coverage, sound even
        // when the family covers little of U.
        let config = EstimatorConfig::practical(1);
        let mut est = MaxCoverEstimator::new(100, 20, 10, 4.0, &config);
        assert_eq!(est.num_lanes(), 0);
        // Feed a family covering exactly 40 elements: sets 0..10 cover
        // two elements each (sets 10..20 are empty).
        for s in 0..10u32 {
            est.observe(Edge::new(s, 2 * s));
            est.observe(Edge::new(s, 2 * s + 1));
        }
        let out = est.finalize();
        assert!(out.trivial);
        // Group {0..10} covers 20 elements; sound and within a small
        // factor of the true OPT(10) = 20.
        assert!(out.estimate <= 22.0, "overestimate: {}", out.estimate);
        assert!(out.estimate >= 8.0, "uselessly small: {}", out.estimate);
    }

    #[test]
    fn trivial_branch_empty_family_estimates_zero() {
        // The paper's literal `return n/α` would report 25 here; the
        // coverage-tracked variant correctly reports 0.
        let config = EstimatorConfig::practical(1);
        let est = MaxCoverEstimator::new(100, 20, 10, 4.0, &config);
        let out = est.finalize();
        assert!(out.trivial);
        assert_eq!(out.estimate, 0.0);
    }

    #[test]
    fn sandwich_on_planted_instance() {
        // est ∈ [OPT/Õ(α), OPT] on a planted instance.
        let inst = planted_cover(2000, 200, 10, 0.8, 40, 5);
        let opt = inst.planted_coverage as f64; // 1600
        let out = estimate(&inst.system, 10, 4.0, 7);
        assert!(out.estimate > 0.0, "estimator silent");
        assert!(
            out.estimate <= opt * 1.1,
            "overestimate: {} vs OPT {opt}",
            out.estimate
        );
        assert!(
            out.estimate >= opt / (4.0 * 40.0),
            "underestimate: {} vs OPT {opt}",
            out.estimate
        );
    }

    #[test]
    fn never_overestimates_across_regimes_and_seeds() {
        let cases: Vec<(kcov_stream::SetSystem, usize, f64)> = vec![
            (common_heavy(1000, 300, 1), 10, 5.0),
            (few_large(1000, 200, 3, 250, 2), 10, 5.0),
            (many_small(1000, 300, 30, 0.6, 3), 30, 5.0),
        ];
        for (i, (system, k, opt_like)) in cases.into_iter().enumerate() {
            let _ = opt_like;
            let g = greedy_max_cover(&system, k).coverage as f64;
            let opt_ub = g / (1.0 - 1.0 / std::f64::consts::E);
            for seed in 0..3u64 {
                let out = estimate(&system, k, 5.0, seed);
                assert!(
                    out.estimate <= opt_ub * 1.1,
                    "case {i} seed {seed}: {} > {opt_ub}",
                    out.estimate
                );
            }
        }
    }

    #[test]
    fn space_decreases_with_alpha() {
        let config = EstimatorConfig::practical(3);
        let small_alpha = MaxCoverEstimator::new(4000, 1000, 8, 2.0, &config).space_words();
        let large_alpha = MaxCoverEstimator::new(4000, 1000, 8, 16.0, &config).space_words();
        assert!(
            small_alpha as f64 > 1.5 * large_alpha as f64,
            "alpha=2 {small_alpha} vs alpha=16 {large_alpha}"
        );
    }

    #[test]
    fn single_z_guess_config() {
        let mut config = EstimatorConfig::practical(5);
        config.z_guesses = Some(vec![512]);
        config.reps = Some(2);
        let est = MaxCoverEstimator::new(2000, 300, 10, 4.0, &config);
        assert_eq!(est.num_lanes(), 2);
    }

    #[test]
    fn order_invariance_of_estimates() {
        // Single-pass sketches here are order-insensitive by
        // construction; the full estimator inherits that.
        let inst = planted_cover(800, 120, 8, 0.7, 30, 9);
        let config = fast_config(11, 800);
        let n = inst.system.num_elements();
        let m = inst.system.num_sets();
        let e1 = edge_stream(&inst.system, ArrivalOrder::SetContiguous);
        let e2 = edge_stream(&inst.system, ArrivalOrder::Shuffled(4));
        let r1 = MaxCoverEstimator::run(n, m, 8, 3.0, &config, &e1);
        let r2 = MaxCoverEstimator::run(n, m, 8, 3.0, &config, &e2);
        let rel = (r1.estimate - r2.estimate).abs() / r1.estimate.max(1.0);
        assert!(rel < 0.35, "order sensitivity too high: {} vs {}", r1.estimate, r2.estimate);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn alpha_below_one_rejected() {
        let _ = MaxCoverEstimator::new(10, 10, 2, 0.9, &EstimatorConfig::practical(1));
    }

    #[test]
    fn merge_matches_serial_ingestion() {
        let inst = planted_cover(800, 120, 8, 0.7, 30, 21);
        let n = inst.system.num_elements();
        let m = inst.system.num_sets();
        let config = fast_config(13, n);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
        let mid = edges.len() / 3;

        let mut serial = MaxCoverEstimator::new(n, m, 8, 3.0, &config);
        for &e in &edges {
            serial.observe(e);
        }
        let mut a = MaxCoverEstimator::new(n, m, 8, 3.0, &config);
        let mut b = a.clone();
        for &e in &edges[..mid] {
            a.observe(e);
        }
        for &e in &edges[mid..] {
            b.observe(e);
        }
        a.merge(&b);

        let s = serial.finalize();
        let g = a.finalize();
        assert_eq!(s.estimate.to_bits(), g.estimate.to_bits());
        assert_eq!(s.winning_z, g.winning_z);
        assert_eq!(s.winner, g.winner);
    }

    #[test]
    fn merge_matches_serial_in_trivial_regime() {
        let config = EstimatorConfig::practical(1);
        let mut serial = MaxCoverEstimator::new(100, 20, 10, 4.0, &config);
        let mut a = MaxCoverEstimator::new(100, 20, 10, 4.0, &config);
        let mut b = a.clone();
        for s in 0..10u32 {
            serial.observe(Edge::new(s, 2 * s));
            serial.observe(Edge::new(s, 2 * s + 1));
            if s < 5 {
                a.observe(Edge::new(s, 2 * s));
                a.observe(Edge::new(s, 2 * s + 1));
            } else {
                b.observe(Edge::new(s, 2 * s));
                b.observe(Edge::new(s, 2 * s + 1));
            }
        }
        a.merge(&b);
        let s = serial.finalize();
        let g = a.finalize();
        assert!(s.trivial && g.trivial);
        assert_eq!(s.estimate.to_bits(), g.estimate.to_bits());
        assert_eq!(s.space_words, g.space_words);
    }

    #[test]
    fn time_ledger_merges_additively_across_shards() {
        let inst = planted_cover(800, 120, 8, 0.7, 30, 21);
        let n = inst.system.num_elements();
        let m = inst.system.num_sets();
        let config = fast_config(13, n);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));

        for shards in [1usize, 2, 4, 7] {
            let rec = Recorder::enabled();
            let chunk_len = edges.len().div_ceil(shards);
            let mut replicas: Vec<MaxCoverEstimator> = (0..shards)
                .map(|_| {
                    let mut r = MaxCoverEstimator::new(n, m, 8, 3.0, &config);
                    r.attach_recorder(&rec);
                    r
                })
                .collect();
            for (replica, part) in replicas.iter_mut().zip(edges.chunks(chunk_len)) {
                for chunk in part.chunks(64) {
                    replica.observe_batch(chunk);
                }
            }

            // Per-subtree expectations before the fold: attribution is a
            // plain sum of u64 counters, so Σ shard ns must equal the
            // merged ns *exactly* — not approximately.
            let part_total: u64 =
                replicas.iter().map(|r| r.time_ledger_tree().root.total_ns()).sum();
            let mut subtree: Vec<(String, u64)> = Vec::new();
            for r in &replicas {
                for (name, node) in r.time_ledger_tree().root.children() {
                    match subtree.iter_mut().find(|(n, _)| n == name) {
                        Some((_, ns)) => *ns += node.total_ns(),
                        None => subtree.push((name.to_string(), node.total_ns())),
                    }
                }
            }
            assert!(part_total > 0, "shards={shards}: traced ingestion attributed no ns");

            let mut merged = replicas.remove(0);
            for r in &replicas {
                merged.merge(r);
            }
            let ledger = merged.time_ledger_tree();
            assert_eq!(
                ledger.root.total_ns(),
                part_total,
                "shards={shards}: merged root ns is not the exact shard sum"
            );
            for (name, want) in &subtree {
                let got = ledger.root.get(name).map_or(0, kcov_obs::TimeNode::total_ns);
                assert_eq!(got, *want, "shards={shards}: subtree '{name}' not additive");
            }
            assert!(
                ledger.audit().is_empty(),
                "shards={shards}: merged ledger fails audit: {:?}",
                ledger.audit()
            );
        }
    }

    #[test]
    #[should_panic(expected = "identical configuration (instance shape)")]
    fn merge_rejects_shape_mismatch() {
        let config = fast_config(3, 800);
        let mut a = MaxCoverEstimator::new(800, 120, 8, 3.0, &config);
        let b = MaxCoverEstimator::new(800, 120, 9, 3.0, &config);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration (lane count)")]
    fn merge_rejects_lane_count_mismatch() {
        let mut c1 = fast_config(3, 800);
        let mut c2 = c1.clone();
        c1.reps = Some(2);
        c2.reps = Some(3);
        let mut a = MaxCoverEstimator::new(800, 120, 8, 3.0, &c1);
        let b = MaxCoverEstimator::new(800, 120, 8, 3.0, &c2);
        a.merge(&b);
    }

    #[test]
    fn ingest_sharded_matches_serial_run() {
        let inst = planted_cover(600, 100, 6, 0.7, 20, 31);
        let n = inst.system.num_elements();
        let m = inst.system.num_sets();
        let config = fast_config(17, n);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(5));
        let serial = MaxCoverEstimator::run(n, m, 6, 3.0, &config, &edges);
        for shards in [1usize, 3, 4] {
            let sharded_config = config.clone().with_shards(shards);
            let out =
                MaxCoverEstimator::run_sharded(n, m, 6, 3.0, &sharded_config, &edges, 128);
            assert_eq!(
                serial.estimate.to_bits(),
                out.estimate.to_bits(),
                "shards={shards}"
            );
            assert_eq!(serial.winning_z, out.winning_z, "shards={shards}");
            assert_eq!(serial.winner, out.winner, "shards={shards}");
        }
    }

    #[test]
    fn space_ledger_attributes_every_word_per_lane() {
        let inst = planted_cover(600, 100, 6, 0.7, 20, 31);
        let n = inst.system.num_elements();
        let m = inst.system.num_sets();
        let config = fast_config(17, n);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(5));
        let mut est = MaxCoverEstimator::new(n, m, 6, 3.0, &config);
        est.ingest_sharded(&edges, 1, 256);
        let ledger = est.space_ledger_tree();
        assert!(ledger.audit().is_empty(), "{:?}", ledger.audit());
        assert_eq!(ledger.total_words(), est.space_words() as u64);
        // Per-lane partial sums match the PR 3 accounting exactly.
        assert!(!est.lanes.is_empty());
        for (i, lane) in est.lanes.iter().enumerate() {
            let node = ledger.root.get(&format!("lane{i}")).expect("lane subtree");
            assert_eq!(
                node.total_words(),
                (lane.oracle.space_words() + lane.reducer.space_words()) as u64,
                "lane {i}"
            );
        }
        let fps = ledger.root.get("fingerprints").expect("fingerprint subtree");
        assert_eq!(
            fps.total_words(),
            est.fps.as_ref().unwrap().space_words() as u64
        );
        // The stream left heat somewhere in the tree.
        assert!(ledger.root.total_updates() > 0, "no heat recorded");
    }

    #[test]
    fn space_ledger_covers_the_trivial_regime() {
        let config = EstimatorConfig::practical(1);
        let mut est = MaxCoverEstimator::new(100, 20, 10, 4.0, &config);
        for s in 0..10u32 {
            est.observe(Edge::new(s, 2 * s));
            est.observe(Edge::new(s, 2 * s + 1));
        }
        let ledger = est.space_ledger_tree();
        assert!(ledger.audit().is_empty(), "{:?}", ledger.audit());
        assert_eq!(ledger.total_words(), est.space_words() as u64);
        let trivial = ledger.root.get("trivial").expect("trivial subtree");
        assert_eq!(
            trivial.total_words(),
            est.trivial.as_ref().unwrap().space_words() as u64
        );
        assert!(trivial.total_updates() > 0, "trivial L0s carry heat");
    }

    #[test]
    fn sharded_ingestion_with_more_shards_than_edges() {
        // chunks() yields fewer parts than shards, so some replicas are
        // never created; the outcome must still match serial ingestion.
        let config = fast_config(19, 800);
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        let serial = MaxCoverEstimator::run(800, 120, 8, 3.0, &config, &edges);
        let sharded_config = config.clone().with_shards(7);
        let out = MaxCoverEstimator::run_sharded(800, 120, 8, 3.0, &sharded_config, &edges, 64);
        assert_eq!(serial.estimate.to_bits(), out.estimate.to_bits());
    }
}
