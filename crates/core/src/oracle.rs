//! The `(α, δ, η)`-oracle — paper §4, Fig 2 and Definition 3.4.
//!
//! Runs the three subroutines in parallel over the same single pass and
//! returns the maximum of their (individually sound) estimates:
//!
//! * [`crate::LargeCommon`] fires when some frequency layer has many
//!   common elements (case I);
//! * [`crate::LargeSet`] fires when an optimal solution is dominated by
//!   large sets (case II) — including automatically whenever
//!   `sα ≥ 2k` (Claim 4.3);
//! * [`crate::SmallSet`] fires when the optimum is many small sets
//!   (case III; only instantiated when `sα < 2k`).
//!
//! Contract (Definition 3.4 with `η = 4`): if the optimum covers at
//! least `|U|/η` then with good probability the output is at least
//! `|C(OPT)|/Õ(α)`; and the output never exceeds `|C(OPT)|` (w.h.p.).

use std::sync::Arc;

use kcov_hash::{KWise, RangeHash};
use kcov_obs::{Recorder, SketchStats, Value};
use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

use crate::large_common::LargeCommon;
use crate::large_set::LargeSet;
use crate::params::Params;
use crate::small_set::SmallSet;
use crate::Witness;

/// Which subroutine produced the winning estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubroutineKind {
    /// Multi-layered set sampling (§4.1).
    LargeCommon,
    /// Heavy hitters / contributing classes (§4.2, Appendix B).
    LargeSet,
    /// Set + element sampling (§4.3).
    SmallSet,
}

impl SubroutineKind {
    /// Stable lowercase identifier used in structured event streams.
    pub fn name(self) -> &'static str {
        match self {
            SubroutineKind::LargeCommon => "large_common",
            SubroutineKind::LargeSet => "large_set",
            SubroutineKind::SmallSet => "small_set",
        }
    }
}

/// Per-subroutine estimates at finalize time: `None` means infeasible
/// (or, for [`OracleDiagnostics::small_set`], inactive). Returned by
/// [`Oracle::diagnostics`] and surfaced in the CLI metrics output.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OracleDiagnostics {
    /// Case I (multi-layered set sampling) estimate.
    pub large_common: Option<f64>,
    /// Case II (heavy hitters / contributing classes) estimate.
    pub large_set: Option<f64>,
    /// Case III (set + element sampling) estimate; `None` also when the
    /// subroutine is disabled (`sα ≥ 2k`).
    pub small_set: Option<f64>,
}

impl OracleDiagnostics {
    /// The best feasible subroutine estimate, if any fired.
    pub fn best(&self) -> Option<f64> {
        [self.large_common, self.large_set, self.small_set]
            .into_iter()
            .flatten()
            .reduce(f64::max)
    }
}

/// The oracle's answer.
#[derive(Debug, Clone)]
pub struct OracleOutput {
    /// The estimate (0.0 when every subroutine reported infeasible).
    pub estimate: f64,
    /// The winning subroutine, if any.
    pub winner: Option<SubroutineKind>,
    /// The winner's reporting witness.
    pub witness: Option<Witness>,
}

/// Single-pass `(α, δ, η)`-oracle of `Max k-Cover` (Fig 2).
#[derive(Debug, Clone)]
pub struct Oracle {
    u: usize,
    /// Shared set fingerprint base (hash-once hot path); every
    /// subroutine holds the same `Arc` and consumes the one fingerprint
    /// the caller (or the scalar compatibility path) computes per edge.
    /// One coefficient table per process: the ledger attributes the
    /// words to the owning fingerprint front end, holders count the
    /// 1-word handle.
    set_base: Arc<KWise>,
    large_common: LargeCommon,
    large_set: LargeSet,
    small_set: Option<SmallSet>,
}

impl Oracle {
    /// Create an oracle for universe size `u` (the pseudo-universe after
    /// reduction; `params.n` is ignored in favour of `u`) with a private
    /// set fingerprint base. Estimator lanes share one base across every
    /// lane via [`Oracle::with_base`]. `reporting` enables the witness
    /// machinery of Theorem 3.2.
    pub fn new(u: usize, params: &Params, reporting: bool, seed: u64) -> Self {
        let degree = Params::hash_degree(params.mode, params.m, params.n);
        let base_seed = kcov_hash::SeedSequence::labeled(seed, "oracle-base").next_seed();
        Self::with_base(u, params, reporting, seed, Arc::new(KWise::new(degree, base_seed)))
    }

    /// Create an oracle whose subroutines consume set fingerprints under
    /// the shared `set_base`.
    pub fn with_base(
        u: usize,
        params: &Params,
        reporting: bool,
        seed: u64,
        set_base: Arc<KWise>,
    ) -> Self {
        let mut seq = kcov_hash::SeedSequence::labeled(seed, "oracle");
        Oracle {
            u,
            large_common: LargeCommon::with_base(
                u,
                params,
                reporting,
                seq.next_seed(),
                set_base.clone(),
            ),
            large_set: LargeSet::with_base(u, params, seq.next_seed(), set_base.clone()),
            small_set: params
                .small_set_active()
                .then(|| SmallSet::with_base(u, params, seq.next_seed(), set_base.clone())),
            set_base,
        }
    }

    /// Observe one `(set, element)` edge (element already reduced;
    /// scalar compatibility path — applies the fingerprint base itself).
    pub fn observe(&mut self, edge: Edge) {
        let fp = self.set_base.hash(edge.set as u64);
        self.observe_fp(edge, fp);
    }

    /// Observe one reduced edge given its precomputed set fingerprint
    /// `set_base(edge.set)` — the hash-once hot path.
    #[inline]
    pub fn observe_fp(&mut self, edge: Edge, fp_set: u64) {
        self.large_common.observe_fp(edge, fp_set);
        self.large_set.observe_fp(edge, fp_set);
        if let Some(ss) = &mut self.small_set {
            ss.observe_fp(edge, fp_set);
        }
    }

    /// Observe a chunk of edges (elements already reduced; scalar
    /// compatibility path).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        let fps: Vec<u64> = edges.iter().map(|e| self.set_base.hash(e.set as u64)).collect();
        self.observe_fp_batch(edges, &fps);
    }

    /// Observe a chunk given precomputed set fingerprints (`fps[i]`
    /// must be `set_base(edges[i].set)`; set ids pass through universe
    /// reduction unchanged, so the estimator computes the fingerprints
    /// once against the *raw* stream and every lane reuses them): each
    /// subroutine consumes the whole chunk in turn, preserving arrival
    /// order within every subroutine, so the final state is identical
    /// to repeated [`Oracle::observe_fp`].
    pub fn observe_fp_batch(&mut self, edges: &[Edge], fps: &[u64]) {
        debug_assert_eq!(edges.len(), fps.len());
        self.large_common.observe_fp_batch(edges, fps);
        self.large_set.observe_fp_batch(edges, fps);
        if let Some(ss) = &mut self.small_set {
            ss.observe_fp_batch(edges, fps);
        }
    }

    /// Finalize after the pass: the max of the subroutine estimates,
    /// clamped to the universe size.
    pub fn finalize(&self) -> OracleOutput {
        let mut out = OracleOutput {
            estimate: 0.0,
            winner: None,
            witness: None,
        };
        let candidates = [
            (SubroutineKind::LargeCommon, self.large_common.finalize()),
            (SubroutineKind::LargeSet, self.large_set.finalize()),
            (
                SubroutineKind::SmallSet,
                self.small_set.as_ref().and_then(SmallSet::finalize),
            ),
        ];
        for (kind, cand) in candidates {
            if let Some((est, witness)) = cand {
                let est = est.min(self.u as f64);
                if est > out.estimate {
                    out = OracleOutput {
                        estimate: est,
                        winner: Some(kind),
                        witness: Some(witness),
                    };
                }
            }
        }
        out
    }

    /// Access to the case-I subroutine (reporting expansion).
    pub fn large_common(&self) -> &LargeCommon {
        &self.large_common
    }

    /// Access to the case-II subroutine (reporting expansion).
    pub fn large_set(&self) -> &LargeSet {
        &self.large_set
    }

    /// Access to the case-III subroutine, when active.
    pub fn small_set(&self) -> Option<&SmallSet> {
        self.small_set.as_ref()
    }

    /// Per-subroutine telemetry: each subroutine's estimate (`None` =
    /// infeasible / inactive). Used by the ablation experiments, the
    /// CLI metrics output, and finalize-time snapshots.
    pub fn diagnostics(&self) -> OracleDiagnostics {
        OracleDiagnostics {
            large_common: self.large_common.finalize().map(|(v, _)| v),
            large_set: self.large_set.finalize().map(|(v, _)| v),
            small_set: self
                .small_set
                .as_ref()
                .and_then(SmallSet::finalize)
                .map(|(v, _)| v),
        }
    }

    /// Emit the finalize-time observability snapshot for this oracle:
    /// one "subroutine" event (estimate + resident space) per active
    /// subroutine and one "sketch" event with its aggregated sketch
    /// telemetry, all tagged with the owning estimator lane. Infeasible
    /// estimates are recorded as JSON `null` (NaN sentinel). No-op when
    /// `rec` is disabled.
    pub fn record_snapshot(&self, rec: &Recorder, lane: usize) {
        if !rec.is_enabled() {
            return;
        }
        let d = self.diagnostics();
        let subs: [(&str, Option<f64>, Option<usize>); 4] = [
            // The oracle's 1-word handle on the shared set-fingerprint
            // base (the coefficients are attributed to their owner, the
            // estimator's fingerprint front end; subroutine handles are
            // accounted by the subroutines themselves).
            ("set_base", None, Some(1)),
            (
                "large_common",
                d.large_common,
                Some(self.large_common.space_words()),
            ),
            ("large_set", d.large_set, Some(self.large_set.space_words())),
            (
                "small_set",
                d.small_set,
                self.small_set.as_ref().map(SpaceUsage::space_words),
            ),
        ];
        for (name, est, words) in subs {
            let Some(words) = words else { continue };
            rec.event(
                "subroutine",
                &[
                    ("lane", Value::from(lane as u64)),
                    ("name", Value::from(name)),
                    ("estimate", Value::from(est.unwrap_or(f64::NAN))),
                    ("space_words", Value::from(words)),
                ],
            );
        }
        let scope = |name: &str| format!("lane{lane}.{name}");
        rec.sketch(&scope("large_common"), "l0", self.large_common.sketch_stats());
        rec.sketch(&scope("large_set"), "candidates", self.large_set.sketch_stats());
        if let Some(ss) = &self.small_set {
            rec.sketch(&scope("small_set"), "edge_store", ss.sketch_stats());
        }
    }

    /// Cheap per-subroutine fill snapshot for heartbeat telemetry:
    /// `(large_common, large_set, small_set)` sketch stats, harvested
    /// from the plain counters the subroutines already maintain (no
    /// finalize, no estimate extraction — safe to call mid-stream at
    /// heartbeat cadence).
    pub fn heartbeat_stats(&self) -> (SketchStats, SketchStats, Option<SketchStats>) {
        (
            self.large_common.sketch_stats(),
            self.large_set.sketch_stats(),
            self.small_set.as_ref().map(SmallSet::sketch_stats),
        )
    }

    /// Merge an oracle built with the same parameters and seed over a
    /// disjoint stream shard: delegates to each subroutine's merge.
    /// Panics on configuration or seed mismatch (including one side
    /// having the `SmallSet` branch active and the other not).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.u, other.u, "Oracle merge requires identical configuration (universe)");
        assert_eq!(
            self.small_set.is_some(),
            other.small_set.is_some(),
            "Oracle merge requires identical configuration (SmallSet activation)"
        );
        assert_eq!(
            self.set_base.hash(0x5eed_c0de),
            other.set_base.hash(0x5eed_c0de),
            "Oracle merge requires identical hash functions"
        );
        self.large_common.merge(&other.large_common);
        self.large_set.merge(&other.large_set);
        if let (Some(a), Some(b)) = (&mut self.small_set, &other.small_set) {
            a.merge(b);
        }
    }

    /// Expand a witness into concrete set indices (at most `k` after the
    /// caller's truncation; see `report` module for the full policy).
    pub fn expand_witness(&self, witness: &Witness) -> Vec<u32> {
        match witness {
            Witness::SampledGroup { lane, group } => self.large_common.group_sets(*lane, *group),
            Witness::Superset { rep, superset } => {
                self.large_set.superset_members(*rep, *superset)
            }
            Witness::ExplicitSets(sets) => sets.clone(),
        }
    }
}

// ---- wire format ----------------------------------------------------

const TAG_ORACLE: u64 = 0x4f52_4143_4c45; // "ORACLE"

impl kcov_sketch::WireEncode for Oracle {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_kwise, put_u64};
        put_u64(out, TAG_ORACLE);
        put_u64(out, self.u as u64);
        put_kwise(out, &self.set_base);
        self.large_common.encode(out);
        self.large_set.encode(out);
        match &self.small_set {
            None => put_u64(out, 0),
            Some(ss) => {
                put_u64(out, 1);
                ss.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_kwise, take_u64};
        if take_u64(input)? != TAG_ORACLE {
            return Err(err("bad Oracle tag"));
        }
        let u = take_u64(input)? as usize;
        let set_base = Arc::new(take_kwise(input)?);
        let large_common = LargeCommon::decode(input)?;
        let large_set = LargeSet::decode(input)?;
        let small_set = match take_u64(input)? {
            0 => None,
            1 => Some(SmallSet::decode(input)?),
            flag => return Err(err(format!("bad Oracle SmallSet flag {flag}"))),
        };
        Ok(Oracle {
            u,
            set_base,
            large_common,
            large_set,
            small_set,
        })
    }
}

impl SpaceUsage for Oracle {
    fn space_words(&self) -> usize {
        // 1-word handle on the shared base; the coefficients are counted
        // once by their owner.
        1 + self.large_common.space_words()
            + self.large_set.space_words()
            + self.small_set.as_ref().map_or(0, SpaceUsage::space_words)
    }

    /// Mirrors `space_words` with one child per subroutine — the same
    /// names the `subroutine` trace events use, so `maxkcov prof` can
    /// cross-check each subtree against its event's `space_words`.
    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        node.leaf("set_base", 1);
        self.large_common.space_ledger(node.child("large_common"));
        self.large_set.space_ledger(node.child("large_set"));
        if let Some(ss) = &self.small_set {
            ss.space_ledger(node.child("small_set"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{common_heavy, few_large, many_small};
    use kcov_stream::{edge_stream, ArrivalOrder};

    fn run_oracle(
        system: &kcov_stream::SetSystem,
        k: usize,
        alpha: f64,
        seed: u64,
    ) -> OracleOutput {
        let params = Params::practical(system.num_sets(), system.num_elements(), k, alpha);
        let mut oracle = Oracle::new(system.num_elements(), &params, false, seed);
        for e in edge_stream(system, ArrivalOrder::Shuffled(seed)) {
            oracle.observe(e);
        }
        oracle.finalize()
    }

    #[test]
    fn fires_on_all_three_regimes() {
        let regimes: [(&str, kcov_stream::SetSystem, usize); 3] = [
            ("common-heavy", common_heavy(2000, 400, 1), 10),
            ("few-large", few_large(2000, 300, 3, 500, 1), 10),
            ("many-small", many_small(2000, 400, 50, 0.5, 1), 50),
        ];
        for (name, system, k) in regimes {
            let out = run_oracle(&system, k, 6.0, 42);
            assert!(
                out.estimate > 0.0,
                "oracle silent on {name} (winner {:?})",
                out.winner
            );
        }
    }

    #[test]
    fn estimate_never_exceeds_universe() {
        let system = common_heavy(500, 200, 3);
        let out = run_oracle(&system, 10, 2.0, 7);
        assert!(out.estimate <= 500.0);
    }

    #[test]
    fn winner_matches_regime_for_small_sets() {
        // A needle-in-haystack variant of regime III: the planted
        // optimum is 50 small sets, the decoys are near-empty, so a
        // *random* k sets cover little (starving LargeCommon) and no
        // set is individually heavy (starving LargeSet) — SmallSet must
        // win.
        let inst = kcov_stream::gen::planted_cover(2000, 400, 50, 0.4, 2, 3);
        let out = run_oracle(&inst.system, 50, 8.0, 11);
        assert_eq!(
            out.winner,
            Some(SubroutineKind::SmallSet),
            "est {}",
            out.estimate
        );
    }

    #[test]
    fn witness_expansion_nonempty_when_winner() {
        let system = few_large(2000, 300, 3, 500, 2);
        let params = Params::practical(300, 2000, 10, 6.0);
        let mut oracle = Oracle::new(2000, &params, true, 5);
        for e in edge_stream(&system, ArrivalOrder::Shuffled(1)) {
            oracle.observe(e);
        }
        let out = oracle.finalize();
        if let Some(w) = &out.witness {
            assert!(!oracle.expand_witness(w).is_empty());
        } else {
            panic!("expected a winner on regime II");
        }
    }

    #[test]
    fn small_set_disabled_when_salpha_large() {
        // k = 1 with alpha >= 8 → s_alpha = 2 >= 2k → SmallSet off.
        let params = Params::practical(500, 500, 1, 8.0);
        let oracle = Oracle::new(500, &params, false, 1);
        assert!(oracle.small_set().is_none());
    }

    #[test]
    fn diagnostics_mirror_finalize() {
        let system = common_heavy(800, 300, 5);
        let params = Params::practical(300, 800, 10, 4.0);
        let mut oracle = Oracle::new(800, &params, false, 3);
        for e in edge_stream(&system, ArrivalOrder::Shuffled(2)) {
            oracle.observe(e);
        }
        let d = oracle.diagnostics();
        let best = d.best().unwrap_or(0.0).min(800.0);
        let out = oracle.finalize();
        assert!((out.estimate - best).abs() < 1e-9, "max of diagnostics must match");
    }

    #[test]
    fn merge_matches_serial_across_regimes() {
        let regimes: [(&str, kcov_stream::SetSystem, usize); 3] = [
            ("common-heavy", common_heavy(2000, 400, 9), 10),
            ("few-large", few_large(2000, 300, 3, 500, 9), 10),
            ("many-small", many_small(2000, 400, 50, 0.5, 9), 50),
        ];
        for (name, system, k) in regimes {
            let params = Params::practical(system.num_sets(), system.num_elements(), k, 6.0);
            let edges = edge_stream(&system, ArrivalOrder::Shuffled(13));
            let proto = Oracle::new(system.num_elements(), &params, true, 19);
            let mut serial = proto.clone();
            for &e in &edges {
                serial.observe(e);
            }
            let (head, tail) = edges.split_at(edges.len() / 3);
            let mut left = proto.clone();
            let mut right = proto;
            for &e in head {
                left.observe(e);
            }
            for &e in tail {
                right.observe(e);
            }
            left.merge(&right);
            let a = serial.finalize();
            let b = left.finalize();
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{name}: estimate");
            assert_eq!(a.winner, b.winner, "{name}: winner");
            assert_eq!(a.witness, b.witness, "{name}: witness");
        }
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_small_set_activation_mismatch() {
        // k = 1, alpha = 8 disables SmallSet; k = 5 keeps it on.
        let p_off = Params::practical(500, 500, 1, 8.0);
        let p_on = Params::practical(500, 500, 5, 2.0);
        let mut a = Oracle::new(500, &p_off, false, 1);
        let b = Oracle::new(500, &p_on, false, 1);
        a.merge(&b);
    }

    #[test]
    fn empty_stream_gives_zero() {
        let params = Params::practical(100, 100, 5, 2.0);
        let oracle = Oracle::new(100, &params, false, 1);
        let out = oracle.finalize();
        assert_eq!(out.estimate, 0.0);
        assert!(out.winner.is_none());
    }
}
