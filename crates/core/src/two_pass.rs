//! Two-pass refinement — an *extension* beyond the paper.
//!
//! The paper is strictly single-pass; its guess grid pays a `log n`
//! factor in space because every `z = 2^i` runs its own oracle in
//! parallel. When the stream can be replayed (stored logs, repeatable
//! scans — the setting of the multi-pass lines of Table 1's set-cover
//! relatives [6, 17]), a second pass removes that factor:
//!
//! * **Pass 1** — the single-pass estimator on a coarse grid produces a
//!   constant-factor-correct guess `ẑ` of the optimal coverage.
//! * **Pass 2** — a single universe-reduced `(α, δ, η)`-oracle tuned to
//!   `z = Θ(ẑ)` runs with the *entire* space/repetition budget,
//!   reporting the cover.
//!
//! Space drops from `Õ(log n · m/α²)` to `Õ(m/α²)` per pass, and the
//! lone oracle can afford more repetitions for the same footprint.

use std::time::Instant;

use kcov_obs::{apportion_by_heat, LedgerNode, Recorder, SketchStats, TimeLedger};
use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

use crate::estimate::{EstimatorConfig, MaxCoverEstimator};
use crate::fingerprint::{EdgeFingerprints, FingerprintBlock};
use crate::oracle::Oracle;
use crate::params::{ParamMode, Params};
use crate::report::ReportedCover;
use crate::telemetry::{self, HeartbeatSnap, IngestHists, LaneBeat, LaneTimes, StageTimes};
use crate::universe::UniverseReducer;

/// Pass 1: estimate the optimal coverage size.
#[derive(Debug, Clone)]
pub struct TwoPassFirst {
    n: usize,
    m: usize,
    k: usize,
    alpha: f64,
    config: EstimatorConfig,
    estimator: MaxCoverEstimator,
}

impl TwoPassFirst {
    /// Start pass 1 with a coarse internal grid (factor-4 guesses, one
    /// repetition — pass 2 restores the lost constants).
    pub fn new(n: usize, m: usize, k: usize, alpha: f64, config: &EstimatorConfig) -> Self {
        let mut pass1_config = config.clone();
        if pass1_config.z_guesses.is_none() {
            let mut zs = Vec::new();
            let mut z = 4u64;
            while z < 2 * n as u64 {
                zs.push(z);
                z *= 4;
            }
            pass1_config.z_guesses = Some(zs);
        }
        pass1_config.reps = Some(pass1_config.reps.unwrap_or(1));
        pass1_config.reporting = false;
        TwoPassFirst {
            n,
            m,
            k,
            alpha,
            config: config.clone(),
            estimator: MaxCoverEstimator::new(n, m, k, alpha, &pass1_config),
        }
    }

    /// Observe one edge of pass 1.
    pub fn observe(&mut self, edge: Edge) {
        self.estimator.observe(edge);
    }

    /// Observe a chunk of pass-1 edges through the batched ingestion
    /// engine (bit-identical to repeated [`TwoPassFirst::observe`]).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        self.estimator.observe_batch(edges);
    }

    /// Merge another pass-1 state built from the same instance shape,
    /// configuration and seed (delegates to
    /// [`MaxCoverEstimator::merge`], so the merged state hands the same
    /// `ẑ` guess to pass 2 as serial ingestion would).
    pub fn merge(&mut self, other: &Self) {
        self.estimator.merge(&other.estimator);
    }

    /// Ingest pass-1 edges through sharded replicas (see
    /// [`MaxCoverEstimator::ingest_sharded`]). Must be called on a
    /// freshly constructed pass-1 state.
    pub fn ingest_sharded(&mut self, edges: &[Edge], shards: usize, batch: usize) {
        self.estimator.ingest_sharded(edges, shards, batch);
    }

    /// Finish pass 1 and build pass 2 around the guess.
    pub fn into_second_pass(self) -> TwoPassSecond {
        let out = self.estimator.finalize();
        // ẑ: prefer the winning z (it already passed the acceptance
        // test); fall back to the estimate, then to n.
        let guess = if out.winning_z > 0 {
            out.winning_z
        } else if out.estimate >= 1.0 {
            out.estimate as u64
        } else {
            self.n as u64
        };
        // Oversample the guess by 4× (the estimate is a lower bound on
        // OPT up to the approximation factor; Lemma 3.5 tolerates
        // |S| ≥ z, so a modestly large z only costs constants).
        let z = (4 * guess).next_power_of_two().clamp(4, 2 * self.n as u64);
        let params = match self.config.mode {
            ParamMode::Paper => Params::paper(self.m, z as usize, self.k, self.alpha),
            ParamMode::Practical => Params::practical(self.m, z as usize, self.k, self.alpha),
        };
        let reps = self.config.reps.unwrap_or(params.reduction_reps).max(2);
        let mut seq = kcov_hash::SeedSequence::labeled(self.config.seed, "two-pass-second");
        // Pass-2 hash-once front end: drawn first (before any lane) from
        // the pass-2 sequence, so it is independent of pass 1's.
        let fps = EdgeFingerprints::new(
            seq.next_seed(),
            Params::hash_degree(self.config.mode, self.m, self.n),
        );
        let lanes = (0..reps)
            .map(|_| {
                (
                    UniverseReducer::with_base(z, seq.next_seed(), fps.elem_base().clone()),
                    Oracle::with_base(
                        z as usize,
                        &params,
                        true,
                        seq.next_seed(),
                        fps.set_base().clone(),
                    ),
                )
            })
            .collect();
        TwoPassSecond {
            k: self.k,
            z,
            pass1_estimate: out.estimate,
            fps,
            block: FingerprintBlock::default(),
            lanes,
            rec: self.config.recorder.clone(),
            edges_seen: 0,
            heartbeat_every: self.config.effective_heartbeat(),
            shard_id: 0,
            heartbeats: Vec::new(),
            hists: IngestHists::default(),
            last_stats: SketchStats::default(),
            times: StageTimes::default(),
            lane_times: vec![LaneTimes::default(); reps],
        }
    }
}

/// Pass 2: a single tuned, reporting oracle (repeated for confidence).
#[derive(Debug, Clone)]
pub struct TwoPassSecond {
    k: usize,
    z: u64,
    pass1_estimate: f64,
    /// The pass-2 hash-once front end: one fingerprint pair per raw
    /// edge, shared by every repetition lane.
    fps: EdgeFingerprints,
    /// Reusable fingerprint-column scratch (never serialized or merged).
    block: FingerprintBlock,
    lanes: Vec<(UniverseReducer, Oracle)>,
    rec: Recorder,
    edges_seen: u64,
    /// Heartbeat cadence in shard-local edges (0 = off); same contract
    /// as the single-pass estimator (see `telemetry` module docs).
    heartbeat_every: u64,
    shard_id: u64,
    heartbeats: Vec<HeartbeatSnap>,
    hists: IngestHists,
    last_stats: SketchStats,
    /// Batch-granular wall totals for the shared fingerprint fill
    /// (pass 2 has no shared universe mix or trivial branch, so only
    /// `hash_ns` is populated).
    times: StageTimes,
    /// Batch-granular wall totals per repetition lane, parallel to
    /// `lanes` (the lanes are plain tuples, so the time state rides in
    /// a sibling vector).
    lane_times: Vec<LaneTimes>,
}

impl TwoPassSecond {
    /// The tuned pseudo-universe size.
    pub fn z(&self) -> u64 {
        self.z
    }

    /// Observe one edge of pass 2 (hash once, share across lanes).
    pub fn observe(&mut self, edge: Edge) {
        self.edges_seen += 1;
        let (fp_set, fp_elem) = self.fps.fingerprint(edge);
        for (reducer, oracle) in &mut self.lanes {
            oracle.observe_fp(Edge::new(edge.set, reducer.map_fp(fp_elem) as u32), fp_set);
        }
        if self.heartbeat_every != 0 && self.edges_seen.is_multiple_of(self.heartbeat_every) {
            self.capture_heartbeat();
        }
    }

    /// Observe a chunk of pass-2 edges: each repetition lane reduces and
    /// consumes the chunk in arrival order (bit-identical to repeated
    /// [`TwoPassSecond::observe`]).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        if edges.is_empty() {
            return;
        }
        // Same batch-granular timing contract as the single-pass
        // estimator: a handful of monotonic reads per chunk (never per
        // edge), none at all while the recorder is disabled.
        let timed = self.rec.is_enabled();
        let start = timed.then(Instant::now);
        let seen_before = self.edges_seen;
        self.edges_seen += edges.len() as u64;
        let mut block = std::mem::take(&mut self.block);
        self.fps.fill_block(edges, &mut block);
        if let Some(start) = start {
            self.times.hash_ns += start.elapsed().as_nanos() as u64;
        }
        let mut scratch = Vec::with_capacity(edges.len());
        for ((reducer, oracle), times) in self.lanes.iter_mut().zip(&mut self.lane_times) {
            let lane_start = timed.then(Instant::now);
            reducer.map_fp_batch(edges, &block.fp_elem, &mut scratch);
            let reduced_at = lane_start.map(|_| Instant::now());
            oracle.observe_fp_batch(&scratch, &block.fp_set);
            if let (Some(lane_start), Some(reduced_at)) = (lane_start, reduced_at) {
                times.reduce_ns += (reduced_at - lane_start).as_nanos() as u64;
                times.ingest_ns += lane_start.elapsed().as_nanos() as u64;
            }
        }
        self.block = block;
        if let Some(start) = start {
            self.hists.batch_edges.record(edges.len() as u64);
            self.hists.batch_ns.record(start.elapsed().as_nanos() as u64);
        }
        if telemetry::crosses_beat(seen_before, edges.len() as u64, self.heartbeat_every) {
            self.capture_heartbeat();
        }
    }

    /// Snapshot every repetition lane's fill state into the
    /// replica-local heartbeat buffer (same contract as
    /// `MaxCoverEstimator::capture_heartbeat`; `z` reports the tuned
    /// pseudo-universe shared by all lanes).
    fn capture_heartbeat(&mut self) {
        let mut lanes = Vec::with_capacity(self.lanes.len());
        let mut total = SketchStats::default();
        for (i, (reducer, oracle)) in self.lanes.iter().enumerate() {
            let (lc, ls, ss) = oracle.heartbeat_stats();
            let ss = ss.unwrap_or_default();
            let mut agg = lc;
            agg.absorb(ls);
            agg.absorb(ss);
            lanes.push(LaneBeat {
                lane: i as u64,
                z: self.z,
                lc_fill: lc.fill,
                ls_fill: ls.fill,
                ss_fill: ss.fill,
                evictions: agg.evictions,
                space_words: (oracle.space_words() + reducer.space_words()) as u64,
                ns: self.lane_times.get(i).map_or(0, |t| t.ingest_ns),
            });
            total.absorb(agg);
        }
        self.hists.record_beat_delta(total, &mut self.last_stats);
        self.heartbeats.push(HeartbeatSnap {
            shard: self.shard_id,
            at_edges: self.edges_seen,
            lanes,
        });
    }

    /// Merge another pass-2 state derived from the same pass-1 guess
    /// and seed: every repetition lane's oracle is merged; reducers are
    /// checked to compute the same universe map.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            (self.k, self.z, self.lanes.len(), self.pass1_estimate.to_bits()),
            (other.k, other.z, other.lanes.len(), other.pass1_estimate.to_bits()),
            "TwoPassSecond merge requires identical configuration (pass-1 guess)"
        );
        assert!(
            self.fps.same_function(&other.fps),
            "TwoPassSecond merge requires identical hash functions (fingerprints)"
        );
        self.edges_seen += other.edges_seen;
        self.heartbeats.extend(other.heartbeats.iter().cloned());
        self.hists.merge(&other.hists);
        self.last_stats.absorb(other.last_stats);
        self.times.merge(&other.times);
        for (times, other_times) in self.lane_times.iter_mut().zip(&other.lane_times) {
            times.merge(other_times);
        }
        for ((reducer, oracle), (other_reducer, other_oracle)) in
            self.lanes.iter_mut().zip(&other.lanes)
        {
            assert!(
                reducer.same_function(other_reducer),
                "TwoPassSecond merge requires identical hash functions"
            );
            oracle.merge(other_oracle);
        }
    }

    /// Ingest pass-2 edges through sharded replicas folded back with
    /// [`TwoPassSecond::merge`]. Must be called on a fresh pass-2 state
    /// (straight out of [`TwoPassFirst::into_second_pass`]).
    pub fn ingest_sharded(&mut self, edges: &[Edge], shards: usize, batch: usize) {
        let shards = shards.max(1);
        if shards == 1 || edges.is_empty() {
            for chunk in edges.chunks(batch.max(1)) {
                self.observe_batch(chunk);
            }
            return;
        }
        let chunk_len = edges.len().div_ceil(shards);
        let mut parts = edges.chunks(chunk_len);
        let own = parts.next().unwrap_or(&[]);
        let mut replicas: Vec<TwoPassSecond> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .enumerate()
                .map(|(i, part)| {
                    let mut replica = self.clone();
                    replica.shard_id = i as u64 + 1;
                    s.spawn(move || {
                        for chunk in part.chunks(batch.max(1)) {
                            replica.observe_batch(chunk);
                        }
                        replica
                    })
                })
                .collect();
            for chunk in own.chunks(batch.max(1)) {
                self.observe_batch(chunk);
            }
            replicas.extend(handles.into_iter().map(|h| h.join().expect("shard worker panicked")));
        });
        for replica in &replicas {
            self.merge(replica);
        }
    }

    /// Finish pass 2: the best repetition's reported cover.
    pub fn finalize(&self) -> ReportedCover {
        let mut best: Option<(f64, usize, crate::Witness)> = None;
        for (i, (_, oracle)) in self.lanes.iter().enumerate() {
            let out = oracle.finalize();
            if let (est, Some(w)) = (out.estimate, out.witness) {
                if best.as_ref().is_none_or(|(b, _, _)| est > *b) {
                    best = Some((est, i, w));
                }
            }
        }
        match best {
            Some((est, lane, witness)) => {
                let mut sets = self.lanes[lane].1.expand_witness(&witness);
                sets.truncate(self.k);
                sets.sort_unstable();
                sets.dedup();
                ReportedCover {
                    sets,
                    estimate: est.max(self.pass1_estimate.min(self.z as f64)),
                    winner: self.lanes[lane].1.finalize().winner,
                    space_words: self.space_words(),
                }
            }
            None => ReportedCover {
                sets: Vec::new(),
                estimate: self.pass1_estimate,
                winner: None,
                space_words: self.space_words(),
            },
        }
    }

    /// Build the pass-2 time-attribution ledger: a tree rooted at
    /// `"pass2"` mirroring the pass-2 space ledger's paths
    /// (`fingerprints`, per-lane `reducer` plus the oracle subtree),
    /// apportioned by heat exactly like
    /// [`MaxCoverEstimator::time_ledger_tree`](crate::MaxCoverEstimator::time_ledger_tree).
    pub fn time_ledger_tree(&self) -> TimeLedger {
        let mut ledger = TimeLedger::new("pass2");
        let root = &mut ledger.root;
        root.leaf("fingerprints", self.times.hash_ns);
        for (i, (_, oracle)) in self.lanes.iter().enumerate() {
            let times = self.lane_times.get(i).copied().unwrap_or_default();
            let ln = root.child(&format!("lane{i}"));
            ln.leaf("reducer", times.reduce_ns);
            let mut space = LedgerNode::new();
            oracle.space_ledger(&mut space);
            apportion_by_heat(times.oracle_ns(), &space, ln);
        }
        ledger
    }
}

// ---- wire format ----------------------------------------------------

/// Payload tag of a full pass-2 replica.
pub const TAG_TWOPASS: u64 = 0x0054_574f_5041_5353; // "TWOPASS"
const SEC_SHAPE: u64 = 0x0053_4841_5045; // "SHAPE"
const SEC_STATE: u64 = 0x0053_5441_5445; // "STATE"
const SEC_TELEMETRY: u64 = 0x0054_454c_454d; // "TELEM"

impl TwoPassSecond {
    /// Attach an observability recorder after wire reconstruction (same
    /// contract as [`MaxCoverEstimator::attach_recorder`]).
    pub fn attach_recorder(&mut self, rec: &Recorder) {
        self.rec = rec.clone();
    }
}

impl kcov_sketch::WireEncode for TwoPassSecond {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_f64, put_header, put_section, put_u64};
        put_header(out, TAG_TWOPASS);
        put_section(out, SEC_SHAPE, |out| {
            put_u64(out, self.k as u64);
            put_u64(out, self.z);
            put_f64(out, self.pass1_estimate);
            put_u64(out, self.edges_seen);
            put_u64(out, self.heartbeat_every);
            put_u64(out, self.shard_id);
        });
        put_section(out, SEC_STATE, |out| {
            self.fps.encode(out);
            put_u64(out, self.lanes.len() as u64);
            for (reducer, oracle) in &self.lanes {
                reducer.encode(out);
                oracle.encode(out);
            }
        });
        put_section(out, SEC_TELEMETRY, |out| {
            put_u64(out, self.heartbeats.len() as u64);
            for snap in &self.heartbeats {
                snap.encode(out);
            }
            self.hists.encode(out);
            self.last_stats.encode(out);
            self.times.encode(out);
            put_u64(out, self.lane_times.len() as u64);
            for times in &self.lane_times {
                times.encode(out);
            }
        });
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{
            err, expect_section_end, take_f64, take_header, take_section, take_u64,
        };
        take_header(input, TAG_TWOPASS)?;

        let mut shape = take_section(input, SEC_SHAPE)?;
        let k = take_u64(&mut shape)? as usize;
        let z = take_u64(&mut shape)?;
        let pass1_estimate = take_f64(&mut shape)?;
        let edges_seen = take_u64(&mut shape)?;
        let heartbeat_every = take_u64(&mut shape)?;
        let shard_id = take_u64(&mut shape)?;
        expect_section_end(SEC_SHAPE, shape)?;
        if k < 1 || z < 1 {
            return Err(err("pass-2 shape needs k, z >= 1"));
        }

        let mut state = take_section(input, SEC_STATE)?;
        let fps = EdgeFingerprints::decode(&mut state)?;
        let num = take_u64(&mut state)? as usize;
        if num > state.len() {
            return Err(err("pass-2 lane count exceeds input"));
        }
        let lanes = (0..num)
            .map(|_| {
                let reducer = UniverseReducer::decode(&mut state)?;
                if reducer.z() != z {
                    return Err(err(format!(
                        "pass-2 reducer range {} disagrees with z {z}",
                        reducer.z()
                    )));
                }
                Ok((reducer, Oracle::decode(&mut state)?))
            })
            .collect::<Result<Vec<_>, kcov_sketch::WireError>>()?;
        if lanes.is_empty() {
            return Err(err("pass-2 state has no lanes"));
        }
        expect_section_end(SEC_STATE, state)?;

        let mut telem = take_section(input, SEC_TELEMETRY)?;
        let num_snaps = take_u64(&mut telem)? as usize;
        if num_snaps > telem.len() {
            return Err(err("pass-2 heartbeat count exceeds input"));
        }
        let heartbeats = (0..num_snaps)
            .map(|_| HeartbeatSnap::decode(&mut telem))
            .collect::<Result<Vec<_>, _>>()?;
        let hists = IngestHists::decode(&mut telem)?;
        let last_stats = SketchStats::decode(&mut telem)?;
        let times = StageTimes::decode(&mut telem)?;
        let num_lt = take_u64(&mut telem)? as usize;
        if num_lt != lanes.len() {
            return Err(err(format!(
                "pass-2 lane-time count {num_lt} disagrees with {} lanes",
                lanes.len()
            )));
        }
        let lane_times = (0..num_lt)
            .map(|_| LaneTimes::decode(&mut telem))
            .collect::<Result<Vec<_>, _>>()?;
        expect_section_end(SEC_TELEMETRY, telem)?;

        Ok(TwoPassSecond {
            k,
            z,
            pass1_estimate,
            fps,
            block: FingerprintBlock::default(),
            lanes,
            rec: Recorder::disabled(),
            edges_seen,
            heartbeat_every,
            shard_id,
            heartbeats,
            hists,
            last_stats,
            times,
            lane_times,
        })
    }
}

impl SpaceUsage for TwoPassSecond {
    fn space_words(&self) -> usize {
        self.fps.space_words()
            + self
                .lanes
                .iter()
                .map(|(r, o)| r.space_words() + o.space_words())
                .sum::<usize>()
    }

    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        self.fps.space_ledger(node.child("fingerprints"));
        for (i, (r, o)) in self.lanes.iter().enumerate() {
            let ln = node.child(&format!("lane{i}"));
            r.space_ledger(ln.child("reducer"));
            o.space_ledger(ln);
        }
    }
}

impl TwoPassSecond {
    /// Emit the pass-2 observability snapshot (heartbeats, ingest
    /// histograms, the `twopass` event, and the pass-2 time ledger)
    /// against the configured recorder; a no-op when it is disabled.
    /// The `run_two_pass*` drivers call this themselves — drivers that
    /// ingest pass 2 manually (e.g. the CLI's batched loop) call it
    /// once after [`TwoPassSecond::finalize`].
    pub fn record_snapshot(&self, cover: &ReportedCover) {
        record_two_pass(&self.rec, self, cover);
    }
}

/// Convenience: run both passes over a replayable stream.
pub fn run_two_pass(
    n: usize,
    m: usize,
    k: usize,
    alpha: f64,
    config: &EstimatorConfig,
    edges: &[Edge],
) -> ReportedCover {
    let rec = config.recorder.clone();
    let mut first = TwoPassFirst::new(n, m, k, alpha, config);
    let span = rec.span("pass1");
    for &e in edges {
        first.observe(e);
    }
    span.finish();
    let mut second = first.into_second_pass();
    let span = rec.span("pass2");
    for &e in edges {
        second.observe(e);
    }
    span.finish();
    let cover = second.finalize();
    record_two_pass(&rec, &second, &cover);
    cover
}

/// Convenience: run both passes with `config.shards` sharded replicas
/// per pass (pass 1 via [`TwoPassFirst::ingest_sharded`], pass 2 via
/// [`TwoPassSecond::ingest_sharded`]). Matches [`run_two_pass`] up to
/// the merge-equivalence contract (DESIGN.md §8).
pub fn run_two_pass_sharded(
    n: usize,
    m: usize,
    k: usize,
    alpha: f64,
    config: &EstimatorConfig,
    edges: &[Edge],
    batch: usize,
) -> ReportedCover {
    let rec = config.recorder.clone();
    let shards = config.shards.max(1);
    let mut first = TwoPassFirst::new(n, m, k, alpha, config);
    let span = rec.span("pass1");
    first.ingest_sharded(edges, shards, batch);
    span.finish();
    let mut second = first.into_second_pass();
    let span = rec.span("pass2");
    second.ingest_sharded(edges, shards, batch);
    span.finish();
    let cover = second.finalize();
    record_two_pass(&rec, &second, &cover);
    cover
}

/// Emit the pass-2 observability snapshot (no-op when disabled).
fn record_two_pass(rec: &kcov_obs::Recorder, second: &TwoPassSecond, cover: &ReportedCover) {
    if !rec.is_enabled() {
        return;
    }
    telemetry::emit_heartbeats(rec, "pass2", &second.heartbeats);
    second.hists.emit(rec, "pass2.ingest");
    rec.event(
        "twopass",
        &[
            ("z", kcov_obs::Value::from(second.z())),
            ("estimate", kcov_obs::Value::from(cover.estimate)),
            ("sets", kcov_obs::Value::from(cover.sets.len())),
            ("space_words", kcov_obs::Value::from(cover.space_words)),
            ("reps", kcov_obs::Value::from(second.lanes.len())),
        ],
    );
    rec.gauge("twopass.z", second.z() as f64);
    rec.gauge("twopass.space_words", cover.space_words as f64);
    // Pass-2 time-attribution ledger, same finalize contract as the
    // single-pass estimator (leaves-only, ns-conserving): pass 2 runs
    // lanes serially, so the wall budget is the plain batch total.
    let times = second.time_ledger_tree();
    assert!(
        times.audit().is_empty(),
        "pass-2 time ledger schema violations: {:?}",
        times.audit()
    );
    let budget = second.hists.batch_ns.sum();
    assert!(
        times.total_ns() <= budget,
        "pass-2 time ledger attributes {} ns against a wall budget of {} ns",
        times.total_ns(),
        budget
    );
    times.emit(rec);
    rec.event(
        "time_ledger_meta",
        &[
            ("stage", kcov_obs::Value::from("pass2")),
            ("root", kcov_obs::Value::from(times.name())),
            ("threads", kcov_obs::Value::from(1u64)),
            ("ns", kcov_obs::Value::from(times.total_ns())),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MaxCoverReporter;
    use kcov_stream::gen::planted_cover;
    use kcov_stream::{coverage_of, edge_stream, ArrivalOrder};

    #[test]
    fn two_pass_reports_a_useful_cover() {
        let inst = planted_cover(2_000, 250, 12, 0.8, 40, 3);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
        let config = EstimatorConfig::practical(9);
        let cover = run_two_pass(2_000, 250, 12, 4.0, &config, &edges);
        assert!(!cover.sets.is_empty());
        assert!(cover.sets.len() <= 12);
        let chosen: Vec<usize> = cover.sets.iter().map(|&s| s as usize).collect();
        let cov = coverage_of(&inst.system, &chosen) as f64;
        assert!(
            cov >= inst.planted_coverage as f64 / (4.0 * 30.0),
            "two-pass cover too weak: {cov}"
        );
    }

    #[test]
    fn second_pass_z_tracks_pass1_guess() {
        let inst = planted_cover(4_000, 300, 10, 0.5, 50, 5);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
        let config = EstimatorConfig::practical(3);
        let mut first = TwoPassFirst::new(4_000, 300, 10, 4.0, &config);
        for &e in &edges {
            first.observe(e);
        }
        let second = first.into_second_pass();
        // OPT = 2000; ẑ·4 rounded to a power of two should be within
        // a factor ~32 of OPT (pass 1 is only α-approximate).
        assert!(second.z() >= 64, "z {} too small", second.z());
        assert!(second.z() <= 8_000, "z {} too large", second.z());
    }

    #[test]
    fn two_pass_uses_less_space_than_single_pass_grid() {
        let inst = planted_cover(8_000, 500, 16, 0.7, 40, 7);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(4));
        let config = EstimatorConfig::practical(11);
        // Single-pass reporter with the full default grid.
        let mut single = MaxCoverReporter::new(8_000, 500, 16, 8.0, &config);
        for &e in &edges {
            single.observe(e);
        }
        let single_space = single.finalize().space_words;
        // Two-pass: pass 2 space only (pass 1 is also cheaper — coarse
        // grid, 1 rep — but the comparison of interest is steady state).
        let mut first = TwoPassFirst::new(8_000, 500, 16, 8.0, &config);
        for &e in &edges {
            first.observe(e);
        }
        let mut second = first.into_second_pass();
        for &e in &edges {
            second.observe(e);
        }
        let two_space = second.space_words();
        assert!(
            (two_space as f64) < 0.5 * single_space as f64,
            "two-pass {two_space} vs single {single_space}"
        );
    }

    #[test]
    fn empty_stream_degrades_gracefully() {
        let config = EstimatorConfig::practical(1);
        let cover = run_two_pass(100, 50, 5, 2.0, &config, &[]);
        assert!(cover.sets.is_empty());
    }

    #[test]
    fn sharded_two_pass_matches_serial() {
        let inst = planted_cover(1_000, 150, 8, 0.7, 30, 13);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(3));
        let config = EstimatorConfig::practical(7);
        let serial = run_two_pass(1_000, 150, 8, 4.0, &config, &edges);
        for shards in [2usize, 4] {
            let sharded_config = config.clone().with_shards(shards);
            let out = run_two_pass_sharded(1_000, 150, 8, 4.0, &sharded_config, &edges, 128);
            assert_eq!(serial.sets, out.sets, "shards={shards}");
            assert_eq!(
                serial.estimate.to_bits(),
                out.estimate.to_bits(),
                "shards={shards}"
            );
        }
    }
}
