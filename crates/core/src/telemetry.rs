//! In-flight heartbeat telemetry shared by the estimator and the
//! two-pass refinement.
//!
//! Determinism contract (DESIGN.md §10): heartbeats are cadenced by
//! **edge count only** — a snapshot is captured at the first
//! observation boundary at or after every multiple of
//! `heartbeat_every` edges, so the set of snapshots is a pure function
//! of the stream split, never of wall-clock or scheduling. Snapshots
//! are *buffered* as plain data in the owning (replica-local) state —
//! ingestion workers never touch the recorder sink — carried through
//! [`merge`](crate::MaxCoverEstimator::merge) by concatenation, and
//! emitted once at finalize, sorted by `(shard, at_edges, lane)`.
//! Wall-clock appears only in event *payloads* (`*_ns` histograms),
//! never in cadence decisions, so estimates are bit-identical with
//! heartbeats on or off across `--threads`/`--shards`/`--batch`.

use kcov_obs::{Histogram, Recorder, SketchStats, Value};

/// One lane's fill state at a heartbeat: per-subroutine resident
/// entries plus the lane's total resident space.
#[derive(Debug, Clone)]
pub(crate) struct LaneBeat {
    /// Lane index within the owning estimator / pass.
    pub lane: u64,
    /// The lane's `z` guess (0 in the trivial regime and pass 2).
    pub z: u64,
    /// `LargeCommon` resident entries.
    pub lc_fill: u64,
    /// `LargeSet` resident entries.
    pub ls_fill: u64,
    /// `SmallSet` resident entries (0 when inactive).
    pub ss_fill: u64,
    /// Evictions so far across the lane's sketches.
    pub evictions: u64,
    /// Lane resident space in words.
    pub space_words: u64,
    /// Cumulative wall nanoseconds this lane has spent in batched
    /// ingest at capture time (wall-clock *payload* — the `ns` field
    /// name marks it nondeterministic for trace diffing; cadence never
    /// depends on it).
    pub ns: u64,
}

/// One heartbeat: where in the (shard-local) stream it was captured
/// plus every lane's [`LaneBeat`].
#[derive(Debug, Clone)]
pub(crate) struct HeartbeatSnap {
    /// Shard id of the replica that captured it (0 = the coordinating
    /// estimator's own chunk, or the whole stream when unsharded).
    pub shard: u64,
    /// Shard-local edges ingested when the snapshot was taken.
    pub at_edges: u64,
    /// Per-lane fill state, in lane order.
    pub lanes: Vec<LaneBeat>,
}

/// The ingestion histograms riding along with heartbeat state:
/// deterministic shape metrics (batch sizes, per-heartbeat fill and
/// eviction deltas) plus the wall-clock payload (`batch_ns`). Merged
/// exactly like the estimator state they are attached to.
#[derive(Debug, Clone, Default)]
pub(crate) struct IngestHists {
    /// Edges per `observe_batch` call.
    pub batch_edges: Histogram,
    /// Nanoseconds per `observe_batch` call (wall-clock payload — the
    /// `_ns` suffix marks it nondeterministic for trace diffing).
    pub batch_ns: Histogram,
    /// Fill growth between consecutive heartbeats.
    pub fill_delta: Histogram,
    /// Evictions between consecutive heartbeats.
    pub eviction_delta: Histogram,
}

impl IngestHists {
    /// Fold a replica's histograms into this one.
    pub fn merge(&mut self, other: &IngestHists) {
        self.batch_edges.merge(&other.batch_edges);
        self.batch_ns.merge(&other.batch_ns);
        self.fill_delta.merge(&other.fill_delta);
        self.eviction_delta.merge(&other.eviction_delta);
    }

    /// Record the per-heartbeat sketch delta.
    pub fn record_beat_delta(&mut self, current: SketchStats, last: &mut SketchStats) {
        let delta = current.delta_since(last);
        self.fill_delta.record(delta.fill);
        self.eviction_delta.record(delta.evictions);
        *last = current;
    }

    /// Emit every non-empty histogram under `<prefix>.<name>`.
    pub fn emit(&self, rec: &Recorder, prefix: &str) {
        for (name, hist) in [
            ("batch_edges", &self.batch_edges),
            ("batch_ns", &self.batch_ns),
            ("fill_delta", &self.fill_delta),
            ("eviction_delta", &self.eviction_delta),
        ] {
            if !hist.is_empty() {
                rec.histogram(&format!("{prefix}.{name}"), hist);
            }
        }
    }
}

/// Emit buffered heartbeats as `"heartbeat"` events — one per lane per
/// snapshot, tagged with `stage` — sorted by `(shard, at_edges, lane)`
/// so sharded and threaded runs produce identical event order.
pub(crate) fn emit_heartbeats(rec: &Recorder, stage: &str, snaps: &[HeartbeatSnap]) {
    if snaps.is_empty() || !rec.is_enabled() {
        return;
    }
    let mut order: Vec<&HeartbeatSnap> = snaps.iter().collect();
    order.sort_by_key(|s| (s.shard, s.at_edges));
    for snap in order {
        for beat in &snap.lanes {
            rec.event(
                "heartbeat",
                &[
                    ("stage", Value::from(stage)),
                    ("shard", Value::from(snap.shard)),
                    ("at_edges", Value::from(snap.at_edges)),
                    ("lane", Value::from(beat.lane)),
                    ("z", Value::from(beat.z)),
                    ("lc_fill", Value::from(beat.lc_fill)),
                    ("ls_fill", Value::from(beat.ls_fill)),
                    ("ss_fill", Value::from(beat.ss_fill)),
                    ("evictions", Value::from(beat.evictions)),
                    ("space_words", Value::from(beat.space_words)),
                    ("ns", Value::from(beat.ns)),
                ],
            );
        }
    }
}

/// Batch-granular wall-clock totals for one `(z, rep)` lane: the raw
/// material of the time-attribution ledger (DESIGN.md §15). One
/// monotonic clock read per batched chunk per lane — the per-edge hot
/// loop never reads a clock — accumulated into plain `u64`s owned by
/// the lane, so ingestion workers write only their own state and the
/// disabled-recorder path stays one branch. Merged by addition, so
/// Σ shard ns == merged ns exactly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneTimes {
    /// Total wall nanoseconds in the lane's batched ingest call
    /// (universe reduction + oracle update).
    pub ingest_ns: u64,
    /// Wall nanoseconds in the universe-reduction half (the oracle's
    /// share is `ingest_ns - reduce_ns`).
    pub reduce_ns: u64,
}

impl LaneTimes {
    /// Fold a replica lane's totals into this one.
    pub fn merge(&mut self, other: &LaneTimes) {
        self.ingest_ns += other.ingest_ns;
        self.reduce_ns += other.reduce_ns;
    }

    /// The oracle's share of the lane interval (saturating: the two
    /// clock reads bracket nested intervals, so this never underflows
    /// on trusted data, but wire-decoded values are untrusted).
    pub fn oracle_ns(&self) -> u64 {
        self.ingest_ns.saturating_sub(self.reduce_ns)
    }
}

/// Batch-granular wall-clock totals for the lane-invariant stage work
/// of one estimator / pass: the shared hash-once fingerprint fill, the
/// shared universe mix, and the trivial-regime branch. Same ownership
/// and merge rules as [`LaneTimes`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StageTimes {
    /// Wall nanoseconds filling the fingerprint block (both base
    /// evaluations, shared by every lane).
    pub hash_ns: u64,
    /// Wall nanoseconds evaluating the shared universe mix column.
    pub universe_ns: u64,
    /// Wall nanoseconds in the trivial-regime batch path.
    pub trivial_ns: u64,
}

impl StageTimes {
    /// Fold a replica's totals into this one.
    pub fn merge(&mut self, other: &StageTimes) {
        self.hash_ns += other.hash_ns;
        self.universe_ns += other.universe_ns;
        self.trivial_ns += other.trivial_ns;
    }
}

/// Whether ingesting `added` more edges after `seen_before` crosses a
/// multiple of `every` (the batched-path cadence test: capture at the
/// first observation boundary at or after each multiple).
pub(crate) fn crosses_beat(seen_before: u64, added: u64, every: u64) -> bool {
    every > 0 && added > 0 && (seen_before + added) / every > seen_before / every
}

// ---- wire format ----------------------------------------------------
//
// Buffered heartbeats and ingestion histograms travel with the replica:
// the coordinator's finalize must emit a worker's beats exactly as an
// in-process replica's, so they are state as far as the wire format is
// concerned.

use kcov_sketch::wire::{err, put_u64, take_u64, WireEncode, WireError};

const TAG_BEAT: u64 = 0x42454154; // "BEAT"
const TAG_SNAP: u64 = 0x534e4150; // "SNAP"
const TAG_IHIST: u64 = 0x4948; // "IH"
const TAG_LTIME: u64 = 0x4c54; // "LT"
const TAG_STIME: u64 = 0x5354; // "ST"

impl WireEncode for LaneTimes {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_LTIME);
        put_u64(out, self.ingest_ns);
        put_u64(out, self.reduce_ns);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_LTIME {
            return Err(err("bad LaneTimes tag"));
        }
        Ok(LaneTimes {
            ingest_ns: take_u64(input)?,
            reduce_ns: take_u64(input)?,
        })
    }
}

impl WireEncode for StageTimes {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_STIME);
        put_u64(out, self.hash_ns);
        put_u64(out, self.universe_ns);
        put_u64(out, self.trivial_ns);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_STIME {
            return Err(err("bad StageTimes tag"));
        }
        Ok(StageTimes {
            hash_ns: take_u64(input)?,
            universe_ns: take_u64(input)?,
            trivial_ns: take_u64(input)?,
        })
    }
}

impl WireEncode for LaneBeat {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_BEAT);
        put_u64(out, self.lane);
        put_u64(out, self.z);
        put_u64(out, self.lc_fill);
        put_u64(out, self.ls_fill);
        put_u64(out, self.ss_fill);
        put_u64(out, self.evictions);
        put_u64(out, self.space_words);
        put_u64(out, self.ns);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_BEAT {
            return Err(err("bad LaneBeat tag"));
        }
        Ok(LaneBeat {
            lane: take_u64(input)?,
            z: take_u64(input)?,
            lc_fill: take_u64(input)?,
            ls_fill: take_u64(input)?,
            ss_fill: take_u64(input)?,
            evictions: take_u64(input)?,
            space_words: take_u64(input)?,
            ns: take_u64(input)?,
        })
    }
}

impl WireEncode for HeartbeatSnap {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_SNAP);
        put_u64(out, self.shard);
        put_u64(out, self.at_edges);
        put_u64(out, self.lanes.len() as u64);
        for beat in &self.lanes {
            beat.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_SNAP {
            return Err(err("bad HeartbeatSnap tag"));
        }
        let shard = take_u64(input)?;
        let at_edges = take_u64(input)?;
        let n = take_u64(input)? as usize;
        if n > input.len() / 64 {
            return Err(err(format!("truncated heartbeat of {n} lane beats")));
        }
        let lanes = (0..n).map(|_| LaneBeat::decode(input)).collect::<Result<Vec<_>, _>>()?;
        Ok(HeartbeatSnap { shard, at_edges, lanes })
    }
}

impl WireEncode for IngestHists {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_IHIST);
        self.batch_edges.encode(out);
        self.batch_ns.encode(out);
        self.fill_delta.encode(out);
        self.eviction_delta.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_IHIST {
            return Err(err("bad IngestHists tag"));
        }
        Ok(IngestHists {
            batch_edges: Histogram::decode(input)?,
            batch_ns: Histogram::decode(input)?,
            fill_delta: Histogram::decode(input)?,
            eviction_delta: Histogram::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosses_beat_fires_on_each_multiple() {
        assert!(!crosses_beat(0, 99, 100));
        assert!(crosses_beat(0, 100, 100));
        assert!(crosses_beat(99, 1, 100));
        assert!(!crosses_beat(100, 99, 100));
        assert!(crosses_beat(100, 100, 100));
        // A big batch crossing several multiples still fires (once —
        // the caller captures a single snapshot at the batch end).
        assert!(crosses_beat(0, 1000, 100));
        // Disabled cadence never fires.
        assert!(!crosses_beat(0, 1000, 0));
        assert!(!crosses_beat(50, 0, 100));
    }

    #[test]
    fn heartbeats_emit_sorted_by_shard_then_position() {
        let rec = Recorder::enabled();
        let beat = |lane| LaneBeat {
            lane,
            z: 8,
            lc_fill: 1,
            ls_fill: 2,
            ss_fill: 3,
            evictions: 0,
            space_words: 10,
            ns: 0,
        };
        let snaps = vec![
            HeartbeatSnap { shard: 1, at_edges: 200, lanes: vec![beat(0)] },
            HeartbeatSnap { shard: 0, at_edges: 100, lanes: vec![beat(0), beat(1)] },
            HeartbeatSnap { shard: 1, at_edges: 100, lanes: vec![beat(0)] },
        ];
        emit_heartbeats(&rec, "estimate", &snaps);
        let events = rec.events_of("heartbeat");
        let keys: Vec<(u64, u64, u64)> = events
            .iter()
            .map(|e| {
                (
                    e.u64_field("shard").unwrap(),
                    e.u64_field("at_edges").unwrap(),
                    e.u64_field("lane").unwrap(),
                )
            })
            .collect();
        assert_eq!(
            keys,
            vec![(0, 100, 0), (0, 100, 1), (1, 100, 0), (1, 200, 0)]
        );
        assert!(events.iter().all(|e| e.str_field("stage") == Some("estimate")));
    }
}
