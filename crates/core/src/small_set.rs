//! `SmallSet` — set + element sampling for covers made of many small
//! sets (paper §4.3, Fig 5).
//!
//! Handles the oracle's case III: `|C(OPT_large)| < |C(OPT)|/2`, i.e. an
//! optimal solution's coverage comes from many sets each contributing
//! less than `|C(OPT)|/(sα)`. Then (Lemma 4.16 / Corollary 4.19)
//! subsampling the *sets* at rate `Θ(1/(sα))` keeps a
//! `Θ(k/(sα))`-cover with coverage `Θ(|C(OPT)|/(sα))` alive, and
//! (Lemma 2.5) subsampling the *elements* to `Θ̃(γ·k')` per coverage
//! guess `γ` preserves constant-factor solutions. The induced
//! sub-instance has `Õ(m/α²)` edges (Lemmas 4.20/4.21), is stored
//! verbatim, and an offline `O(1)`-approximate greedy (`Max k'-Cover`)
//! runs on it after the pass; the result is rescaled by the element
//! sampling rate.
//!
//! Only active when `sα < 2k` (otherwise Claim 4.3 puts the instance in
//! `LargeSet`'s case).

use std::sync::Arc;

use kcov_hash::{KWise, RangeHash, SeedSequence, MERSENNE_P};
use kcov_sketch::SpaceUsage;
use kcov_stream::{Edge, SetSystem};

use crate::params::Params;
use crate::Witness;

/// One γ-guess lane storing its sampled sub-instance. Lanes within a
/// repetition share the repetition's set- and element-sampling hashes:
/// the element samples are *nested* (`L_{γ} ⊇ L_{2γ}` via threshold
/// comparison on one hash value), so a repetition costs two hash
/// evaluations per edge regardless of how many γ guesses it carries.
/// Sharing across guesses is sound — each lane's guarantee (Lemma 2.5
/// for its γ) is individual and the union bound needs no independence
/// between lanes.
#[derive(Debug, Clone)]
struct Lane {
    /// Coverage-ratio guess (kept for experiment logging).
    #[allow(dead_code)]
    gamma: f64,
    /// Element `e ∈ L` iff `rep.ehash(e) < e_keep` (probability `p_elem`).
    e_keep: u64,
    p_elem: f64,
    edges: Vec<Edge>,
    overflowed: bool,
}

/// One repetition: its sampling hashes and its γ lanes.
#[derive(Debug, Clone)]
struct Rep {
    /// Set `S ∈ M` iff `mhash(fp_set) < m_keep` (probability
    /// `≈ c/(sα)`, Lemma 4.16's `18/(sα)`): a 4-wise mix over the
    /// shared set fingerprint, threshold-compared instead of the old
    /// modulo idiom so the gate is one multiply chain and one compare.
    mhash: KWise,
    /// Element-sampling hash, keyed on the *reduced* pseudo-element
    /// (raw ids or fingerprints would bias the nested γ samples: two
    /// raw elements sharing a pseudo-element must share the decision).
    ehash: KWise,
    lanes: Vec<Lane>,
}

/// Single-pass case-III subroutine (Fig 5).
#[derive(Debug, Clone)]
pub struct SmallSet {
    u: usize,
    m: usize,
    /// Sub-cover budget `k' = Θ(k/(sα))` (paper: `36k/(sα)`).
    k_sub: usize,
    m_buckets: u64,
    /// Derived threshold realizing the `1/m_buckets` set-sampling rate:
    /// `MERSENNE_P / m_buckets` (recomputed at decode, never wired).
    /// `m_buckets = 1` gives `m_keep = P`, which every hash output
    /// (`< P`) passes — the always-sample case.
    m_keep: u64,
    edge_cap: usize,
    /// Shared set fingerprint base (hash-once hot path); one `Arc`'d
    /// coefficient table per process, 1-word handle in this holder's
    /// space accounting.
    set_base: Arc<KWise>,
    reps: Vec<Rep>,
}

impl SmallSet {
    /// Create the subroutine for universe size `u` with a private set
    /// fingerprint base (standalone use; estimator lanes share one base
    /// via [`SmallSet::with_base`]).
    pub fn new(u: usize, params: &Params, seed: u64) -> Self {
        let degree = Params::hash_degree(params.mode, params.m, params.n);
        let base_seed = SeedSequence::labeled(seed, "small-set-base").next_seed();
        Self::with_base(u, params, seed, Arc::new(KWise::new(degree, base_seed)))
    }

    /// Create the subroutine consuming set fingerprints under the shared
    /// `set_base`.
    pub fn with_base(u: usize, params: &Params, seed: u64, set_base: Arc<KWise>) -> Self {
        let mut seq = SeedSequence::labeled(seed, "small-set");
        let m = params.m;
        let k = params.k as f64;
        // k' = c·k/(sα); the paper's constant 36 collapses to 4 in
        // practical mode via s_alpha's own calibration.
        let k_sub = ((4.0 * k / params.s_alpha).ceil() as usize).clamp(1, params.k.max(1));
        // Set-sampling probability Θ(1/(sα)) — Lemma 4.16 with c = 2
        // (paper c = 18, absorbed into s_alpha's calibration).
        let p_set = (2.0 / params.s_alpha).min(1.0);
        let m_buckets = ((1.0 / p_set).round() as u64).max(1);
        let lmn = ((m.max(2) * u.max(2)) as f64).ln().max(2.0);
        // γ guesses: the coverage of the surviving k'-cover is |U|/γ for
        // some γ ≤ Θ(sαη); try powers of two up to that bound.
        let gamma_max = (4.0 * params.s_alpha * params.eta).max(2.0);
        let num_gammas = gamma_max.log2().ceil() as u32;
        let mut reps = Vec::new();
        for _ in 0..params.small_set_reps.max(1) {
            let mut lanes = Vec::new();
            for i in 0..=num_gammas {
                let gamma = (1u64 << i) as f64;
                // Element sample target Θ̃(γ·k') (Lemma 2.5).
                let l_target = (2.0 * gamma * k_sub as f64 * lmn).min(u as f64);
                let p_elem = (l_target / u.max(1) as f64).min(1.0);
                lanes.push(Lane {
                    gamma,
                    e_keep: (p_elem * MERSENNE_P as f64) as u64,
                    p_elem,
                    edges: Vec::new(),
                    overflowed: false,
                });
            }
            reps.push(Rep {
                mhash: KWise::new(4, seq.next_seed()),
                ehash: KWise::new(8, seq.next_seed()),
                lanes,
            });
        }
        SmallSet {
            u,
            m,
            k_sub,
            m_buckets,
            m_keep: MERSENNE_P / m_buckets,
            edge_cap: params.small_set_edge_cap,
            set_base,
            reps,
        }
    }

    /// One repetition's view of one edge (shared by the per-edge and
    /// batched paths so they stay state-identical by construction).
    /// `fp_set` is the shared set fingerprint `set_base(edge.set)`.
    #[inline]
    fn rep_observe(rep: &mut Rep, m_keep: u64, edge_cap: usize, edge: Edge, fp_set: u64) {
        if rep.mhash.hash(fp_set) >= m_keep {
            return;
        }
        let eh = rep.ehash.hash(edge.elem as u64);
        for lane in &mut rep.lanes {
            if lane.overflowed || eh >= lane.e_keep {
                continue;
            }
            if lane.edges.len() >= edge_cap {
                // Fig 5: "if S(L,M) > Õ(m/α²) then terminate" — the
                // lane aborts and frees its storage.
                lane.overflowed = true;
                lane.edges = Vec::new();
            } else {
                lane.edges.push(edge);
            }
        }
    }

    /// Observe one `(set, element)` edge (scalar compatibility path:
    /// applies the fingerprint base itself).
    pub fn observe(&mut self, edge: Edge) {
        let fp = self.set_base.hash(edge.set as u64);
        self.observe_fp(edge, fp);
    }

    /// Observe one edge given its precomputed set fingerprint: per
    /// repetition, one 4-wise mix gates membership in `M`, one element
    /// hash is threshold-compared per γ lane.
    #[inline]
    pub fn observe_fp(&mut self, edge: Edge, fp_set: u64) {
        for rep in &mut self.reps {
            Self::rep_observe(rep, self.m_keep, self.edge_cap, edge, fp_set);
        }
    }

    /// Observe a chunk of edges (scalar compatibility path).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        let fps: Vec<u64> = edges.iter().map(|e| self.set_base.hash(e.set as u64)).collect();
        self.observe_fp_batch(edges, &fps);
    }

    /// Observe a chunk given precomputed set fingerprints, columnar and
    /// repetition-outer: per repetition the set-sampling mix runs as one
    /// [`RangeHash::hash_batch`] over the chunk, survivors are gathered,
    /// their element hashes are batched, and the γ lanes consume the
    /// survivor column in arrival order. Each repetition (and therefore
    /// each γ lane, including its overflow cut-off) sees the same hash
    /// values in the same order as [`SmallSet::observe_fp`], so the
    /// final state — stored edges and overflow flags alike — is
    /// identical.
    pub fn observe_fp_batch(&mut self, edges: &[Edge], fps: &[u64]) {
        debug_assert_eq!(edges.len(), fps.len());
        let mut mh = Vec::new();
        let mut eh = Vec::new();
        let mut surv_edges: Vec<Edge> = Vec::with_capacity(edges.len());
        let mut surv_elems: Vec<u64> = Vec::with_capacity(edges.len());
        for rep in &mut self.reps {
            rep.mhash.hash_batch(fps, &mut mh);
            surv_edges.clear();
            surv_elems.clear();
            for (&edge, &h) in edges.iter().zip(&mh) {
                if h < self.m_keep {
                    surv_edges.push(edge);
                    surv_elems.push(edge.elem as u64);
                }
            }
            if surv_edges.is_empty() {
                continue;
            }
            rep.ehash.hash_batch(&surv_elems, &mut eh);
            for lane in &mut rep.lanes {
                if lane.overflowed {
                    continue;
                }
                for (&edge, &e) in surv_edges.iter().zip(&eh) {
                    if e >= lane.e_keep {
                        continue;
                    }
                    if lane.edges.len() >= self.edge_cap {
                        // Fig 5: "if S(L,M) > Õ(m/α²) then terminate" —
                        // the lane aborts and frees its storage.
                        lane.overflowed = true;
                        lane.edges = Vec::new();
                        break;
                    }
                    lane.edges.push(edge);
                }
            }
        }
    }

    /// Finalize: greedy `Max k'-Cover` on each stored sub-instance,
    /// rescaled by the element-sampling rate; the best accepted lane
    /// wins. `None` when no lane qualifies.
    pub fn finalize(&self) -> Option<(f64, Witness)> {
        let mut best: Option<(f64, Vec<u32>)> = None;
        for lane in self.reps.iter().flat_map(|r| r.lanes.iter()) {
            if lane.overflowed || lane.edges.is_empty() {
                continue;
            }
            let sub = SetSystem::from_edges(self.u, self.m, &lane.edges);
            let g = kcov_baselines::greedy_max_cover(&sub, self.k_sub);
            // Acceptance floor (the paper's `sol = Ω̃(k/α)`): reject
            // lanes whose sampled coverage is statistical noise.
            let floor = (self.k_sub as f64 / 2.0).max(6.0);
            if (g.coverage as f64) < floor {
                continue;
            }
            // Rescale to the full universe; halve against the upward
            // selection bias of maximizing over the sample (Lemma 4.23's
            // no-overestimate guarantee).
            let est = (0.5 * g.coverage as f64 / lane.p_elem.max(1e-300))
                .min(self.u as f64)
                .max(0.0);
            if best.as_ref().is_none_or(|(b, _)| est > *b) {
                let chosen: Vec<u32> = g.chosen.iter().map(|&i| i as u32).collect();
                best = Some((est, chosen));
            }
        }
        best.map(|(est, sets)| (est, Witness::ExplicitSets(sets)))
    }

    /// The sub-cover budget `k'`.
    pub fn k_sub(&self) -> usize {
        self.k_sub
    }

    /// Number of (γ, repetition) lanes.
    pub fn num_lanes(&self) -> usize {
        self.reps.iter().map(|r| r.lanes.len()).sum()
    }

    /// Aggregated lane-storage telemetry: stored edges as fill against
    /// the per-lane cap, overflow terminations as prunes.
    pub fn sketch_stats(&self) -> kcov_obs::SketchStats {
        let mut agg = kcov_obs::SketchStats::default();
        for lane in self.reps.iter().flat_map(|r| r.lanes.iter()) {
            agg.absorb(kcov_obs::SketchStats {
                updates: 0,
                fill: lane.edges.len() as u64,
                capacity: self.edge_cap as u64,
                evictions: 0,
                prunes: u64::from(lane.overflowed),
                merges: 0,
            });
        }
        agg
    }

    /// Merge a subroutine built with the same parameters and seed over a
    /// disjoint stream shard. A lane's serial state overflows exactly
    /// when its surviving-edge count exceeds `edge_cap` (the cap fires
    /// on the arrival *after* the cap-th stored edge), so on disjoint
    /// shards `overflowed = a.overflowed ∨ b.overflowed ∨
    /// (len_a + len_b > edge_cap)` and concatenation of the stored edges
    /// reproduce serial ingestion exactly up to stored-edge order —
    /// which `finalize` is insensitive to, because
    /// `SetSystem::from_edges` sorts and deduplicates member lists.
    /// Panics on configuration or seed mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            (self.u, self.m, self.k_sub, self.m_buckets, self.edge_cap, self.reps.len()),
            (other.u, other.m, other.k_sub, other.m_buckets, other.edge_cap, other.reps.len()),
            "SmallSet merge requires identical configuration"
        );
        assert_eq!(
            self.set_base.hash(0x5eed_c0de),
            other.set_base.hash(0x5eed_c0de),
            "SmallSet merge requires identical hash functions"
        );
        let edge_cap = self.edge_cap;
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            assert_eq!(
                a.lanes.len(),
                b.lanes.len(),
                "SmallSet merge requires identical configuration (lane count)"
            );
            assert_eq!(
                (a.mhash.hash(0x5eed_c0de), a.ehash.hash(0x5eed_c0de)),
                (b.mhash.hash(0x5eed_c0de), b.ehash.hash(0x5eed_c0de)),
                "SmallSet merge requires identical hash functions"
            );
            for (la, lb) in a.lanes.iter_mut().zip(&b.lanes) {
                assert_eq!(
                    la.e_keep, lb.e_keep,
                    "SmallSet merge requires identical configuration (lane thresholds)"
                );
                if la.overflowed || lb.overflowed || la.edges.len() + lb.edges.len() > edge_cap {
                    la.overflowed = true;
                    la.edges = Vec::new();
                } else {
                    la.edges.extend_from_slice(&lb.edges);
                }
            }
        }
    }
}

// ---- wire format ----------------------------------------------------

const TAG_SS: u64 = 0x5353; // "SS"

impl kcov_sketch::WireEncode for SmallSet {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_f64, put_kwise, put_u64};
        put_u64(out, TAG_SS);
        put_u64(out, self.u as u64);
        put_u64(out, self.m as u64);
        put_u64(out, self.k_sub as u64);
        put_u64(out, self.m_buckets);
        put_u64(out, self.edge_cap as u64);
        put_kwise(out, &self.set_base);
        put_u64(out, self.reps.len() as u64);
        for rep in &self.reps {
            put_kwise(out, &rep.mhash);
            put_kwise(out, &rep.ehash);
            put_u64(out, rep.lanes.len() as u64);
            for lane in &rep.lanes {
                put_f64(out, lane.gamma);
                put_u64(out, lane.e_keep);
                put_f64(out, lane.p_elem);
                put_u64(out, u64::from(lane.overflowed));
                put_u64(out, lane.edges.len() as u64);
                for e in &lane.edges {
                    put_u64(out, (u64::from(e.set) << 32) | u64::from(e.elem));
                }
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_f64, take_kwise, take_u64};
        if take_u64(input)? != TAG_SS {
            return Err(err("bad SmallSet tag"));
        }
        let u = take_u64(input)? as usize;
        let m = take_u64(input)? as usize;
        let k_sub = take_u64(input)? as usize;
        let m_buckets = take_u64(input)?;
        if m_buckets < 1 {
            return Err(err("SmallSet set-bucket count must be positive"));
        }
        let edge_cap = take_u64(input)? as usize;
        let set_base = Arc::new(take_kwise(input)?);
        let num_reps = take_u64(input)? as usize;
        if num_reps > input.len() {
            return Err(err("SmallSet repetition count exceeds input"));
        }
        let mut reps = Vec::with_capacity(num_reps);
        let mut lanes_per_rep: Option<usize> = None;
        for _ in 0..num_reps {
            let mhash = take_kwise(input)?;
            let ehash = take_kwise(input)?;
            let num_lanes = take_u64(input)? as usize;
            if num_lanes > input.len() {
                return Err(err("SmallSet lane count exceeds input"));
            }
            if *lanes_per_rep.get_or_insert(num_lanes) != num_lanes {
                return Err(err("SmallSet repetitions disagree on lane count"));
            }
            let mut lanes = Vec::with_capacity(num_lanes);
            for _ in 0..num_lanes {
                let gamma = take_f64(input)?;
                let e_keep = take_u64(input)?;
                let p_elem = take_f64(input)?;
                let overflowed = match take_u64(input)? {
                    0 => false,
                    1 => true,
                    flag => return Err(err(format!("bad SmallSet overflow flag {flag}"))),
                };
                let n = take_u64(input)? as usize;
                if n > input.len() / 8 {
                    return Err(err(format!("truncated SmallSet lane of {n} edges")));
                }
                if overflowed && n != 0 {
                    return Err(err("overflowed SmallSet lane still stores edges"));
                }
                if n > edge_cap {
                    return Err(err(format!(
                        "SmallSet lane stores {n} edges above cap {edge_cap}"
                    )));
                }
                let edges = (0..n)
                    .map(|_| {
                        let packed = take_u64(input)?;
                        let edge = Edge::new((packed >> 32) as u32, packed as u32);
                        // `finalize` rebuilds a SetSystem from these, so
                        // out-of-range ids would panic long after decode.
                        if edge.set as usize >= m || edge.elem as usize >= u {
                            return Err(err(format!(
                                "SmallSet stored edge ({}, {}) outside the {m} x {u} instance",
                                edge.set, edge.elem
                            )));
                        }
                        Ok(edge)
                    })
                    .collect::<Result<Vec<_>, kcov_sketch::WireError>>()?;
                lanes.push(Lane {
                    gamma,
                    e_keep,
                    p_elem,
                    edges,
                    overflowed,
                });
            }
            reps.push(Rep { mhash, ehash, lanes });
        }
        if reps.is_empty() {
            return Err(err("SmallSet has no repetitions"));
        }
        Ok(SmallSet {
            u,
            m,
            k_sub,
            m_buckets,
            m_keep: MERSENNE_P / m_buckets,
            edge_cap,
            set_base,
            reps,
        })
    }
}

impl SpaceUsage for SmallSet {
    fn space_words(&self) -> usize {
        // 1-word handle on the shared base (coefficients counted once by
        // their owner).
        1 + self.reps
            .iter()
            .map(|r| {
                r.mhash.space_words()
                    + r.ehash.space_words()
                    + r.lanes.iter().map(|l| l.edges.len() + 2).sum::<usize>()
            })
            .sum::<usize>()
    }

    /// Mirrors `space_words` term by term; repetitions aggregate into
    /// shared children. The `edges` heat is *derived from state* (one
    /// store per resident edge) rather than counted on the hot path —
    /// stored edges survive the wire round trip, so decoded replicas
    /// report identical heat for free.
    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        node.leaf("set_base", 1);
        for r in &self.reps {
            node.leaf("hashes", r.mhash.space_words() + r.ehash.space_words());
            let stored: usize = r.lanes.iter().map(|l| l.edges.len()).sum();
            let edges = node.child("edges");
            edges.words += stored as u64;
            edges.updates += stored as u64;
            edges.touched_words += stored as u64;
            node.leaf("overhead", 2 * r.lanes.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{few_large, many_small};
    use kcov_stream::{edge_stream, ArrivalOrder};

    fn feed(ss_alg: &mut SmallSet, edges: &[Edge]) {
        for &e in edges {
            ss_alg.observe(e);
        }
    }

    #[test]
    fn fires_on_many_small_instances() {
        // Regime III: OPT = 50 disjoint sets of 16 (coverage 800 of
        // 2000 = n/2.5 ≥ n/η).
        let ss = many_small(2000, 400, 50, 0.4, 1);
        let params = Params::practical(400, 2000, 50, 8.0);
        assert!(params.small_set_active());
        let mut alg = SmallSet::new(2000, &params, 3);
        feed(&mut alg, &edge_stream(&ss, ArrivalOrder::Shuffled(2)));
        let out = alg.finalize();
        assert!(out.is_some(), "SmallSet must fire on regime III");
        let (est, _) = out.unwrap();
        // Sound: est ≤ OPT = 800; useful: est ≥ OPT/Õ(α).
        assert!(est <= 800.0 * 1.05, "estimate {est} above OPT 800");
        assert!(est >= 800.0 / (8.0 * 16.0), "estimate {est} too small");
    }

    #[test]
    fn witness_sets_are_real_sets() {
        let ss = many_small(1000, 200, 25, 0.5, 7);
        let params = Params::practical(200, 1000, 25, 4.0);
        let mut alg = SmallSet::new(1000, &params, 9);
        feed(&mut alg, &edge_stream(&ss, ArrivalOrder::RoundRobin));
        if let Some((_, Witness::ExplicitSets(sets))) = alg.finalize() {
            assert!(!sets.is_empty());
            assert!(sets.len() <= alg.k_sub());
            assert!(sets.iter().all(|&s| (s as usize) < 200));
        } else {
            panic!("expected explicit sets witness");
        }
    }

    #[test]
    fn estimate_sound_across_seeds() {
        for seed in 0..6u64 {
            let ss = many_small(1000, 200, 40, 0.6, seed);
            let params = Params::practical(200, 1000, 40, 4.0);
            let mut alg = SmallSet::new(1000, &params, 100 + seed);
            feed(&mut alg, &edge_stream(&ss, ArrivalOrder::Shuffled(seed)));
            if let Some((est, _)) = alg.finalize() {
                assert!(est <= 600.0 * 1.1, "seed {seed}: {est} > OPT 600");
            }
        }
    }

    #[test]
    fn k_sub_is_theta_k_over_alpha() {
        // practical s_alpha = w = alpha (alpha < k), so
        // k' = 4k/s_alpha = 4k/alpha.
        let params = Params::practical(1000, 1000, 64, 8.0);
        let alg = SmallSet::new(1000, &params, 1);
        assert_eq!(alg.k_sub(), (4.0 * 64.0 / 8.0) as usize);
    }

    #[test]
    fn lane_storage_respects_cap() {
        let ss = few_large(500, 100, 2, 150, 1);
        let mut params = Params::practical(100, 500, 20, 2.0);
        params.small_set_edge_cap = 16; // force overflow
        let mut alg = SmallSet::new(500, &params, 5);
        feed(&mut alg, &edge_stream(&ss, ArrivalOrder::SetContiguous));
        for lane in alg.reps.iter().flat_map(|r| r.lanes.iter()) {
            assert!(lane.edges.len() <= 16);
        }
    }

    #[test]
    fn empty_stream_is_infeasible() {
        let params = Params::practical(100, 100, 5, 2.0);
        let alg = SmallSet::new(100, &params, 1);
        assert!(alg.finalize().is_none());
    }

    #[test]
    fn merge_matches_serial_on_firing_instance() {
        let ss = many_small(2000, 400, 50, 0.4, 8);
        let params = Params::practical(400, 2000, 50, 8.0);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(17));
        let proto = SmallSet::new(2000, &params, 23);
        let mut serial = proto.clone();
        feed(&mut serial, &edges);
        let (head, tail) = edges.split_at(edges.len() / 4);
        let mut left = proto.clone();
        let mut right = proto;
        feed(&mut left, head);
        feed(&mut right, tail);
        left.merge(&right);
        let a = serial.finalize().expect("fires on regime III");
        let b = left.finalize().expect("merged must fire too");
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "estimate must match");
        assert_eq!(a.1, b.1, "witness must match");
        assert_eq!(serial.space_words(), left.space_words());
    }

    #[test]
    fn merge_reproduces_serial_overflow() {
        // Force the cap low enough that the combined stream overflows
        // while each half alone stays under it.
        let ss = few_large(500, 100, 2, 150, 3);
        let mut params = Params::practical(100, 500, 20, 2.0);
        params.small_set_edge_cap = 64;
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(5));
        let proto = SmallSet::new(500, &params, 5);
        let mut serial = proto.clone();
        feed(&mut serial, &edges);
        let (head, tail) = edges.split_at(edges.len() / 2);
        let mut left = proto.clone();
        let mut right = proto;
        feed(&mut left, head);
        feed(&mut right, tail);
        left.merge(&right);
        for (rs, rm) in serial.reps.iter().zip(&left.reps) {
            for (ls, lm) in rs.lanes.iter().zip(&rm.lanes) {
                assert_eq!(ls.overflowed, lm.overflowed, "overflow flags must agree");
                assert_eq!(ls.edges.len(), lm.edges.len(), "stored edge counts must agree");
            }
        }
        assert!(
            serial.reps.iter().flat_map(|r| r.lanes.iter()).any(|l| l.overflowed),
            "test instance must actually overflow some lane"
        );
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let params = Params::practical(100, 100, 5, 2.0);
        let mut a = SmallSet::new(100, &params, 1);
        let b = SmallSet::new(100, &params, 2);
        a.merge(&b);
    }

    #[test]
    fn fp_path_matches_scalar_path() {
        let ss = many_small(2000, 400, 50, 0.4, 9);
        let params = Params::practical(400, 2000, 50, 8.0);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(19));
        let base = Arc::new(KWise::new(8, 777));
        let proto = SmallSet::with_base(2000, &params, 29, base.clone());
        let mut scalar = proto.clone();
        let mut batched = proto;
        feed(&mut scalar, &edges);
        let fps: Vec<u64> = edges.iter().map(|e| base.hash(e.set as u64)).collect();
        batched.observe_fp_batch(&edges, &fps);
        assert_eq!(scalar.finalize(), batched.finalize());
        assert_eq!(scalar.space_words(), batched.space_words());
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_cap_mismatch() {
        let mut p1 = Params::practical(100, 100, 5, 2.0);
        let p2 = p1.clone();
        p1.small_set_edge_cap += 1;
        let mut a = SmallSet::new(100, &p1, 1);
        let b = SmallSet::new(100, &p2, 1);
        a.merge(&b);
    }

    #[test]
    fn space_counts_stored_edges() {
        let ss = many_small(500, 100, 20, 0.5, 2);
        let params = Params::practical(100, 500, 20, 2.0);
        let mut alg = SmallSet::new(500, &params, 4);
        let before = alg.space_words();
        feed(&mut alg, &edge_stream(&ss, ArrivalOrder::Shuffled(1)));
        assert!(alg.space_words() >= before, "stored edges must count");
    }
}
