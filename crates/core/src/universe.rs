//! Universe reduction — paper §3.1 (Lemma 3.5, Theorem 3.6).
//!
//! For each guess `z` of the optimal coverage size, hash the ground set
//! onto pseudo-elements `[z]` with a 4-wise independent function. Lemma
//! 3.5: any subset `S` with `|S| ≥ z` keeps `|h(S)| ≥ z/4` with
//! probability ≥ 3/4 (a second-moment argument on pairwise collisions).
//! The `(α, δ, η)`-oracle then only needs to handle instances whose
//! optimum covers a constant (`1/η = 1/4`) fraction of the universe.

use std::sync::Arc;

use kcov_hash::{four_wise, KWise, RangeHash};
use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

/// A 4-wise independent map `U → [z]` of the ground set onto
/// pseudo-elements.
///
/// Two constructions coexist: the classic standalone form hashes the
/// raw element id directly (`new`), while the hash-once hot path
/// composes a shared element *fingerprint base* with a per-lane 4-wise
/// mix (`with_base`) — the base is evaluated once per edge by the
/// estimator and every lane only pays the cheap mix.
#[derive(Debug, Clone)]
pub struct UniverseReducer {
    z: u64,
    hash: Arc<KWise>,
    /// Whether `hash` is the lane-invariant shared mix owned by the
    /// enclosing estimator (space: this holder counts a 1-word handle;
    /// the estimator attributes the coefficients once under its
    /// top-level `universe` leaf) or a private mix this reducer owns.
    shared_mix: bool,
    /// Shared element fingerprint base (hash-once path). `None` for
    /// standalone reducers that hash raw ids. Held by `Arc`: every lane
    /// shares one coefficient table, and the space ledger attributes the
    /// words to the owner (the estimator's fingerprint front end).
    base: Option<Arc<KWise>>,
}

impl UniverseReducer {
    /// Create a reducer onto `[z]` pseudo-elements hashing raw ids.
    pub fn new(z: u64, seed: u64) -> Self {
        assert!(z >= 1, "z must be positive");
        UniverseReducer {
            z,
            hash: Arc::new(four_wise(seed)),
            shared_mix: false,
            base: None,
        }
    }

    /// Create a reducer that consumes element *fingerprints* under the
    /// shared `base`: `map(e) = mix(base(e)) mod z`. The scalar `map`
    /// stays available (it applies the base itself), so standalone and
    /// batched ingestion remain bit-identical.
    pub fn with_base(z: u64, seed: u64, base: Arc<KWise>) -> Self {
        assert!(z >= 1, "z must be positive");
        UniverseReducer {
            z,
            hash: Arc::new(four_wise(seed)),
            shared_mix: false,
            base: Some(base),
        }
    }

    /// Derive a lane-invariant 4-wise mix for sharing across an
    /// estimator's reducers (one instance per process; see
    /// [`Self::with_shared_mix`]).
    pub fn shared_mix(seed: u64) -> Arc<KWise> {
        Arc::new(four_wise(seed))
    }

    /// Create a reducer onto `[z]` that applies the *shared*
    /// lane-invariant `mix` to element fingerprints under `base`. Every
    /// estimator lane holds the same two `Arc`s; per chunk the mix
    /// column is evaluated once ([`Self::mix_batch`]) and each lane
    /// pays only its own range reduction
    /// ([`Self::map_premixed_batch`]). Sharing the mix couples the
    /// lanes' reductions (nested prefix samples across `z` guesses),
    /// which is harmless: Lemma 3.5 is applied per lane and the final
    /// max never relies on cross-lane independence.
    pub fn with_shared_mix(z: u64, mix: Arc<KWise>, base: Arc<KWise>) -> Self {
        assert!(z >= 1, "z must be positive");
        UniverseReducer {
            z,
            hash: mix,
            shared_mix: true,
            base: Some(base),
        }
    }

    /// Resident words of the mix coefficients — what the owning
    /// estimator attributes under its `universe` leaf when the mix is
    /// shared.
    pub fn mix_words(&self) -> usize {
        self.hash.space_words()
    }

    /// Pseudo-element of `elem` (raw id).
    #[inline]
    pub fn map(&self, elem: u64) -> u64 {
        match &self.base {
            Some(b) => self.hash.hash_to_range(b.hash(elem), self.z),
            None => self.hash.hash_to_range(elem, self.z),
        }
    }

    /// Pseudo-element from a precomputed fingerprint `base(elem)`.
    /// Only meaningful on reducers built with [`Self::with_base`];
    /// bit-identical to `map(elem)` there.
    #[inline]
    pub fn map_fp(&self, fp_elem: u64) -> u64 {
        debug_assert!(self.base.is_some(), "map_fp needs a fingerprint base");
        self.hash.hash_to_range(fp_elem, self.z)
    }

    /// Reduce a chunk of edges into `out` (cleared first): each edge's
    /// element is replaced by its pseudo-element, sets pass through.
    /// Reusing the caller's buffer keeps the batched ingestion path
    /// allocation-free after warm-up.
    pub fn map_batch(&self, edges: &[Edge], out: &mut Vec<Edge>) {
        out.clear();
        out.extend(
            edges
                .iter()
                .map(|e| Edge::new(e.set, self.map(e.elem as u64) as u32)),
        );
    }

    /// Reduce a chunk given precomputed element fingerprints (hash-once
    /// path; `fps[i]` must be `base(edges[i].elem)`). State-identical
    /// to [`Self::map_batch`] on base-carrying reducers.
    pub fn map_fp_batch(&self, edges: &[Edge], fps: &[u64], out: &mut Vec<Edge>) {
        debug_assert_eq!(edges.len(), fps.len());
        out.clear();
        out.extend(
            edges
                .iter()
                .zip(fps)
                .map(|(e, &fp)| Edge::new(e.set, self.map_fp(fp) as u32)),
        );
    }

    /// Evaluate the 4-wise mix (not yet range-reduced) over a
    /// fingerprint column. When every lane shares one mix — the
    /// estimator construction — this column is computed once per chunk
    /// and each lane only applies its own range reduction via
    /// [`Self::map_premixed_batch`].
    pub fn mix_batch(&self, fps: &[u64], out: &mut Vec<u64>) {
        self.hash.hash_batch(fps, out);
    }

    /// Reduce a chunk given the *premixed* column (`mixed[i]` must be
    /// `mix(base(edges[i].elem))`, i.e. the output of
    /// [`Self::mix_batch`] on this reducer's mix). Bit-identical to
    /// [`Self::map_fp_batch`]: the range reduction
    /// `⌊mixed·z/2^61⌋` is exactly `hash_to_range`'s, so per lane the
    /// whole universe reduction is one widening multiply per edge.
    pub fn map_premixed_batch(&self, edges: &[Edge], mixed: &[u64], out: &mut Vec<Edge>) {
        debug_assert_eq!(edges.len(), mixed.len());
        out.clear();
        out.extend(edges.iter().zip(mixed).map(|(e, &h)| {
            Edge::new(e.set, ((h as u128 * self.z as u128) >> 61) as u32)
        }));
    }

    /// Whether `other` applies the same 4-wise mix (the lane-invariant
    /// sharing contract of the estimator construction).
    pub fn same_mix(&self, other: &Self) -> bool {
        let probes = (0..4u64).map(|i| 0x5eed_c0de ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        probes.clone().all(|p| self.hash.hash(p) == other.hash.hash(p))
    }

    /// The pseudo-universe size `z`.
    pub fn z(&self) -> u64 {
        self.z
    }

    /// Whether `other` computes the same map `U → [z]` (same range,
    /// same mix, and same base arrangement, checked by probing the
    /// components separately — probing the composed `map` at small `z`
    /// would accept colliding-but-different functions). Used by the
    /// merge path to verify two lanes reduce the universe identically.
    pub fn same_function(&self, other: &Self) -> bool {
        let probes = (0..4u64).map(|i| 0x5eed_c0de ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        self.z == other.z
            && self.base.is_some() == other.base.is_some()
            && probes.clone().all(|p| self.hash.hash(p) == other.hash.hash(p))
            && match (&self.base, &other.base) {
                (Some(a), Some(b)) => probes.clone().all(|p| a.hash(p) == b.hash(p)),
                _ => true,
            }
    }

    /// Image size `|h(S)|` of an explicit set (used by tests and the
    /// Lemma 3.5 experiment).
    pub fn image_size(&self, members: &[u64]) -> usize {
        let mut seen = std::collections::HashSet::with_capacity(members.len().min(self.z as usize));
        for &e in members {
            seen.insert(self.map(e));
        }
        seen.len()
    }
}

impl SpaceUsage for UniverseReducer {
    fn space_words(&self) -> usize {
        // State behind a shared `Arc` is attributed to its owner (the
        // estimator front end for the fingerprint base, the estimator's
        // `universe` leaf for a shared mix); this holder carries 1-word
        // handles.
        let mix = if self.shared_mix { 1 } else { self.hash.space_words() };
        mix + self.base.as_ref().map_or(0, |_| 1) + 1
    }

    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        node.leaf("hash", if self.shared_mix { 1 } else { self.hash.space_words() });
        if self.base.is_some() {
            node.leaf("base", 1);
        }
        node.leaf("overhead", 1);
    }
}

// ---- wire format ----------------------------------------------------

const TAG_UR: u64 = 0x5552; // "UR"

impl kcov_sketch::WireEncode for UniverseReducer {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_kwise, put_u64};
        put_u64(out, TAG_UR);
        put_u64(out, self.z);
        put_u64(out, self.shared_mix as u64);
        put_kwise(out, &self.hash);
        match &self.base {
            Some(b) => {
                put_u64(out, 1);
                put_kwise(out, b);
            }
            None => put_u64(out, 0),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_kwise, take_u64};
        if take_u64(input)? != TAG_UR {
            return Err(err("bad UniverseReducer tag"));
        }
        let z = take_u64(input)?;
        if z < 1 {
            return Err(err("UniverseReducer z must be positive"));
        }
        let shared_mix = match take_u64(input)? {
            0 => false,
            1 => true,
            other => return Err(err(format!("bad UniverseReducer mix flag {other}"))),
        };
        let hash = Arc::new(take_kwise(input)?);
        let base = match take_u64(input)? {
            0 => None,
            1 => Some(Arc::new(take_kwise(input)?)),
            other => return Err(err(format!("bad UniverseReducer base flag {other}"))),
        };
        Ok(UniverseReducer { z, hash, shared_mix, base })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_into_range() {
        let r = UniverseReducer::new(17, 3);
        for e in 0..1000u64 {
            assert!(r.map(e) < 17);
        }
    }

    #[test]
    fn deterministic() {
        let a = UniverseReducer::new(64, 5);
        let b = UniverseReducer::new(64, 5);
        for e in 0..100u64 {
            assert_eq!(a.map(e), b.map(e));
        }
    }

    #[test]
    fn lemma_3_5_image_at_least_quarter() {
        // |S| = z: with probability >= 3/4, |h(S)| >= z/4. Check the
        // empirical success rate over many seeds comfortably exceeds 3/4
        // (it concentrates near 1 - e^{-1}-ish collision profiles; the
        // lemma's 3/4 is a loose bound).
        let z = 128u64;
        let members: Vec<u64> = (0..z).collect();
        let mut successes = 0;
        let trials = 200;
        for seed in 0..trials {
            let r = UniverseReducer::new(z, 1000 + seed);
            if r.image_size(&members) >= (z / 4) as usize {
                successes += 1;
            }
        }
        assert!(
            successes as f64 / trials as f64 >= 0.75,
            "Lemma 3.5 failed empirically: {successes}/{trials}"
        );
    }

    #[test]
    fn image_never_exceeds_set_size_or_z() {
        let r = UniverseReducer::new(32, 9);
        let small: Vec<u64> = (0..10).collect();
        assert!(r.image_size(&small) <= 10);
        let large: Vec<u64> = (0..1000).collect();
        assert!(r.image_size(&large) <= 32);
    }

    #[test]
    fn coverage_never_increases_under_reduction() {
        // The Theorem 3.6 soundness direction: |h(C)| <= |C| for any C.
        let r = UniverseReducer::new(256, 11);
        for size in [1usize, 5, 50, 500] {
            let members: Vec<u64> = (0..size as u64).map(|x| x * 7 + 1).collect();
            assert!(r.image_size(&members) <= size);
        }
    }

    #[test]
    fn same_function_detects_seed_and_range() {
        let a = UniverseReducer::new(64, 5);
        let b = UniverseReducer::new(64, 5);
        let c = UniverseReducer::new(64, 6);
        let d = UniverseReducer::new(32, 5);
        assert!(a.same_function(&b));
        assert!(!a.same_function(&c));
        assert!(!a.same_function(&d));
    }

    #[test]
    fn base_variant_is_fingerprint_consistent() {
        let base = Arc::new(KWise::new(8, 77));
        let r = UniverseReducer::new(64, 5);
        let f = UniverseReducer::with_base(64, 5, base.clone());
        for e in 0..200u64 {
            // map applies the base itself; map_fp consumes it precomputed.
            assert_eq!(f.map(e), f.map_fp(base.hash(e)));
        }
        // Base presence is part of the function identity even when the
        // mix seed matches.
        assert!(!r.same_function(&f));
        let g = UniverseReducer::with_base(64, 5, base.clone());
        assert!(f.same_function(&g));
        let h = UniverseReducer::with_base(64, 5, Arc::new(KWise::new(8, 78)));
        assert!(!f.same_function(&h));
        // Batched fingerprint reduction matches scalar reduction.
        let edges: Vec<Edge> = (0..50u32).map(|i| Edge::new(i, i * 3 % 40)).collect();
        let fps: Vec<u64> = edges.iter().map(|e| base.hash(e.elem as u64)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        f.map_batch(&edges, &mut a);
        f.map_fp_batch(&edges, &fps, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn z_one_collapses_everything() {
        let r = UniverseReducer::new(1, 2);
        assert_eq!(r.map(123), 0);
        assert_eq!(r.image_size(&[1, 2, 3]), 1);
    }
}
