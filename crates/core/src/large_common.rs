//! `LargeCommon` — multi-layered set sampling (paper §4.1, Fig 3).
//!
//! For each guess `β_g ∈ {2^i : i ≤ log α}` in parallel: sample each set
//! with probability `≈ β_g·k/m` using a `Θ(log mn)`-wise hash (Appendix
//! A.1), and feed the covered elements of sampled sets to an `L0`
//! estimator. If some layer's sampled coverage reaches
//! `σ·β_g·|U|/(4α)`, then by set sampling (Lemma 2.3) and Observation 2.4
//! the best `k` sets *within the sample* already cover
//! `≥ Ω(σ·|U|/α)`, and the layer's value (divided by the effective group
//! count) is a sound `Ω̃(|U|/α)` lower bound on the optimum.
//!
//! Succeeds exactly when some frequency layer has many `β_g k`-common
//! elements — the oracle's case I.

use std::sync::Arc;

use kcov_hash::{KWise, RangeHash, SeedSequence};
use kcov_sketch::{L0Estimator, SpaceUsage};
use kcov_stream::Edge;

use crate::params::Params;
use crate::Witness;

/// One sampling layer (`β_g` guess).
#[derive(Debug, Clone)]
struct BetaLane {
    beta: f64,
    /// Set kept iff the low bits of the mixed set fingerprint are zero:
    /// `set_mix(fp) & (buckets − 1) == 0`. `buckets` is a power of two
    /// `≈ m/(β·k)`, so the layers are *nested* (`F^rnd_β ⊆ F^rnd_{2β}`)
    /// and one mix evaluation serves every layer. Nesting is sound:
    /// each layer's guarantee (Lemma 4.6) is individual, and the union
    /// bound over layers does not need independence between them.
    buckets: u64,
    /// Distinct covered elements of the sampled collection.
    de: L0Estimator,
    /// Optional per-group distinct counters for reporting (group =
    /// `group_hash(fp) mod ⌈β⌉`, Observation 2.4 partitioning).
    groups: Option<GroupTracker>,
}

#[derive(Debug, Clone)]
struct GroupTracker {
    /// 4-wise mix over set *fingerprints* (hash-once hot path).
    hash: KWise,
    counters: Vec<L0Estimator>,
}

/// Single-pass multi-layered set sampling (case I of the oracle).
#[derive(Debug, Clone)]
pub struct LargeCommon {
    u: usize,
    m: usize,
    k: usize,
    alpha: f64,
    sigma: f64,
    /// Shared set fingerprint base (hash-once hot path). Wire payloads
    /// stay self-contained (the coefficients are re-encoded per holder)
    /// and finalize can enumerate sampled sets without external state;
    /// in memory every holder shares one `Arc`'d coefficient table and
    /// counts a 1-word handle — the words belong to the owning
    /// fingerprint front end.
    set_base: Arc<KWise>,
    /// Per-subroutine 4-wise mix applied to the shared fingerprint —
    /// the layer-sampling gate (see [`BetaLane::buckets`]). Keeping the
    /// mix distinct per subroutine avoids gate correlation with the
    /// other oracle cases, which also mix the same fingerprint.
    set_mix: KWise,
    lanes: Vec<BetaLane>,
}

impl LargeCommon {
    /// Create the subroutine for universe size `u` (the pseudo-universe
    /// after reduction), deriving a private set fingerprint base.
    /// Estimator lanes share one base across every subroutine instead —
    /// see [`LargeCommon::with_base`].
    pub fn new(u: usize, params: &Params, reporting: bool, seed: u64) -> Self {
        let degree = Params::hash_degree(params.mode, params.m, params.n);
        let base_seed = SeedSequence::labeled(seed, "large-common-base").next_seed();
        Self::with_base(u, params, reporting, seed, Arc::new(KWise::new(degree, base_seed)))
    }

    /// Create the subroutine consuming set fingerprints under the shared
    /// `set_base`. When `reporting` is set, per-group distinct counters
    /// are maintained so a concrete k-cover can be extracted (the Õ(k)
    /// extra of Theorem 3.2).
    pub fn with_base(
        u: usize,
        params: &Params,
        reporting: bool,
        seed: u64,
        set_base: Arc<KWise>,
    ) -> Self {
        let mut seq = SeedSequence::labeled(seed, "large-common");
        let m = params.m;
        let k = params.k;
        let alpha = params.alpha;
        let max_i = alpha.max(2.0).log2().ceil() as u32;
        let set_mix = KWise::new(4, seq.next_seed());
        let mut lanes = Vec::new();
        for i in 0..=max_i {
            let beta = (1u64 << i) as f64;
            // Sampling probability β·k/m (capped at 1), realized as a
            // power-of-two bucket count so the layers nest.
            let p = (beta * k as f64 / m.max(1) as f64).min(1.0);
            let buckets = ((1.0 / p) as u64).max(1).next_power_of_two();
            let groups = reporting.then(|| {
                let g = beta.ceil() as usize;
                let mut gs = SeedSequence::labeled(seq.next_seed(), "groups");
                GroupTracker {
                    hash: KWise::new(4, gs.next_seed()),
                    counters: (0..g).map(|_| L0Estimator::new(24, 3, gs.next_seed())).collect(),
                }
            });
            lanes.push(BetaLane {
                beta,
                buckets,
                de: L0Estimator::new(48, 3, seq.next_seed()),
                groups,
            });
        }
        LargeCommon {
            u,
            m,
            k,
            alpha,
            sigma: params.sigma,
            set_base,
            set_mix,
            lanes,
        }
    }

    /// The layer gate value of a set fingerprint: one 4-wise mix serves
    /// every (nested) layer.
    #[inline]
    fn gate(&self, fp_set: u64) -> u64 {
        self.set_mix.hash(fp_set)
    }

    /// Observe one `(set, element)` edge (scalar compatibility path:
    /// applies the fingerprint base itself).
    pub fn observe(&mut self, edge: Edge) {
        let fp = self.set_base.hash(edge.set as u64);
        self.observe_fp(edge, fp);
    }

    /// Observe one edge given its precomputed set fingerprint
    /// `set_base(edge.set)` — the hash-once hot path. One shared 4-wise
    /// mix gates every layer (layers are nested by power-of-two
    /// buckets).
    #[inline]
    pub fn observe_fp(&mut self, edge: Edge, fp_set: u64) {
        let h = self.gate(fp_set);
        for lane in &mut self.lanes {
            if h & (lane.buckets - 1) == 0 {
                lane.de.insert(edge.elem as u64);
                if let Some(g) = &mut lane.groups {
                    let gi = g.hash.hash_to_range(fp_set, g.counters.len() as u64);
                    g.counters[gi as usize].insert(edge.elem as u64);
                }
            }
        }
    }

    /// Observe a chunk of edges (scalar compatibility path).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        let fps: Vec<u64> = edges.iter().map(|e| self.set_base.hash(e.set as u64)).collect();
        self.observe_fp_batch(edges, &fps);
    }

    /// Observe a chunk given precomputed set fingerprints (`fps[i]` must
    /// be `set_base(edges[i].set)`). The shared mix is evaluated once
    /// per edge for the whole chunk; each layer then consumes its
    /// surviving edges in arrival order, so every layer's sketches see
    /// the exact sequence the per-edge path feeds them (state-identical
    /// to repeated [`LargeCommon::observe_fp`]).
    pub fn observe_fp_batch(&mut self, edges: &[Edge], fps: &[u64]) {
        debug_assert_eq!(edges.len(), fps.len());
        let mut gates = Vec::new();
        self.set_mix.hash_batch(fps, &mut gates);
        let mut surv: Vec<u64> = Vec::with_capacity(edges.len());
        for lane in &mut self.lanes {
            let mask = lane.buckets - 1;
            if let Some(g) = &mut lane.groups {
                // Reporting path: group counters interleave with the
                // distinct sketch, keep the per-edge loop.
                for (edge, (&h, &fp)) in edges.iter().zip(gates.iter().zip(fps)) {
                    if h & mask == 0 {
                        lane.de.insert(edge.elem as u64);
                        let gi = g.hash.hash_to_range(fp, g.counters.len() as u64);
                        g.counters[gi as usize].insert(edge.elem as u64);
                    }
                }
            } else {
                // Gather the layer's survivors into a dense column and
                // feed the distinct sketch batched (state-identical:
                // same elements, same arrival order).
                surv.clear();
                for (edge, &h) in edges.iter().zip(&gates) {
                    if h & mask == 0 {
                        surv.push(edge.elem as u64);
                    }
                }
                if !surv.is_empty() {
                    lane.de.insert_batch(&surv);
                }
            }
        }
    }

    /// Gate value of a raw set id (finalize-time enumeration).
    fn gate_of_set(&self, set: u64) -> u64 {
        self.set_mix.hash(self.set_base.hash(set))
    }

    /// Exact number of sets a lane samples (computable at finalize time
    /// from the hash functions alone, `O(m)` time, no stream state — see
    /// DESIGN.md on sound group counts).
    fn sampled_count(&self, lane: &BetaLane) -> usize {
        (0..self.m as u64)
            .filter(|&s| self.gate_of_set(s) & (lane.buckets - 1) == 0)
            .count()
    }

    /// The sets sampled by a lane (for reporting).
    pub fn sampled_sets_of_lane(&self, lane_idx: usize) -> Vec<u32> {
        let lane = &self.lanes[lane_idx];
        (0..self.m as u64)
            .filter(|&s| self.gate_of_set(s) & (lane.buckets - 1) == 0)
            .map(|s| s as u32)
            .collect()
    }

    /// The sets of one reporting group within a lane.
    pub fn group_sets(&self, lane_idx: usize, group: u64) -> Vec<u32> {
        let lane = &self.lanes[lane_idx];
        let Some(g) = &lane.groups else {
            return Vec::new();
        };
        (0..self.m as u64)
            .filter(|&s| {
                let fp = self.set_base.hash(s);
                self.set_mix.hash(fp) & (lane.buckets - 1) == 0
                    && g.hash.hash_to_range(fp, g.counters.len() as u64) == group
            })
            .map(|s| s as u32)
            .collect()
    }

    /// Finalize: the best qualifying layer's sound estimate, or `None`
    /// ("infeasible") when no layer has enough common-element coverage.
    pub fn finalize(&self) -> Option<(f64, Witness)> {
        let u = self.u as f64;
        let mut best: Option<(f64, Witness)> = None;
        for (idx, lane) in self.lanes.iter().enumerate() {
            let val = lane.de.estimate();
            let threshold = self.sigma * lane.beta * u / (4.0 * self.alpha);
            if val < threshold {
                continue;
            }
            // Effective group count: the actual sample may exceed β·k
            // (the paper's Lemma A.5 bounds it w.h.p.; we count exactly).
            let count = self.sampled_count(lane);
            let beta_eff = ((count as f64 / self.k as f64).ceil()).max(lane.beta).max(1.0);
            let est = (2.0 / 3.0) * val / beta_eff;
            let group = lane.groups.as_ref().map(|g| {
                g.counters
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        a.1.estimate()
                            .partial_cmp(&b.1.estimate())
                            .expect("no NaN")
                    })
                    .map(|(gi, _)| gi as u64)
                    .unwrap_or(0)
            });
            let witness = Witness::SampledGroup {
                lane: idx,
                group: group.unwrap_or(0),
            };
            if best.as_ref().is_none_or(|(b, _)| est > *b) {
                best = Some((est, witness));
            }
        }
        best
    }

    /// Number of β layers.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Merge a subroutine built with the same parameters and seed over a
    /// disjoint stream shard. Every piece of per-stream state is an
    /// `L0Estimator` (lane coverage counters and optional group
    /// counters), so the merged state is *bit-identical* to single-stream
    /// ingestion. Panics on configuration or seed mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            (self.u, self.m, self.k, self.lanes.len()),
            (other.u, other.m, other.k, other.lanes.len()),
            "LargeCommon merge requires identical configuration"
        );
        assert_eq!(
            self.set_base.hash(0x5eed_c0de),
            other.set_base.hash(0x5eed_c0de),
            "LargeCommon merge requires identical hash functions"
        );
        assert_eq!(
            self.set_mix.hash(0x5eed_c0de),
            other.set_mix.hash(0x5eed_c0de),
            "LargeCommon merge requires identical hash functions"
        );
        for (a, b) in self.lanes.iter_mut().zip(&other.lanes) {
            assert_eq!(
                a.buckets, b.buckets,
                "LargeCommon merge requires identical configuration (lane buckets)"
            );
            assert_eq!(
                a.groups.is_some(),
                b.groups.is_some(),
                "LargeCommon merge requires identical configuration (reporting mode)"
            );
            a.de.merge(&b.de);
            if let (Some(ga), Some(gb)) = (&mut a.groups, &b.groups) {
                assert_eq!(
                    ga.counters.len(),
                    gb.counters.len(),
                    "LargeCommon merge requires identical configuration (group counts)"
                );
                assert_eq!(
                    ga.hash.hash(0x5eed_c0de),
                    gb.hash.hash(0x5eed_c0de),
                    "LargeCommon merge requires identical hash functions"
                );
                for (ca, cb) in ga.counters.iter_mut().zip(&gb.counters) {
                    ca.merge(cb);
                }
            }
        }
    }

    /// Aggregated sketch telemetry over the per-layer `L0` estimators
    /// (lane coverage counters plus optional reporting groups).
    pub fn sketch_stats(&self) -> kcov_obs::SketchStats {
        let mut agg = kcov_obs::SketchStats::default();
        for lane in &self.lanes {
            agg.absorb(lane.de.stats());
            if let Some(g) = &lane.groups {
                for c in &g.counters {
                    agg.absorb(c.stats());
                }
            }
        }
        agg
    }

    /// Per-layer diagnostics: `(β, L0 value, firing threshold)` for each
    /// layer — the raw material of the multi-layer ablation experiment.
    pub fn lane_values(&self) -> Vec<(f64, f64, f64)> {
        let u = self.u as f64;
        self.lanes
            .iter()
            .map(|lane| {
                (
                    lane.beta,
                    lane.de.estimate(),
                    self.sigma * lane.beta * u / (4.0 * self.alpha),
                )
            })
            .collect()
    }
}

// ---- wire format ----------------------------------------------------

const TAG_LC: u64 = 0x4c43; // "LC"

impl kcov_sketch::WireEncode for LargeCommon {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_f64, put_kwise, put_l0_full, put_u64};
        put_u64(out, TAG_LC);
        put_u64(out, self.u as u64);
        put_u64(out, self.m as u64);
        put_u64(out, self.k as u64);
        put_f64(out, self.alpha);
        put_f64(out, self.sigma);
        put_kwise(out, &self.set_base);
        put_kwise(out, &self.set_mix);
        put_u64(out, self.lanes.len() as u64);
        for lane in &self.lanes {
            put_f64(out, lane.beta);
            put_u64(out, lane.buckets);
            put_l0_full(out, &lane.de);
            match &lane.groups {
                None => put_u64(out, 0),
                Some(g) => {
                    put_u64(out, 1);
                    put_kwise(out, &g.hash);
                    put_u64(out, g.counters.len() as u64);
                    for c in &g.counters {
                        put_l0_full(out, c);
                    }
                }
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_f64, take_kwise, take_l0_full, take_u64};
        if take_u64(input)? != TAG_LC {
            return Err(err("bad LargeCommon tag"));
        }
        let u = take_u64(input)? as usize;
        let m = take_u64(input)? as usize;
        let k = take_u64(input)? as usize;
        let alpha = take_f64(input)?;
        let sigma = take_f64(input)?;
        let set_base = Arc::new(take_kwise(input)?);
        let set_mix = take_kwise(input)?;
        let num_lanes = take_u64(input)? as usize;
        if num_lanes > input.len() {
            return Err(err("LargeCommon lane count exceeds input"));
        }
        let mut lanes = Vec::with_capacity(num_lanes);
        for _ in 0..num_lanes {
            let beta = take_f64(input)?;
            let buckets = take_u64(input)?;
            if buckets < 1 || !buckets.is_power_of_two() {
                return Err(err(format!("LargeCommon lane buckets {buckets} not a positive power of two")));
            }
            let de = take_l0_full(input)?;
            let groups = match take_u64(input)? {
                0 => None,
                1 => {
                    let hash = take_kwise(input)?;
                    let n = take_u64(input)? as usize;
                    if n > input.len() {
                        return Err(err("LargeCommon group count exceeds input"));
                    }
                    let counters = (0..n).map(|_| take_l0_full(input)).collect::<Result<Vec<_>, _>>()?;
                    if counters.is_empty() {
                        return Err(err("LargeCommon reporting lane has no groups"));
                    }
                    Some(GroupTracker { hash, counters })
                }
                flag => return Err(err(format!("bad LargeCommon group flag {flag}"))),
            };
            lanes.push(BetaLane { beta, buckets, de, groups });
        }
        if lanes.is_empty() {
            return Err(err("LargeCommon has no lanes"));
        }
        Ok(LargeCommon { u, m, k, alpha, sigma, set_base, set_mix, lanes })
    }
}

impl SpaceUsage for LargeCommon {
    fn space_words(&self) -> usize {
        // 1-word handle on the shared base (coefficients counted once by
        // their owner).
        1 + self.set_mix.space_words()
            + self
                .lanes
                .iter()
                .map(|l| {
                    l.de.space_words()
                        + 2
                        + l.groups.as_ref().map_or(0, |g| {
                            g.hash.space_words()
                                + g.counters.iter().map(SpaceUsage::space_words).sum::<usize>()
                        })
                })
                .sum::<usize>()
    }

    /// Mirrors `space_words` term by term. The β layers aggregate into
    /// shared `distinct` / `groups` subtrees (layer counts vary with α;
    /// per-layer children would multiply trace events without changing
    /// any audit); `overhead` counts the 2-word `(β, buckets)` schedule
    /// per layer.
    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        node.leaf("set_base", 1);
        node.leaf("set_mix", self.set_mix.space_words());
        for lane in &self.lanes {
            lane.de.space_ledger(node.child("distinct"));
            node.leaf("overhead", 2);
            if let Some(g) = &lane.groups {
                let groups = node.child("groups");
                groups.leaf("hash", g.hash.space_words());
                for c in &g.counters {
                    c.space_ledger(groups.child("counters"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{common_heavy, many_small};
    use kcov_stream::{coverage_of, edge_stream, ArrivalOrder};

    fn feed(lc: &mut LargeCommon, edges: &[Edge]) {
        for &e in edges {
            lc.observe(e);
        }
    }

    #[test]
    fn detects_common_heavy_instances() {
        // Regime I: every small collection of sets covers the common
        // pool, so some layer must fire.
        let ss = common_heavy(800, 400, 1);
        let params = Params::practical(400, 800, 10, 4.0);
        let mut lc = LargeCommon::new(800, &params, false, 42);
        feed(&mut lc, &edge_stream(&ss, ArrivalOrder::Shuffled(7)));
        let out = lc.finalize();
        assert!(out.is_some(), "LargeCommon must fire on regime I");
        let (est, _) = out.unwrap();
        // Sound: estimate below OPT (OPT >= 200: the common pool).
        let greedy = kcov_baselines::greedy_max_cover(&ss, 10);
        assert!(
            est <= greedy.coverage as f64 * 1.05,
            "estimate {est} exceeds achievable {}",
            greedy.coverage
        );
        // Useful: within ~alpha of the common-pool coverage.
        assert!(est >= 200.0 / (4.0 * 16.0), "estimate {est} too small");
    }

    #[test]
    fn infeasible_on_rare_element_instances() {
        // Regime III: max element frequency ~4 out of 200 sets; with
        // sampling rate β·k/m = β·10/200, sampled sets rarely share
        // elements and the coverage threshold σ·β·u/(4α) is not met.
        let ss = many_small(2000, 200, 50, 0.4, 3);
        let params = Params::practical(200, 2000, 10, 8.0);
        let mut lc = LargeCommon::new(2000, &params, false, 9);
        feed(&mut lc, &edge_stream(&ss, ArrivalOrder::Shuffled(1)));
        // The lanes with large β sample many sets and do accumulate
        // coverage; the *threshold* grows as β too. The instance has no
        // common elements, so coverage per sampled set stays ~16 and
        // the σβu/4α bar (β·2000/128 ≈ 15β) should not be met for small
        // β... but sampled coverage grows with β·k·16 ≈ 160β/4. This
        // instance is near the boundary; simply require: if it fires,
        // the estimate is still sound (≤ OPT).
        if let Some((est, _)) = lc.finalize() {
            let opt = 800.0; // planted coverage of regime III
            assert!(est <= opt, "unsound estimate {est} > OPT {opt}");
        }
    }

    #[test]
    fn estimate_is_sound_across_seeds() {
        for seed in 0..8u64 {
            let ss = common_heavy(400, 200, seed);
            let params = Params::practical(200, 400, 5, 4.0);
            let mut lc = LargeCommon::new(400, &params, false, 1000 + seed);
            feed(&mut lc, &edge_stream(&ss, ArrivalOrder::Shuffled(seed)));
            if let Some((est, _)) = lc.finalize() {
                // OPT <= n; stronger: exact best-5 greedy+margin.
                let g = kcov_baselines::greedy_max_cover(&ss, 5).coverage as f64;
                // greedy >= (1-1/e)OPT => OPT <= g/(1-1/e)
                let opt_ub = g / (1.0 - 1.0 / std::f64::consts::E);
                assert!(est <= opt_ub * 1.1, "seed {seed}: {est} > {opt_ub}");
            }
        }
    }

    #[test]
    fn reporting_groups_yield_concrete_sets() {
        let ss = common_heavy(800, 400, 2);
        let params = Params::practical(400, 800, 10, 4.0);
        let mut lc = LargeCommon::new(800, &params, true, 5);
        feed(&mut lc, &edge_stream(&ss, ArrivalOrder::Shuffled(3)));
        let (est, witness) = lc.finalize().expect("fires on regime I");
        let Witness::SampledGroup { lane, group } = witness else {
            panic!("wrong witness kind");
        };
        let sets = lc.group_sets(lane, group);
        assert!(!sets.is_empty(), "witness group must be non-empty");
        // The group's real coverage should be at least the estimate
        // (the estimate divides by the group count).
        let chosen: Vec<usize> = sets.iter().map(|&s| s as usize).collect();
        let cov = coverage_of(&ss, &chosen) as f64;
        assert!(
            cov >= est * 0.5,
            "group coverage {cov} far below estimate {est}"
        );
    }

    #[test]
    fn lane_count_is_log_alpha() {
        let params = Params::practical(1000, 1000, 10, 16.0);
        let lc = LargeCommon::new(1000, &params, false, 1);
        assert_eq!(lc.num_lanes(), 5); // β ∈ {1, 2, 4, 8, 16}
    }

    #[test]
    fn space_is_polylog() {
        let params = Params::practical(100_000, 100_000, 100, 32.0);
        let lc = LargeCommon::new(100_000, &params, false, 1);
        // log α lanes × O(1) sketch each — far below m.
        assert!(lc.space_words() < 3000, "space {}", lc.space_words());
    }

    #[test]
    fn empty_stream_is_infeasible() {
        let params = Params::practical(100, 100, 5, 4.0);
        let lc = LargeCommon::new(100, &params, false, 1);
        assert!(lc.finalize().is_none());
    }

    #[test]
    fn merge_matches_serial_including_groups() {
        let ss = common_heavy(800, 400, 4);
        let params = Params::practical(400, 800, 10, 4.0);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(11));
        let proto = LargeCommon::new(800, &params, true, 77);
        let mut serial = proto.clone();
        feed(&mut serial, &edges);
        let (head, tail) = edges.split_at(edges.len() / 3);
        let mut left = proto.clone();
        let mut right = proto;
        feed(&mut left, head);
        feed(&mut right, tail);
        left.merge(&right);
        let a = serial.finalize().expect("fires on regime I");
        let b = left.finalize().expect("merged must fire too");
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "estimate must be bit-identical");
        assert_eq!(a.1, b.1, "witness must match");
        assert_eq!(serial.space_words(), left.space_words());
    }

    #[test]
    fn fp_path_matches_scalar_path() {
        // Hash-once contract: precomputed fingerprints (scalar or
        // batched) drive the sketches into bit-identical state.
        let ss = common_heavy(800, 400, 6);
        let params = Params::practical(400, 800, 10, 4.0);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(5));
        let base = Arc::new(KWise::new(8, 321));
        let proto = LargeCommon::with_base(800, &params, true, 13, base.clone());
        let mut scalar = proto.clone();
        let mut fp = proto.clone();
        let mut batched = proto;
        for &e in &edges {
            scalar.observe(e);
            fp.observe_fp(e, base.hash(e.set as u64));
        }
        let fps: Vec<u64> = edges.iter().map(|e| base.hash(e.set as u64)).collect();
        batched.observe_fp_batch(&edges, &fps);
        let a = scalar.finalize();
        let b = fp.finalize();
        let c = batched.finalize();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(scalar.space_words(), batched.space_words());
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let params = Params::practical(100, 100, 5, 4.0);
        let mut a = LargeCommon::new(100, &params, false, 1);
        let b = LargeCommon::new(100, &params, false, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_reporting_mode_mismatch() {
        let params = Params::practical(100, 100, 5, 4.0);
        let mut a = LargeCommon::new(100, &params, false, 1);
        let b = LargeCommon::new(100, &params, true, 1);
        a.merge(&b);
    }
}
