//! `LargeSet` — heavy hitters and contributing classes over superset
//! loads (paper §4.2 and Appendix B; Figs 4, 6, 7).
//!
//! Handles the oracle's case II: some optimal solution's coverage is
//! dominated by sets contributing at least `|C(OPT)|/(sα)` each
//! (`OPT_large`, Definition 4.2). Pipeline per repetition (Fig 7 runs
//! `O(log n)` repetitions so that w.h.p. one of them samples no
//! `w`-common element):
//!
//! 1. **Element sampling** (Appendix B step 1): keep each element in `L`
//!    with probability `ρ = Θ̃(α)/|U|`.
//! 2. **Superset partitioning** (Claim 4.9): hash sets into
//!    `Θ(m·log m/w)` supersets of at most `w = min(k, α)` (per the Fig 2
//!    branch) sets each; the stream of surviving `(set, element)` edges
//!    becomes a stream of superset ids, whose frequency vector `v⃗[i]`
//!    is the total sampled load of superset `i`.
//! 3. **Contributing classes** (Fig 6): one `F2-Contributing(φ₁, 3sα)`
//!    instance for Case 1 (a class of few very loaded supersets) and one
//!    `F2-Contributing(φ₂, r₂)` for Case 2 (a larger class of
//!    `≥ z/α`-loaded supersets); a third branch samples supersets
//!    directly and measures their distinct coverage with `L0` sketches
//!    for contributing classes bigger than `r₂`.
//! 4. **Thresholding** (Fig 6/7): a reported superset whose approximate
//!    load reaches `thr₁/2 = |L|/(36·η·sα)` or `thr₂/2 = |L|/(12·η·α)`
//!    certifies `|C(OPT)| ≥ |U|/Θ̃(α)` (Theorem B.6); `LargeSet` then
//!    returns that guarantee value — a sound lower bound — and the
//!    winning superset as the reporting witness.

use std::collections::HashMap;

use std::sync::Arc;

use kcov_hash::{KWise, RangeHash, SeedSequence};
use kcov_sketch::{probe_mix, ContributingConfig, F2Contributing, L0Estimator, OaMap, SpaceUsage};
use kcov_stream::Edge;

use crate::params::Params;
use crate::Witness;

/// Per-repetition sampled-superset table: superset id → its distinct
/// coverage sketch. The arena keeps one flat open-addressing table per
/// repetition; the reference backend keeps the pre-arena `std` map.
/// Every order-sensitive consumer (finalize scan, wire encoding) walks
/// ids in sorted order, and the aggregating consumers (stats, ledger)
/// are commutative sums, so behavior is backend-invariant.
#[derive(Debug, Clone)]
enum SampledStore {
    Oa(OaMap<L0Estimator>),
    Map(HashMap<u64, L0Estimator>),
}

impl SampledStore {
    fn new() -> Self {
        match kcov_sketch::backend() {
            kcov_sketch::Backend::Arena => SampledStore::Oa(OaMap::new()),
            kcov_sketch::Backend::Reference => SampledStore::Map(HashMap::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            SampledStore::Oa(m) => m.len(),
            SampledStore::Map(m) => m.len(),
        }
    }

    #[inline]
    fn get_or_insert_with(&mut self, sid: u64, default: impl FnOnce() -> L0Estimator) -> &mut L0Estimator {
        match self {
            SampledStore::Oa(m) => m.get_or_insert_with(sid, default),
            SampledStore::Map(m) => m.entry(sid).or_insert_with(default),
        }
    }

    fn get(&self, sid: u64) -> Option<&L0Estimator> {
        match self {
            SampledStore::Oa(m) => m.get(sid),
            SampledStore::Map(m) => m.get(&sid),
        }
    }

    fn get_mut(&mut self, sid: u64) -> Option<&mut L0Estimator> {
        match self {
            SampledStore::Oa(m) => m.get_mut(sid),
            SampledStore::Map(m) => m.get_mut(&sid),
        }
    }

    fn set(&mut self, sid: u64, l0: L0Estimator) {
        match self {
            SampledStore::Oa(m) => m.set(sid, l0),
            SampledStore::Map(m) => {
                m.insert(sid, l0);
            }
        }
    }

    /// Sampled ids, ascending (canonical order for finalize and wire).
    fn sorted_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = match self {
            SampledStore::Oa(m) => m.iter().map(|(sid, _)| sid).collect(),
            SampledStore::Map(m) => m.keys().copied().collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// Visit every sketch in storage order (commutative consumers only).
    fn for_each(&self, mut f: impl FnMut(&L0Estimator)) {
        match self {
            SampledStore::Oa(m) => {
                for (_, l0) in m.iter() {
                    f(l0);
                }
            }
            SampledStore::Map(m) => {
                for l0 in m.values() {
                    f(l0);
                }
            }
        }
    }
}

/// One repetition of the element-sampled pipeline.
#[derive(Debug, Clone)]
struct Rep {
    /// Element `e ∈ L` iff `probe_mix(e ^ gate_salt) < keep_below`
    /// (probability ρ). Keyed on the *reduced* pseudo-element — two raw
    /// elements mapping to the same pseudo-element must share the
    /// keep/reject decision, so the gate must never move to raw ids or
    /// their fingerprints. Pseudo-elements are already 4-wise hash
    /// outputs, so the salted finalizer only decorrelates repetitions;
    /// the whole rejection test is one multiply-mix and one compare
    /// against a threshold fixed at configuration time (`ρ·2^64`),
    /// replacing the degree-8 polynomial that used to fire for every
    /// edge of every repetition.
    gate_salt: u64,
    keep_below: u64,
    /// Superset id of a set: a 4-wise mix over the shared set
    /// fingerprint (hash-once hot path).
    shash: KWise,
    num_supersets: u64,
    /// Cases 1 and 2 share one two-tier contributing-class finder: one
    /// sampling hash, one dyadic level schedule up to r₂, one candidate
    /// tracker and CountSketch per level. Levels within the Case-1
    /// class-size bound (≤ 3sα) carry the wide `φ₁`-calibrated sketch —
    /// which serves Case 2 at those sizes at least as accurately as the
    /// `φ₂` shape would — and only the deeper Case-2-only levels carry
    /// the narrow `φ₂` shape. The split finders this replaces fed
    /// byte-identical substreams to two trackers per shared level.
    cntr: F2Contributing,
    /// Case 2 fallback: directly sampled supersets with distinct-element
    /// coverage sketches (classes larger than r₂).
    ssel_buckets: u64,
    ssel_hash: KWise,
    sampled: SampledStore,
    sample_seed: u64,
}

/// Outcome of one repetition.
#[derive(Debug, Clone, Copy)]
struct RepHit {
    superset: u64,
    load_estimate: f64,
}

/// Single-pass case-II subroutine (Figs 4, 6, 7).
#[derive(Debug, Clone)]
pub struct LargeSet {
    u: usize,
    m: usize,
    alpha: f64,
    eta: f64,
    s_alpha: f64,
    f: f64,
    /// Expected `|L| = ρ·|U|`.
    l_expected: f64,
    /// Element-sampling rate ρ.
    rho: f64,
    /// Superset size bound `w` chosen by the Fig 2 branch.
    w: f64,
    /// Cover budget `k`.
    k: usize,
    /// Shared set fingerprint base (hash-once hot path); the per-rep
    /// `shash` mixes its output into superset ids. One `Arc`'d
    /// coefficient table per process; this holder counts a 1-word
    /// handle.
    set_base: Arc<KWise>,
    reps: Vec<Rep>,
}

impl LargeSet {
    /// Create the subroutine for universe size `u` with a private set
    /// fingerprint base (standalone use; estimator lanes share one base
    /// via [`LargeSet::with_base`]). `w` is the superset size bound
    /// chosen by the Fig 2 branch (`k` or `α`).
    pub fn new(u: usize, params: &Params, seed: u64) -> Self {
        let degree = Params::hash_degree(params.mode, params.m, params.n);
        let base_seed = SeedSequence::labeled(seed, "large-set-base").next_seed();
        Self::with_base(u, params, seed, Arc::new(KWise::new(degree, base_seed)))
    }

    /// Create the subroutine consuming set fingerprints under the shared
    /// `set_base`.
    pub fn with_base(u: usize, params: &Params, seed: u64, set_base: Arc<KWise>) -> Self {
        let mut seq = SeedSequence::labeled(seed, "large-set-f");
        let m = params.m;
        let w = params.large_set_w();
        let num_supersets = params.num_supersets(w) as u64;
        let rho = (params.large_set_sample / u.max(1) as f64).min(1.0);
        // Gate threshold on the full 64-bit mix range; the saturating
        // float cast maps ρ = 1 to `u64::MAX` (keep everything short of
        // one mix value in 2^64 — the same epsilon the old field-range
        // threshold carried).
        let keep_below = (rho * 2f64.powi(64)) as u64;
        let r1 = (3.0 * params.s_alpha).ceil() as u64;
        // r₂: the largest class size the sparse finder handles; beyond
        // it the direct superset-sampling branch takes over.
        let r2 = (num_supersets / 8).max(8).min(num_supersets.max(1));
        // Superset sampling rate for the fallback: expect ~2·B/r₂ = 16
        // sampled ids, each carrying an Õ(1) distinct-element sketch.
        // This branch must stay Õ(1) total or it flattens the m/α²
        // space curve (it is α-independent).
        let ssel_buckets = (r2 / 2).max(1);
        let reps = (0..params.large_set_reps.max(1))
            .map(|_| {
                let mut c1 = ContributingConfig::new(params.phi1(), r1.max(1));
                let mut c2 = ContributingConfig::new(params.phi2(), r2);
                // Four survivors per size-guess level: enough for the
                // ≥ thr/2 median test (the class representative only has
                // to be *sampled*, not measured precisely — the paired
                // CountSketch supplies the load estimate), and each
                // subsampled level admits `keep/modulus` of the kept
                // elements, so each cut from the old 12 proportionally
                // trims the expected heavy-hitter updates per survivor.
                c1.survivors_per_class = 4;
                c2.survivors_per_class = 4;
                // Superset-id keys are already uniform hash outputs, so
                // the finders' internal sampling hashes need only modest
                // independence — pairwise instead of Θ(log mn) keeps the
                // kept-element path cheap (the dyadic level split only
                // needs pairwise concentration per level).
                c1.sampling_degree = Some(2);
                c2.sampling_degree = Some(2);
                // The Fig 6 thresholds carry 2× slack of their own, so
                // the inner heavy hitters can run leaner than the
                // standalone Theorem 2.10 defaults; φ keeps all of γ
                // and the width multiplier drops to 2 (detection quality
                // is gated by the regime tests, space by exp_tradeoff:
                // the thresholds sit Ω(sα) above the per-row noise even
                // at width 2/φ, and the table is the α²/m space driver).
                for c in [&mut c1, &mut c2] {
                    c.phi_factor = 1.0;
                    c.hh_width_factor = 2.0;
                    // Candidate lists are the m/α flattener otherwise
                    // (they cannot exceed the superset count B = Θ(m/w)).
                    c.hh_capacity_factor = 1.0;
                    // The thresholds compare CountSketch medians against
                    // Ω(|L|/sα)-sized loads, far above the per-row noise,
                    // so 2 rows give the same accept/reject decisions as
                    // the Theorem 2.10 default of 5 at 40% of the update
                    // cost (the hot path pays one row-update per row per
                    // kept element; the even-row median rounds toward
                    // zero, which only makes the threshold test more
                    // conservative).
                    c.hh_rows = 2;
                    // Keep the candidate tracker's prune amortized: with
                    // `capacity = factor/φ` clamped at 8, a large-φ finder
                    // tracks far fewer ids than the live superset domain
                    // and prunes on nearly every insert (an O(capacity)
                    // scan plus two allocations each time). Floor the
                    // capacity at a quarter of the domain, capped at 128
                    // entries — O(1) words against the Θ(width)
                    // CountSketch rows — so a prune needs capacity/2 new
                    // ids to fire. Small domains keep their tight caps
                    // (and their prune churn, which the merge rebuild
                    // contract exercises).
                    let floor = (num_supersets / 4).clamp(8, 128);
                    let phi = (c.gamma * c.phi_factor).clamp(1e-9, 1.0);
                    c.hh_capacity_factor = c.hh_capacity_factor.max(floor as f64 * phi);
                }
                let cntr_seed = seq.next_seed();
                Rep {
                    gate_salt: seq.next_seed(),
                    keep_below,
                    shash: KWise::new(4, seq.next_seed()),
                    num_supersets,
                    cntr: F2Contributing::new_paired(c1, c2, num_supersets as usize, u, cntr_seed),
                    ssel_buckets,
                    ssel_hash: KWise::new(4, seq.next_seed()),
                    sampled: SampledStore::new(),
                    sample_seed: seq.next_seed(),
                }
            })
            .collect();
        LargeSet {
            u,
            m,
            alpha: params.alpha,
            eta: params.eta,
            s_alpha: params.s_alpha,
            f: params.f,
            l_expected: rho * u as f64,
            rho,
            w,
            k: params.k,
            set_base,
            reps,
        }
    }

    /// One repetition's view of one edge (shared by the per-edge and
    /// batched paths so they stay state-identical by construction).
    /// `fp_set` is the shared set fingerprint `set_base(edge.set)`; the
    /// element hash runs first so most edges exit after one degree-8
    /// evaluation and a compare.
    #[inline]
    fn rep_observe(rep: &mut Rep, edge: Edge, fp_set: u64) {
        if probe_mix(edge.elem as u64 ^ rep.gate_salt) >= rep.keep_below {
            return; // element not in this repetition's L
        }
        let sid = rep.shash.hash_to_range(fp_set, rep.num_supersets);
        rep.cntr.insert(sid);
        if rep.ssel_hash.selects(sid, rep.ssel_buckets) {
            let seed = rep.sample_seed ^ sid.wrapping_mul(0x9e3779b97f4a7c15);
            rep.sampled
                .get_or_insert_with(sid, || L0Estimator::new(16, 2, seed))
                .insert(edge.elem as u64);
        }
    }

    /// Observe one `(set, element)` edge (scalar compatibility path:
    /// applies the fingerprint base itself).
    pub fn observe(&mut self, edge: Edge) {
        let fp = self.set_base.hash(edge.set as u64);
        self.observe_fp(edge, fp);
    }

    /// Observe one edge given its precomputed set fingerprint — the
    /// hash-once hot path.
    #[inline]
    pub fn observe_fp(&mut self, edge: Edge, fp_set: u64) {
        for rep in &mut self.reps {
            Self::rep_observe(rep, edge, fp_set);
        }
    }

    /// Observe a chunk of edges (scalar compatibility path).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        let fps: Vec<u64> = edges.iter().map(|e| self.set_base.hash(e.set as u64)).collect();
        self.observe_fp_batch(edges, &fps);
    }

    /// Observe a chunk given precomputed set fingerprints, columnar and
    /// repetition-outer: per repetition the element-sampling hash runs
    /// as one [`RangeHash::hash_batch`] over the chunk, survivors are
    /// gathered into dense columns, and the superset-id hash plus both
    /// contributing-class finders consume those columns batched. The
    /// final state is identical to repeated [`LargeSet::observe_fp`]:
    /// every per-item decision uses the same hash values in the same
    /// arrival order, and the batched sketch inserts are documented
    /// state-identical to their scalar loops.
    pub fn observe_fp_batch(&mut self, edges: &[Edge], fps: &[u64]) {
        debug_assert_eq!(edges.len(), fps.len());
        let elems: Vec<u64> = edges.iter().map(|e| e.elem as u64).collect();
        let mut sh = Vec::new();
        let mut csh = Vec::new();
        let mut surv_fps: Vec<u64> = Vec::with_capacity(edges.len());
        let mut surv_elems: Vec<u64> = Vec::with_capacity(edges.len());
        let mut sids: Vec<u64> = Vec::new();
        for rep in &mut self.reps {
            surv_fps.clear();
            surv_elems.clear();
            for i in 0..edges.len() {
                if probe_mix(elems[i] ^ rep.gate_salt) < rep.keep_below {
                    surv_fps.push(fps[i]);
                    surv_elems.push(elems[i]);
                }
            }
            if surv_fps.is_empty() {
                continue;
            }
            rep.shash.hash_batch(&surv_fps, &mut sh);
            sids.clear();
            // Same reduction as `hash_to_range` in `rep_observe`.
            sids.extend(
                sh.iter()
                    .map(|&h| ((h as u128 * rep.num_supersets as u128) >> 61) as u64),
            );
            rep.cntr.sampling_hash().hash_batch(&sids, &mut csh);
            rep.cntr.insert_batch_prehashed(&sids, &csh);
            for (&sid, &elem) in sids.iter().zip(&surv_elems) {
                if rep.ssel_hash.selects(sid, rep.ssel_buckets) {
                    let seed = rep.sample_seed ^ sid.wrapping_mul(0x9e3779b97f4a7c15);
                    rep.sampled
                        .get_or_insert_with(sid, || L0Estimator::new(16, 2, seed))
                        .insert(elem);
                }
            }
        }
    }

    /// Threshold 1 (Fig 7): `|L|/(18·η·sα)`, halved at comparison time
    /// for the `(1 ± 1/2)` frequency estimates.
    fn thr1(&self) -> f64 {
        self.l_expected / (18.0 * self.eta * self.s_alpha)
    }

    /// Threshold 2 (Fig 7): `|L|/(6·η·α)`.
    fn thr2(&self) -> f64 {
        self.l_expected / (6.0 * self.eta * self.alpha)
    }

    /// The certified lower bound returned on success (Theorem B.6:
    /// `|U|/(54·f·η·α)`; the constant is the paper's).
    pub fn guarantee(&self) -> f64 {
        self.u as f64 / (54.0 * self.f * self.eta * self.alpha)
    }

    /// Sound estimate from a hit's approximate load: rescale the sampled
    /// load to the full universe (`/ρ`), discount the within-superset
    /// duplication bound `f` (Claim 4.10), the `(1 ± 1/2)` frequency
    /// error (`2/3`, Fig 6's `2ṽ/(3f)`), and — when the superset bound
    /// `w` exceeds `k` — the Observation 2.4 group factor `k/w` so the
    /// value lower-bounds a *k*-cover's coverage.
    fn hit_estimate(&self, hit: RepHit) -> f64 {
        let mut est = (2.0 / 3.0) * hit.load_estimate / (self.f * self.rho.max(1e-300));
        if self.w > self.k as f64 {
            est *= self.k as f64 / self.w;
        }
        // Extra 1/2 safety margin against sampling fluctuation, then
        // never below the Theorem B.6 certificate.
        (0.5 * est).max(self.guarantee()).min(self.u as f64)
    }

    fn rep_hit(&self, rep: &Rep) -> Option<RepHit> {
        let t1 = 0.5 * self.thr1();
        let t2 = 0.5 * self.thr2();
        // Tier bounds mirror construction: Case 1 searches class sizes
        // up to r₁ = 3sα, Case 2 up to r₂; both read the one shared
        // finder and differ only in which levels they scan and which
        // threshold they apply.
        let r1p2 = ((3.0 * self.s_alpha).ceil() as u64)
            .max(1)
            .next_power_of_two();
        let r2p2 = (rep.num_supersets / 8)
            .max(8)
            .min(rep.num_supersets.max(1))
            .next_power_of_two();
        // Case 1 (small classes, threshold t₁) first, then Case 2
        // (medium classes, t₂); each picks the strongest qualifying hit
        // — largest estimate, ties to the smaller superset id — the
        // order the split finders' est-sorted reports walked.
        for (bound, thr) in [(r1p2, t1), (r2p2, t2)] {
            let mut best: Option<(i64, u64)> = None;
            for (modulus, _, hh) in rep.cntr.level_parts() {
                if modulus > bound {
                    continue;
                }
                for h in hh.heavy_hitters() {
                    if (h.est as f64) >= thr
                        && best.is_none_or(|(e, i)| h.est > e || (h.est == e && h.item < i))
                    {
                        best = Some((h.est, h.item));
                    }
                }
            }
            if let Some((est, item)) = best {
                return Some(RepHit {
                    superset: item,
                    load_estimate: est as f64,
                });
            }
        }
        // Case 2 fallback: directly sampled supersets, distinct coverage.
        // Scan in superset-id order so the returned hit is a pure
        // function of the stream, not of the map's iteration order.
        for sid in rep.sampled.sorted_ids() {
            let v = rep.sampled.get(sid).expect("listed id resident").estimate();
            if v >= t2 {
                return Some(RepHit {
                    superset: sid,
                    load_estimate: v,
                });
            }
        }
        None
    }

    /// Finalize: `Some((guarantee, witness))` when any repetition
    /// certifies a heavy superset; `None` ("infeasible") otherwise.
    pub fn finalize(&self) -> Option<(f64, Witness)> {
        let mut best: Option<(usize, RepHit)> = None;
        for (i, rep) in self.reps.iter().enumerate() {
            if let Some(hit) = self.rep_hit(rep) {
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| hit.load_estimate > b.load_estimate)
                {
                    best = Some((i, hit));
                }
            }
        }
        best.map(|(rep, hit)| {
            (
                self.hit_estimate(hit),
                Witness::Superset {
                    rep,
                    superset: hit.superset,
                },
            )
        })
    }

    /// Aggregated sketch telemetry over the contributing-class finders'
    /// candidate trackers and the directly sampled supersets' `L0`
    /// sketches.
    pub fn sketch_stats(&self) -> kcov_obs::SketchStats {
        let mut agg = kcov_obs::SketchStats::default();
        for rep in &self.reps {
            agg.absorb(rep.cntr.stats());
            rep.sampled.for_each(|l0| agg.absorb(l0.stats()));
        }
        agg
    }

    /// The member sets of a superset (for reporting): all sets hashing
    /// to `superset` under the repetition's partition.
    pub fn superset_members(&self, rep: usize, superset: u64) -> Vec<u32> {
        let r = &self.reps[rep];
        (0..self.m as u64)
            .filter(|&s| r.shash.hash_to_range(self.set_base.hash(s), r.num_supersets) == superset)
            .map(|s| s as u32)
            .collect()
    }

    /// Number of repetitions.
    pub fn num_reps(&self) -> usize {
        self.reps.len()
    }

    /// Merge a subroutine built with the same parameters and seed over a
    /// disjoint stream shard. The contributing-class finders merge under
    /// their own (heavy-hitter equivalence) contract; the directly
    /// sampled superset map merges exactly — each sampled id's `L0`
    /// sketch is seeded by `sample_seed ^ f(sid)`, a pure function of
    /// the id, so the same id observed on two shards carries compatible
    /// sketches and their union is the serial sketch. Panics on
    /// configuration or seed mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            (self.u, self.m, self.k, self.reps.len()),
            (other.u, other.m, other.k, other.reps.len()),
            "LargeSet merge requires identical configuration"
        );
        assert_eq!(
            self.set_base.hash(0x5eed_c0de),
            other.set_base.hash(0x5eed_c0de),
            "LargeSet merge requires identical hash functions"
        );
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            assert_eq!(
                (a.keep_below, a.num_supersets, a.ssel_buckets),
                (b.keep_below, b.num_supersets, b.ssel_buckets),
                "LargeSet merge requires identical configuration (repetition shape)"
            );
            // `gate_salt` and `sample_seed` derive the element gate and
            // the per-superset-id sketch hashes, so they count as part
            // of the hash-function identity.
            assert_eq!(
                (
                    a.gate_salt,
                    a.shash.hash(0x5eed_c0de),
                    a.ssel_hash.hash(0x5eed_c0de),
                    a.sample_seed
                ),
                (
                    b.gate_salt,
                    b.shash.hash(0x5eed_c0de),
                    b.ssel_hash.hash(0x5eed_c0de),
                    b.sample_seed
                ),
                "LargeSet merge requires identical hash functions"
            );
            a.cntr.merge(&b.cntr);
            for sid in b.sampled.sorted_ids() {
                let l0 = b.sampled.get(sid).expect("listed id resident");
                match a.sampled.get_mut(sid) {
                    Some(mine) => mine.merge(l0),
                    None => a.sampled.set(sid, l0.clone()),
                }
            }
        }
    }
}

// ---- wire format ----------------------------------------------------

const TAG_LS: u64 = 0x4c53; // "LS"

impl kcov_sketch::WireEncode for LargeSet {
    fn encode(&self, out: &mut Vec<u8>) {
        use kcov_sketch::wire::{put_f64, put_fc_full, put_kwise, put_l0_full, put_u64};
        put_u64(out, TAG_LS);
        put_u64(out, self.u as u64);
        put_u64(out, self.m as u64);
        put_f64(out, self.alpha);
        put_f64(out, self.eta);
        put_f64(out, self.s_alpha);
        put_f64(out, self.f);
        put_f64(out, self.l_expected);
        put_f64(out, self.rho);
        put_f64(out, self.w);
        put_u64(out, self.k as u64);
        put_kwise(out, &self.set_base);
        put_u64(out, self.reps.len() as u64);
        for rep in &self.reps {
            put_u64(out, rep.gate_salt);
            put_u64(out, rep.keep_below);
            put_kwise(out, &rep.shash);
            put_u64(out, rep.num_supersets);
            put_fc_full(out, &rep.cntr);
            put_u64(out, rep.ssel_buckets);
            put_kwise(out, &rep.ssel_hash);
            put_u64(out, rep.sample_seed);
            // Sampled supersets in ascending id order: the encoding of a
            // state is unique, so replica files are comparable bytewise.
            let sids = rep.sampled.sorted_ids();
            put_u64(out, sids.len() as u64);
            for sid in sids {
                put_u64(out, sid);
                put_l0_full(out, rep.sampled.get(sid).expect("listed id resident"));
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::wire::{err, take_f64, take_fc_full, take_kwise, take_l0_full, take_u64};
        if take_u64(input)? != TAG_LS {
            return Err(err("bad LargeSet tag"));
        }
        let u = take_u64(input)? as usize;
        let m = take_u64(input)? as usize;
        let alpha = take_f64(input)?;
        let eta = take_f64(input)?;
        let s_alpha = take_f64(input)?;
        let f = take_f64(input)?;
        let l_expected = take_f64(input)?;
        let rho = take_f64(input)?;
        let w = take_f64(input)?;
        let k = take_u64(input)? as usize;
        let set_base = Arc::new(take_kwise(input)?);
        let num_reps = take_u64(input)? as usize;
        if num_reps > input.len() {
            return Err(err("LargeSet repetition count exceeds input"));
        }
        let mut reps = Vec::with_capacity(num_reps);
        for _ in 0..num_reps {
            let gate_salt = take_u64(input)?;
            let keep_below = take_u64(input)?;
            let shash = take_kwise(input)?;
            let num_supersets = take_u64(input)?;
            if num_supersets < 1 {
                return Err(err("LargeSet superset count must be positive"));
            }
            let cntr = take_fc_full(input)?;
            let ssel_buckets = take_u64(input)?;
            if ssel_buckets < 1 {
                return Err(err("LargeSet ssel bucket count must be positive"));
            }
            let ssel_hash = take_kwise(input)?;
            let sample_seed = take_u64(input)?;
            let n = take_u64(input)? as usize;
            if n > input.len() {
                return Err(err("LargeSet sampled-superset count exceeds input"));
            }
            let mut sampled = SampledStore::new();
            let mut last: Option<u64> = None;
            for _ in 0..n {
                let sid = take_u64(input)?;
                if last.is_some_and(|p| sid <= p) {
                    return Err(err("LargeSet sampled supersets not strictly ascending"));
                }
                last = Some(sid);
                sampled.set(sid, take_l0_full(input)?);
            }
            reps.push(Rep {
                gate_salt,
                keep_below,
                shash,
                num_supersets,
                cntr,
                ssel_buckets,
                ssel_hash,
                sampled,
                sample_seed,
            });
        }
        if reps.is_empty() {
            return Err(err("LargeSet has no repetitions"));
        }
        Ok(LargeSet {
            u,
            m,
            alpha,
            eta,
            s_alpha,
            f,
            l_expected,
            rho,
            w,
            k,
            set_base,
            reps,
        })
    }
}

impl SpaceUsage for LargeSet {
    fn space_words(&self) -> usize {
        // 1-word handle on the shared base (coefficients counted once by
        // their owner).
        1 + self.reps
            .iter()
            .map(|r| {
                2 // gate_salt + keep_below
                    + r.shash.space_words()
                    + r.ssel_hash.space_words()
                    + r.cntr.space_words()
                    + {
                        let mut s = 0usize;
                        r.sampled.for_each(|l0| s += l0.space_words());
                        s
                    }
                    + 2 * r.sampled.len()
            })
            .sum::<usize>()
    }

    /// Mirrors `space_words` term by term. The `O(log n)` repetitions
    /// aggregate into shared component subtrees (repetition counts are a
    /// parameter, not structure worth one trace event each): per-rep
    /// hashes under `hashes`, the fused two-tier contributing-class
    /// finder under `cntr`, and the directly sampled supersets under
    /// `sampled` (sketches plus a 2-word map entry per id).
    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        node.leaf("set_base", 1);
        for r in &self.reps {
            node.leaf(
                "hashes",
                2 + r.shash.space_words() + r.ssel_hash.space_words(),
            );
            r.cntr.space_ledger(node.child("cntr"));
            let sampled = node.child("sampled");
            r.sampled.for_each(|l0| l0.space_ledger(sampled));
            sampled.leaf("entries", 2 * r.sampled.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{few_large, many_small};
    use kcov_stream::{edge_stream, ArrivalOrder};

    fn feed(ls: &mut LargeSet, edges: &[Edge]) {
        for &e in edges {
            ls.observe(e);
        }
    }

    #[test]
    fn fires_on_few_large_instances() {
        // Regime II: 3 disjoint sets of 500 elements dominate (n = 2000,
        // OPT covers ≥ 1500 = 3n/4 ≥ n/η).
        let ss = few_large(2000, 300, 3, 500, 1);
        let params = Params::practical(300, 2000, 10, 6.0);
        let mut ls = LargeSet::new(2000, &params, 7);
        feed(&mut ls, &edge_stream(&ss, ArrivalOrder::Shuffled(3)));
        let out = ls.finalize();
        assert!(out.is_some(), "LargeSet must fire on regime II");
        let (est, _) = out.unwrap();
        assert!(est > 0.0);
        // Sound: guarantee value stays below OPT (≥ 1500).
        assert!(est <= 1514.0, "estimate {est} above OPT");
    }

    #[test]
    fn guarantee_value_scales_inversely_with_alpha() {
        let p4 = Params::practical(300, 2000, 10, 4.0);
        let p16 = Params::practical(300, 2000, 10, 16.0);
        let g4 = LargeSet::new(2000, &p4, 1).guarantee();
        let g16 = LargeSet::new(2000, &p16, 1).guarantee();
        assert!(g4 > g16);
        assert!((g4 / g16 - 4.0).abs() < 1.0, "ratio {}", g4 / g16);
    }

    #[test]
    fn winning_superset_contains_a_large_set() {
        let ss = few_large(2000, 300, 3, 500, 2);
        let params = Params::practical(300, 2000, 10, 6.0);
        let mut ls = LargeSet::new(2000, &params, 11);
        feed(&mut ls, &edge_stream(&ss, ArrivalOrder::RoundRobin));
        let (_, witness) = ls.finalize().expect("fires");
        let Witness::Superset { rep, superset } = witness else {
            panic!("wrong witness kind");
        };
        let members = ls.superset_members(rep, superset);
        assert!(!members.is_empty());
        // The winning superset should contain at least one of the three
        // large sets (ids 0, 1, 2) — that is what made it heavy.
        assert!(
            members.iter().any(|&s| s < 3),
            "superset {members:?} holds no large set"
        );
    }

    #[test]
    fn infeasible_on_many_small_instances() {
        // Regime III: all sets contribute ~16 of 800 = far below
        // z/(sα); no superset accumulates a heavy sampled load relative
        // to thresholds... The subroutine may still fire occasionally
        // (thresholds are probabilistic); what must hold is soundness:
        // the guarantee value never exceeds OPT.
        let ss = many_small(2000, 200, 50, 0.4, 5);
        let params = Params::practical(200, 2000, 50, 8.0);
        let mut ls = LargeSet::new(2000, &params, 13);
        feed(&mut ls, &edge_stream(&ss, ArrivalOrder::Shuffled(9)));
        if let Some((est, _)) = ls.finalize() {
            assert!(est <= 800.0, "estimate {est} above OPT 800");
        }
    }

    #[test]
    fn space_scales_inversely_with_alpha_squared() {
        // phi1 ∝ α²/m drives the dominant Case-1 finder: quadrupling α
        // should cut space substantially.
        let p_small = Params::practical(20_000, 20_000, 64, 4.0);
        let p_large = Params::practical(20_000, 20_000, 64, 16.0);
        let s_small = LargeSet::new(20_000, &p_small, 1).space_words();
        let s_large = LargeSet::new(20_000, &p_large, 1).space_words();
        assert!(
            (s_small as f64) > 2.0 * s_large as f64,
            "space did not shrink: {s_small} vs {s_large}"
        );
    }

    #[test]
    fn empty_stream_is_infeasible() {
        let params = Params::practical(100, 1000, 5, 4.0);
        let ls = LargeSet::new(1000, &params, 1);
        assert!(ls.finalize().is_none());
    }

    #[test]
    fn merge_matches_serial_on_firing_instance() {
        let ss = few_large(2000, 300, 3, 500, 6);
        let params = Params::practical(300, 2000, 10, 6.0);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(21));
        let proto = LargeSet::new(2000, &params, 31);
        let mut serial = proto.clone();
        feed(&mut serial, &edges);
        let (head, tail) = edges.split_at(edges.len() / 2);
        let mut left = proto.clone();
        let mut right = proto;
        feed(&mut left, head);
        feed(&mut right, tail);
        left.merge(&right);
        let a = serial.finalize().expect("fires on regime II");
        let b = left.finalize().expect("merged must fire too");
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "estimate must match");
        assert_eq!(a.1, b.1, "witness must match");
    }

    #[test]
    fn fp_path_matches_scalar_path() {
        let ss = few_large(2000, 300, 3, 500, 8);
        let params = Params::practical(300, 2000, 10, 6.0);
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(17));
        let base = Arc::new(KWise::new(8, 555));
        let proto = LargeSet::with_base(2000, &params, 19, base.clone());
        let mut scalar = proto.clone();
        let mut batched = proto;
        feed(&mut scalar, &edges);
        let fps: Vec<u64> = edges.iter().map(|e| base.hash(e.set as u64)).collect();
        batched.observe_fp_batch(&edges, &fps);
        assert_eq!(scalar.finalize(), batched.finalize());
        assert_eq!(scalar.space_words(), batched.space_words());
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_rep_count_mismatch() {
        let mut p1 = Params::practical(100, 1000, 5, 4.0);
        let p2 = p1.clone();
        p1.large_set_reps = p2.large_set_reps + 1;
        let mut a = LargeSet::new(1000, &p1, 1);
        let b = LargeSet::new(1000, &p2, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let params = Params::practical(100, 1000, 5, 4.0);
        let mut a = LargeSet::new(1000, &params, 1);
        let b = LargeSet::new(1000, &params, 2);
        a.merge(&b);
    }

    #[test]
    fn superset_membership_is_a_partition() {
        let params = Params::practical(50, 500, 5, 4.0);
        let ls = LargeSet::new(500, &params, 3);
        let b = ls.reps[0].num_supersets;
        let mut seen = [false; 50];
        for sid in 0..b {
            for s in ls.superset_members(0, sid) {
                assert!(!seen[s as usize], "set {s} in two supersets");
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "partition must cover all sets");
    }
}
