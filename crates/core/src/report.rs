//! Reporting an α-approximate k-cover — Theorem 3.2 (`Õ(m/α² + k)`
//! space).
//!
//! The conference version defers the full construction to the long
//! version but leaves the hooks, which this module implements:
//!
//! * `SmallSet` already selects concrete sets (the greedy solution on
//!   the stored sub-instance) — returned directly.
//! * `LargeSet`'s winning superset is `{S : h(S) = i*}` — Fig 6's
//!   "`add return {S | h(S) = i*}` to get a k-cover" comment. The hash
//!   function *is* the cover's description; expansion costs `O(m)` time
//!   and no stream state. When the superset bound `w` exceeds `k`, the
//!   member list is truncated to the `k` first sets (Observation 2.4
//!   guarantees a group of `k` carries a `k/w` fraction; we return one).
//! * `LargeCommon`'s sampled collection `F^rnd` is partitioned into `β`
//!   groups of `≈ k` sets by an independent hash, each group's coverage
//!   tracked by an `Õ(1)` distinct-element sketch (the `Õ(k)` extra of
//!   the theorem); the best group is returned.

use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

use crate::estimate::{EstimateOutcome, EstimatorConfig, MaxCoverEstimator};
use crate::oracle::SubroutineKind;

/// A reported approximate solution.
#[derive(Debug, Clone)]
pub struct ReportedCover {
    /// At most `k` set indices.
    pub sets: Vec<u32>,
    /// The estimator's (sound, up-to-Õ(α)) coverage estimate.
    pub estimate: f64,
    /// Which subroutine produced it.
    pub winner: Option<SubroutineKind>,
    /// Resident space at finalize, in words.
    pub space_words: usize,
}

/// Single-pass streaming reporter: an α-approximate k-cover in
/// `Õ(m/α² + k)` space (Theorem 3.2).
#[derive(Debug, Clone)]
pub struct MaxCoverReporter {
    inner: MaxCoverEstimator,
    k: usize,
}

impl MaxCoverReporter {
    /// Create a reporter; same parameters as
    /// [`MaxCoverEstimator::new`], with reporting machinery forced on.
    pub fn new(n: usize, m: usize, k: usize, alpha: f64, config: &EstimatorConfig) -> Self {
        let mut cfg = config.clone();
        cfg.reporting = true;
        MaxCoverReporter {
            inner: MaxCoverEstimator::new(n, m, k, alpha, &cfg),
            k,
        }
    }

    /// Observe one `(set, element)` edge.
    pub fn observe(&mut self, edge: Edge) {
        self.inner.observe(edge);
    }

    /// Observe a chunk of edges through the batched ingestion engine
    /// (see [`MaxCoverEstimator::observe_batch`] for the determinism
    /// guarantee).
    pub fn observe_batch(&mut self, edges: &[Edge]) {
        self.inner.observe_batch(edges);
    }

    /// Merge another reporter built from the same instance shape,
    /// configuration and seed (see [`MaxCoverEstimator::merge`]).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.k, other.k,
            "MaxCoverReporter merge requires identical configuration (k)"
        );
        self.inner.merge(&other.inner);
    }

    /// Ingest `edges` through sharded estimator replicas and fold them
    /// back into `self` (see [`MaxCoverEstimator::ingest_sharded`]).
    /// Must be called on a freshly constructed reporter.
    pub fn ingest_sharded(&mut self, edges: &[Edge], shards: usize, batch: usize) {
        self.inner.ingest_sharded(edges, shards, batch);
    }

    /// Finalize: expand the winning witness into at most `k` sets.
    pub fn finalize(&self) -> ReportedCover {
        let outcome: EstimateOutcome = self.inner.finalize();
        let mut sets: Vec<u32> = match (&outcome.witness, outcome.winning_lane) {
            (Some(w), Some(lane)) => self.inner.lane_oracle(lane).expand_witness(w),
            _ => Vec::new(),
        };
        if outcome.trivial {
            // Trivial branch (k·α ≥ m): report the best Observation-2.4
            // group of k consecutive sets (tracked by per-group L0
            // sketches during the pass).
            sets = self.inner.trivial_best_group().unwrap_or_default();
        }
        sets.truncate(self.k);
        sets.sort_unstable();
        sets.dedup();
        ReportedCover {
            sets,
            estimate: outcome.estimate,
            winner: outcome.winner,
            space_words: outcome.space_words,
        }
    }

    /// Convenience: run over a finite edge stream.
    pub fn run(
        n: usize,
        m: usize,
        k: usize,
        alpha: f64,
        config: &EstimatorConfig,
        edges: &[Edge],
    ) -> ReportedCover {
        let mut rep = MaxCoverReporter::new(n, m, k, alpha, config);
        for &e in edges {
            rep.observe(e);
        }
        rep.finalize()
    }

    /// Convenience: run over a finite edge stream in chunks of
    /// `batch_size` through the batched ingestion engine. Bit-identical
    /// to [`MaxCoverReporter::run`].
    pub fn run_batched(
        n: usize,
        m: usize,
        k: usize,
        alpha: f64,
        config: &EstimatorConfig,
        edges: &[Edge],
        batch_size: usize,
    ) -> ReportedCover {
        let mut rep = MaxCoverReporter::new(n, m, k, alpha, config);
        for chunk in edges.chunks(batch_size.max(1)) {
            rep.observe_batch(chunk);
        }
        rep.finalize()
    }

    /// Convenience: run over a finite edge stream with `config.shards`
    /// sharded replicas (see [`MaxCoverEstimator::run_sharded`]).
    pub fn run_sharded(
        n: usize,
        m: usize,
        k: usize,
        alpha: f64,
        config: &EstimatorConfig,
        edges: &[Edge],
        batch_size: usize,
    ) -> ReportedCover {
        let mut rep = MaxCoverReporter::new(n, m, k, alpha, config);
        rep.ingest_sharded(edges, config.shards.max(1), batch_size);
        rep.finalize()
    }
}

impl SpaceUsage for MaxCoverReporter {
    fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    fn space_ledger(&self, node: &mut kcov_obs::LedgerNode) {
        self.inner.space_ledger(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::{common_heavy, few_large, many_small, planted_cover};
    use kcov_stream::{coverage_of, edge_stream, ArrivalOrder};

    /// Coarse z-grid test config (see estimate::tests::fast_config).
    fn fast_config(seed: u64, n: usize) -> EstimatorConfig {
        let mut config = EstimatorConfig::practical(seed);
        let mut zs = Vec::new();
        let mut z = 16u64;
        while z < 2 * n as u64 {
            zs.push(z);
            z *= 4;
        }
        config.z_guesses = Some(zs);
        config.reps = Some(2);
        config
    }

    fn report(
        system: &kcov_stream::SetSystem,
        k: usize,
        alpha: f64,
        seed: u64,
    ) -> ReportedCover {
        let config = fast_config(seed, system.num_elements());
        let edges = edge_stream(system, ArrivalOrder::Shuffled(seed));
        MaxCoverReporter::run(
            system.num_elements(),
            system.num_sets(),
            k,
            alpha,
            &config,
            &edges,
        )
    }

    #[test]
    fn reports_at_most_k_sets() {
        let inst = planted_cover(1500, 150, 8, 0.7, 30, 1);
        let r = report(&inst.system, 8, 4.0, 3);
        assert!(r.sets.len() <= 8, "reported {} sets", r.sets.len());
        assert!(!r.sets.is_empty(), "must report something");
    }

    #[test]
    fn reported_cover_achieves_a_useful_fraction() {
        // The real coverage of the reported sets must be within Õ(α) of
        // OPT on each regime.
        let cases: Vec<(&str, kcov_stream::SetSystem, usize, f64)> = vec![
            ("common", common_heavy(1500, 400, 2), 10, 200.0),
            ("few-large", few_large(1500, 200, 3, 350, 2), 10, 1050.0),
            ("many-small", many_small(1500, 300, 30, 0.6, 2), 30, 900.0),
        ];
        for (name, system, k, opt_lb) in cases {
            let r = report(&system, k, 5.0, 17);
            assert!(!r.sets.is_empty(), "{name}: empty report");
            let chosen: Vec<usize> = r.sets.iter().map(|&s| s as usize).collect();
            let cov = coverage_of(&system, &chosen) as f64;
            assert!(
                cov >= opt_lb / (5.0 * 24.0),
                "{name}: coverage {cov} far below OPT≈{opt_lb} (winner {:?})",
                r.winner
            );
        }
    }

    #[test]
    fn trivial_branch_reports_an_observation_2_4_group() {
        let ss = kcov_stream::gen::uniform_incidence(60, 12, 0.2, 5);
        let config = EstimatorConfig::practical(1);
        let edges = edge_stream(&ss, ArrivalOrder::SetContiguous);
        // k·alpha = 8·4 >= m = 12 → trivial: a block of k consecutive
        // sets (the best-tracked group).
        let r = MaxCoverReporter::run(60, 12, 8, 4.0, &config, &edges);
        assert!(!r.sets.is_empty());
        assert!(r.sets.len() <= 8);
        assert!(r.sets.iter().all(|&s| s < 12));
        // Consecutive block property.
        let lo = r.sets[0];
        assert!(r.sets.iter().enumerate().all(|(i, &s)| s == lo + i as u32));
    }

    #[test]
    fn sets_are_valid_indices() {
        let inst = planted_cover(800, 100, 6, 0.6, 20, 9);
        let r = report(&inst.system, 6, 3.0, 21);
        assert!(r.sets.iter().all(|&s| (s as usize) < 100));
    }

    #[test]
    fn sharded_run_reports_same_cover_as_serial() {
        let inst = planted_cover(800, 120, 8, 0.7, 30, 6);
        let n = inst.system.num_elements();
        let m = inst.system.num_sets();
        let config = fast_config(23, n);
        let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(8));
        let serial = MaxCoverReporter::run(n, m, 8, 3.0, &config, &edges);
        for shards in [2usize, 5] {
            let sharded_config = config.clone().with_shards(shards);
            let out = MaxCoverReporter::run_sharded(n, m, 8, 3.0, &sharded_config, &edges, 96);
            assert_eq!(serial.sets, out.sets, "shards={shards}");
            assert_eq!(
                serial.estimate.to_bits(),
                out.estimate.to_bits(),
                "shards={shards}"
            );
            assert_eq!(serial.winner, out.winner, "shards={shards}");
        }
    }

    #[test]
    fn estimate_matches_estimator_semantics() {
        // The reporter's estimate is the estimator's estimate: sound
        // (≤ OPT up to noise).
        let inst = planted_cover(1000, 120, 8, 0.75, 30, 4);
        let r = report(&inst.system, 8, 4.0, 5);
        assert!(r.estimate <= inst.planted_coverage as f64 * 1.1);
    }
}
