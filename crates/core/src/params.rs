//! Algorithm parameters — the paper's Table 2.
//!
//! Table 2 fixes, for instance size `(m, n)`, budget `k` and target
//! approximation `α`:
//!
//! ```text
//! w = min{k, α}
//! s = 9 / (5000·√(2η·log(sα))·log²(mn)) · w/α
//! f = 7·log(mn)                 (superset duplication bound, Claim 4.10)
//! σ = 1 / (2500·log²(mn))       (common-element density threshold)
//! t = 5000·log²(mn) / s         (element-sampling factor of Appendix B)
//! η = 4                          (universe-reduction coverage promise)
//! ```
//!
//! These constants make the analysis go through for astronomically large
//! `(m, n)` but leave no observable behaviour at benchmarkable scales, so
//! [`Params`] supports two modes:
//!
//! * [`ParamMode::Paper`] — the literal Table 2 formulas (with `s` solved
//!   by fixed-point iteration, since it appears inside its own log).
//! * [`ParamMode::Practical`] — identical *functional forms* (every power
//!   of `α`, `k`, `w`, `m`, `n` and every log factor is kept) with the
//!   scalar constants recalibrated so the trade-offs are visible at
//!   `n, m ∈ [10³, 10⁶]`. Every experiment states its mode; scaling
//!   results are mode-independent because the forms are unchanged.

/// Which constant regime to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamMode {
    /// Literal Table 2 constants.
    Paper,
    /// Same formulas, calibrated scalar constants (default).
    Practical,
}

/// Resolved algorithm parameters for one instance shape.
#[derive(Debug, Clone)]
pub struct Params {
    /// Constant regime.
    pub mode: ParamMode,
    /// Number of sets `m`.
    pub m: usize,
    /// Ground-set size `n` (after universe reduction this is the
    /// pseudo-universe size `z`).
    pub n: usize,
    /// Cover budget `k`.
    pub k: usize,
    /// Target approximation factor `α ≥ 1`.
    pub alpha: f64,
    /// `w = min(k, α)` — superset size bound (Table 2).
    pub w: f64,
    /// `s·α` — the bound on `|OPT_large|` (Definition 4.2). Stored as
    /// the product because that is what every formula consumes.
    pub s_alpha: f64,
    /// `f` — max duplicate coverage of a non-common element inside one
    /// superset (Claim 4.10), `Θ(log mn)`.
    pub f: f64,
    /// `σ` — common-element density threshold of the oracle case split.
    pub sigma: f64,
    /// `η = 4` — after universe reduction, the optimum covers at least
    /// `|U|/η` (Definition 3.4 / Theorem 3.6).
    pub eta: f64,
    /// Element-sampling size `|L| = ρ·|U|` used by `LargeSet`
    /// (Appendix B, step 1): `ρ·|U| = t·s·α·η`.
    pub large_set_sample: f64,
    /// Repetitions of the `LargeSet` element-sampling loop (paper:
    /// `O(log n)`).
    pub large_set_reps: usize,
    /// Repetitions inside `SmallSet` per γ-guess (paper: `log n`).
    pub small_set_reps: usize,
    /// Per-(L, M) stored-edge cap in `SmallSet` (Lemma 4.21: `Õ(m/α²)`).
    pub small_set_edge_cap: usize,
    /// Repetitions of the universe-reduction wrapper per `z`-guess
    /// (paper: `log(1/δ)`).
    pub reduction_reps: usize,
}

impl Params {
    /// Natural log of `m·n`, floored at 2 to keep formulas sane on tiny
    /// instances.
    fn log_mn(m: usize, n: usize) -> f64 {
        (((m.max(2)) as f64) * ((n.max(2)) as f64)).ln().max(2.0)
    }

    /// Build parameters with the literal Table 2 constants.
    pub fn paper(m: usize, n: usize, k: usize, alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be >= 1");
        assert!(k >= 1, "k must be >= 1");
        let lmn = Self::log_mn(m, n);
        let w = (k as f64).min(alpha);
        let eta = 4.0;
        // s = 9/(5000·√(2η·log(sα))·log²(mn)) · w/α, solved by iteration.
        let mut s = w / alpha; // initial guess
        for _ in 0..32 {
            let log_sa = (s * alpha).max(2.0).ln();
            s = 9.0 / (5000.0 * (2.0 * eta * log_sa).sqrt() * lmn * lmn) * (w / alpha);
        }
        let f = 7.0 * lmn;
        let sigma = 1.0 / (2500.0 * lmn * lmn);
        let t = 5000.0 * lmn * lmn / s.max(1e-300);
        let large_set_sample = (t * s * alpha * eta).min(n as f64);
        Params {
            mode: ParamMode::Paper,
            m,
            n,
            k,
            alpha,
            w,
            s_alpha: s * alpha,
            f,
            sigma,
            eta,
            large_set_sample,
            large_set_reps: ((n.max(2) as f64).log2().ceil() as usize).max(1),
            small_set_reps: ((n.max(2) as f64).log2().ceil() as usize).max(1),
            small_set_edge_cap: (((m as f64) * lmn / (alpha * alpha)).ceil() as usize).max(64),
            reduction_reps: 4,
        }
    }

    /// Build parameters with calibrated constants (the default for
    /// experiments at laptop scale). Functional forms match Table 2.
    pub fn practical(m: usize, n: usize, k: usize, alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be >= 1");
        assert!(k >= 1, "k must be >= 1");
        let lmn = Self::log_mn(m, n);
        let w = (k as f64).min(alpha);
        let eta = 4.0;
        // Same form s ∝ w/α (the polylog dampening set to a constant),
        // so s·α = Θ(w): "large" sets contribute ≥ z/Θ(w), and
        // SmallSet's set-sampling rate Θ(1/(sα)) becomes Θ(1/α) when
        // α ≤ k — the factor the space analysis needs.
        let s_alpha = w.max(2.0);
        // Duplication bound: Θ(log mn) with a small constant.
        let f = (0.5 * lmn).max(2.0);
        // Density threshold: Θ(1/polylog) → constant.
        let sigma = 0.25;
        // Element sample for LargeSet: Θ̃(α) elements (ρ·n = t·s·α·η with
        // the polylogs collapsed to c·log(mn)).
        let large_set_sample = (8.0 * alpha * eta * lmn).min(n as f64);
        Params {
            mode: ParamMode::Practical,
            m,
            n,
            k,
            alpha,
            w,
            s_alpha,
            f,
            sigma,
            eta,
            large_set_sample,
            // One repetition of the Fig 7 pipeline: the paper's O(log n)
            // repetitions drive the no-w-common-element failure mode to
            // 1/poly(n), but with the calibrated 8αη·log(mn) element
            // sample a single repetition already passes every regime
            // test, and repetitions multiply the per-edge sketch-update
            // cost — the dominant term of the batched hot path — one for
            // one (DESIGN.md §12).
            large_set_reps: 1,
            // Same trade as `large_set_reps`: the γ-lane grid inside a
            // single repetition already hedges the sampling-rate guess,
            // and SmallSet's per-edge cost at small α (where its set
            // sampling keeps the most sets) scales linearly in the
            // repetition count.
            small_set_reps: 1,
            // Lemma 4.21's Õ(m/α²): the Õ hides ln² factors, which at
            // laptop scale are the difference between a usable and a
            // starved sub-instance store.
            small_set_edge_cap: (((m as f64) * lmn * lmn / (alpha * alpha)).ceil() as usize)
                .max(1024),
            reduction_reps: 2,
        }
    }

    /// The Fig 2 case split: when `s·α ≥ 2k`, `LargeSet` runs with
    /// superset bound `w = k`; otherwise with `w = α` (and `SmallSet`
    /// also runs).
    pub fn large_set_w(&self) -> f64 {
        if self.s_alpha >= 2.0 * self.k as f64 {
            self.k as f64
        } else {
            self.alpha
        }
    }

    /// Whether `SmallSet` participates (only when `s·α < 2k`; otherwise
    /// Claim 4.3 guarantees `LargeSet`'s case).
    pub fn small_set_active(&self) -> bool {
        self.s_alpha < 2.0 * self.k as f64
    }

    /// Number of supersets `Q = Θ(m·log m / w)` for a given `w`
    /// (Claim 4.9 partitioning). Practical mode uses `2m/w` so supersets
    /// average `w/2` sets.
    pub fn num_supersets(&self, w: f64) -> usize {
        let b = match self.mode {
            ParamMode::Paper => {
                let logm = (self.m.max(2) as f64).ln();
                4.0 * self.m as f64 * logm / w.max(1.0)
            }
            ParamMode::Practical => 2.0 * self.m as f64 / w.max(1.0),
        };
        (b.ceil() as usize).clamp(1, 4 * self.m.max(1))
    }

    /// `φ₁ = Ω̃(α²/m)` — the contributing-class threshold for Case 1 of
    /// `LargeSet` (Eq. 6).
    pub fn phi1(&self) -> f64 {
        let w = self.large_set_w();
        let dampen = match self.mode {
            ParamMode::Paper => {
                let logm = (self.m.max(2) as f64).ln();
                let log_sa = self.s_alpha.max(2.0).ln();
                (w / self.s_alpha) / (8.0 * 4.0 * log_sa * logm)
            }
            ParamMode::Practical => (w / self.s_alpha) / 2.0,
        };
        (dampen * self.alpha * self.alpha / self.m.max(1) as f64).clamp(1e-9, 1.0)
    }

    /// `φ₂ = Ω̃(1)` — the contributing-class threshold for Case 2 of
    /// `LargeSet` (Claim 4.13: `1/(2·log α)`).
    pub fn phi2(&self) -> f64 {
        (1.0 / (2.0 * self.alpha.max(2.0).log2())).clamp(1e-9, 1.0)
    }

    /// Degree of the shared edge-fingerprint hashes. The hash-once hot
    /// path evaluates exactly one set-keyed and one element-keyed
    /// polynomial per edge, so this degree is the per-edge hashing
    /// budget for the *whole* estimator; downstream subroutines only
    /// apply cheap 4-wise mixes to the fingerprints. Practical mode
    /// uses degree 8 (ample independence for every concentration bound
    /// the calibrated constants rely on); Paper mode keeps the literal
    /// `Θ(log mn)`-wise guarantee. Takes the estimator-global `(m, n)`
    /// — not a per-`z` reduced shape — because one fingerprint serves
    /// every lane.
    pub fn hash_degree(mode: ParamMode, m: usize, n: usize) -> usize {
        match mode {
            ParamMode::Practical => 8,
            ParamMode::Paper => {
                let bits = 128 - ((m.max(2) as u128) * (n.max(2) as u128)).leading_zeros();
                (bits as usize).clamp(8, 48)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_table2_shapes() {
        let p = Params::paper(10_000, 10_000, 100, 10.0);
        assert_eq!(p.eta, 4.0);
        assert_eq!(p.w, 10.0); // min(k, alpha)
        let lmn = ((10_000f64) * (10_000f64)).ln();
        assert!((p.f - 7.0 * lmn).abs() < 1e-9);
        assert!((p.sigma - 1.0 / (2500.0 * lmn * lmn)).abs() < 1e-15);
        // s is tiny at this scale.
        assert!(p.s_alpha / p.alpha < 1e-3);
    }

    #[test]
    fn paper_s_fixed_point_converges() {
        // s must satisfy its own equation to high precision.
        let p = Params::paper(100_000, 100_000, 1000, 50.0);
        let lmn = ((100_000f64) * (100_000f64)).ln();
        let s = p.s_alpha / p.alpha;
        let rhs = 9.0 / (5000.0 * (2.0 * 4.0 * (s * p.alpha).max(2.0).ln()).sqrt() * lmn * lmn)
            * (p.w / p.alpha);
        assert!((s - rhs).abs() / rhs < 1e-6, "fixed point not reached");
    }

    #[test]
    fn practical_keeps_functional_forms() {
        // Doubling alpha quarters phi1 (alpha²/m form). Use alphas large
        // enough that the s_alpha floor (max(w/4, 2)) is inactive, so
        // the w/s_alpha dampening is constant.
        let a = Params::practical(10_000, 10_000, 100, 16.0);
        let b = Params::practical(10_000, 10_000, 100, 32.0);
        let ratio = b.phi1() / a.phi1();
        assert!((ratio - 4.0).abs() < 0.2, "phi1 ratio {ratio}");
        // Doubling m halves phi1.
        let c = Params::practical(20_000, 10_000, 100, 16.0);
        assert!((a.phi1() / c.phi1() - 2.0).abs() < 0.2);
    }

    #[test]
    fn case_split_matches_fig2() {
        // Small k relative to s·alpha: the w = k branch.
        let p = Params::practical(1000, 1000, 1, 64.0);
        // s_alpha = max(0.25·w, 2) = 2 >= 2k = 2 → w = k branch.
        assert_eq!(p.large_set_w(), 1.0);
        assert!(!p.small_set_active());
        // Large k: the w = alpha branch + SmallSet.
        let q = Params::practical(1000, 1000, 100, 8.0);
        assert_eq!(q.large_set_w(), 8.0);
        assert!(q.small_set_active());
    }

    #[test]
    fn num_supersets_scales_like_m_over_w() {
        let p = Params::practical(10_000, 1000, 64, 16.0);
        let b16 = p.num_supersets(16.0);
        let b4 = p.num_supersets(4.0);
        assert!((b4 as f64 / b16 as f64 - 4.0).abs() < 0.5);
    }

    #[test]
    fn small_set_edge_cap_scales_like_m_over_alpha_sq() {
        let a = Params::practical(100_000, 10_000, 100, 4.0);
        let b = Params::practical(100_000, 10_000, 100, 8.0);
        let ratio = a.small_set_edge_cap as f64 / b.small_set_edge_cap as f64;
        assert!((ratio - 4.0).abs() < 0.3, "cap ratio {ratio}");
    }

    #[test]
    fn phi2_shrinks_logarithmically() {
        let a = Params::practical(1000, 1000, 10, 4.0);
        let b = Params::practical(1000, 1000, 10, 256.0);
        assert!(a.phi2() > b.phi2());
        assert!(b.phi2() >= 1.0 / (2.0 * 8.0) - 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn alpha_below_one_rejected() {
        let _ = Params::practical(10, 10, 2, 0.5);
    }

    #[test]
    fn hash_degree_tracks_mode() {
        assert_eq!(Params::hash_degree(ParamMode::Practical, 1 << 20, 1 << 20), 8);
        // Paper mode: bits(m·n) clamped to [8, 48].
        assert_eq!(Params::hash_degree(ParamMode::Paper, 2, 2), 8);
        assert_eq!(Params::hash_degree(ParamMode::Paper, 1 << 10, 1 << 10), 21);
        assert_eq!(Params::hash_degree(ParamMode::Paper, usize::MAX, usize::MAX), 48);
    }

    #[test]
    fn tiny_instances_do_not_blow_up() {
        let p = Params::practical(1, 1, 1, 1.0);
        assert!(p.f >= 2.0);
        assert!(p.sigma > 0.0);
        assert!(p.num_supersets(1.0) >= 1);
        let q = Params::paper(1, 1, 1, 1.0);
        assert!(q.s_alpha > 0.0);
    }
}
