//! # kcov-core — streaming maximum k-coverage with tight trade-offs
//!
//! A faithful implementation of
//!
//! > Piotr Indyk, Ali Vakilian. *Tight Trade-offs for the Maximum
//! > k-Coverage Problem in the General Streaming Model.* PODS 2019.
//!
//! Single-pass algorithms over **edge-arrival** streams of
//! `(set, element)` pairs in arbitrary order:
//!
//! * [`MaxCoverEstimator`] — estimates the optimal coverage size of
//!   `Max k-Cover` within a factor `Õ(α)` using `Õ(m/α²)` words
//!   (Theorem 3.1); the space bound is tight by the paper's Theorem 3.3
//!   (see the `kcov-lowerbound` crate).
//! * [`MaxCoverReporter`] — additionally returns an α-approximate
//!   k-cover in `Õ(m/α² + k)` words (Theorem 3.2).
//!
//! The estimator is a portfolio (Fig 2) behind a universe-reduction
//! wrapper (Fig 1):
//!
//! | module | paper | fires when |
//! |--------|-------|------------|
//! | [`universe`] | §3.1, Lemma 3.5 | always (wrapper) |
//! | [`large_common`] | §4.1, Fig 3 | many common elements |
//! | [`large_set`] | §4.2 + App. B, Figs 4/6/7 | few large sets dominate |
//! | [`small_set`] | §4.3, Fig 5 | many small sets dominate |
//!
//! Beyond the paper (documented as extensions): [`two_pass`] removes
//! the `log n` guess-grid factor when the stream is replayable, and
//! [`budget`] inverts the trade-off — given a space budget in words, it
//! fits the smallest feasible α (the "space is the most critical
//! factor" framing of the paper's introduction). [`paper_map`] indexes
//! every theorem/figure to its implementation and tests.
//!
//! ## Input contract
//!
//! The stream is a sequence of `(set, element)` pairs in arbitrary
//! order, as in the paper. Re-arrivals of the *same* pair are tolerated
//! (all distinct-element machinery ignores them), but the superset-load
//! vector of `LargeSet` counts arrivals — matching the paper's
//! `v⃗[i] = Σ_{S∈D_i}|S|`, which presumes each incidence appears once.
//! A duplication factor of `O(log mn)` is absorbed by the same `f`
//! slack that handles within-superset duplication (Claim 4.10); heavier
//! duplication degrades `LargeSet`'s soundness margin proportionally.
//!
//! ## Quick start
//!
//! ```
//! use kcov_core::{EstimatorConfig, MaxCoverEstimator};
//! use kcov_stream::{edge_stream, ArrivalOrder, gen::planted_cover};
//!
//! let inst = planted_cover(1000, 100, 5, 0.8, 40, 7);
//! let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(1));
//! let out = MaxCoverEstimator::run(1000, 100, 5, 4.0,
//!     &EstimatorConfig::practical(42), &edges);
//! assert!(out.estimate > 0.0);
//! assert!(out.estimate <= inst.planted_coverage as f64 * 1.2);
//! ```

pub mod budget;
pub mod estimate;
pub mod fingerprint;
pub mod large_common;
pub mod large_set;
pub mod oracle;
pub mod paper_map;
pub mod params;
pub mod report;
pub mod small_set;
pub(crate) mod telemetry;
pub mod two_pass;
pub mod universe;

pub use budget::{fit_alpha_to_budget, predict_space_words, BudgetFit};
pub use estimate::{EstimateOutcome, EstimatorConfig, MaxCoverEstimator};
pub use fingerprint::{EdgeFingerprints, FingerprintBlock};
pub use large_common::LargeCommon;
pub use large_set::LargeSet;
pub use oracle::{Oracle, OracleDiagnostics, OracleOutput, SubroutineKind};
pub use params::{ParamMode, Params};
pub use report::{MaxCoverReporter, ReportedCover};
pub use small_set::SmallSet;
pub use two_pass::{run_two_pass, run_two_pass_sharded, TwoPassFirst, TwoPassSecond};
pub use universe::UniverseReducer;

/// A reporting witness: how to reconstruct the winning (approximate)
/// k-cover from hash functions and stored ids, without having stored the
/// sets themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// `LargeCommon`: the `group`-th Observation-2.4 group of the sets
    /// sampled by β-layer `lane`.
    SampledGroup {
        /// β-layer index.
        lane: usize,
        /// Group id within the layer.
        group: u64,
    },
    /// `LargeSet`: the superset `{S : h(S) = superset}` of repetition
    /// `rep`.
    Superset {
        /// Repetition index.
        rep: usize,
        /// Superset id under that repetition's partition hash.
        superset: u64,
    },
    /// `SmallSet`: explicitly chosen set indices (greedy on the stored
    /// sub-instance).
    ExplicitSets(Vec<u32>),
}
