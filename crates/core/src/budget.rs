//! Space-first configuration — the paper's own framing inverted.
//!
//! The introduction (§1): *"In many scenarios, space is the most
//! critical factor, and thus the question becomes: what approximation
//! guarantees are possible within the given space bounds?"* This module
//! answers it operationally: given a budget in words, find the smallest
//! α whose estimator fits, by exploiting that the space bound
//! `Õ(m/α²)` is monotone decreasing in α.
//!
//! The cost model is *measured*, not assumed: candidate estimators are
//! constructed and their static state (`SpaceUsage`) plus the worst-case
//! dynamic allowance (the `SmallSet` per-lane edge caps — its only
//! unbounded-at-construction component) is compared against the budget
//! via binary search over α.

use kcov_sketch::SpaceUsage;

use crate::estimate::{EstimatorConfig, MaxCoverEstimator};
use crate::params::{ParamMode, Params};

/// Result of fitting a budget.
#[derive(Debug)]
pub struct BudgetFit {
    /// The smallest feasible α found (within the search resolution).
    pub alpha: f64,
    /// The configured estimator (not yet fed).
    pub estimator: MaxCoverEstimator,
    /// Predicted worst-case space in words (static + dynamic caps).
    pub predicted_words: usize,
}

/// Worst-case space prediction for the estimator at `alpha`: measured
/// static state plus every SmallSet lane's edge cap.
pub fn predict_space_words(
    n: usize,
    m: usize,
    k: usize,
    alpha: f64,
    config: &EstimatorConfig,
) -> usize {
    let est = MaxCoverEstimator::new(n, m, k, alpha, config);
    est.space_words() + dynamic_allowance(n, m, k, alpha, config, &est)
}

fn dynamic_allowance(
    n: usize,
    m: usize,
    k: usize,
    alpha: f64,
    config: &EstimatorConfig,
    est: &MaxCoverEstimator,
) -> usize {
    // SmallSet stores up to `edge_cap` words per (γ, rep) lane; each
    // lane either stays below the cap or terminates (Fig 5). The
    // estimator runs one SmallSet per (z, rep) lane when active.
    let params = match config.mode {
        ParamMode::Paper => Params::paper(m, n, k, alpha),
        ParamMode::Practical => Params::practical(m, n, k, alpha),
    };
    if !params.small_set_active() {
        return 0;
    }
    let gamma_lanes = (4.0 * params.s_alpha * params.eta)
        .max(2.0)
        .log2()
        .ceil() as usize
        + 1;
    let per_small_set = gamma_lanes * params.small_set_reps.max(1) * params.small_set_edge_cap;
    est.num_lanes() * per_small_set
}

/// Find the smallest α in `[1, √m]` whose predicted worst-case space
/// fits `budget_words`. Returns `None` when even `α = √m` does not fit.
pub fn fit_alpha_to_budget(
    n: usize,
    m: usize,
    k: usize,
    budget_words: usize,
    config: &EstimatorConfig,
) -> Option<BudgetFit> {
    let alpha_max = (m as f64).sqrt().max(1.0);
    if predict_space_words(n, m, k, alpha_max, config) > budget_words {
        return None;
    }
    // Binary search the feasibility frontier (space is monotone
    // decreasing in α up to lane-count granularity; we search to a
    // 5% resolution and then verify).
    let mut lo = 1.0f64; // may be infeasible
    let mut hi = alpha_max; // feasible
    if predict_space_words(n, m, k, lo, config) <= budget_words {
        hi = lo;
    }
    while hi / lo > 1.05 {
        let mid = (lo * hi).sqrt();
        if predict_space_words(n, m, k, mid, config) <= budget_words {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let alpha = hi;
    let estimator = MaxCoverEstimator::new(n, m, k, alpha, config);
    let predicted_words = predict_space_words(n, m, k, alpha, config);
    Some(BudgetFit {
        alpha,
        estimator,
        predicted_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_stream::gen::planted_cover;
    use kcov_stream::{edge_stream, ArrivalOrder};

    fn config() -> EstimatorConfig {
        let mut c = EstimatorConfig::practical(5);
        c.z_guesses = Some(vec![256, 1024, 4096]);
        c.reps = Some(1);
        c
    }

    #[test]
    fn prediction_is_monotone_in_alpha() {
        let c = config();
        let a2 = predict_space_words(8_000, 1_000, 32, 2.0, &c);
        let a8 = predict_space_words(8_000, 1_000, 32, 8.0, &c);
        let a31 = predict_space_words(8_000, 1_000, 32, 31.0, &c);
        assert!(a2 > a8, "space must fall: {a2} vs {a8}");
        assert!(a8 > a31, "space must fall: {a8} vs {a31}");
    }

    #[test]
    fn fit_respects_the_budget() {
        let c = config();
        let generous = predict_space_words(8_000, 1_000, 32, 2.0, &c) * 2;
        let fit = fit_alpha_to_budget(8_000, 1_000, 32, generous, &c).expect("fits");
        assert!(fit.alpha <= 2.2, "generous budget should allow small alpha: {}", fit.alpha);
        assert!(fit.predicted_words <= generous);

        let tight = predict_space_words(8_000, 1_000, 32, 16.0, &c);
        let fit = fit_alpha_to_budget(8_000, 1_000, 32, tight, &c).expect("fits");
        assert!(fit.alpha >= 8.0, "tight budget forces large alpha: {}", fit.alpha);
        assert!(fit.predicted_words <= tight);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let c = config();
        assert!(fit_alpha_to_budget(8_000, 1_000, 32, 10, &c).is_none());
    }

    #[test]
    fn boundary_budget_is_the_feasibility_frontier() {
        let c = config();
        let alpha_max = (1_000f64).sqrt();
        let floor = predict_space_words(8_000, 1_000, 32, alpha_max, &c);
        // Exactly the worst-case prediction at alpha_max fits…
        let fit = fit_alpha_to_budget(8_000, 1_000, 32, floor, &c).expect("boundary budget fits");
        assert!(fit.alpha <= alpha_max);
        assert!(fit.predicted_words <= floor);
        // …and one word less does not.
        assert!(
            fit_alpha_to_budget(8_000, 1_000, 32, floor - 1, &c).is_none(),
            "one word below the alpha_max prediction must be infeasible"
        );
    }

    #[test]
    fn huge_budget_fits_alpha_one() {
        let c = config();
        let huge = predict_space_words(8_000, 1_000, 32, 1.0, &c) * 10;
        let fit = fit_alpha_to_budget(8_000, 1_000, 32, huge, &c).expect("huge budget fits");
        // α = 1 is feasible, and the search returns it exactly (the
        // lower probe short-circuits the binary search).
        assert_eq!(fit.alpha.to_bits(), 1.0f64.to_bits());
        assert!(fit.predicted_words <= huge);
    }

    #[test]
    fn fitted_estimator_space_matches_recorded_snapshot() {
        use kcov_obs::Recorder;
        let mut c = config();
        let rec = Recorder::enabled();
        c.recorder = rec.clone();
        let budget = predict_space_words(4_000, 500, 16, 8.0, &c);
        let mut fit = fit_alpha_to_budget(4_000, 500, 16, budget, &c).expect("fits");
        let inst = planted_cover(4_000, 500, 16, 0.7, 30, 3);
        for e in edge_stream(&inst.system, ArrivalOrder::Shuffled(1)) {
            fit.estimator.observe(e);
        }
        let out = fit.estimator.finalize();
        // The summary event reports exactly the estimator's words, the
        // per-subroutine snapshots sum to it, and both respect the
        // prediction the budget fit promised.
        let summary = &rec.events_of("summary")[0];
        assert_eq!(
            summary.u64_field("space_words").unwrap(),
            fit.estimator.space_words() as u64
        );
        assert_eq!(out.space_words, fit.estimator.space_words());
        let sub_sum: u64 = rec
            .events_of("subroutine")
            .iter()
            .map(|e| e.u64_field("space_words").unwrap())
            .sum();
        assert_eq!(sub_sum, fit.estimator.space_words() as u64);
        assert!(fit.estimator.space_words() <= fit.predicted_words);
    }

    #[test]
    fn fitted_estimator_respects_prediction_at_runtime() {
        let c = config();
        let budget = predict_space_words(4_000, 500, 16, 8.0, &c);
        let mut fit = fit_alpha_to_budget(4_000, 500, 16, budget, &c).expect("fits");
        let inst = planted_cover(4_000, 500, 16, 0.7, 30, 3);
        for e in edge_stream(&inst.system, ArrivalOrder::Shuffled(1)) {
            fit.estimator.observe(e);
        }
        let used = fit.estimator.space_words();
        assert!(
            used <= fit.predicted_words,
            "runtime {used} exceeded prediction {}",
            fit.predicted_words
        );
        let out = fit.estimator.finalize();
        assert!(out.estimate > 0.0, "fitted estimator must still work");
        assert!(out.estimate <= inst.planted_coverage as f64 * 1.15);
    }
}
