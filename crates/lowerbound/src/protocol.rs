//! One-way protocol simulation (Corollary 5.2's reduction direction).
//!
//! A single-pass streaming algorithm with `S` words of state yields an
//! `r`-player one-way protocol with `S`-word messages: player `i` runs
//! the algorithm over its own chunk of the stream and forwards the
//! state. The simulator runs an actual streaming estimator over
//! player-partitioned input and records the resident state size at
//! every player boundary — the communication cost of the induced
//! protocol.

use kcov_sketch::SpaceUsage;
use kcov_stream::Edge;

/// Anything that consumes an edge stream and produces a scalar estimate
/// with measurable state.
pub trait StreamingEstimator: SpaceUsage {
    /// Observe one edge.
    fn observe(&mut self, edge: Edge);
    /// The answer after the pass.
    fn estimate(&self) -> f64;
}

impl StreamingEstimator for kcov_core::MaxCoverEstimator {
    fn observe(&mut self, edge: Edge) {
        kcov_core::MaxCoverEstimator::observe(self, edge)
    }
    fn estimate(&self) -> f64 {
        self.finalize().estimate
    }
}

/// Result of a protocol simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolRun {
    /// The algorithm's final answer (the last player's output).
    pub answer: f64,
    /// State size (words) at each of the `r − 1` player boundaries —
    /// the sizes of the messages the induced protocol sends.
    pub message_words: Vec<usize>,
}

impl ProtocolRun {
    /// The protocol's communication cost: the largest message.
    pub fn max_message_words(&self) -> usize {
        self.message_words.iter().copied().max().unwrap_or(0)
    }

    /// Total communication across the round.
    pub fn total_words(&self) -> usize {
        self.message_words.iter().sum()
    }
}

/// Run `alg` as a one-way protocol over player-partitioned input:
/// `players[i]` is the edge chunk held by player `i`.
pub fn run_one_way_protocol<A: StreamingEstimator>(
    alg: &mut A,
    players: &[Vec<Edge>],
) -> ProtocolRun {
    let mut message_words = Vec::with_capacity(players.len().saturating_sub(1));
    for (i, chunk) in players.iter().enumerate() {
        for &e in chunk {
            alg.observe(e);
        }
        if i + 1 < players.len() {
            message_words.push(alg.space_words());
        }
    }
    ProtocolRun {
        answer: alg.estimate(),
        message_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcov_core::{EstimatorConfig, MaxCoverEstimator};
    use kcov_stream::gen::{dsj_max_cover_instance, DsjKind};

    /// A trivial exact counter used to validate the harness itself.
    struct ExactDistinct {
        seen: std::collections::HashSet<u32>,
    }
    impl SpaceUsage for ExactDistinct {
        fn space_words(&self) -> usize {
            self.seen.len()
        }
    }
    impl StreamingEstimator for ExactDistinct {
        fn observe(&mut self, edge: Edge) {
            self.seen.insert(edge.elem);
        }
        fn estimate(&self) -> f64 {
            self.seen.len() as f64
        }
    }

    #[test]
    fn boundaries_counted_correctly() {
        let players = vec![
            vec![Edge::new(0, 0), Edge::new(0, 1)],
            vec![Edge::new(1, 1)],
            vec![Edge::new(2, 2)],
        ];
        let mut alg = ExactDistinct {
            seen: std::collections::HashSet::new(),
        };
        let run = run_one_way_protocol(&mut alg, &players);
        assert_eq!(run.message_words, vec![2, 2]);
        assert_eq!(run.answer, 3.0);
        assert_eq!(run.max_message_words(), 2);
        assert_eq!(run.total_words(), 4);
    }

    #[test]
    fn single_player_sends_no_messages() {
        let mut alg = ExactDistinct {
            seen: std::collections::HashSet::new(),
        };
        let run = run_one_way_protocol(&mut alg, &[vec![Edge::new(0, 5)]]);
        assert!(run.message_words.is_empty());
        assert_eq!(run.max_message_words(), 0);
    }

    #[test]
    fn estimator_runs_as_protocol_on_dsj_instances() {
        // The full MaxCoverEstimator, partitioned by player, is a valid
        // one-way protocol; its No-case answer should exceed its
        // Yes-case answer (the Claims 5.3/5.4 gap seen through an
        // α'-approximation).
        let alpha = 8usize;
        let m = 256usize;
        let yes = dsj_max_cover_instance(m, alpha, 16, DsjKind::Yes, 3);
        let no = dsj_max_cover_instance(m, alpha, 16, DsjKind::No, 3);
        let config = EstimatorConfig::practical(7);
        let run_case = |inst: &kcov_stream::gen::DsjInstance| {
            let mut alg = MaxCoverEstimator::new(alpha, m, 1, 2.0, &config);
            // Partition the reduced stream by player.
            let players: Vec<Vec<Edge>> = inst
                .players
                .iter()
                .enumerate()
                .map(|(i, t)| t.iter().map(|&j| Edge::new(j, i as u32)).collect())
                .collect();
            run_one_way_protocol(&mut alg, &players)
        };
        let ry = run_case(&yes);
        let rn = run_case(&no);
        assert!(
            rn.answer > ry.answer,
            "No-case answer {} must exceed Yes-case {}",
            rn.answer,
            ry.answer
        );
        assert!(rn.max_message_words() > 0);
    }
}
