//! Lower-bound harness — paper §5 (Theorem 3.3).
//!
//! The paper proves that any single-pass algorithm α-approximating the
//! optimal coverage size needs `Ω(m/α²)` space, by reducing the α-player
//! Set Disjointness problem (unique-intersection promise; Chakrabarti,
//! Khot & Sun's `Ω(m/r)` one-way communication bound, Theorem 5.1, hence
//! `Ω(m/α²)` space per Corollary 5.2) to distinguishing `Max 1-Cover`
//! instances with optimum `α` (No case) from optimum `1` (Yes case).
//!
//! A lower bound cannot be "run", but its two constructive halves can:
//!
//! * [`protocol`] — a one-way protocol simulator: the stream is split
//!   among the players; the algorithm's *resident state* at each player
//!   boundary is the message, measured in words via `SpaceUsage`. Any
//!   streaming algorithm thereby *is* a one-way protocol, which is
//!   exactly Corollary 5.2's argument.
//! * [`distinguisher`] — the matching upper bound the paper sketches in
//!   §1: the hard instances are distinguishable in `O(m/α²)` space by
//!   α-approximating the `L∞` norm of the set-size vector with
//!   `L2`/heavy-hitter sketches. Sweeping the sketch size shows the
//!   success probability transitioning at `Θ(m/α²)` — the empirical
//!   shape of the tight trade-off.

pub mod distinguisher;
pub mod protocol;

pub use distinguisher::{DecisionStats, L2Distinguisher, OracleDistinguisher};
pub use protocol::{run_one_way_protocol, ProtocolRun, StreamingEstimator};
