//! Distinguishers for the §5 hard instances — the constructive side of
//! the tight trade-off.
//!
//! The paper (§1, "Lower bound") observes that its hard instances are
//! distinguishable in `O(m/α²)` space by α-approximating the `L∞` norm
//! of the frequency vector with `L2`-norm sketches [5]: in the No case
//! one coordinate (the spike set) has value `α`, in the Yes case every
//! coordinate is at most 1, and a CountSketch of width `w` resolves the
//! spike iff its per-row noise `≈ √(F2/w) ≈ √(m/w)` falls below `α/2` —
//! i.e. iff `w = Ω(m/α²)`. Sweeping the width therefore traces the
//! lower-bound threshold empirically.

use kcov_hash::SeedSequence;
use kcov_sketch::{CountSketch, SpaceUsage};
use kcov_stream::gen::{dsj_max_cover_instance, DsjInstance, DsjKind};
use kcov_stream::Edge;

use kcov_core::{EstimatorConfig, MaxCoverEstimator};

/// CountSketch-based `L∞`/`L2` distinguisher with an explicit width
/// budget.
#[derive(Debug)]
pub struct L2Distinguisher {
    sketch: CountSketch,
    /// Bounded candidate list of (set id → last estimate); Õ(1) extra.
    candidates: std::collections::HashMap<u64, i64>,
    capacity: usize,
}

impl L2Distinguisher {
    /// A distinguisher whose dominant space cost is `rows × width`
    /// counters.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        let mut seq = SeedSequence::labeled(seed, "l2-distinguisher");
        L2Distinguisher {
            sketch: CountSketch::new(rows, width.max(2), seq.next_seed()),
            candidates: std::collections::HashMap::new(),
            capacity: 64,
        }
    }

    /// Observe one `(set, element)` edge: an update to the set-size
    /// vector's coordinate `set`.
    pub fn observe(&mut self, edge: Edge) {
        self.sketch.insert(edge.set as u64);
        let est = self.sketch.query(edge.set as u64);
        self.candidates.insert(edge.set as u64, est);
        if self.candidates.len() > 2 * self.capacity {
            let mut ests: Vec<i64> = self.candidates.values().copied().collect();
            let cut_idx = ests.len() - self.capacity;
            ests.select_nth_unstable(cut_idx);
            let cut = ests[cut_idx];
            self.candidates.retain(|_, &mut e| e >= cut);
        }
    }

    /// Serialize the distinguisher's state — the literal one-way
    /// protocol message a player would forward: the CountSketch (via
    /// the sketch wire format) plus the candidate list. Another player
    /// can [`L2Distinguisher::from_message`] it and keep streaming.
    pub fn message_bytes(&self) -> Vec<u8> {
        use kcov_sketch::WireEncode;
        let mut out = self.sketch.to_bytes();
        out.extend_from_slice(&(self.candidates.len() as u64).to_le_bytes());
        // Deterministic order for reproducible message sizes.
        let mut items: Vec<(u64, i64)> = self.candidates.iter().map(|(&k, &v)| (k, v)).collect();
        items.sort_unstable();
        for (k, v) in items {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Reconstruct a distinguisher from a forwarded message.
    pub fn from_message(bytes: &[u8], capacity: usize) -> Result<Self, kcov_sketch::WireError> {
        use kcov_sketch::WireEncode;
        let mut input = bytes;
        let sketch = kcov_sketch::CountSketch::decode(&mut input)?;
        let fail = |m: &str| kcov_sketch::WireError {
            message: m.to_string(),
        };
        let take = |input: &mut &[u8]| -> Result<u64, kcov_sketch::WireError> {
            if input.len() < 8 {
                return Err(fail("truncated message"));
            }
            let (head, rest) = input.split_at(8);
            *input = rest;
            Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
        };
        let n = take(&mut input)? as usize;
        let mut candidates = std::collections::HashMap::with_capacity(n);
        for _ in 0..n {
            let k = take(&mut input)?;
            let v = take(&mut input)? as i64;
            candidates.insert(k, v);
        }
        if !input.is_empty() {
            return Err(fail("trailing bytes"));
        }
        Ok(L2Distinguisher {
            sketch,
            candidates,
            capacity,
        })
    }

    /// The largest re-estimated candidate coordinate (≈ `L∞`).
    pub fn linf_estimate(&self) -> i64 {
        self.candidates
            .keys()
            .map(|&s| self.sketch.query(s))
            .max()
            .unwrap_or(0)
    }

    /// Decision: declare "No case" (a spike of height `alpha` exists)
    /// iff the `L∞` estimate reaches `3α/4`. The 3/4 (rather than the
    /// analysis' 1/2) tightens the false-positive side: the decision
    /// takes a max over `O(1)` candidates, so the noise bar must clear
    /// the extreme-value inflation.
    pub fn decide_no_case(&self, alpha: usize) -> bool {
        self.linf_estimate() >= (3 * alpha as i64) / 4
    }
}

impl SpaceUsage for L2Distinguisher {
    fn space_words(&self) -> usize {
        self.sketch.space_words() + 2 * self.candidates.len()
    }
}

/// Success statistics of a distinguisher over repeated trials.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionStats {
    /// Trials run per case.
    pub trials: usize,
    /// Fraction of No instances correctly declared No.
    pub no_recall: f64,
    /// Fraction of Yes instances correctly declared Yes.
    pub yes_recall: f64,
    /// Words of space used (max across trials).
    pub space_words: usize,
}

impl DecisionStats {
    /// Joint success probability proxy: min of the two recalls.
    pub fn success(&self) -> f64 {
        self.no_recall.min(self.yes_recall)
    }
}

/// Sweep harness: run the [`L2Distinguisher`] at one width over many
/// random DSJ instances of both kinds.
pub fn l2_sweep_point(
    m: usize,
    alpha: usize,
    items_per_player: usize,
    rows: usize,
    width: usize,
    trials: usize,
    seed: u64,
) -> DecisionStats {
    let mut seq = SeedSequence::labeled(seed, "l2-sweep");
    let mut no_ok = 0usize;
    let mut yes_ok = 0usize;
    let mut space = 0usize;
    for _ in 0..trials {
        for kind in [DsjKind::No, DsjKind::Yes] {
            let inst = dsj_max_cover_instance(m, alpha, items_per_player, kind, seq.next_seed());
            let mut d = L2Distinguisher::new(rows, width, seq.next_seed());
            for e in inst.player_ordered_edges() {
                d.observe(e);
            }
            space = space.max(d.space_words());
            let said_no = d.decide_no_case(alpha);
            match kind {
                DsjKind::No if said_no => no_ok += 1,
                DsjKind::Yes if !said_no => yes_ok += 1,
                _ => {}
            }
        }
    }
    DecisionStats {
        trials,
        no_recall: no_ok as f64 / trials as f64,
        yes_recall: yes_ok as f64 / trials as f64,
        space_words: space,
    }
}

/// Distinguisher running the full `MaxCoverEstimator` (k = 1) on the
/// reduced `Max 1-Cover` instance — the reduction direction of
/// Theorem 3.3: an α-approximate estimator decides DSJ.
#[derive(Debug)]
pub struct OracleDistinguisher {
    estimator: MaxCoverEstimator,
}

impl OracleDistinguisher {
    /// Build for the reduced instance of an α-player DSJ over `m` items,
    /// approximating within `alpha_approx < α`.
    pub fn new(m: usize, alpha_players: usize, alpha_approx: f64, seed: u64) -> Self {
        OracleDistinguisher {
            estimator: MaxCoverEstimator::new(
                alpha_players,
                m,
                1,
                alpha_approx,
                &EstimatorConfig::practical(seed),
            ),
        }
    }

    /// Feed the whole reduced instance and decide.
    pub fn decide_no_case(mut self, inst: &DsjInstance) -> (bool, usize) {
        for e in inst.player_ordered_edges() {
            self.estimator.observe(e);
        }
        let space = self.estimator.space_words();
        let out = self.estimator.finalize();
        (out.estimate > 2.0, space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_sketch_distinguishes_reliably() {
        // width ≈ m: noise ≈ 1, spike = alpha = 12 → near-perfect.
        let stats = l2_sweep_point(512, 12, 16, 5, 512, 10, 1);
        assert!(stats.no_recall >= 0.9, "no recall {}", stats.no_recall);
        assert!(stats.yes_recall >= 0.9, "yes recall {}", stats.yes_recall);
    }

    #[test]
    fn narrow_sketch_fails_no_case() {
        // width 4 ≪ m/alpha²: row noise √(m/4) ≈ 11 swamps the spike in
        // both directions; Yes instances get declared No (false
        // positives) because noise alone reaches alpha/2 = 6.
        let stats = l2_sweep_point(2048, 12, 128, 5, 4, 10, 2);
        assert!(
            stats.success() < 0.9,
            "narrow sketch should not succeed: {stats:?}"
        );
    }

    #[test]
    fn threshold_near_m_over_alpha_squared() {
        // Success at width c·m/α² (c = 16, the constant carrying the
        // median-of-rows and max-over-candidates slack) should beat
        // success at width m/(4·α²) — a 64× gap straddling the
        // threshold.
        let (m, alpha, ipp) = (4096usize, 16usize, 192usize);
        let at = |width: usize| l2_sweep_point(m, alpha, ipp, 5, width.max(2), 8, 3).success();
        let wide = at(16 * m / (alpha * alpha)); // 256
        let narrow = at(m / (4 * alpha * alpha)); // 4
        assert!(
            wide >= narrow,
            "success must improve with width: wide {wide} narrow {narrow}"
        );
        assert!(wide >= 0.7, "tight-width success too low: {wide}");
    }

    #[test]
    fn space_words_tracks_width() {
        let small = L2Distinguisher::new(5, 16, 1).space_words();
        let large = L2Distinguisher::new(5, 1024, 1).space_words();
        assert!(large > 10 * small);
    }

    #[test]
    fn message_roundtrip_preserves_protocol_state() {
        // Two players: player 1 streams, forwards its literal message;
        // player 2 reconstructs and continues. The final decision
        // matches a single-machine run exactly.
        let inst = dsj_max_cover_instance(512, 12, 16, DsjKind::No, 7);
        let edges = inst.player_ordered_edges();
        let mid = edges.len() / 2;

        let mut whole = L2Distinguisher::new(5, 256, 3);
        for &e in &edges {
            whole.observe(e);
        }

        let mut player1 = L2Distinguisher::new(5, 256, 3);
        for &e in &edges[..mid] {
            player1.observe(e);
        }
        let message = player1.message_bytes();
        let mut player2 = L2Distinguisher::from_message(&message, 64).unwrap();
        for &e in &edges[mid..] {
            player2.observe(e);
        }
        assert_eq!(whole.linf_estimate(), player2.linf_estimate());
        assert_eq!(whole.decide_no_case(12), player2.decide_no_case(12));
        // Message size tracks the word count (8 bytes/word + framing).
        let words = player1.space_words();
        assert!(message.len() >= words * 8 - 64);
        assert!(message.len() <= words * 8 + 4096);
    }

    #[test]
    fn linf_estimate_on_empty_stream_is_zero() {
        let d = L2Distinguisher::new(3, 8, 1);
        assert_eq!(d.linf_estimate(), 0);
        assert!(!d.decide_no_case(8));
    }

    #[test]
    fn oracle_distinguisher_separates_cases() {
        // The player count must exceed the estimator's *effective*
        // approximation factor (alpha' times its practical constants,
        // ≈ 3·f·alpha' here), else the Yes/No estimates overlap — this
        // is exactly the reduction's requirement that the algorithm be
        // an α-approximation for α below the instance gap.
        let m = 2048usize;
        let alpha = 64usize;
        let mut no_ok = 0;
        let mut yes_ok = 0;
        let trials = 4;
        for seed in 0..trials {
            let no = dsj_max_cover_instance(m, alpha, 16, DsjKind::No, seed);
            let yes = dsj_max_cover_instance(m, alpha, 16, DsjKind::Yes, seed);
            let (dn, _) = OracleDistinguisher::new(m, alpha, 2.0, 100 + seed).decide_no_case(&no);
            let (dy, _) = OracleDistinguisher::new(m, alpha, 2.0, 100 + seed).decide_no_case(&yes);
            if dn {
                no_ok += 1;
            }
            if !dy {
                yes_ok += 1;
            }
        }
        assert!(no_ok >= 3, "No-case detection too weak: {no_ok}/{trials}");
        assert!(yes_ok >= 3, "Yes-case false positives: {yes_ok}/{trials}");
    }
}
