//! Property-based tests of the stream substrate: arrival orders are
//! permutations, I/O round-trips, generators respect their contracts.

use proptest::prelude::*;

use kcov_stream::gen::{uniform_incidence, zipf_set_sizes};
use kcov_stream::{
    coverage_of, edge_stream, element_frequencies, read_edges, read_set_system, write_edges,
    write_set_system, ArrivalOrder, Edge, SetSystem,
};

fn small_system() -> impl Strategy<Value = SetSystem> {
    (1usize..40, 1usize..15, 0u64..10_000).prop_map(|(n, m, seed)| {
        uniform_incidence(n, m, 0.3, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every arrival order emits the same edge multiset.
    #[test]
    fn orders_are_permutations(ss in small_system(), shuffle_seed in 0u64..100) {
        let mut reference = edge_stream(&ss, ArrivalOrder::SetContiguous);
        reference.sort();
        for order in [
            ArrivalOrder::ElementContiguous,
            ArrivalOrder::RoundRobin,
            ArrivalOrder::Shuffled(shuffle_seed),
        ] {
            let mut got = edge_stream(&ss, order);
            got.sort();
            prop_assert_eq!(&got, &reference);
        }
    }

    /// SetSystem ↔ text round-trips exactly.
    #[test]
    fn io_roundtrip(ss in small_system()) {
        let mut buf = Vec::new();
        write_set_system(&ss, &mut buf).unwrap();
        let back = read_set_system(&buf[..]).unwrap();
        prop_assert_eq!(ss, back);
    }

    /// Raw edge streams round-trip preserving order and duplicates.
    #[test]
    fn edge_io_roundtrip(ss in small_system(), seed in 0u64..100) {
        let edges = edge_stream(&ss, ArrivalOrder::Shuffled(seed));
        let mut buf = Vec::new();
        write_edges(ss.num_elements().max(1), ss.num_sets().max(1), &edges, &mut buf).unwrap();
        let (_, _, back) = read_edges(&buf[..]).unwrap();
        prop_assert_eq!(edges, back);
    }

    /// Coverage equals the number of elements with positive frequency
    /// when all sets are chosen.
    #[test]
    fn full_coverage_matches_frequencies(ss in small_system()) {
        let all: Vec<usize> = (0..ss.num_sets()).collect();
        let cov = coverage_of(&ss, &all);
        let covered = element_frequencies(&ss).iter().filter(|&&f| f > 0).count();
        prop_assert_eq!(cov, covered);
    }

    /// Zipf generator: sizes are non-increasing and within bounds.
    #[test]
    fn zipf_sizes_monotone(seed in 0u64..1000) {
        let ss = zipf_set_sizes(300, 30, 100, 1.0, seed);
        for i in 1..30 {
            prop_assert!(ss.set(i).len() <= ss.set(i - 1).len() + 1,
                "sizes must be (weakly) decreasing");
        }
        for i in 0..30 {
            prop_assert!(!ss.set(i).is_empty());
            prop_assert!(ss.set(i).len() <= 100);
        }
    }

    /// From-edges construction tolerates duplicate edges.
    #[test]
    fn from_edges_dedups(n in 2usize..20, seed in 0u64..1000) {
        let e = Edge::new(0, (seed % n as u64) as u32);
        let ss = SetSystem::from_edges(n, 2, &[e, e, e]);
        prop_assert_eq!(ss.set(0).len(), 1);
        prop_assert_eq!(ss.total_edges(), 1);
    }
}
