//! Plain-text instance and stream I/O.
//!
//! Format (whitespace-separated, `#` comments):
//!
//! ```text
//! # header: n m
//! 5 3
//! # one edge per line: set element
//! 0 1
//! 0 2
//! 2 4
//! ```
//!
//! The same format serves both materialized instances and raw edge
//! streams; the loader validates ranges and reports line numbers on
//! errors. Used by the `maxkcov` CLI and by anyone bringing real data.

use std::fmt;
use std::io::{BufRead, Write};

use crate::edge::Edge;
use crate::instance::SetSystem;

/// Parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a data line into its two numeric fields (comments and blanks
/// yield `None`).
fn parse_pair(line: &str, lineno: usize) -> Result<Option<(u64, u64)>, ParseError> {
    let content = line.split('#').next().unwrap_or("").trim();
    if content.is_empty() {
        return Ok(None);
    }
    let mut parts = content.split_whitespace();
    let a: u64 = parts
        .next()
        .ok_or_else(|| err(lineno, "missing first field"))?
        .parse()
        .map_err(|e| err(lineno, format!("bad number: {e}")))?;
    let b: u64 = parts
        .next()
        .ok_or_else(|| err(lineno, "missing second field"))?
        .parse()
        .map_err(|e| err(lineno, format!("bad number: {e}")))?;
    if parts.next().is_some() {
        return Err(err(lineno, "trailing fields"));
    }
    Ok(Some((a, b)))
}

/// Validate an edge line against the header shape.
fn check_edge(a: u64, b: u64, n: usize, m: usize, lineno: usize) -> Result<Edge, ParseError> {
    if a >= m as u64 {
        return Err(err(lineno, format!("set id {a} >= m = {m}")));
    }
    if b >= n as u64 {
        return Err(err(lineno, format!("element id {b} >= n = {n}")));
    }
    Ok(Edge::new(a as u32, b as u32))
}

/// Read `(n, m, edges)` from the text format.
pub fn read_edges<R: BufRead>(reader: R) -> Result<(usize, usize, Vec<Edge>), ParseError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| err(lineno, format!("io error: {e}")))?;
        let Some((a, b)) = parse_pair(&line, lineno)? else {
            continue;
        };
        match header {
            None => {
                if a == 0 || b == 0 {
                    return Err(err(lineno, "header must have n >= 1 and m >= 1"));
                }
                header = Some((a as usize, b as usize));
            }
            Some((n, m)) => edges.push(check_edge(a, b, n, m, lineno)?),
        }
    }
    let (n, m) = header.ok_or_else(|| err(0, "empty input: missing 'n m' header"))?;
    Ok((n, m, edges))
}

/// Streaming reader handing out edges in chunks — the file-backed
/// counterpart of [`crate::ChunkedStream`], feeding the batched
/// ingestion path without ever materializing the full stream. Holds at
/// most `chunk_size` edges in memory.
#[derive(Debug)]
pub struct EdgeChunkReader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    n: usize,
    m: usize,
    chunk_size: usize,
    buf: Vec<Edge>,
}

impl<R: BufRead> EdgeChunkReader<R> {
    /// Open a reader: consumes lines up to and including the `n m`
    /// header, so the shape is available before the first chunk.
    pub fn new(reader: R, chunk_size: usize) -> Result<Self, ParseError> {
        assert!(chunk_size >= 1, "chunk size must be >= 1");
        let mut lines = reader.lines().enumerate();
        let header = loop {
            let Some((idx, line)) = lines.next() else {
                return Err(err(0, "empty input: missing 'n m' header"));
            };
            let lineno = idx + 1;
            let line = line.map_err(|e| err(lineno, format!("io error: {e}")))?;
            if let Some((a, b)) = parse_pair(&line, lineno)? {
                if a == 0 || b == 0 {
                    return Err(err(lineno, "header must have n >= 1 and m >= 1"));
                }
                break (a as usize, b as usize);
            }
        };
        Ok(EdgeChunkReader {
            lines,
            n: header.0,
            m: header.1,
            chunk_size,
            buf: Vec::with_capacity(chunk_size),
        })
    }

    /// Universe size from the header.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Set count from the header.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The next chunk of up to `chunk_size` edges, in file order;
    /// `Ok(None)` at end of input.
    pub fn next_chunk(&mut self) -> Result<Option<&[Edge]>, ParseError> {
        self.buf.clear();
        while self.buf.len() < self.chunk_size {
            let Some((idx, line)) = self.lines.next() else {
                break;
            };
            let lineno = idx + 1;
            let line = line.map_err(|e| err(lineno, format!("io error: {e}")))?;
            if let Some((a, b)) = parse_pair(&line, lineno)? {
                self.buf.push(check_edge(a, b, self.n, self.m, lineno)?);
            }
        }
        if self.buf.is_empty() {
            Ok(None)
        } else {
            Ok(Some(&self.buf))
        }
    }
}

/// Read a materialized [`SetSystem`] from the text format.
pub fn read_set_system<R: BufRead>(reader: R) -> Result<SetSystem, ParseError> {
    let (n, m, edges) = read_edges(reader)?;
    Ok(SetSystem::from_edges(n, m, &edges))
}

/// Write a set system (header + set-contiguous edges).
pub fn write_set_system<W: Write>(system: &SetSystem, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# maxkcov instance: n m, then 'set element' per line")?;
    writeln!(w, "{} {}", system.num_elements(), system.num_sets())?;
    for e in system.iter_edges() {
        writeln!(w, "{} {}", e.set, e.elem)?;
    }
    Ok(())
}

/// Write a raw edge stream with an explicit shape header.
pub fn write_edges<W: Write>(n: usize, m: usize, edges: &[Edge], mut w: W) -> std::io::Result<()> {
    writeln!(w, "{n} {m}")?;
    for e in edges {
        writeln!(w, "{} {}", e.set, e.elem)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_set_system() {
        let ss = SetSystem::new(6, vec![vec![0, 1], vec![2, 5], vec![]]);
        let mut buf = Vec::new();
        write_set_system(&ss, &mut buf).unwrap();
        let back = read_set_system(&buf[..]).unwrap();
        assert_eq!(ss, back);
    }

    #[test]
    fn roundtrip_edges_preserves_order() {
        let edges = vec![Edge::new(2, 0), Edge::new(0, 3), Edge::new(2, 0)];
        let mut buf = Vec::new();
        write_edges(5, 3, &edges, &mut buf).unwrap();
        let (n, m, back) = read_edges(&buf[..]).unwrap();
        assert_eq!((n, m), (5, 3));
        assert_eq!(back, edges);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\n4 2  # shape\n0 1\n# mid\n1 3\n";
        let (n, m, edges) = read_edges(text.as_bytes()).unwrap();
        assert_eq!((n, m), (4, 2));
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(1, 3)]);
    }

    #[test]
    fn out_of_range_set_rejected_with_line() {
        let text = "4 2\n2 0\n";
        let e = read_edges(text.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("set id 2"));
    }

    #[test]
    fn out_of_range_element_rejected() {
        let text = "4 2\n0 4\n";
        let e = read_edges(text.as_bytes()).unwrap_err();
        assert!(e.message.contains("element id 4"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(read_edges("4\n".as_bytes()).is_err());
        assert!(read_edges("4 2\n1 2 3\n".as_bytes()).is_err());
        assert!(read_edges("4 2\nx y\n".as_bytes()).is_err());
        assert!(read_edges("".as_bytes()).is_err());
        assert!(read_edges("0 5\n".as_bytes()).is_err());
    }

    #[test]
    fn display_includes_line() {
        let e = read_edges("4 2\n9 9\n".as_bytes()).unwrap_err();
        let msg = format!("{e}");
        assert!(msg.starts_with("line 2:"), "{msg}");
    }
}
