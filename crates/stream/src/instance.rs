//! Materialized set systems `(U, F)`.
//!
//! Generators and offline algorithms (greedy, exact, ground truth) work on
//! a materialized [`SetSystem`]; the streaming algorithms only ever see
//! the edge stream derived from one (see [`crate::order`]).

use crate::edge::Edge;

/// A set system: `n` ground elements and `m` sets over them.
///
/// Invariants (enforced by the constructors): every element id is
/// `< num_elements`, each set's member list is sorted and duplicate-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetSystem {
    num_elements: usize,
    sets: Vec<Vec<u32>>,
}

impl SetSystem {
    /// Build from raw member lists; sorts and deduplicates each set.
    /// Panics if any element id is out of range.
    pub fn new(num_elements: usize, mut sets: Vec<Vec<u32>>) -> Self {
        for (i, s) in sets.iter_mut().enumerate() {
            s.sort_unstable();
            s.dedup();
            if let Some(&last) = s.last() {
                assert!(
                    (last as usize) < num_elements,
                    "set {i} contains element {last} >= n = {num_elements}"
                );
            }
        }
        SetSystem { num_elements, sets }
    }

    /// Build from an edge list. `num_sets` fixes `m` (empty sets are
    /// allowed and preserved).
    pub fn from_edges(num_elements: usize, num_sets: usize, edges: &[Edge]) -> Self {
        let mut sets = vec![Vec::new(); num_sets];
        for e in edges {
            assert!(
                (e.set as usize) < num_sets,
                "edge references set {} >= m = {num_sets}",
                e.set
            );
            sets[e.set as usize].push(e.elem);
        }
        SetSystem::new(num_elements, sets)
    }

    /// Number of ground elements `n`.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of sets `m`.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Member list of one set (sorted, duplicate-free).
    #[inline]
    pub fn set(&self, i: usize) -> &[u32] {
        &self.sets[i]
    }

    /// All sets.
    pub fn sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// Total number of incidences `Σ |S|` (the stream length).
    pub fn total_edges(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Size of the largest set.
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// All edges in set-contiguous order (set 0's members, then set 1's…).
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.total_edges());
        for (s, members) in self.sets.iter().enumerate() {
            for &e in members {
                out.push(Edge::new(s as u32, e));
            }
        }
        out
    }

    /// Iterate over `(set, element)` pairs without materializing.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(s, members)| members.iter().map(move |&e| Edge::new(s as u32, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let ss = SetSystem::new(10, vec![vec![3, 1, 3, 2], vec![]]);
        assert_eq!(ss.set(0), &[1, 2, 3]);
        assert_eq!(ss.set(1), &[] as &[u32]);
        assert_eq!(ss.num_sets(), 2);
        assert_eq!(ss.num_elements(), 10);
    }

    #[test]
    #[should_panic(expected = ">= n")]
    fn out_of_range_element_rejected() {
        let _ = SetSystem::new(5, vec![vec![5]]);
    }

    #[test]
    fn from_edges_roundtrip() {
        let edges = vec![Edge::new(0, 2), Edge::new(1, 0), Edge::new(0, 1), Edge::new(0, 2)];
        let ss = SetSystem::from_edges(3, 3, &edges);
        assert_eq!(ss.set(0), &[1, 2]);
        assert_eq!(ss.set(1), &[0]);
        assert_eq!(ss.set(2), &[] as &[u32]);
        assert_eq!(ss.total_edges(), 3);
    }

    #[test]
    #[should_panic(expected = ">= m")]
    fn from_edges_rejects_bad_set() {
        let _ = SetSystem::from_edges(3, 1, &[Edge::new(1, 0)]);
    }

    #[test]
    fn edges_enumeration_matches_total() {
        let ss = SetSystem::new(6, vec![vec![0, 1], vec![2], vec![3, 4, 5]]);
        let edges = ss.edges();
        assert_eq!(edges.len(), ss.total_edges());
        assert_eq!(edges.len(), 6);
        let via_iter: Vec<Edge> = ss.iter_edges().collect();
        assert_eq!(edges, via_iter);
    }

    #[test]
    fn max_set_size() {
        let ss = SetSystem::new(6, vec![vec![0], vec![1, 2, 3], vec![]]);
        assert_eq!(ss.max_set_size(), 3);
        let empty = SetSystem::new(5, vec![]);
        assert_eq!(empty.max_set_size(), 0);
    }
}
