//! Set systems, edge-arrival streams and workload generators for the
//! maximum k-coverage problem.
//!
//! The paper's input model (its §1–§2): a ground set `U` of `n` elements,
//! a family `F` of `m` sets, delivered as a single-pass stream of
//! `(set, element)` pairs — *edges* of the set-element incidence graph —
//! in arbitrary order. This crate provides:
//!
//! * [`Edge`] and [`SetSystem`] — the incidence representation and its
//!   offline materialization (used by generators, baselines and ground
//!   truth; the streaming algorithms themselves never materialize it).
//! * [`order`] — arrival orders: set-contiguous (the *set-arrival* model
//!   of the prior work in Table 1), element-contiguous, round-robin and
//!   seeded adversarial shuffles (the *edge-arrival* model).
//! * [`coverage`] — exact coverage, frequency and `λ`-common-element
//!   utilities (Definition 2.1) for verification and instrumentation.
//! * [`gen`] — workload generators: uniform and Zipfian random systems,
//!   planted-optimum instances, the three structural regimes the paper's
//!   oracle case-analysis distinguishes (§4), and the Set-Disjointness
//!   hard instances of the §5 lower bound.

pub mod coverage;
pub mod edge;
pub mod gen;
pub mod instance;
pub mod io;
pub mod order;

pub use coverage::{common_elements, coverage_of, element_frequencies, CoverageStats};
pub use edge::Edge;
pub use instance::SetSystem;
pub use io::{read_edges, read_set_system, write_edges, write_set_system, EdgeChunkReader, ParseError};
pub use order::{edge_stream, edge_stream_chunked, ArrivalOrder, ChunkedStream};
