//! Arrival orders for the edge stream.
//!
//! The whole point of the paper is that its algorithms survive *arbitrary*
//! edge order (the general / edge-arrival model), where prior `Õ(n)`- and
//! `Õ(k)`-space algorithms require sets to arrive contiguously (set
//! arrival). These orders let tests assert order-invariance and let
//! experiments stress the difference.

use kcov_hash::SplitMix64;

use crate::edge::Edge;
use crate::instance::SetSystem;

/// How the edges of a [`SetSystem`] are serialized into a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// All of set 0's edges, then set 1's, … — the *set-arrival* model.
    SetContiguous,
    /// All edges of element 0, then element 1, … (e.g. in-neighborhood
    /// listings of a graph, the paper's footnote-2 motivation).
    ElementContiguous,
    /// Round-robin over sets: first member of each set, then second of
    /// each, … — maximally interleaved.
    RoundRobin,
    /// Uniformly random permutation with the given seed.
    Shuffled(u64),
}

/// Serialize the edges of `system` in the requested order.
pub fn edge_stream(system: &SetSystem, order: ArrivalOrder) -> Vec<Edge> {
    match order {
        ArrivalOrder::SetContiguous => system.edges(),
        ArrivalOrder::ElementContiguous => {
            let mut edges = system.edges();
            edges.sort_by(|a, b| a.elem.cmp(&b.elem).then(a.set.cmp(&b.set)));
            edges
        }
        ArrivalOrder::RoundRobin => {
            let mut out = Vec::with_capacity(system.total_edges());
            let max_size = system.max_set_size();
            for round in 0..max_size {
                for (s, members) in system.sets().iter().enumerate() {
                    if let Some(&e) = members.get(round) {
                        out.push(Edge::new(s as u32, e));
                    }
                }
            }
            out
        }
        ArrivalOrder::Shuffled(seed) => {
            let mut edges = system.edges();
            fisher_yates(&mut edges, seed);
            edges
        }
    }
}

/// An owned edge stream handed out in fixed-size chunks — the feeding
/// pattern of the batched ingestion engine (`observe_batch`). The last
/// chunk may be shorter; the concatenation of all chunks is exactly the
/// underlying stream, in order.
#[derive(Debug, Clone)]
pub struct ChunkedStream {
    edges: Vec<Edge>,
    chunk_size: usize,
    pos: usize,
}

impl ChunkedStream {
    /// Wrap an edge stream for chunked consumption.
    pub fn new(edges: Vec<Edge>, chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk size must be >= 1");
        ChunkedStream {
            edges,
            chunk_size,
            pos: 0,
        }
    }

    /// The next chunk, or `None` when the stream is exhausted.
    pub fn next_chunk(&mut self) -> Option<&[Edge]> {
        if self.pos >= self.edges.len() {
            return None;
        }
        let end = (self.pos + self.chunk_size).min(self.edges.len());
        let chunk = &self.edges[self.pos..end];
        self.pos = end;
        Some(chunk)
    }

    /// Total number of edges in the underlying stream.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the underlying stream is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

/// Serialize the edges of `system` in the requested order, for chunked
/// consumption by the batched ingestion path.
pub fn edge_stream_chunked(
    system: &SetSystem,
    order: ArrivalOrder,
    chunk_size: usize,
) -> ChunkedStream {
    ChunkedStream::new(edge_stream(system, order), chunk_size)
}

/// In-place Fisher–Yates shuffle driven by SplitMix64.
fn fisher_yates(edges: &mut [Edge], seed: u64) {
    let mut rng = SplitMix64::new(seed ^ 0xed9e_5eed_0c0f_fee5u64);
    for i in (1..edges.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        edges.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_system() -> SetSystem {
        SetSystem::new(5, vec![vec![0, 1, 2], vec![2, 3], vec![4]])
    }

    fn sorted(mut v: Vec<Edge>) -> Vec<Edge> {
        v.sort();
        v
    }

    #[test]
    fn all_orders_are_permutations_of_the_same_multiset() {
        let ss = sample_system();
        let reference = sorted(edge_stream(&ss, ArrivalOrder::SetContiguous));
        for order in [
            ArrivalOrder::ElementContiguous,
            ArrivalOrder::RoundRobin,
            ArrivalOrder::Shuffled(1),
            ArrivalOrder::Shuffled(2),
        ] {
            assert_eq!(sorted(edge_stream(&ss, order)), reference, "{order:?}");
        }
    }

    #[test]
    fn set_contiguous_groups_sets() {
        let ss = sample_system();
        let stream = edge_stream(&ss, ArrivalOrder::SetContiguous);
        let set_seq: Vec<u32> = stream.iter().map(|e| e.set).collect();
        assert_eq!(set_seq, vec![0, 0, 0, 1, 1, 2]);
    }

    #[test]
    fn element_contiguous_groups_elements() {
        let ss = sample_system();
        let stream = edge_stream(&ss, ArrivalOrder::ElementContiguous);
        let elem_seq: Vec<u32> = stream.iter().map(|e| e.elem).collect();
        let mut expect = elem_seq.clone();
        expect.sort_unstable();
        assert_eq!(elem_seq, expect);
    }

    #[test]
    fn round_robin_interleaves() {
        let ss = sample_system();
        let stream = edge_stream(&ss, ArrivalOrder::RoundRobin);
        // First round: one edge from each non-empty set, in set order.
        assert_eq!(stream[0].set, 0);
        assert_eq!(stream[1].set, 1);
        assert_eq!(stream[2].set, 2);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let ss = sample_system();
        let a = edge_stream(&ss, ArrivalOrder::Shuffled(9));
        let b = edge_stream(&ss, ArrivalOrder::Shuffled(9));
        let c = edge_stream(&ss, ArrivalOrder::Shuffled(10));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn empty_system_yields_empty_stream() {
        let ss = SetSystem::new(0, vec![]);
        for order in [
            ArrivalOrder::SetContiguous,
            ArrivalOrder::ElementContiguous,
            ArrivalOrder::RoundRobin,
            ArrivalOrder::Shuffled(0),
        ] {
            assert!(edge_stream(&ss, order).is_empty());
        }
    }
}
