//! The atomic stream token of the edge-arrival model.

/// One `(set, element)` incidence pair. The paper writes these as
/// `(S, e)`; ids are dense `u32` indices (`set < m`, `elem < n`), which
/// comfortably covers every scale this workspace targets while keeping an
/// edge at 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Set index in `[0, m)`.
    pub set: u32,
    /// Element index in `[0, n)`.
    pub elem: u32,
}

impl Edge {
    /// Construct an edge.
    #[inline]
    pub fn new(set: u32, elem: u32) -> Self {
        Edge { set, elem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let e = Edge::new(3, 7);
        assert_eq!(e.set, 3);
        assert_eq!(e.elem, 7);
        assert_eq!(e, Edge { set: 3, elem: 7 });
        assert_ne!(e, Edge::new(7, 3));
    }

    #[test]
    fn edge_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<Edge>(), 8);
    }

    #[test]
    fn ordering_is_by_set_then_element() {
        assert!(Edge::new(1, 9) < Edge::new(2, 0));
        assert!(Edge::new(1, 1) < Edge::new(1, 2));
    }
}
