//! Exact coverage and frequency utilities.
//!
//! Used for ground truth in tests and experiments, and to characterize
//! instances against the paper's structural notions: element frequencies
//! (how many sets contain each element) and `λ`-common elements
//! (Definition 2.1: an element is λ-common when it appears in at least
//! `≈ m/λ` sets; we expose the raw frequency threshold and let callers
//! supply the paper's polylog factor).

use crate::instance::SetSystem;

/// Exact coverage `|C(Q)| = |⋃_{i ∈ chosen} S_i|` of a collection of sets.
pub fn coverage_of(system: &SetSystem, chosen: &[usize]) -> usize {
    let mut covered = vec![false; system.num_elements()];
    let mut count = 0usize;
    for &i in chosen {
        for &e in system.set(i) {
            if !covered[e as usize] {
                covered[e as usize] = true;
                count += 1;
            }
        }
    }
    count
}

/// Frequency of each element: `freq[e]` = number of sets containing `e`
/// (the vector `v` of the paper's lower-bound discussion).
pub fn element_frequencies(system: &SetSystem) -> Vec<u32> {
    let mut freq = vec![0u32; system.num_elements()];
    for s in system.sets() {
        for &e in s {
            freq[e as usize] += 1;
        }
    }
    freq
}

/// Elements whose frequency is at least `threshold` — the `λ`-common
/// elements `U^cmn` of Definition 2.1 for `threshold ≈ c·m·polylog/λ`.
pub fn common_elements(system: &SetSystem, threshold: u32) -> Vec<u32> {
    element_frequencies(system)
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f >= threshold)
        .map(|(e, _)| e as u32)
        .collect()
}

/// Summary statistics of a set system, used by experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageStats {
    /// Number of elements `n`.
    pub n: usize,
    /// Number of sets `m`.
    pub m: usize,
    /// Stream length `Σ|S|`.
    pub total_edges: usize,
    /// Largest set size.
    pub max_set_size: usize,
    /// Largest element frequency (`L∞` of the frequency vector).
    pub max_frequency: u32,
    /// Number of elements covered by at least one set.
    pub covered_elements: usize,
}

impl CoverageStats {
    /// Compute statistics for a system.
    pub fn of(system: &SetSystem) -> Self {
        let freq = element_frequencies(system);
        CoverageStats {
            n: system.num_elements(),
            m: system.num_sets(),
            total_edges: system.total_edges(),
            max_set_size: system.max_set_size(),
            max_frequency: freq.iter().copied().max().unwrap_or(0),
            covered_elements: freq.iter().filter(|&&f| f > 0).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SetSystem {
        SetSystem::new(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![]])
    }

    #[test]
    fn coverage_of_union() {
        let ss = sample();
        assert_eq!(coverage_of(&ss, &[0]), 3);
        assert_eq!(coverage_of(&ss, &[0, 1]), 4);
        assert_eq!(coverage_of(&ss, &[0, 1, 2]), 5);
        assert_eq!(coverage_of(&ss, &[3]), 0);
        assert_eq!(coverage_of(&ss, &[]), 0);
    }

    #[test]
    fn coverage_ignores_overlap_double_count() {
        let ss = sample();
        // Sets 1 and 2 overlap on element 3.
        assert_eq!(coverage_of(&ss, &[1, 2]), 3);
    }

    #[test]
    fn coverage_of_repeated_choice_is_idempotent() {
        let ss = sample();
        assert_eq!(coverage_of(&ss, &[0, 0, 0]), 3);
    }

    #[test]
    fn frequencies() {
        let ss = sample();
        assert_eq!(element_frequencies(&ss), vec![1, 1, 2, 2, 1, 0]);
    }

    #[test]
    fn common_elements_thresholds() {
        let ss = sample();
        assert_eq!(common_elements(&ss, 2), vec![2, 3]);
        assert_eq!(common_elements(&ss, 1), vec![0, 1, 2, 3, 4]);
        assert!(common_elements(&ss, 3).is_empty());
    }

    #[test]
    fn stats() {
        let ss = sample();
        let st = CoverageStats::of(&ss);
        assert_eq!(st.n, 6);
        assert_eq!(st.m, 4);
        assert_eq!(st.total_edges, 7);
        assert_eq!(st.max_set_size, 3);
        assert_eq!(st.max_frequency, 2);
        assert_eq!(st.covered_elements, 5);
    }

    #[test]
    fn stats_of_empty_system() {
        let ss = SetSystem::new(0, vec![]);
        let st = CoverageStats::of(&ss);
        assert_eq!(st.max_frequency, 0);
        assert_eq!(st.covered_elements, 0);
    }
}
