//! Workload generators.
//!
//! Each generator returns a materialized [`crate::SetSystem`]; stream it
//! with [`crate::edge_stream`] in any arrival order. All generators are
//! seeded and deterministic.
//!
//! * [`uniform`] — Erdős–Rényi-style incidence: each (set, element) pair
//!   present independently, or fixed-size uniform sets.
//! * [`zipf`] — Zipfian set sizes and/or element popularity, the shape of
//!   real coverage corpora (documents × topics, neighborhoods in
//!   power-law graphs).
//! * [`planted`] — instances with a known planted optimal k-cover, so
//!   experiments have sharp ground truth at scales where exact search is
//!   infeasible.
//! * [`regimes`] — the three structural regimes distinguished by the
//!   paper's oracle case analysis (§4): many common elements
//!   (`LargeCommon`'s case), coverage dominated by few large sets
//!   (`LargeSet`'s case), coverage spread over many small sets
//!   (`SmallSet`'s case).
//! * [`disjointness`] — the §5 lower-bound instances: α-player Set
//!   Disjointness with the unique-intersection promise, reduced to
//!   `Max 1-Cover`.
//! * [`communities`] — overlapping-community corpora where coverage
//!   saturates (near-duplicate sets), stressing soundness.

pub mod communities;
pub mod disjointness;
pub mod greedy_trap;
pub mod planted;
pub mod regimes;
pub mod rmat;
pub mod uniform;
pub mod zipf;

pub use communities::community_sets;
pub use disjointness::{dsj_max_cover_instance, DsjInstance, DsjKind};
pub use greedy_trap::{greedy_trap, GreedyTrap};
pub use rmat::{rmat_incidence, RmatParams};
pub use planted::{planted_cover, PlantedInstance};
pub use regimes::{common_heavy, few_large, many_small};
pub use uniform::{uniform_fixed_size, uniform_incidence};
pub use zipf::{zipf_popularity, zipf_set_sizes};
