//! Lower-bound hard instances (paper §5).
//!
//! The `Ω(m/α²)` bound reduces the α-player Set Disjointness problem
//! `DSJ[m]` with the *unique intersection promise* to `Max 1-Cover`:
//!
//! * each player `i ∈ [α]` holds `T_i ⊆ [m]`;
//! * **Yes case**: the `T_i` are pairwise disjoint;
//! * **No case**: there is a unique item `j*` contained in *all* `T_i`
//!   (and the sets are otherwise disjoint).
//!
//! The reduction creates one element `e_i` per player and one set `S_j`
//! per item, with `e_i ∈ S_j ⟺ j ∈ T_i`. Claims 5.3/5.4: the optimal
//! 1-cover has size `α` in the No case (the set `S_{j*}` covers every
//! element) and size 1 in the Yes case (every `S_j` is a singleton). An
//! α-approximate estimator therefore distinguishes the cases, and
//! Theorem 5.1/Corollary 5.2 put the `Ω(m/α²)` price on that.

use kcov_hash::SplitMix64;

use crate::edge::Edge;
use crate::instance::SetSystem;

/// Which promise case to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsjKind {
    /// Pairwise-disjoint player sets: optimal 1-cover has size 1.
    Yes,
    /// A unique item common to all players: optimal 1-cover has size α.
    No,
}

/// A generated Set Disjointness instance together with its reduction.
#[derive(Debug, Clone)]
pub struct DsjInstance {
    /// Player sets `T_1, …, T_α` over items `[m]`.
    pub players: Vec<Vec<u32>>,
    /// The promise case.
    pub kind: DsjKind,
    /// The unique intersection item `j*` (No case only).
    pub spike: Option<u32>,
    /// The reduced `Max 1-Cover` instance: `n = α` elements (players),
    /// `m` sets (items).
    pub system: SetSystem,
}

impl DsjInstance {
    /// The edge stream of the reduction, partitioned by player — the
    /// order a one-way protocol delivers it (player 1's edges first,
    /// then player 2's, …).
    pub fn player_ordered_edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (i, t) in self.players.iter().enumerate() {
            for &j in t {
                out.push(Edge::new(j, i as u32));
            }
        }
        out
    }
}

/// Generate a `DSJ[m]` instance with `alpha` players where each player
/// holds about `items_per_player` items (drawn disjointly), plus the
/// common spike item in the No case.
pub fn dsj_max_cover_instance(
    m: usize,
    alpha: usize,
    items_per_player: usize,
    kind: DsjKind,
    seed: u64,
) -> DsjInstance {
    assert!(alpha >= 2, "need at least two players");
    assert!(
        alpha * items_per_player < m,
        "items do not fit: alpha*items+1 > m"
    );
    let mut rng = SplitMix64::new(seed);

    // A random permutation of items, carved into disjoint chunks.
    let mut perm: Vec<u32> = (0..m as u32).collect();
    for i in (1..m).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let spike_item = perm[alpha * items_per_player]; // outside all chunks
    let mut players: Vec<Vec<u32>> = (0..alpha)
        .map(|i| perm[i * items_per_player..(i + 1) * items_per_player].to_vec())
        .collect();
    let spike = match kind {
        DsjKind::Yes => None,
        DsjKind::No => {
            for t in players.iter_mut() {
                t.push(spike_item);
            }
            Some(spike_item)
        }
    };

    // Reduction: element e_i per player, set S_j per item.
    let mut sets = vec![Vec::new(); m];
    for (i, t) in players.iter().enumerate() {
        for &j in t {
            sets[j as usize].push(i as u32);
        }
    }
    DsjInstance {
        system: SetSystem::new(alpha, sets),
        players,
        kind,
        spike,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage_of;

    #[test]
    fn yes_case_all_sets_singletons() {
        // Claim 5.4: every set has cardinality <= 1 in the Yes case.
        let inst = dsj_max_cover_instance(100, 8, 10, DsjKind::Yes, 1);
        for j in 0..100 {
            assert!(inst.system.set(j).len() <= 1, "set {j} too large");
        }
        let best = (0..100).map(|j| coverage_of(&inst.system, &[j])).max().unwrap();
        assert_eq!(best, 1);
    }

    #[test]
    fn no_case_spike_covers_everything() {
        // Claim 5.3: the spike set covers all alpha elements.
        let inst = dsj_max_cover_instance(100, 8, 10, DsjKind::No, 2);
        let spike = inst.spike.unwrap() as usize;
        assert_eq!(coverage_of(&inst.system, &[spike]), 8);
        // And every other set is still a singleton.
        for j in 0..100 {
            if j != spike {
                assert!(inst.system.set(j).len() <= 1);
            }
        }
    }

    #[test]
    fn players_pairwise_disjoint_in_yes_case() {
        let inst = dsj_max_cover_instance(200, 10, 15, DsjKind::Yes, 3);
        let mut seen = std::collections::HashSet::new();
        for t in &inst.players {
            for &j in t {
                assert!(seen.insert(j), "item {j} shared between players");
            }
        }
    }

    #[test]
    fn no_case_intersection_is_exactly_the_spike() {
        let inst = dsj_max_cover_instance(200, 10, 15, DsjKind::No, 4);
        let spike = inst.spike.unwrap();
        let mut counts = std::collections::HashMap::new();
        for t in &inst.players {
            for &j in t {
                *counts.entry(j).or_insert(0u32) += 1;
            }
        }
        for (j, c) in counts {
            if j == spike {
                assert_eq!(c, 10, "spike must be in all players");
            } else {
                assert_eq!(c, 1, "item {j} in {c} players");
            }
        }
    }

    #[test]
    fn player_ordered_edges_cover_all_incidences() {
        let inst = dsj_max_cover_instance(60, 4, 8, DsjKind::No, 5);
        let edges = inst.player_ordered_edges();
        assert_eq!(edges.len(), 4 * 8 + 4); // chunk items + spike per player
        let rebuilt = SetSystem::from_edges(4, 60, &edges);
        assert_eq!(&rebuilt, &inst.system);
    }

    #[test]
    fn gap_is_alpha() {
        // The Yes/No optimal 1-cover sizes differ by exactly alpha.
        let alpha = 12;
        let yes = dsj_max_cover_instance(200, alpha, 10, DsjKind::Yes, 6);
        let no = dsj_max_cover_instance(200, alpha, 10, DsjKind::No, 6);
        let best = |s: &SetSystem| (0..s.num_sets()).map(|j| coverage_of(s, &[j])).max().unwrap();
        assert_eq!(best(&yes.system), 1);
        assert_eq!(best(&no.system), alpha);
    }

    #[test]
    #[should_panic(expected = "items do not fit")]
    fn oversubscribed_items_rejected() {
        let _ = dsj_max_cover_instance(10, 4, 5, DsjKind::Yes, 1);
    }
}
