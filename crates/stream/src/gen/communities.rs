//! Overlapping-community workloads.
//!
//! Real coverage corpora (social graphs, topic models) are clustered:
//! elements belong to communities and sets draw most members from one
//! community plus background noise. Coverage then saturates quickly
//! inside a community — a stress test for the estimator's never-
//! overestimate side (many near-duplicate sets) and the regime where
//! greedy's marginal gains collapse.

use kcov_hash::SplitMix64;

use crate::instance::SetSystem;

/// `num_communities` equal element blocks; each set picks a home
/// community, takes `within` uniform members from it and `noise`
/// uniform members from the whole universe.
pub fn community_sets(
    n: usize,
    m: usize,
    num_communities: usize,
    within: usize,
    noise: usize,
    seed: u64,
) -> SetSystem {
    assert!(num_communities >= 1, "need at least one community");
    assert!(n >= num_communities, "n must be >= communities");
    let block = n / num_communities;
    assert!(within <= block, "within-degree exceeds community size");
    let mut rng = SplitMix64::new(seed);
    let mut sets = Vec::with_capacity(m);
    for _ in 0..m {
        let c = rng.next_below(num_communities as u64) as usize;
        let lo = c * block;
        let mut members = Vec::with_capacity(within + noise);
        for _ in 0..within {
            members.push(lo as u32 + rng.next_below(block as u64) as u32);
        }
        for _ in 0..noise {
            members.push(rng.next_below(n as u64) as u32);
        }
        sets.push(members);
    }
    SetSystem::new(n, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage_of;

    #[test]
    fn members_concentrate_in_home_community() {
        let ss = community_sets(1000, 50, 10, 30, 2, 1);
        for i in 0..50 {
            let members = ss.set(i);
            assert!(!members.is_empty());
            // Find the densest block; most members must be inside it.
            let mut counts = [0usize; 10];
            for &e in members {
                counts[(e / 100) as usize] += 1;
            }
            let best = counts.iter().max().unwrap();
            assert!(
                *best * 10 >= members.len() * 8,
                "set {i} not concentrated: {counts:?}"
            );
        }
    }

    #[test]
    fn coverage_saturates_within_community() {
        // Many sets crowded into two communities overlap heavily: the
        // union is far below the sum of the sizes (~20 sets of 100 in a
        // 500-element block can cover at most the block).
        let ss = community_sets(1000, 40, 2, 100, 0, 3);
        let chosen: Vec<usize> = (0..40).collect();
        let total: usize = chosen.iter().map(|&i| ss.set(i).len()).sum();
        let cov = coverage_of(&ss, &chosen);
        assert!(cov * 2 < total, "no saturation: cov {cov} vs total {total}");
        assert!(cov <= 1000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            community_sets(200, 20, 4, 10, 1, 9),
            community_sets(200, 20, 4, 10, 1, 9)
        );
    }

    #[test]
    #[should_panic(expected = "within-degree exceeds community size")]
    fn oversized_within_rejected() {
        let _ = community_sets(100, 5, 10, 20, 0, 1);
    }
}
