//! R-MAT-style bipartite incidence generator (Chakrabarti–Zhan–
//! Faloutsos): recursively biased quadrant descent produces the
//! power-law degree distributions *on both sides* (set sizes and
//! element frequencies) seen in real web/social/term-document corpora —
//! skew that the uniform and Zipf generators only produce one side at a
//! time.

use kcov_hash::SplitMix64;

use crate::edge::Edge;
use crate::instance::SetSystem;

/// R-MAT quadrant probabilities. Must be positive and sum to ≤ 1; the
/// remainder goes to the fourth quadrant (`d = 1 − a − b − c`).
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left (hub-hub) probability.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
}

impl Default for RmatParams {
    /// The canonical skewed setting (a = 0.57).
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generate `edges` incidences over `m` sets × `n` elements (rounded up
/// to powers of two internally, then rejected back into range).
/// Duplicate incidences collapse, so the resulting system can have
/// fewer than `edges` distinct pairs.
pub fn rmat_incidence(
    n: usize,
    m: usize,
    edges: usize,
    params: RmatParams,
    seed: u64,
) -> SetSystem {
    assert!(n >= 1 && m >= 1, "need n, m >= 1");
    let RmatParams { a, b, c } = params;
    assert!(a > 0.0 && b > 0.0 && c > 0.0, "probabilities must be positive");
    let d = 1.0 - a - b - c;
    assert!(d > 0.0, "a + b + c must be < 1");
    let set_bits = (m.next_power_of_two()).trailing_zeros();
    let elem_bits = (n.next_power_of_two()).trailing_zeros();
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(edges);
    while out.len() < edges {
        // Descend set bits and element bits simultaneously: at each
        // level pick a quadrant (set-bit, elem-bit) with (a, b, c, d).
        let mut set = 0u32;
        let mut elem = 0u32;
        for level in 0..set_bits.max(elem_bits) {
            let u = rng.next_f64();
            let (sb, eb) = if u < a {
                (0, 0)
            } else if u < a + b {
                (0, 1)
            } else if u < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            if level < set_bits {
                set = (set << 1) | sb;
            }
            if level < elem_bits {
                elem = (elem << 1) | eb;
            }
        }
        if (set as usize) < m && (elem as usize) < n {
            out.push(Edge::new(set, elem));
        }
    }
    SetSystem::from_edges(n, m, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::element_frequencies;

    #[test]
    fn dimensions_and_edge_budget() {
        let ss = rmat_incidence(1000, 500, 8000, RmatParams::default(), 1);
        assert_eq!(ss.num_elements(), 1000);
        assert_eq!(ss.num_sets(), 500);
        // Duplicates collapse, so at most the budget.
        assert!(ss.total_edges() <= 8000);
        assert!(ss.total_edges() > 4000, "too many duplicates: {}", ss.total_edges());
    }

    #[test]
    fn both_sides_are_skewed() {
        let ss = rmat_incidence(2048, 2048, 60_000, RmatParams::default(), 3);
        // Set sizes: max far above mean.
        let sizes: Vec<usize> = (0..ss.num_sets()).map(|i| ss.set(i).len()).collect();
        let mean_size = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max_size = *sizes.iter().max().unwrap() as f64;
        assert!(
            max_size > 8.0 * mean_size,
            "set sizes not skewed: max {max_size} mean {mean_size}"
        );
        // Element frequencies: same.
        let freq = element_frequencies(&ss);
        let mean_f = freq.iter().map(|&f| f as f64).sum::<f64>() / freq.len() as f64;
        let max_f = *freq.iter().max().unwrap() as f64;
        assert!(
            max_f > 8.0 * mean_f,
            "frequencies not skewed: max {max_f} mean {mean_f}"
        );
    }

    #[test]
    fn uniform_quadrants_give_unskewed_output() {
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let ss = rmat_incidence(1024, 1024, 30_000, params, 5);
        let sizes: Vec<usize> = (0..1024).map(|i| ss.set(i).len()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / 1024.0;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max < 4.0 * mean, "uniform RMAT too skewed: max {max} mean {mean}");
    }

    #[test]
    fn deterministic() {
        let a = rmat_incidence(100, 100, 500, RmatParams::default(), 9);
        let b = rmat_incidence(100, 100, 500, RmatParams::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "a + b + c must be < 1")]
    fn overfull_probabilities_rejected() {
        let _ = rmat_incidence(10, 10, 10, RmatParams { a: 0.5, b: 0.3, c: 0.3 }, 1);
    }
}
