//! Uniform random set systems.

use kcov_hash::SplitMix64;

use crate::instance::SetSystem;

/// Each of the `m × n` incidences is present independently with
/// probability `p`.
pub fn uniform_incidence(n: usize, m: usize, p: f64, seed: u64) -> SetSystem {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SplitMix64::new(seed);
    let mut sets = Vec::with_capacity(m);
    for _ in 0..m {
        let mut s = Vec::new();
        if p >= 0.2 {
            // Dense: direct Bernoulli per element.
            for e in 0..n {
                if rng.next_f64() < p {
                    s.push(e as u32);
                }
            }
        } else if p > 0.0 {
            // Sparse: geometric skipping.
            let log1mp = (1.0 - p).ln();
            let mut e = 0f64;
            loop {
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                e += (u.ln() / log1mp).floor() + 1.0;
                if e > n as f64 {
                    break;
                }
                s.push(e as u32 - 1);
            }
        }
        sets.push(s);
    }
    SetSystem::new(n, sets)
}

/// `m` sets, each a uniform random subset of exactly `size` elements.
pub fn uniform_fixed_size(n: usize, m: usize, size: usize, seed: u64) -> SetSystem {
    assert!(size <= n, "set size cannot exceed n");
    let mut rng = SplitMix64::new(seed);
    let mut sets = Vec::with_capacity(m);
    for _ in 0..m {
        sets.push(sample_without_replacement(n, size, &mut rng));
    }
    SetSystem::new(n, sets)
}

/// Floyd's algorithm: uniform `size`-subset of `[0, n)`.
pub(crate) fn sample_without_replacement(n: usize, size: usize, rng: &mut SplitMix64) -> Vec<u32> {
    debug_assert!(size <= n);
    let mut chosen = std::collections::HashSet::with_capacity(size);
    let mut out = Vec::with_capacity(size);
    for j in (n - size)..n {
        let t = rng.next_below(j as u64 + 1) as u32;
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j as u32);
            out.push(j as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::element_frequencies;

    #[test]
    fn incidence_dimensions() {
        let ss = uniform_incidence(100, 20, 0.1, 1);
        assert_eq!(ss.num_elements(), 100);
        assert_eq!(ss.num_sets(), 20);
    }

    #[test]
    fn incidence_density_close_to_p() {
        let (n, m, p) = (500usize, 100usize, 0.05f64);
        let ss = uniform_incidence(n, m, p, 7);
        let density = ss.total_edges() as f64 / (n * m) as f64;
        assert!(
            (density - p).abs() < 0.01,
            "density {density} far from p {p}"
        );
    }

    #[test]
    fn sparse_and_dense_paths_agree_statistically() {
        // p = 0.25 uses the dense path, p = 0.15 the sparse path; both
        // should land near their nominal density.
        let dense = uniform_incidence(400, 50, 0.25, 3);
        let sparse = uniform_incidence(400, 50, 0.15, 3);
        let d1 = dense.total_edges() as f64 / (400.0 * 50.0);
        let d2 = sparse.total_edges() as f64 / (400.0 * 50.0);
        assert!((d1 - 0.25).abs() < 0.02, "dense density {d1}");
        assert!((d2 - 0.15).abs() < 0.02, "sparse density {d2}");
    }

    #[test]
    fn zero_probability_gives_empty_sets() {
        let ss = uniform_incidence(50, 10, 0.0, 1);
        assert_eq!(ss.total_edges(), 0);
    }

    #[test]
    fn full_probability_gives_complete_sets() {
        let ss = uniform_incidence(20, 5, 1.0, 1);
        assert_eq!(ss.total_edges(), 100);
    }

    #[test]
    fn fixed_size_sets_have_exact_size() {
        let ss = uniform_fixed_size(100, 30, 12, 9);
        for i in 0..30 {
            assert_eq!(ss.set(i).len(), 12, "set {i}");
        }
    }

    #[test]
    fn fixed_size_elements_roughly_uniform() {
        let ss = uniform_fixed_size(50, 400, 10, 11);
        let freq = element_frequencies(&ss);
        // Expected frequency 400*10/50 = 80 per element.
        for (e, &f) in freq.iter().enumerate() {
            assert!(
                (40..=130).contains(&(f as i32)),
                "element {e} frequency {f} far from 80"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            uniform_incidence(30, 10, 0.3, 5),
            uniform_incidence(30, 10, 0.3, 5)
        );
        assert_ne!(
            uniform_incidence(30, 10, 0.3, 5),
            uniform_incidence(30, 10, 0.3, 6)
        );
    }

    #[test]
    fn floyd_sampling_is_uniform_subset() {
        let mut rng = SplitMix64::new(13);
        for _ in 0..100 {
            let s = sample_without_replacement(20, 7, &mut rng);
            assert_eq!(s.len(), 7);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicates in {s:?}");
            assert!(sorted.iter().all(|&e| e < 20));
        }
    }
}
