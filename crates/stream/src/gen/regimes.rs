//! Generators for the three structural regimes of the paper's oracle
//! case analysis (§4):
//!
//! 1. **Common-heavy** — some `β ≤ α` has many `βk`-common elements
//!    (case I, handled by `LargeCommon` / multi-layered set sampling).
//! 2. **Few-large** — an optimal solution's coverage is dominated by a
//!    few sets, each contributing `≥ |C(OPT)|/(sα)` (case II, handled by
//!    `LargeSet` / heavy hitters on superset loads).
//! 3. **Many-small** — an optimal solution consists of many sets of
//!    comparable small contribution (case III, handled by `SmallSet` /
//!    set + element sampling).

use kcov_hash::SplitMix64;

use crate::instance::SetSystem;

use super::uniform::sample_without_replacement;

/// Regime I: a pool of `n/4` *common* elements each belonging to roughly
/// half of all sets, plus rare filler. Any small random collection of
/// sets already covers the common pool, so set sampling succeeds.
pub fn common_heavy(n: usize, m: usize, seed: u64) -> SetSystem {
    assert!(n >= 8 && m >= 4, "instance too small");
    let mut rng = SplitMix64::new(seed);
    let common = n / 4;
    let mut sets = Vec::with_capacity(m);
    for _ in 0..m {
        let mut s = Vec::new();
        for e in 0..common {
            if rng.next_f64() < 0.5 {
                s.push(e as u32);
            }
        }
        // A couple of rare elements outside the common pool.
        for _ in 0..2 {
            s.push(common as u64 as u32 + rng.next_below((n - common) as u64) as u32);
        }
        sets.push(s);
    }
    SetSystem::new(n, sets)
}

/// Regime II: `num_large` pairwise-disjoint large sets of size
/// `large_size` on a dedicated region, plus `m − num_large` tiny decoys
/// (size 2) confined to a small tail region so element frequencies stay
/// low outside the decoy tail. The optimum of `Max k-Cover` for any
/// `k ≥ num_large` is dominated by the large sets.
pub fn few_large(
    n: usize,
    m: usize,
    num_large: usize,
    large_size: usize,
    seed: u64,
) -> SetSystem {
    assert!(num_large >= 1 && num_large < m, "need 1 <= num_large < m");
    assert!(
        num_large * large_size <= n * 3 / 4,
        "large sets must fit in 3/4 of the universe"
    );
    let mut rng = SplitMix64::new(seed);
    let mut sets = Vec::with_capacity(m);
    for i in 0..num_large {
        let lo = (i * large_size) as u32;
        sets.push((lo..lo + large_size as u32).collect());
    }
    // Decoys live in the last quarter of the universe.
    let tail_lo = n * 3 / 4;
    let tail = n - tail_lo;
    for _ in num_large..m {
        let a = tail_lo as u32 + rng.next_below(tail as u64) as u32;
        let b = tail_lo as u32 + rng.next_below(tail as u64) as u32;
        sets.push(vec![a, b]);
    }
    SetSystem::new(n, sets)
}

/// Regime III: `k_opt` pairwise-disjoint small sets of size
/// `n·fraction/k_opt` forming the planted optimum, plus decoys of the
/// same size drawn from the planted region (adding no new coverage).
/// All element frequencies stay `O(m·size/n)` — no common elements — so
/// neither set sampling nor heavy hitters can shortcut the instance.
pub fn many_small(n: usize, m: usize, k_opt: usize, fraction: f64, seed: u64) -> SetSystem {
    assert!(k_opt >= 1 && k_opt <= m, "need 1 <= k_opt <= m");
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let covered = ((n as f64 * fraction) as usize).max(k_opt).min(n);
    let size = (covered / k_opt).max(1);
    let mut rng = SplitMix64::new(seed);
    let mut sets = Vec::with_capacity(m);
    for i in 0..k_opt {
        let lo = (i * size) as u32;
        let hi = ((i + 1) * size).min(covered) as u32;
        sets.push((lo..hi).collect());
    }
    for _ in k_opt..m {
        sets.push(sample_without_replacement(covered, size.min(covered), &mut rng));
    }
    SetSystem::new(n, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::{coverage_of, element_frequencies};

    #[test]
    fn common_heavy_has_high_frequency_head() {
        let ss = common_heavy(400, 200, 1);
        let freq = element_frequencies(&ss);
        let common = 100;
        // Common pool elements appear in ~half the sets.
        let head_min = freq[..common].iter().copied().min().unwrap();
        assert!(head_min > 60, "common element too rare: {head_min}");
        // Tail elements are rare.
        let tail_max = freq[common..].iter().copied().max().unwrap();
        assert!(tail_max < 20, "tail element too common: {tail_max}");
    }

    #[test]
    fn common_heavy_small_collections_cover_the_pool() {
        let ss = common_heavy(400, 200, 2);
        // 16 arbitrary sets should cover nearly all 100 common elements:
        // each misses a given element w.p. 2^-16.
        let chosen: Vec<usize> = (0..16).collect();
        let mut covered = vec![false; 400];
        for &i in &chosen {
            for &e in ss.set(i) {
                covered[e as usize] = true;
            }
        }
        let pool_covered = covered[..100].iter().filter(|&&c| c).count();
        assert!(pool_covered >= 99, "only {pool_covered}/100 common covered");
    }

    #[test]
    fn few_large_structure() {
        let ss = few_large(1000, 100, 3, 200, 5);
        assert_eq!(ss.set(0).len(), 200);
        assert_eq!(ss.set(1).len(), 200);
        assert_eq!(ss.set(2).len(), 200);
        // Large sets are disjoint.
        assert_eq!(coverage_of(&ss, &[0, 1, 2]), 600);
        // Decoys are tiny.
        for i in 3..100 {
            assert!(ss.set(i).len() <= 2);
        }
    }

    #[test]
    fn few_large_optimum_dominated_by_large_sets() {
        let ss = few_large(1000, 100, 3, 200, 7);
        // k = 10: the 3 large sets give 600; the 7 best decoys add <= 14.
        let large_cov = coverage_of(&ss, &[0, 1, 2]);
        assert!(large_cov as f64 / (large_cov + 14) as f64 > 0.97);
    }

    #[test]
    fn many_small_planted_sets_disjoint_and_small() {
        let ss = many_small(1000, 200, 50, 0.8, 3);
        let planted: Vec<usize> = (0..50).collect();
        let cov = coverage_of(&ss, &planted);
        assert_eq!(cov, 50 * 16); // size = 800/50 = 16
        for i in 0..50 {
            assert_eq!(ss.set(i).len(), 16);
        }
    }

    #[test]
    fn many_small_has_no_common_elements() {
        let ss = many_small(1000, 200, 50, 0.8, 3);
        let freq = element_frequencies(&ss);
        let max_f = freq.iter().copied().max().unwrap();
        // Expected decoy frequency: 150 decoys × 16/800 = 3; planted adds 1.
        assert!(max_f < 20, "max frequency {max_f} too common for regime III");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(common_heavy(100, 50, 9), common_heavy(100, 50, 9));
        assert_eq!(few_large(400, 40, 2, 80, 9), few_large(400, 40, 2, 80, 9));
        assert_eq!(
            many_small(400, 40, 10, 0.5, 9),
            many_small(400, 40, 10, 0.5, 9)
        );
    }
}
