//! Planted-optimum instances: the optimal k-cover is known by
//! construction, giving sharp ground truth at scales where exact search
//! is infeasible.

use kcov_hash::SplitMix64;

use crate::instance::SetSystem;

/// A set system together with its planted solution.
#[derive(Debug, Clone)]
pub struct PlantedInstance {
    /// The instance.
    pub system: SetSystem,
    /// Indices of the k planted sets.
    pub planted: Vec<usize>,
    /// Exact coverage of the planted sets (which is the optimum whenever
    /// `decoy_size·k < planted coverage`, as guaranteed by construction).
    pub planted_coverage: usize,
}

/// Plant `k` disjoint sets that jointly cover the first
/// `⌊coverage_fraction·n⌋` elements, then add `m − k` decoy sets of size
/// `decoy_size` drawn uniformly from a decoy pool.
///
/// The decoy pool is restricted to the planted region so decoys add no
/// new coverage: any k-cover that is not (essentially) the planted one
/// covers strictly less. This makes `planted_coverage` the exact optimum
/// as long as `decoy_size ≤ planted set size` (asserted).
pub fn planted_cover(
    n: usize,
    m: usize,
    k: usize,
    coverage_fraction: f64,
    decoy_size: usize,
    seed: u64,
) -> PlantedInstance {
    assert!(k >= 1 && k <= m, "need 1 <= k <= m");
    assert!((0.0..=1.0).contains(&coverage_fraction), "fraction in [0,1]");
    let covered = ((n as f64 * coverage_fraction) as usize).max(k).min(n);
    let per_set = covered / k;
    assert!(per_set >= 1, "planted sets would be empty");
    assert!(
        decoy_size <= per_set,
        "decoys must not dominate planted sets (decoy {decoy_size} > planted {per_set})"
    );
    let mut rng = SplitMix64::new(seed);

    let mut sets: Vec<Vec<u32>> = Vec::with_capacity(m);
    // Planted sets: a partition of [0, covered) into k runs.
    for i in 0..k {
        let lo = i * per_set;
        let hi = if i + 1 == k { covered } else { (i + 1) * per_set };
        sets.push((lo as u32..hi as u32).collect());
    }
    let planted_coverage = covered;
    // Decoys: uniform subsets of the planted region.
    for _ in k..m {
        let mut s = Vec::with_capacity(decoy_size);
        for _ in 0..decoy_size {
            s.push(rng.next_below(covered as u64) as u32);
        }
        sets.push(s);
    }
    // Shuffle set order so the planted sets are not the first k ids.
    let mut perm: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let mut shuffled = vec![Vec::new(); m];
    let mut planted = Vec::with_capacity(k);
    for (orig, &target) in perm.iter().enumerate() {
        shuffled[target] = std::mem::take(&mut sets[orig]);
        if orig < k {
            planted.push(target);
        }
    }
    planted.sort_unstable();

    PlantedInstance {
        system: SetSystem::new(n, shuffled),
        planted,
        planted_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage_of;

    #[test]
    fn planted_sets_cover_exactly_the_claimed_amount() {
        let inst = planted_cover(1000, 50, 5, 0.8, 20, 1);
        assert_eq!(inst.planted.len(), 5);
        assert_eq!(
            coverage_of(&inst.system, &inst.planted),
            inst.planted_coverage
        );
        assert_eq!(inst.planted_coverage, 800);
    }

    #[test]
    fn decoys_are_dominated() {
        let inst = planted_cover(500, 40, 4, 0.6, 10, 7);
        // Any 4 decoy sets cover at most 4·10 = 40 < 300.
        let decoys: Vec<usize> = (0..40).filter(|i| !inst.planted.contains(i)).take(4).collect();
        assert!(coverage_of(&inst.system, &decoys) <= 40);
    }

    #[test]
    fn planted_is_optimal_brute_force_small() {
        // Small instance: verify the planted solution is optimal by
        // exhaustive search over all k-subsets.
        let inst = planted_cover(40, 8, 2, 0.9, 5, 3);
        let m = inst.system.num_sets();
        let mut best = 0;
        for a in 0..m {
            for b in (a + 1)..m {
                best = best.max(coverage_of(&inst.system, &[a, b]));
            }
        }
        assert_eq!(best, inst.planted_coverage);
    }

    #[test]
    fn set_ids_are_shuffled() {
        // Across seeds, the planted ids should not always be 0..k.
        let mut ever_nontrivial = false;
        for seed in 0..5u64 {
            let inst = planted_cover(100, 20, 3, 0.5, 5, seed);
            if inst.planted != vec![0, 1, 2] {
                ever_nontrivial = true;
            }
        }
        assert!(ever_nontrivial, "planted ids never shuffled");
    }

    #[test]
    fn deterministic() {
        let a = planted_cover(200, 30, 4, 0.7, 10, 9);
        let b = planted_cover(200, 30, 4, 0.7, 10, 9);
        assert_eq!(a.system, b.system);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    #[should_panic(expected = "decoys must not dominate")]
    fn oversized_decoys_rejected() {
        let _ = planted_cover(100, 10, 5, 0.5, 50, 1);
    }
}
