//! The tight `(1 − 1/e)` hard instances for greedy.
//!
//! The classic construction: the optimum is `k` disjoint "column" sets
//! of size `w` each (coverage `k·w`); greedy is lured by "row" sets
//! engineered so its i-th pick covers exactly a `1/k` fraction of what
//! remains of every column. After `k` picks greedy covers
//! `k·w·(1 − (1 − 1/k)^k) → (1 − 1/e)·OPT`. Used to verify the greedy
//! baseline's bound is *tight* (not just valid) and as an adversarial
//! workload for the streaming algorithms.

use crate::instance::SetSystem;

/// A greedy-trap instance with its parameters.
#[derive(Debug, Clone)]
pub struct GreedyTrap {
    /// The instance; sets `0..k` are the optimal columns, sets
    /// `k..2k` are the trap rows (in greedy's pick order).
    pub system: SetSystem,
    /// The optimal coverage (`k · w`).
    pub optimal: usize,
    /// Number of columns (= the cover budget the trap is tuned for).
    pub k: usize,
}

/// Build the trap with `k` columns of `w` elements each. `w` should be
/// a multiple of `k^k`-ish for exact fractions; we use rounding and the
/// trap stays asymptotically tight. Universe size is `k·w`.
pub fn greedy_trap(k: usize, w: usize) -> GreedyTrap {
    assert!(k >= 2, "need k >= 2");
    assert!(w >= k, "columns must have at least k elements");
    // Universe: k columns of w elements, plus k private "tie-breaker"
    // elements (one per row) that make each row *strictly* larger than
    // any column at its step — a tie would let greedy legally pick a
    // column and escape.
    let n = k * w + k;
    // Element (c, j) = column c, position j → id c·w + j.
    let mut sets: Vec<Vec<u32>> = Vec::with_capacity(2 * k);
    // Columns: the planted optimum.
    for c in 0..k {
        sets.push(((c * w) as u32..((c + 1) * w) as u32).collect());
    }
    // Rows: row i takes, from every column, the next `remaining/k`
    // positions (gain (1/k)·remaining per column), plus its private
    // tie-breaker.
    let mut taken = vec![0usize; k]; // positions consumed per column
    for i in 0..k {
        let mut row = Vec::new();
        for (c, t) in taken.iter_mut().enumerate() {
            let remaining = w - *t;
            let take = remaining.div_ceil(k);
            for j in 0..take.min(remaining) {
                row.push((c * w + *t + j) as u32);
            }
            *t += take.min(remaining);
        }
        row.push((k * w + i) as u32);
        sets.push(row);
    }
    GreedyTrap {
        system: SetSystem::new(n, sets),
        optimal: k * w,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage_of;

    #[test]
    fn columns_are_optimal() {
        let trap = greedy_trap(4, 256);
        let cols: Vec<usize> = (0..4).collect();
        assert_eq!(coverage_of(&trap.system, &cols), trap.optimal);
    }

    #[test]
    fn rows_tempt_greedy() {
        // The first row must be at least as large as any column.
        let trap = greedy_trap(4, 256);
        let first_row = trap.system.set(4).len();
        let col = trap.system.set(0).len();
        assert!(first_row > col, "row {first_row} vs column {col}");
    }

    #[test]
    fn rows_cover_strictly_less_than_optimal() {
        let trap = greedy_trap(5, 625);
        let rows: Vec<usize> = (5..10).collect();
        let row_cov = coverage_of(&trap.system, &rows) as f64;
        let bound = (1.0 - (1.0 - 1.0 / 5.0f64).powi(5)) * trap.optimal as f64;
        // Rows cover ≈ (1 - (1-1/k)^k)·OPT (within rounding).
        assert!(
            (row_cov - bound).abs() / bound < 0.05,
            "row coverage {row_cov} vs theoretical {bound}"
        );
    }

    #[test]
    fn greedy_trap_is_near_tight_for_large_k() {
        // At k = 8 the ratio approaches 1 - 1/e ≈ 0.632 from above.
        let trap = greedy_trap(8, 4096);
        let rows: Vec<usize> = (8..16).collect();
        let ratio = coverage_of(&trap.system, &rows) as f64 / trap.optimal as f64;
        assert!(ratio < 0.70, "ratio {ratio} not trap-like");
        assert!(ratio > 0.60, "ratio {ratio} below the greedy bound");
    }

    #[test]
    #[should_panic(expected = "need k >= 2")]
    fn tiny_k_rejected() {
        let _ = greedy_trap(1, 10);
    }
}
