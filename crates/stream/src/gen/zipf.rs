//! Zipfian workloads: power-law set sizes and element popularity, the
//! shape of the corpora motivating streaming coverage (documents × words,
//! blog-watch topics [37], neighborhoods of power-law graphs).

use kcov_hash::SplitMix64;

use crate::instance::SetSystem;

/// Sets whose sizes follow a Zipf law: the i-th largest set has size
/// `≈ max_size / (i+1)^exponent` (at least 1), members uniform.
pub fn zipf_set_sizes(n: usize, m: usize, max_size: usize, exponent: f64, seed: u64) -> SetSystem {
    assert!(max_size <= n, "max size cannot exceed n");
    assert!(exponent >= 0.0, "exponent must be non-negative");
    let mut rng = SplitMix64::new(seed);
    let mut sets = Vec::with_capacity(m);
    for i in 0..m {
        let size = ((max_size as f64 / ((i + 1) as f64).powf(exponent)).round() as usize)
            .clamp(1, max_size);
        sets.push(super::uniform::sample_without_replacement(n, size, &mut rng));
    }
    SetSystem::new(n, sets)
}

/// Sets of fixed size whose members follow a Zipfian popularity law:
/// element `e` is drawn with probability `∝ 1/(e+1)^exponent`. Produces
/// skewed element frequencies (a few very common elements), the regime
/// where the paper's set-sampling subroutine shines.
pub fn zipf_popularity(n: usize, m: usize, set_size: usize, exponent: f64, seed: u64) -> SetSystem {
    assert!(set_size <= n, "set size cannot exceed n");
    assert!(exponent >= 0.0, "exponent must be non-negative");
    let mut rng = SplitMix64::new(seed);
    // Cumulative Zipf weights for inverse-transform sampling.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for e in 0..n {
        acc += 1.0 / ((e + 1) as f64).powf(exponent);
        cum.push(acc);
    }
    let total = acc;
    let mut sets = Vec::with_capacity(m);
    for _ in 0..m {
        let mut members = std::collections::HashSet::with_capacity(set_size);
        // Rejection loop; bounded since set_size <= n.
        let mut guard = 0usize;
        while members.len() < set_size {
            let u = rng.next_f64() * total;
            let e = cum.partition_point(|&c| c < u).min(n - 1);
            members.insert(e as u32);
            guard += 1;
            if guard > 1000 * set_size + 1000 {
                // Pathologically skewed distributions: fill with the
                // lowest-index unused elements to terminate.
                for cand in 0..n as u32 {
                    if members.len() >= set_size {
                        break;
                    }
                    members.insert(cand);
                }
            }
        }
        sets.push(members.into_iter().collect());
    }
    SetSystem::new(n, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::element_frequencies;

    #[test]
    fn set_sizes_follow_zipf() {
        let ss = zipf_set_sizes(1000, 50, 400, 1.0, 3);
        assert_eq!(ss.set(0).len(), 400);
        assert_eq!(ss.set(1).len(), 200);
        assert_eq!(ss.set(3).len(), 100);
        // Tail sets are small but non-empty.
        assert!(!ss.set(49).is_empty());
    }

    #[test]
    fn exponent_zero_gives_equal_sizes() {
        let ss = zipf_set_sizes(100, 10, 30, 0.0, 1);
        for i in 0..10 {
            assert_eq!(ss.set(i).len(), 30);
        }
    }

    #[test]
    fn popularity_skews_frequencies() {
        let ss = zipf_popularity(200, 100, 10, 1.2, 5);
        let freq = element_frequencies(&ss);
        // Element 0 must be far more common than the median element.
        let mut sorted = freq.clone();
        sorted.sort_unstable();
        let median = sorted[100];
        assert!(
            freq[0] as f64 > 3.0 * (median.max(1) as f64),
            "freq[0] = {} median = {median}",
            freq[0]
        );
    }

    #[test]
    fn popularity_sets_have_requested_size() {
        let ss = zipf_popularity(50, 20, 8, 1.0, 7);
        for i in 0..20 {
            assert_eq!(ss.set(i).len(), 8);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(zipf_set_sizes(100, 10, 40, 1.0, 2), zipf_set_sizes(100, 10, 40, 1.0, 2));
        assert_eq!(
            zipf_popularity(100, 10, 5, 1.0, 2),
            zipf_popularity(100, 10, 5, 1.0, 2)
        );
    }

    #[test]
    fn extreme_exponent_terminates() {
        // Huge exponent concentrates almost all mass on element 0; the
        // guard must still terminate with full-size sets.
        let ss = zipf_popularity(20, 5, 10, 8.0, 11);
        for i in 0..5 {
            assert_eq!(ss.set(i).len(), 10);
        }
    }
}
