//! # kcov-obs — zero-dependency structured observability
//!
//! One instrumentation spine for the whole workspace: a cheap clonable
//! [`Recorder`] handle that collects **counters**, **gauges**, and
//! structured **events** (with monotonic [`PhaseSpan`] timing), renders
//! them as an NDJSON event log or a human summary table — and whose
//! disabled form is a `None` behind an `Option`, so every probe
//! early-returns on a single branch and the determinism and merge
//! contracts of the estimator stack are untouched.
//!
//! Design rules enforced across the workspace:
//!
//! * **No locks on per-edge paths.** Sketches maintain plain `u64`
//!   rare-event counters (evictions, prunes, level rises, merges) next
//!   to the branches where those events already happen; the counters
//!   are *harvested* into a `Recorder` once, at finalize, as
//!   [`SketchStats`] snapshots. The shared sink is only touched at
//!   phase boundaries (ingest / merge / finalize), never per item.
//! * **Observation never perturbs results.** The recorder is a pure
//!   side channel: nothing in the estimator reads it back, replicas
//!   cloned for sharded ingestion share the same sink but only write
//!   to it from the coordinating thread, and the disabled handle makes
//!   every probe a no-op.
//! * **Zero dependencies.** NDJSON rendering, escaping, and the
//!   [`json`] parser used by the bench emitters and CI validation are
//!   hand-rolled over `std`.

pub mod json;

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A dynamically typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (estimates, rates).
    F64(f64),
    /// String (names, labels).
    Str(String),
    /// Boolean (flags).
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    fn render_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_json_f64(out, *v),
            Value::Str(s) => push_json_str(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 prints the shortest representation that
        // round-trips, and never produces NaN/Inf here.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{:.1}", v));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // NDJSON must stay valid JSON: encode non-finite as null.
        out.push_str("null");
    }
}

/// One structured event: a kind plus ordered key/value fields, stamped
/// with a monotone per-recorder sequence number.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number (order of emission).
    pub seq: u64,
    /// Event kind (`"phase"`, `"lane"`, `"subroutine"`, `"sketch"`,
    /// `"shard"`, `"summary"`, …).
    pub kind: String,
    /// Ordered fields as emitted.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Render this event as one NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"kind\":");
        push_json_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            v.render_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `U64` field, if present and of that type.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// An `F64` field, if present and of that type.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key) {
            Some(Value::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// A `Str` field, if present and of that type.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    events: Vec<Event>,
    seq: u64,
}

/// A cheap clonable recorder handle. The default (and
/// [`Recorder::disabled`]) form carries no state: every probe is a
/// single `Option` branch, no allocation, no lock. The enabled form
/// shares one mutex-guarded sink across clones, so estimator replicas
/// moved onto scoped threads can keep the same handle.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<Mutex<State>>>);

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Recorder(disabled)"),
            Some(_) => f.write_str("Recorder(enabled)"),
        }
    }
}

impl Recorder {
    /// The no-op handle: every probe early-returns.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A live recorder with an empty sink.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(Mutex::new(State::default()))))
    }

    /// Whether probes on this handle record anything. Callers building
    /// non-trivial keys or field vectors should gate on this first so
    /// the disabled path allocates nothing.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn state(&self) -> Option<std::sync::MutexGuard<'_, State>> {
        self.0
            .as_ref()
            .map(|m| m.lock().expect("recorder sink poisoned"))
    }

    /// Add `by` to the counter `key`.
    pub fn incr(&self, key: &str, by: u64) {
        if let Some(mut st) = self.state() {
            *st.counters.entry(key.to_string()).or_insert(0) += by;
        }
    }

    /// Set the gauge `key` to `value` (last write wins).
    pub fn gauge(&self, key: &str, value: f64) {
        if let Some(mut st) = self.state() {
            st.gauges.insert(key.to_string(), value);
        }
    }

    /// Emit a structured event.
    pub fn event(&self, kind: &str, fields: &[(&str, Value)]) {
        if let Some(mut st) = self.state() {
            let seq = st.seq;
            st.seq += 1;
            st.events.push(Event {
                seq,
                kind: kind.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Start a monotonic phase span. On [`PhaseSpan::finish`] (or drop)
    /// the elapsed nanoseconds are added to the counter
    /// `time_ns.<phase>` and a `"phase"` event is emitted. On a
    /// disabled recorder the span reads no clock.
    pub fn span(&self, phase: &str) -> PhaseSpan {
        PhaseSpan {
            rec: self.clone(),
            phase: if self.is_enabled() {
                phase.to_string()
            } else {
                String::new()
            },
            start: self.is_enabled().then(Instant::now),
        }
    }

    /// Record a sketch telemetry snapshot as a `"sketch"` event.
    /// `scope` names where the sketch sits in the stack (e.g.
    /// `"lane3.large_set.rep0"`), `kind` the sketch type.
    pub fn sketch(&self, scope: &str, kind: &str, stats: SketchStats) {
        if !self.is_enabled() {
            return;
        }
        self.event(
            "sketch",
            &[
                ("scope", scope.into()),
                ("sketch", kind.into()),
                ("updates", stats.updates.into()),
                ("fill", stats.fill.into()),
                ("capacity", stats.capacity.into()),
                ("evictions", stats.evictions.into()),
                ("prunes", stats.prunes.into()),
                ("merges", stats.merges.into()),
            ],
        );
    }

    /// Record a distributed-ingestion provenance event: which worker
    /// reached which lifecycle `stage` (`"worker-start"`,
    /// `"snapshot"`, `"worker-done"`, `"replica"`), on which shard,
    /// after how many edges. `detail` carries free-form context such
    /// as the snapshot path. Provenance is worker-local narration —
    /// coordinator traces never carry it, so differential byte
    /// comparisons against single-process runs stay clean.
    pub fn provenance(&self, stage: &str, shard: u64, edges: u64, detail: &str) {
        if !self.is_enabled() {
            return;
        }
        self.event(
            "provenance",
            &[
                ("stage", stage.into()),
                ("shard", shard.into()),
                ("edges", edges.into()),
                ("detail", detail.into()),
            ],
        );
    }

    /// Record a [`Histogram`] as one `"histogram"` event. Non-empty
    /// buckets are emitted as flat `b<i>` fields (events carry scalar
    /// values only), alongside the `count`/`sum`/`min`/`max` envelope —
    /// enough for [`Histogram::from_parts`] to rebuild the histogram
    /// from the NDJSON line.
    pub fn histogram(&self, name: &str, hist: &Histogram) {
        if !self.is_enabled() {
            return;
        }
        let mut fields: Vec<(String, Value)> = vec![
            ("name".to_string(), name.into()),
            ("count".to_string(), hist.count().into()),
            ("sum".to_string(), hist.sum().into()),
            ("min".to_string(), hist.min().unwrap_or(0).into()),
            ("max".to_string(), hist.max().unwrap_or(0).into()),
        ];
        for (i, c) in hist.nonzero_buckets() {
            fields.push((format!("b{i}"), c.into()));
        }
        if let Some(mut st) = self.state() {
            let seq = st.seq;
            st.seq += 1;
            st.events.push(Event {
                seq,
                kind: "histogram".to_string(),
                fields,
            });
        }
    }

    /// Snapshot of all counters, sorted by key.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.state()
            .map(|st| st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Snapshot of all gauges, sorted by key.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.state()
            .map(|st| st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Snapshot of all events in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.state().map(|st| st.events.clone()).unwrap_or_default()
    }

    /// Events of one kind, in emission order.
    pub fn events_of(&self, kind: &str) -> Vec<Event> {
        self.events().into_iter().filter(|e| e.kind == kind).collect()
    }

    /// Write the full sink as NDJSON: every event in emission order,
    /// then one `"counter"` line per counter and one `"gauge"` line per
    /// gauge (sorted by key), so a log is self-contained.
    pub fn write_ndjson<W: Write>(&self, mut w: W) -> io::Result<()> {
        let Some(st) = self.state() else {
            return Ok(());
        };
        for e in &st.events {
            writeln!(w, "{}", e.to_json_line())?;
        }
        let mut seq = st.seq;
        for (k, v) in &st.counters {
            let mut line = String::new();
            line.push_str("{\"seq\":");
            line.push_str(&seq.to_string());
            line.push_str(",\"kind\":\"counter\",\"key\":");
            push_json_str(&mut line, k);
            line.push_str(",\"value\":");
            line.push_str(&v.to_string());
            line.push('}');
            writeln!(w, "{line}")?;
            seq += 1;
        }
        for (k, v) in &st.gauges {
            let mut line = String::new();
            line.push_str("{\"seq\":");
            line.push_str(&seq.to_string());
            line.push_str(",\"kind\":\"gauge\",\"key\":");
            push_json_str(&mut line, k);
            line.push_str(",\"value\":");
            push_json_f64(&mut line, *v);
            line.push('}');
            writeln!(w, "{line}")?;
            seq += 1;
        }
        Ok(())
    }

    /// Human summary: counters, gauges, and an event census by kind.
    pub fn summary_table(&self) -> String {
        let Some(st) = self.state() else {
            return String::new();
        };
        let mut out = String::new();
        if !st.counters.is_empty() {
            out.push_str("counter                                   value\n");
            for (k, v) in &st.counters {
                out.push_str(&format!("{k:<40}  {v}\n"));
            }
        }
        if !st.gauges.is_empty() {
            out.push_str("gauge                                     value\n");
            for (k, v) in &st.gauges {
                out.push_str(&format!("{k:<40}  {v}\n"));
            }
        }
        let mut census: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &st.events {
            *census.entry(e.kind.as_str()).or_insert(0) += 1;
        }
        if !census.is_empty() {
            out.push_str("events\n");
            for (k, v) in census {
                out.push_str(&format!("  {k:<38}  {v}\n"));
            }
        }
        out
    }
}

/// RAII timer returned by [`Recorder::span`].
#[must_use = "a span measures until dropped; bind it with `let _span = …`"]
pub struct PhaseSpan {
    rec: Recorder,
    phase: String,
    start: Option<Instant>,
}

impl PhaseSpan {
    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = start.elapsed().as_nanos() as u64;
            self.rec.incr(&format!("time_ns.{}", self.phase), ns);
            self.rec
                .event("phase", &[("phase", self.phase.as_str().into()), ("ns", ns.into())]);
        }
    }
}

/// Aggregate telemetry snapshot of one sketch (or a family of
/// repetitions): maintained as plain fields inside the sketches and
/// harvested at finalize via [`Recorder::sketch`].
///
/// `updates` is only filled where the sketch already tracked it
/// (e.g. `F2HeavyHitter::items_seen`); `0` means "not tracked", not
/// "no updates". Counters are merged by addition when sketch replicas
/// merge, and reset to zero by wire-format reconstruction — they are
/// telemetry, not state, and never participate in merge compatibility
/// checks or `space_words` accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Items observed, where the sketch already counts them.
    pub updates: u64,
    /// Resident entries right now (buffer/candidate fill).
    pub fill: u64,
    /// Configured capacity of that buffer (0 = unbounded/fixed table).
    pub capacity: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Bulk shrink passes (heavy-hitter prunes, BJKST level rises).
    pub prunes: u64,
    /// Merge invocations absorbed into this state.
    pub merges: u64,
}

impl SketchStats {
    /// Accumulate another snapshot (for families of repetitions /
    /// levels): all fields add, including fill and capacity.
    pub fn absorb(&mut self, other: SketchStats) {
        self.updates += other.updates;
        self.fill += other.fill;
        self.capacity += other.capacity;
        self.evictions += other.evictions;
        self.prunes += other.prunes;
        self.merges += other.merges;
    }

    /// The change since `baseline`, saturating at zero per field — the
    /// delta-harvesting hook behind in-flight heartbeat snapshots.
    /// Monotone counters (updates, evictions, prunes, merges) yield the
    /// exact increment; `fill` can legitimately shrink between
    /// snapshots (prunes, level rises), in which case its delta
    /// saturates to zero and the shrink shows up in `prunes` instead.
    pub fn delta_since(&self, baseline: &SketchStats) -> SketchStats {
        SketchStats {
            updates: self.updates.saturating_sub(baseline.updates),
            fill: self.fill.saturating_sub(baseline.fill),
            capacity: self.capacity.saturating_sub(baseline.capacity),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            prunes: self.prunes.saturating_sub(baseline.prunes),
            merges: self.merges.saturating_sub(baseline.merges),
        }
    }
}

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds the value
/// `0`, bucket `i ∈ [1, 64]` holds values `v` with `2^(i-1) ≤ v < 2^i`
/// (i.e. `v.bits() == i`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A mergeable log₂-bucket histogram of `u64` samples.
///
/// The workhorse of in-flight streaming telemetry: batch sizes,
/// per-batch ingest nanoseconds, and per-heartbeat sketch fill /
/// eviction deltas are all recorded here. Design constraints:
///
/// * **Cheap on hot paths** — [`Histogram::record`] is a leading-zeros
///   instruction plus four adds; no allocation, no lock, no clock.
/// * **Mergeable** — [`Histogram::merge`] adds bucket counts and sums
///   and takes min/max envelopes, so stream-sharded replicas fold their
///   histograms exactly like the estimator state they ride on
///   (commutative, associative, `Histogram::new()` is the identity).
/// * **Wire-encodable** — `kcov-sketch`'s `WireEncode` ships histograms
///   with checkpointed sketch state (impl lives there to keep this
///   crate dependency-free).
///
/// Percentiles are resolved to the *upper bound* of the containing
/// bucket, clamped to the observed `[min, max]` envelope — an
/// overestimate by at most 2× by construction, which is the standard
/// precision contract for log-bucket telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `v`: 0 for 0, else `64 - v.leading_zeros()`
    /// (the bit length of `v`).
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive value range `[lo, hi]` of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) resolved to the upper bound of
    /// its bucket, clamped to the observed `[min, max]`. Returns `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q · count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_bounds(i).1.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Bucket counts, dense (length [`HISTOGRAM_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Non-empty buckets as `(bucket index, count)` in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild a histogram from its parts (the inverse of the
    /// `histogram` event encoding and the wire format): sparse
    /// `(bucket, count)` pairs plus the `sum`/`min`/`max` envelope.
    /// Returns `None` on an out-of-range bucket index or an envelope
    /// inconsistent with the buckets (empty buckets with a non-zero
    /// envelope, or min > max).
    pub fn from_parts(buckets: &[(usize, u64)], sum: u64, min: u64, max: u64) -> Option<Histogram> {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            if i >= HISTOGRAM_BUCKETS {
                return None;
            }
            h.counts[i] += c;
            h.count += c;
        }
        if h.count == 0 {
            return (sum == 0 && max == 0).then_some(Histogram::new());
        }
        if min > max {
            return None;
        }
        h.sum = sum;
        h.min = min;
        h.max = max;
        Some(h)
    }
}

/// One node of a space-attribution tree (see [`SpaceLedger`]).
///
/// The schema keeps every attribution on **leaves**: a node either has
/// children (a pure grouping node with `words == updates ==
/// touched_words == 0` of its own) or is a leaf carrying resident words
/// and heat counters. Subtree totals are computed on demand, so the
/// finalize invariant "Σ leaf words == `space_words()`" is checked
/// against [`LedgerNode::total_words`]. Children keep insertion order
/// (the order the `space_ledger` implementations attribute them in),
/// which makes emission deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerNode {
    /// Resident 64-bit words attributed directly to this node (leaves
    /// only under the schema).
    pub words: u64,
    /// Heat: sketch-update operations absorbed by this structure.
    pub updates: u64,
    /// Heat: resident words written by those updates (e.g. one counter
    /// per CountSketch row per update).
    pub touched_words: u64,
    children: Vec<(String, LedgerNode)>,
}

impl LedgerNode {
    /// An empty node.
    pub fn new() -> Self {
        LedgerNode::default()
    }

    /// Find-or-append the child `name` (insertion order is preserved,
    /// so repeated attribution — e.g. one call per repetition — lands
    /// in the same child).
    pub fn child(&mut self, name: &str) -> &mut LedgerNode {
        if let Some(i) = self.children.iter().position(|(n, _)| n == name) {
            return &mut self.children[i].1;
        }
        self.children.push((name.to_string(), LedgerNode::new()));
        &mut self.children.last_mut().expect("just pushed").1
    }

    /// Attribute `words` resident words to the leaf child `name`.
    pub fn leaf(&mut self, name: &str, words: usize) {
        self.child(name).words += words as u64;
    }

    /// Attribute heat to the child `name`: `updates` operations touching
    /// `touched_words` resident words.
    pub fn heat(&mut self, name: &str, updates: u64, touched_words: u64) {
        let c = self.child(name);
        c.updates += updates;
        c.touched_words += touched_words;
    }

    /// The child `name`, if present.
    pub fn get(&self, name: &str) -> Option<&LedgerNode> {
        self.children.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Resolve a `/`-separated path relative to this node.
    pub fn at(&self, path: &str) -> Option<&LedgerNode> {
        let mut node = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            node = node.get(seg)?;
        }
        Some(node)
    }

    /// Children in insertion order.
    pub fn children(&self) -> impl Iterator<Item = (&str, &LedgerNode)> {
        self.children.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Whether this node carries its attribution directly (no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Subtree total of resident words (own + all descendants).
    pub fn total_words(&self) -> u64 {
        self.words + self.children.iter().map(|(_, c)| c.total_words()).sum::<u64>()
    }

    /// Subtree total of update operations.
    pub fn total_updates(&self) -> u64 {
        self.updates + self.children.iter().map(|(_, c)| c.total_updates()).sum::<u64>()
    }

    /// Subtree total of touched words.
    pub fn total_touched_words(&self) -> u64 {
        self.touched_words
            + self.children.iter().map(|(_, c)| c.total_touched_words()).sum::<u64>()
    }
}

/// One flattened row of a [`SpaceLedger`]: the `/`-joined path plus
/// **subtree totals** (so a parent row's `words` always equals the sum
/// of its children's — the invariant `maxkcov prof` re-checks when it
/// reads a trace back).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRow {
    /// `/`-joined path from the ledger root (the root itself is the
    /// bare root name).
    pub path: String,
    /// Subtree total resident words.
    pub words: u64,
    /// Subtree total update operations.
    pub updates: u64,
    /// Subtree total touched words.
    pub touched_words: u64,
    /// Number of immediate children (0 = leaf).
    pub children: usize,
}

/// A space-attribution ledger: a named tree of [`LedgerNode`]s built by
/// the `space_ledger` implementations across the estimator stack,
/// rendered as nested `"ledger"` NDJSON events and as a sorted
/// attribution report.
#[derive(Debug, Clone, Default)]
pub struct SpaceLedger {
    name: String,
    /// The root node (attribution goes into its children).
    pub root: LedgerNode,
}

impl SpaceLedger {
    /// An empty ledger whose root is named `name` (e.g. `"estimator"`).
    pub fn new(name: &str) -> Self {
        SpaceLedger {
            name: name.to_string(),
            root: LedgerNode::new(),
        }
    }

    /// The root name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total resident words attributed anywhere in the tree.
    pub fn total_words(&self) -> u64 {
        self.root.total_words()
    }

    /// Flatten to rows in preorder (parent before children, children in
    /// insertion order), with subtree totals per row.
    pub fn rows(&self) -> Vec<LedgerRow> {
        fn walk(name: &str, node: &LedgerNode, prefix: &str, out: &mut Vec<LedgerRow>) {
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            out.push(LedgerRow {
                words: node.total_words(),
                updates: node.total_updates(),
                touched_words: node.total_touched_words(),
                children: node.children.len(),
                path: path.clone(),
            });
            for (child_name, child) in node.children() {
                walk(child_name, child, &path, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.name, &self.root, "", &mut out);
        out
    }

    /// Schema violations: grouping nodes that carry direct attribution
    /// (every word and every heat counter must live on a leaf). Empty
    /// means the parent-sum invariant holds at every interior node by
    /// construction.
    pub fn audit(&self) -> Vec<String> {
        fn walk(name: &str, node: &LedgerNode, prefix: &str, out: &mut Vec<String>) {
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            if !node.children.is_empty()
                && (node.words != 0 || node.updates != 0 || node.touched_words != 0)
            {
                out.push(format!(
                    "{path}: grouping node carries direct attribution \
                     ({} words, {} updates, {} touched)",
                    node.words, node.updates, node.touched_words
                ));
            }
            for (child_name, child) in node.children() {
                walk(child_name, child, &path, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.name, &self.root, "", &mut out);
        out
    }

    /// Emit one `"ledger"` event per node (preorder, subtree totals) —
    /// the nested-NDJSON surfacing of the tree. Deterministic: depends
    /// only on the tree, never on clocks.
    pub fn emit(&self, rec: &Recorder) {
        if !rec.is_enabled() {
            return;
        }
        for row in self.rows() {
            rec.event(
                "ledger",
                &[
                    ("path", row.path.as_str().into()),
                    ("words", row.words.into()),
                    ("updates", row.updates.into()),
                    ("touched_words", row.touched_words.into()),
                    ("children", (row.children as u64).into()),
                ],
            );
        }
    }

    /// Render the sorted attribution report: leaves ranked by resident
    /// words (ties by path), with share of total, updates, and
    /// updates-per-word traffic density. `top == 0` means all leaves.
    pub fn report(&self, top: usize) -> String {
        render_ledger_report(&self.rows(), top)
    }
}

/// Render an attribution report from flattened ledger rows (leaves
/// only, ranked by words descending then path). Shared by the live
/// [`SpaceLedger::report`] path and trace-replay tooling that rebuilds
/// rows from `"ledger"` NDJSON events.
pub fn render_ledger_report(rows: &[LedgerRow], top: usize) -> String {
    let total: u64 = rows.first().map_or(0, |r| r.words);
    let mut leaves: Vec<&LedgerRow> = rows.iter().filter(|r| r.children == 0).collect();
    leaves.sort_by(|a, b| b.words.cmp(&a.words).then_with(|| a.path.cmp(&b.path)));
    let shown = if top == 0 { leaves.len() } else { top.min(leaves.len()) };
    let width = leaves
        .iter()
        .take(shown)
        .map(|r| r.path.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>10}  {:>6}  {:>12}  {:>9}\n",
        "path", "words", "%", "updates", "upd/word"
    ));
    for row in leaves.iter().take(shown) {
        let pct = if total > 0 {
            row.words as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        let density = if row.words > 0 {
            format!("{:.2}", row.updates as f64 / row.words as f64)
        } else if row.updates > 0 {
            "inf".to_string()
        } else {
            "0.00".to_string()
        };
        out.push_str(&format!(
            "{:<width$}  {:>10}  {:>5.1}%  {:>12}  {:>9}\n",
            row.path, row.words, pct, row.updates, density
        ));
    }
    if shown < leaves.len() {
        let rest: u64 = leaves[shown..].iter().map(|r| r.words).sum();
        out.push_str(&format!(
            "… {} more leaves ({} words)\n",
            leaves.len() - shown,
            rest
        ));
    }
    out.push_str(&format!("total: {total} words\n"));
    out
}

// ---- time-attribution ledger ----------------------------------------

/// One node of a time-attribution tree (see [`TimeLedger`]).
///
/// Same leaves-only schema as [`LedgerNode`]: a node either has
/// children (a pure grouping node with `ns == 0` of its own) or is a
/// leaf carrying attributed nanoseconds. Children keep insertion order,
/// so the *shape* of the tree is deterministic (a pure function of
/// configuration) even though the leaf *values* are wall-clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeNode {
    /// Nanoseconds attributed directly to this node (leaves only under
    /// the schema).
    pub ns: u64,
    children: Vec<(String, TimeNode)>,
}

impl TimeNode {
    /// An empty node.
    pub fn new() -> Self {
        TimeNode::default()
    }

    /// Find-or-append the child `name` (insertion order is preserved).
    pub fn child(&mut self, name: &str) -> &mut TimeNode {
        if let Some(i) = self.children.iter().position(|(n, _)| n == name) {
            return &mut self.children[i].1;
        }
        self.children.push((name.to_string(), TimeNode::new()));
        &mut self.children.last_mut().expect("just pushed").1
    }

    /// Attribute `ns` nanoseconds to the leaf child `name`.
    pub fn leaf(&mut self, name: &str, ns: u64) {
        self.child(name).ns += ns;
    }

    /// The child `name`, if present.
    pub fn get(&self, name: &str) -> Option<&TimeNode> {
        self.children.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Resolve a `/`-separated path relative to this node.
    pub fn at(&self, path: &str) -> Option<&TimeNode> {
        let mut node = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            node = node.get(seg)?;
        }
        Some(node)
    }

    /// Children in insertion order.
    pub fn children(&self) -> impl Iterator<Item = (&str, &TimeNode)> {
        self.children.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Whether this node carries its attribution directly (no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Subtree total nanoseconds (own + all descendants).
    pub fn total_ns(&self) -> u64 {
        self.ns + self.children.iter().map(|(_, c)| c.total_ns()).sum::<u64>()
    }

    /// Additive merge: fold `other` into `self` by child-name union
    /// (the time analogue of sketch `merge` — Σ shard ns == merged ns
    /// exactly, since every field is a plain sum).
    pub fn merge(&mut self, other: &TimeNode) {
        self.ns += other.ns;
        for (name, child) in other.children() {
            self.child(name).merge(child);
        }
    }
}

/// Apportion one batch-granular wall-clock interval across the leaves
/// of a space-attribution subtree, mirroring its structure into `out`.
///
/// This is the rule that buys per-sketch time attribution *without*
/// per-sketch clock reads: the caller times a whole batched call (one
/// monotonic read per chunk per lane) and this splits the interval over
/// the structures that did the work, weighted by the heat counters the
/// space ledger already maintains (`updates + touched_words`). When the
/// subtree carries no heat at all, the split falls back to uniform
/// weights so the time tree's shape stays a pure function of
/// configuration. The split is exact: the cumulative-floor rule assigns
/// `⌊ns·cum_i/W⌋ − ⌊ns·cum_{i−1}/W⌋` to leaf `i`, so assigned
/// nanoseconds sum to `ns` with no remainder — parent == Σ children is
/// an identity, not an approximation.
pub fn apportion_by_heat(ns: u64, space: &LedgerNode, out: &mut TimeNode) {
    fn collect(node: &LedgerNode, path: &mut Vec<String>, leaves: &mut Vec<(Vec<String>, u64)>) {
        if node.is_leaf() {
            leaves.push((path.clone(), node.updates + node.touched_words));
            return;
        }
        for (name, child) in node.children() {
            path.push(name.to_string());
            collect(child, path, leaves);
            path.pop();
        }
    }
    let mut leaves = Vec::new();
    collect(space, &mut Vec::new(), &mut leaves);
    if leaves.is_empty() || (leaves.len() == 1 && leaves[0].0.is_empty()) {
        // The subtree is itself a leaf: attribute directly.
        out.ns += ns;
        return;
    }
    let mut weights: Vec<u64> = leaves.iter().map(|(_, w)| *w).collect();
    if weights.iter().all(|&w| w == 0) {
        weights.iter_mut().for_each(|w| *w = 1);
    }
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let mut cum: u128 = 0;
    let mut prev: u128 = 0;
    for ((path, _), &w) in leaves.iter().zip(&weights) {
        cum += u128::from(w);
        let assigned = u128::from(ns) * cum / total;
        let share = (assigned - prev) as u64;
        prev = assigned;
        let mut node = &mut *out;
        for seg in path {
            node = node.child(seg);
        }
        node.ns += share;
    }
}

/// One flattened row of a [`TimeLedger`]: the `/`-joined path plus the
/// **subtree total** (so a parent row's `ns` always equals the sum of
/// its children's — the invariant `maxkcov prof --time` re-checks when
/// it reads a trace back).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeLedgerRow {
    /// `/`-joined path from the ledger root (the root itself is the
    /// bare root name).
    pub path: String,
    /// Subtree total nanoseconds.
    pub ns: u64,
    /// Number of immediate children (0 = leaf).
    pub children: usize,
}

/// A time-attribution ledger: a named tree of [`TimeNode`]s built by
/// the `time_ledger_tree` implementations across the estimator stack
/// (batch-granular wall intervals apportioned by heat — see
/// [`apportion_by_heat`]), rendered as nested `"time_ledger"` NDJSON
/// events, a sorted attribution report, and Brendan-Gregg folded
/// stacks for flamegraph tooling.
#[derive(Debug, Clone, Default)]
pub struct TimeLedger {
    name: String,
    /// The root node (attribution goes into its children).
    pub root: TimeNode,
}

impl TimeLedger {
    /// An empty ledger whose root is named `name` (e.g. `"estimator"`).
    pub fn new(name: &str) -> Self {
        TimeLedger {
            name: name.to_string(),
            root: TimeNode::new(),
        }
    }

    /// The root name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total nanoseconds attributed anywhere in the tree.
    pub fn total_ns(&self) -> u64 {
        self.root.total_ns()
    }

    /// Flatten to rows in preorder (parent before children, children in
    /// insertion order), with subtree totals per row.
    pub fn rows(&self) -> Vec<TimeLedgerRow> {
        fn walk(name: &str, node: &TimeNode, prefix: &str, out: &mut Vec<TimeLedgerRow>) {
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            out.push(TimeLedgerRow {
                ns: node.total_ns(),
                children: node.children.len(),
                path: path.clone(),
            });
            for (child_name, child) in node.children() {
                walk(child_name, child, &path, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.name, &self.root, "", &mut out);
        out
    }

    /// Schema violations: grouping nodes that carry direct attribution
    /// (every nanosecond must live on a leaf). Empty means the
    /// parent-sum invariant holds at every interior node by
    /// construction.
    pub fn audit(&self) -> Vec<String> {
        fn walk(name: &str, node: &TimeNode, prefix: &str, out: &mut Vec<String>) {
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            if !node.children.is_empty() && node.ns != 0 {
                out.push(format!(
                    "{path}: grouping node carries direct attribution ({} ns)",
                    node.ns
                ));
            }
            for (child_name, child) in node.children() {
                walk(child_name, child, &path, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.name, &self.root, "", &mut out);
        out
    }

    /// Emit one `"time_ledger"` event per node (preorder, subtree
    /// totals). The wall-clock value rides in the field named exactly
    /// `ns`, which every determinism-diffing normalizer in the test
    /// suites strips — paths and child counts are a pure function of
    /// configuration, so normalized traces stay bit-neutral.
    pub fn emit(&self, rec: &Recorder) {
        if !rec.is_enabled() {
            return;
        }
        for row in self.rows() {
            rec.event(
                "time_ledger",
                &[
                    ("path", row.path.as_str().into()),
                    ("ns", row.ns.into()),
                    ("children", (row.children as u64).into()),
                ],
            );
        }
    }

    /// Render Brendan-Gregg folded stacks — one line per leaf,
    /// `root;seg;…;leaf <ns>` — directly consumable by standard
    /// flamegraph tooling (`flamegraph.pl`, inferno, speedscope).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for row in self.rows() {
            if row.children == 0 {
                out.push_str(&row.path.replace('/', ";"));
                out.push(' ');
                out.push_str(&row.ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Render the sorted attribution report: leaves ranked by
    /// nanoseconds (ties by path), with share of total. `top == 0`
    /// means all leaves.
    pub fn report(&self, top: usize) -> String {
        render_time_report(&self.rows(), top)
    }

    /// Additive merge by root-name match (shards of the same stage).
    pub fn merge(&mut self, other: &TimeLedger) {
        assert_eq!(
            self.name, other.name,
            "TimeLedger merge requires identical root names"
        );
        self.root.merge(&other.root);
    }
}

/// Render a time-attribution report from flattened ledger rows (leaves
/// only, ranked by ns descending then path). Shared by the live
/// [`TimeLedger::report`] path and trace-replay tooling that rebuilds
/// rows from `"time_ledger"` NDJSON events.
pub fn render_time_report(rows: &[TimeLedgerRow], top: usize) -> String {
    let total: u64 = rows.first().map_or(0, |r| r.ns);
    let mut leaves: Vec<&TimeLedgerRow> = rows.iter().filter(|r| r.children == 0).collect();
    leaves.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.path.cmp(&b.path)));
    let shown = if top == 0 { leaves.len() } else { top.min(leaves.len()) };
    let width = leaves
        .iter()
        .take(shown)
        .map(|r| r.path.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>14}  {:>6}\n",
        "path", "ns", "%"
    ));
    for row in leaves.iter().take(shown) {
        let pct = if total > 0 {
            row.ns as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<width$}  {:>14}  {:>5.1}%\n",
            row.path, row.ns, pct
        ));
    }
    if shown < leaves.len() {
        let rest: u64 = leaves[shown..].iter().map(|r| r.ns).sum();
        out.push_str(&format!(
            "… {} more leaves ({} ns)\n",
            leaves.len() - shown,
            rest
        ));
    }
    out.push_str(&format!("total: {total} ns\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        rec.incr("a", 3);
        rec.gauge("g", 1.5);
        rec.event("kind", &[("x", 1u64.into())]);
        let _span = rec.span("phase");
        drop(_span);
        assert!(!rec.is_enabled());
        assert!(rec.counters().is_empty());
        assert!(rec.gauges().is_empty());
        assert!(rec.events().is_empty());
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(rec.summary_table().is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let rec = Recorder::enabled();
        rec.incr("edges", 10);
        rec.incr("edges", 5);
        rec.gauge("estimate", 1.0);
        rec.gauge("estimate", 2.0);
        assert_eq!(rec.counters(), vec![("edges".to_string(), 15)]);
        assert_eq!(rec.gauges(), vec![("estimate".to_string(), 2.0)]);
    }

    #[test]
    fn clones_share_one_sink() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.incr("x", 1);
        rec.incr("x", 1);
        assert_eq!(rec.counters(), vec![("x".to_string(), 2)]);
    }

    #[test]
    fn span_times_into_counter_and_event() {
        let rec = Recorder::enabled();
        {
            let _span = rec.span("ingest");
        }
        let counters = rec.counters();
        assert_eq!(counters.len(), 1);
        assert!(counters[0].0 == "time_ns.ingest");
        let phases = rec.events_of("phase");
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].str_field("phase"), Some("ingest"));
        assert!(phases[0].u64_field("ns").is_some());
    }

    #[test]
    fn events_are_sequenced_in_emission_order() {
        let rec = Recorder::enabled();
        rec.event("a", &[]);
        rec.event("b", &[("k", "v".into())]);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].seq, events[0].kind.as_str()), (0, "a"));
        assert_eq!((events[1].seq, events[1].kind.as_str()), (1, "b"));
    }

    #[test]
    fn ndjson_lines_parse_and_round_trip() {
        let rec = Recorder::enabled();
        rec.event(
            "lane",
            &[
                ("lane", 3usize.into()),
                ("estimate", 12.5f64.into()),
                ("winner", "LargeSet".into()),
                ("qualifying", true.into()),
                ("delta", Value::I64(-4)),
            ],
        );
        rec.incr("edges", 7);
        rec.gauge("alpha", 4.0);
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let parsed = json::Json::parse(line).expect("valid JSON line");
            assert!(parsed.get("kind").is_some(), "{line}");
            assert!(parsed.get("seq").is_some(), "{line}");
        }
        let lane = json::Json::parse(lines[0]).unwrap();
        assert_eq!(lane.get("lane").and_then(json::Json::as_f64), Some(3.0));
        assert_eq!(lane.get("estimate").and_then(json::Json::as_f64), Some(12.5));
        assert_eq!(
            lane.get("winner").and_then(json::Json::as_str),
            Some("LargeSet")
        );
        assert_eq!(lane.get("delta").and_then(json::Json::as_f64), Some(-4.0));
    }

    #[test]
    fn string_escaping_survives_the_parser() {
        let rec = Recorder::enabled();
        rec.event("e", &[("s", "a\"b\\c\nd\te\u{1}".into())]);
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = json::Json::parse(text.trim()).unwrap();
        assert_eq!(
            parsed.get("s").and_then(json::Json::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn sketch_stats_absorb_adds_everything() {
        let mut a = SketchStats {
            updates: 1,
            fill: 2,
            capacity: 3,
            evictions: 4,
            prunes: 5,
            merges: 6,
        };
        a.absorb(SketchStats {
            updates: 10,
            fill: 20,
            capacity: 30,
            evictions: 40,
            prunes: 50,
            merges: 60,
        });
        assert_eq!(
            a,
            SketchStats {
                updates: 11,
                fill: 22,
                capacity: 33,
                evictions: 44,
                prunes: 55,
                merges: 66,
            }
        );
    }

    #[test]
    fn sketch_event_carries_all_stat_fields() {
        let rec = Recorder::enabled();
        rec.sketch(
            "lane0.large_set",
            "f2hh",
            SketchStats {
                updates: 9,
                fill: 4,
                capacity: 8,
                evictions: 1,
                prunes: 2,
                merges: 3,
            },
        );
        let events = rec.events_of("sketch");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.str_field("scope"), Some("lane0.large_set"));
        assert_eq!(e.str_field("sketch"), Some("f2hh"));
        assert_eq!(e.u64_field("updates"), Some(9));
        assert_eq!(e.u64_field("fill"), Some(4));
        assert_eq!(e.u64_field("capacity"), Some(8));
        assert_eq!(e.u64_field("evictions"), Some(1));
        assert_eq!(e.u64_field("prunes"), Some(2));
        assert_eq!(e.u64_field("merges"), Some(3));
    }

    #[test]
    fn summary_table_lists_counters_gauges_and_census() {
        let rec = Recorder::enabled();
        rec.incr("edges", 3);
        rec.gauge("estimate", 7.5);
        rec.event("lane", &[]);
        rec.event("lane", &[]);
        let table = rec.summary_table();
        assert!(table.contains("edges"), "{table}");
        assert!(table.contains("estimate"), "{table}");
        assert!(table.contains("lane"), "{table}");
        assert!(table.contains('2'), "{table}");
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i - 1].
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "hi of bucket {i}");
            if lo > 0 {
                assert_eq!(Histogram::bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn histogram_records_envelope_and_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 5, 9, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1115);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 1115.0 / 6.0).abs() < 1e-12);
        // Quantiles resolve to bucket upper bounds, clamped to [min, max]:
        // p0 → bucket of the smallest sample; p100 → exactly max.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(1000));
        // Median (rank 3 of 6) lands in bucket 3 ([4,7]) → upper bound 7.
        assert_eq!(h.quantile(0.5), Some(7));
        // A log-bucket quantile never undershoots the true value by
        // construction: check against the sorted samples.
        let sorted = [0u64, 1, 5, 9, 100, 1000];
        for (idx, &v) in sorted.iter().enumerate() {
            let q = (idx + 1) as f64 / sorted.len() as f64;
            assert!(h.quantile(q).unwrap() >= v, "q={q} under {v}");
        }
    }

    #[test]
    fn histogram_merge_is_additive_and_has_identity() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 17, 0, 255] {
            a.record(v);
            whole.record(v);
        }
        for v in [1u64, 1, 4096] {
            b.record(v);
            whole.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, whole);
        // Commutative.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba, whole);
        // Identity.
        let mut id = a.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, a);
        let mut id2 = Histogram::new();
        id2.merge(&a);
        assert_eq!(id2, a);
    }

    #[test]
    fn histogram_event_round_trips_through_from_parts() {
        let mut h = Histogram::new();
        for v in [0u64, 2, 2, 9, 70000] {
            h.record(v);
        }
        let rec = Recorder::enabled();
        rec.histogram("batch_edges", &h);
        let events = rec.events_of("histogram");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.str_field("name"), Some("batch_edges"));
        assert_eq!(e.u64_field("count"), Some(5));
        assert_eq!(e.u64_field("sum"), Some(70013));
        assert_eq!(e.u64_field("min"), Some(0));
        assert_eq!(e.u64_field("max"), Some(70000));
        // Rebuild from the sparse b<i> fields.
        let buckets: Vec<(usize, u64)> = e
            .fields
            .iter()
            .filter_map(|(k, v)| {
                let i: usize = k.strip_prefix('b')?.parse().ok()?;
                match v {
                    Value::U64(c) => Some((i, *c)),
                    _ => None,
                }
            })
            .collect();
        let back = Histogram::from_parts(
            &buckets,
            e.u64_field("sum").unwrap(),
            e.u64_field("min").unwrap(),
            e.u64_field("max").unwrap(),
        )
        .expect("reconstructible");
        assert_eq!(back, h);
    }

    #[test]
    fn histogram_from_parts_rejects_inconsistent_inputs() {
        // Out-of-range bucket index.
        assert!(Histogram::from_parts(&[(65, 1)], 1, 1, 1).is_none());
        // min > max with samples present.
        assert!(Histogram::from_parts(&[(1, 1)], 1, 5, 2).is_none());
        // Empty buckets demand a zero envelope.
        assert!(Histogram::from_parts(&[], 3, 0, 0).is_none());
        assert_eq!(Histogram::from_parts(&[], 0, 0, 0), Some(Histogram::new()));
    }

    #[test]
    fn non_finite_gauges_render_as_null() {
        let rec = Recorder::enabled();
        rec.gauge("bad", f64::NAN);
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = json::Json::parse(text.trim()).unwrap();
        assert!(matches!(parsed.get("value"), Some(json::Json::Null)));
    }

    fn sample_ledger() -> SpaceLedger {
        let mut ledger = SpaceLedger::new("estimator");
        let lane = ledger.root.child("lane0");
        let cs = lane.child("large_set").child("countsketch");
        cs.leaf("rows", 100);
        cs.leaf("hashes", 20);
        cs.heat("rows", 50, 150);
        lane.child("reducer").leaf("hash", 4);
        ledger.root.child("fingerprints").leaf("set_base", 8);
        ledger
    }

    #[test]
    fn ledger_child_is_find_or_append_and_totals_sum() {
        let ledger = sample_ledger();
        assert_eq!(ledger.total_words(), 132);
        let lane = ledger.root.get("lane0").unwrap();
        assert_eq!(lane.total_words(), 124);
        assert_eq!(lane.total_updates(), 50);
        assert_eq!(lane.total_touched_words(), 150);
        // Path lookup resolves nested components.
        let rows = ledger.root.at("lane0/large_set/countsketch/rows").unwrap();
        assert_eq!(rows.words, 100);
        assert!(rows.is_leaf());
        assert!(ledger.root.at("lane0/missing").is_none());
        // Repeated attribution accumulates in the same child.
        let mut node = LedgerNode::new();
        node.leaf("values", 3);
        node.leaf("values", 4);
        assert_eq!(node.get("values").unwrap().words, 7);
        assert_eq!(node.children().count(), 1);
    }

    #[test]
    fn ledger_rows_are_preorder_with_subtree_totals() {
        let ledger = sample_ledger();
        let rows = ledger.rows();
        assert_eq!(rows[0].path, "estimator");
        assert_eq!(rows[0].words, 132);
        assert!(rows[0].children > 0);
        // Parent-sum invariant: every interior row's words equal the sum
        // of its immediate children's.
        for parent in rows.iter().filter(|r| r.children > 0) {
            let prefix = format!("{}/", parent.path);
            let child_sum: u64 = rows
                .iter()
                .filter(|r| {
                    r.path.strip_prefix(&prefix).is_some_and(|rest| !rest.contains('/'))
                })
                .map(|r| r.words)
                .sum();
            assert_eq!(parent.words, child_sum, "at {}", parent.path);
        }
        // Leaf rows carry their own attribution verbatim.
        let cs_rows = rows.iter().find(|r| r.path.ends_with("countsketch/rows")).unwrap();
        assert_eq!((cs_rows.words, cs_rows.updates, cs_rows.touched_words), (100, 50, 150));
        assert_eq!(cs_rows.children, 0);
    }

    #[test]
    fn ledger_audit_flags_attribution_on_grouping_nodes() {
        let mut ledger = sample_ledger();
        assert!(ledger.audit().is_empty(), "{:?}", ledger.audit());
        ledger.root.child("lane0").words += 5;
        let violations = ledger.audit();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("estimator/lane0"), "{violations:?}");
    }

    #[test]
    fn ledger_emits_one_event_per_node_and_report_ranks_leaves() {
        let ledger = sample_ledger();
        let rec = Recorder::enabled();
        ledger.emit(&rec);
        let events = rec.events_of("ledger");
        assert_eq!(events.len(), ledger.rows().len());
        assert_eq!(events[0].str_field("path"), Some("estimator"));
        assert_eq!(events[0].u64_field("words"), Some(132));
        for e in &events {
            for key in ["path", "words", "updates", "touched_words", "children"] {
                assert!(e.field(key).is_some(), "missing {key}: {e:?}");
            }
        }
        // Disabled recorder: emit is a no-op.
        let off = Recorder::disabled();
        ledger.emit(&off);
        assert!(off.events().is_empty());
        // The report ranks leaves by words and carries the total.
        let report = ledger.report(2);
        let first_data_line = report.lines().nth(1).unwrap();
        assert!(first_data_line.contains("countsketch/rows"), "{report}");
        assert!(report.contains("total: 132 words"), "{report}");
        assert!(report.contains("more leaves"), "{report}");
        let full = ledger.report(0);
        assert!(!full.contains("more leaves"), "{full}");
    }

    fn sample_time_ledger() -> TimeLedger {
        let mut ledger = TimeLedger::new("estimator");
        let lane = ledger.root.child("lane0");
        lane.leaf("reducer", 40);
        let ls = lane.child("large_set");
        ls.leaf("countsketch", 500);
        ls.leaf("tracker", 60);
        ledger.root.leaf("fingerprints", 100);
        ledger
    }

    #[test]
    fn time_ledger_rows_are_preorder_with_subtree_totals() {
        let ledger = sample_time_ledger();
        assert_eq!(ledger.total_ns(), 700);
        let rows = ledger.rows();
        assert_eq!(rows[0].path, "estimator");
        assert_eq!(rows[0].ns, 700);
        for parent in rows.iter().filter(|r| r.children > 0) {
            let prefix = format!("{}/", parent.path);
            let child_sum: u64 = rows
                .iter()
                .filter(|r| {
                    r.path.strip_prefix(&prefix).is_some_and(|rest| !rest.contains('/'))
                })
                .map(|r| r.ns)
                .sum();
            assert_eq!(parent.ns, child_sum, "at {}", parent.path);
        }
        let cs = ledger.root.at("lane0/large_set/countsketch").unwrap();
        assert_eq!(cs.ns, 500);
        assert!(cs.is_leaf());
        assert!(ledger.root.at("lane0/missing").is_none());
    }

    #[test]
    fn time_ledger_audit_flags_attribution_on_grouping_nodes() {
        let mut ledger = sample_time_ledger();
        assert!(ledger.audit().is_empty(), "{:?}", ledger.audit());
        ledger.root.child("lane0").ns += 5;
        let violations = ledger.audit();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("estimator/lane0"), "{violations:?}");
    }

    #[test]
    fn time_ledger_emits_events_and_folds_leaves() {
        let ledger = sample_time_ledger();
        let rec = Recorder::enabled();
        ledger.emit(&rec);
        let events = rec.events_of("time_ledger");
        assert_eq!(events.len(), ledger.rows().len());
        assert_eq!(events[0].str_field("path"), Some("estimator"));
        assert_eq!(events[0].u64_field("ns"), Some(700));
        for e in &events {
            for key in ["path", "ns", "children"] {
                assert!(e.field(key).is_some(), "missing {key}: {e:?}");
            }
        }
        let off = Recorder::disabled();
        ledger.emit(&off);
        assert!(off.events().is_empty());
        // Folded stacks: leaves only, `/` → `;`, one trailing count.
        let folded = ledger.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "estimator;lane0;reducer 40",
                "estimator;lane0;large_set;countsketch 500",
                "estimator;lane0;large_set;tracker 60",
                "estimator;fingerprints 100",
            ]
        );
        // The report ranks leaves by ns and carries the total.
        let report = ledger.report(2);
        let first_data_line = report.lines().nth(1).unwrap();
        assert!(first_data_line.contains("countsketch"), "{report}");
        assert!(report.contains("total: 700 ns"), "{report}");
        assert!(report.contains("more leaves"), "{report}");
    }

    #[test]
    fn time_ledger_merge_is_exactly_additive() {
        let mut a = sample_time_ledger();
        let b = sample_time_ledger();
        a.merge(&b);
        assert_eq!(a.total_ns(), 1400);
        assert_eq!(
            a.root.at("lane0/large_set/countsketch").unwrap().ns,
            1000
        );
        // Merge unions shapes: a child only in `b` appears in the merge.
        let mut c = TimeLedger::new("estimator");
        c.root.leaf("extra", 7);
        a.merge(&c);
        assert_eq!(a.root.get("extra").unwrap().ns, 7);
        assert_eq!(a.total_ns(), 1407);
    }

    #[test]
    fn apportion_by_heat_splits_exactly_by_weight() {
        // Heat 50+150 on `rows`, 0 on `hashes`/`hash`/`set_base` — all
        // weight lands on one leaf of the mirrored structure.
        let space = sample_ledger();
        let lane_space = space.root.get("lane0").unwrap();
        let mut out = TimeNode::new();
        apportion_by_heat(1000, lane_space, &mut out);
        assert_eq!(out.total_ns(), 1000, "apportionment must be exact");
        assert_eq!(
            out.at("large_set/countsketch/rows").unwrap().ns,
            1000,
            "all heat is on rows"
        );
        // Mirrored shape: every space leaf exists in the time tree.
        assert!(out.at("large_set/countsketch/hashes").is_some());
        assert!(out.at("reducer/hash").is_some());
    }

    #[test]
    fn apportion_by_heat_is_exact_under_awkward_remainders() {
        let mut space = LedgerNode::new();
        space.leaf("a", 1);
        space.leaf("b", 1);
        space.leaf("c", 1);
        space.heat("a", 1, 0);
        space.heat("b", 1, 0);
        space.heat("c", 1, 0);
        let mut out = TimeNode::new();
        // 1000 into three equal weights: 333/334/333-style exact split.
        apportion_by_heat(1000, &space, &mut out);
        let shares: Vec<u64> = ["a", "b", "c"]
            .iter()
            .map(|n| out.get(n).unwrap().ns)
            .collect();
        assert_eq!(shares.iter().sum::<u64>(), 1000);
        assert!(shares.iter().all(|&s| (332..=334).contains(&s)), "{shares:?}");
    }

    #[test]
    fn apportion_by_heat_falls_back_to_uniform_without_heat() {
        let mut space = LedgerNode::new();
        space.leaf("a", 10);
        space.leaf("b", 20);
        let mut out = TimeNode::new();
        apportion_by_heat(100, &space, &mut out);
        assert_eq!(out.get("a").unwrap().ns, 50);
        assert_eq!(out.get("b").unwrap().ns, 50);
        // A bare-leaf subtree attributes directly to `out`.
        let mut leaf_only = TimeNode::new();
        apportion_by_heat(42, &LedgerNode::new(), &mut leaf_only);
        assert_eq!(leaf_only.ns, 42);
    }
}
