//! # kcov-obs — zero-dependency structured observability
//!
//! One instrumentation spine for the whole workspace: a cheap clonable
//! [`Recorder`] handle that collects **counters**, **gauges**, and
//! structured **events** (with monotonic [`PhaseSpan`] timing), renders
//! them as an NDJSON event log or a human summary table — and whose
//! disabled form is a `None` behind an `Option`, so every probe
//! early-returns on a single branch and the determinism and merge
//! contracts of the estimator stack are untouched.
//!
//! Design rules enforced across the workspace:
//!
//! * **No locks on per-edge paths.** Sketches maintain plain `u64`
//!   rare-event counters (evictions, prunes, level rises, merges) next
//!   to the branches where those events already happen; the counters
//!   are *harvested* into a `Recorder` once, at finalize, as
//!   [`SketchStats`] snapshots. The shared sink is only touched at
//!   phase boundaries (ingest / merge / finalize), never per item.
//! * **Observation never perturbs results.** The recorder is a pure
//!   side channel: nothing in the estimator reads it back, replicas
//!   cloned for sharded ingestion share the same sink but only write
//!   to it from the coordinating thread, and the disabled handle makes
//!   every probe a no-op.
//! * **Zero dependencies.** NDJSON rendering, escaping, and the
//!   [`json`] parser used by the bench emitters and CI validation are
//!   hand-rolled over `std`.

pub mod json;

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A dynamically typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (estimates, rates).
    F64(f64),
    /// String (names, labels).
    Str(String),
    /// Boolean (flags).
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    fn render_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_json_f64(out, *v),
            Value::Str(s) => push_json_str(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 prints the shortest representation that
        // round-trips, and never produces NaN/Inf here.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{:.1}", v));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // NDJSON must stay valid JSON: encode non-finite as null.
        out.push_str("null");
    }
}

/// One structured event: a kind plus ordered key/value fields, stamped
/// with a monotone per-recorder sequence number.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number (order of emission).
    pub seq: u64,
    /// Event kind (`"phase"`, `"lane"`, `"subroutine"`, `"sketch"`,
    /// `"shard"`, `"summary"`, …).
    pub kind: String,
    /// Ordered fields as emitted.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Render this event as one NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"kind\":");
        push_json_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            v.render_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `U64` field, if present and of that type.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// An `F64` field, if present and of that type.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key) {
            Some(Value::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// A `Str` field, if present and of that type.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    events: Vec<Event>,
    seq: u64,
}

/// A cheap clonable recorder handle. The default (and
/// [`Recorder::disabled`]) form carries no state: every probe is a
/// single `Option` branch, no allocation, no lock. The enabled form
/// shares one mutex-guarded sink across clones, so estimator replicas
/// moved onto scoped threads can keep the same handle.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<Mutex<State>>>);

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Recorder(disabled)"),
            Some(_) => f.write_str("Recorder(enabled)"),
        }
    }
}

impl Recorder {
    /// The no-op handle: every probe early-returns.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A live recorder with an empty sink.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(Mutex::new(State::default()))))
    }

    /// Whether probes on this handle record anything. Callers building
    /// non-trivial keys or field vectors should gate on this first so
    /// the disabled path allocates nothing.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn state(&self) -> Option<std::sync::MutexGuard<'_, State>> {
        self.0
            .as_ref()
            .map(|m| m.lock().expect("recorder sink poisoned"))
    }

    /// Add `by` to the counter `key`.
    pub fn incr(&self, key: &str, by: u64) {
        if let Some(mut st) = self.state() {
            *st.counters.entry(key.to_string()).or_insert(0) += by;
        }
    }

    /// Set the gauge `key` to `value` (last write wins).
    pub fn gauge(&self, key: &str, value: f64) {
        if let Some(mut st) = self.state() {
            st.gauges.insert(key.to_string(), value);
        }
    }

    /// Emit a structured event.
    pub fn event(&self, kind: &str, fields: &[(&str, Value)]) {
        if let Some(mut st) = self.state() {
            let seq = st.seq;
            st.seq += 1;
            st.events.push(Event {
                seq,
                kind: kind.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Start a monotonic phase span. On [`PhaseSpan::finish`] (or drop)
    /// the elapsed nanoseconds are added to the counter
    /// `time_ns.<phase>` and a `"phase"` event is emitted. On a
    /// disabled recorder the span reads no clock.
    pub fn span(&self, phase: &str) -> PhaseSpan {
        PhaseSpan {
            rec: self.clone(),
            phase: if self.is_enabled() {
                phase.to_string()
            } else {
                String::new()
            },
            start: self.is_enabled().then(Instant::now),
        }
    }

    /// Record a sketch telemetry snapshot as a `"sketch"` event.
    /// `scope` names where the sketch sits in the stack (e.g.
    /// `"lane3.large_set.rep0"`), `kind` the sketch type.
    pub fn sketch(&self, scope: &str, kind: &str, stats: SketchStats) {
        if !self.is_enabled() {
            return;
        }
        self.event(
            "sketch",
            &[
                ("scope", scope.into()),
                ("sketch", kind.into()),
                ("updates", stats.updates.into()),
                ("fill", stats.fill.into()),
                ("capacity", stats.capacity.into()),
                ("evictions", stats.evictions.into()),
                ("prunes", stats.prunes.into()),
                ("merges", stats.merges.into()),
            ],
        );
    }

    /// Snapshot of all counters, sorted by key.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.state()
            .map(|st| st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Snapshot of all gauges, sorted by key.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.state()
            .map(|st| st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Snapshot of all events in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.state().map(|st| st.events.clone()).unwrap_or_default()
    }

    /// Events of one kind, in emission order.
    pub fn events_of(&self, kind: &str) -> Vec<Event> {
        self.events().into_iter().filter(|e| e.kind == kind).collect()
    }

    /// Write the full sink as NDJSON: every event in emission order,
    /// then one `"counter"` line per counter and one `"gauge"` line per
    /// gauge (sorted by key), so a log is self-contained.
    pub fn write_ndjson<W: Write>(&self, mut w: W) -> io::Result<()> {
        let Some(st) = self.state() else {
            return Ok(());
        };
        for e in &st.events {
            writeln!(w, "{}", e.to_json_line())?;
        }
        let mut seq = st.seq;
        for (k, v) in &st.counters {
            let mut line = String::new();
            line.push_str("{\"seq\":");
            line.push_str(&seq.to_string());
            line.push_str(",\"kind\":\"counter\",\"key\":");
            push_json_str(&mut line, k);
            line.push_str(",\"value\":");
            line.push_str(&v.to_string());
            line.push('}');
            writeln!(w, "{line}")?;
            seq += 1;
        }
        for (k, v) in &st.gauges {
            let mut line = String::new();
            line.push_str("{\"seq\":");
            line.push_str(&seq.to_string());
            line.push_str(",\"kind\":\"gauge\",\"key\":");
            push_json_str(&mut line, k);
            line.push_str(",\"value\":");
            push_json_f64(&mut line, *v);
            line.push('}');
            writeln!(w, "{line}")?;
            seq += 1;
        }
        Ok(())
    }

    /// Human summary: counters, gauges, and an event census by kind.
    pub fn summary_table(&self) -> String {
        let Some(st) = self.state() else {
            return String::new();
        };
        let mut out = String::new();
        if !st.counters.is_empty() {
            out.push_str("counter                                   value\n");
            for (k, v) in &st.counters {
                out.push_str(&format!("{k:<40}  {v}\n"));
            }
        }
        if !st.gauges.is_empty() {
            out.push_str("gauge                                     value\n");
            for (k, v) in &st.gauges {
                out.push_str(&format!("{k:<40}  {v}\n"));
            }
        }
        let mut census: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &st.events {
            *census.entry(e.kind.as_str()).or_insert(0) += 1;
        }
        if !census.is_empty() {
            out.push_str("events\n");
            for (k, v) in census {
                out.push_str(&format!("  {k:<38}  {v}\n"));
            }
        }
        out
    }
}

/// RAII timer returned by [`Recorder::span`].
#[must_use = "a span measures until dropped; bind it with `let _span = …`"]
pub struct PhaseSpan {
    rec: Recorder,
    phase: String,
    start: Option<Instant>,
}

impl PhaseSpan {
    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = start.elapsed().as_nanos() as u64;
            self.rec.incr(&format!("time_ns.{}", self.phase), ns);
            self.rec
                .event("phase", &[("phase", self.phase.as_str().into()), ("ns", ns.into())]);
        }
    }
}

/// Aggregate telemetry snapshot of one sketch (or a family of
/// repetitions): maintained as plain fields inside the sketches and
/// harvested at finalize via [`Recorder::sketch`].
///
/// `updates` is only filled where the sketch already tracked it
/// (e.g. `F2HeavyHitter::items_seen`); `0` means "not tracked", not
/// "no updates". Counters are merged by addition when sketch replicas
/// merge, and reset to zero by wire-format reconstruction — they are
/// telemetry, not state, and never participate in merge compatibility
/// checks or `space_words` accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Items observed, where the sketch already counts them.
    pub updates: u64,
    /// Resident entries right now (buffer/candidate fill).
    pub fill: u64,
    /// Configured capacity of that buffer (0 = unbounded/fixed table).
    pub capacity: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Bulk shrink passes (heavy-hitter prunes, BJKST level rises).
    pub prunes: u64,
    /// Merge invocations absorbed into this state.
    pub merges: u64,
}

impl SketchStats {
    /// Accumulate another snapshot (for families of repetitions /
    /// levels): all fields add, including fill and capacity.
    pub fn absorb(&mut self, other: SketchStats) {
        self.updates += other.updates;
        self.fill += other.fill;
        self.capacity += other.capacity;
        self.evictions += other.evictions;
        self.prunes += other.prunes;
        self.merges += other.merges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        rec.incr("a", 3);
        rec.gauge("g", 1.5);
        rec.event("kind", &[("x", 1u64.into())]);
        let _span = rec.span("phase");
        drop(_span);
        assert!(!rec.is_enabled());
        assert!(rec.counters().is_empty());
        assert!(rec.gauges().is_empty());
        assert!(rec.events().is_empty());
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(rec.summary_table().is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let rec = Recorder::enabled();
        rec.incr("edges", 10);
        rec.incr("edges", 5);
        rec.gauge("estimate", 1.0);
        rec.gauge("estimate", 2.0);
        assert_eq!(rec.counters(), vec![("edges".to_string(), 15)]);
        assert_eq!(rec.gauges(), vec![("estimate".to_string(), 2.0)]);
    }

    #[test]
    fn clones_share_one_sink() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.incr("x", 1);
        rec.incr("x", 1);
        assert_eq!(rec.counters(), vec![("x".to_string(), 2)]);
    }

    #[test]
    fn span_times_into_counter_and_event() {
        let rec = Recorder::enabled();
        {
            let _span = rec.span("ingest");
        }
        let counters = rec.counters();
        assert_eq!(counters.len(), 1);
        assert!(counters[0].0 == "time_ns.ingest");
        let phases = rec.events_of("phase");
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].str_field("phase"), Some("ingest"));
        assert!(phases[0].u64_field("ns").is_some());
    }

    #[test]
    fn events_are_sequenced_in_emission_order() {
        let rec = Recorder::enabled();
        rec.event("a", &[]);
        rec.event("b", &[("k", "v".into())]);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].seq, events[0].kind.as_str()), (0, "a"));
        assert_eq!((events[1].seq, events[1].kind.as_str()), (1, "b"));
    }

    #[test]
    fn ndjson_lines_parse_and_round_trip() {
        let rec = Recorder::enabled();
        rec.event(
            "lane",
            &[
                ("lane", 3usize.into()),
                ("estimate", 12.5f64.into()),
                ("winner", "LargeSet".into()),
                ("qualifying", true.into()),
                ("delta", Value::I64(-4)),
            ],
        );
        rec.incr("edges", 7);
        rec.gauge("alpha", 4.0);
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let parsed = json::Json::parse(line).expect("valid JSON line");
            assert!(parsed.get("kind").is_some(), "{line}");
            assert!(parsed.get("seq").is_some(), "{line}");
        }
        let lane = json::Json::parse(lines[0]).unwrap();
        assert_eq!(lane.get("lane").and_then(json::Json::as_f64), Some(3.0));
        assert_eq!(lane.get("estimate").and_then(json::Json::as_f64), Some(12.5));
        assert_eq!(
            lane.get("winner").and_then(json::Json::as_str),
            Some("LargeSet")
        );
        assert_eq!(lane.get("delta").and_then(json::Json::as_f64), Some(-4.0));
    }

    #[test]
    fn string_escaping_survives_the_parser() {
        let rec = Recorder::enabled();
        rec.event("e", &[("s", "a\"b\\c\nd\te\u{1}".into())]);
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = json::Json::parse(text.trim()).unwrap();
        assert_eq!(
            parsed.get("s").and_then(json::Json::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
    }

    #[test]
    fn sketch_stats_absorb_adds_everything() {
        let mut a = SketchStats {
            updates: 1,
            fill: 2,
            capacity: 3,
            evictions: 4,
            prunes: 5,
            merges: 6,
        };
        a.absorb(SketchStats {
            updates: 10,
            fill: 20,
            capacity: 30,
            evictions: 40,
            prunes: 50,
            merges: 60,
        });
        assert_eq!(
            a,
            SketchStats {
                updates: 11,
                fill: 22,
                capacity: 33,
                evictions: 44,
                prunes: 55,
                merges: 66,
            }
        );
    }

    #[test]
    fn sketch_event_carries_all_stat_fields() {
        let rec = Recorder::enabled();
        rec.sketch(
            "lane0.large_set",
            "f2hh",
            SketchStats {
                updates: 9,
                fill: 4,
                capacity: 8,
                evictions: 1,
                prunes: 2,
                merges: 3,
            },
        );
        let events = rec.events_of("sketch");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.str_field("scope"), Some("lane0.large_set"));
        assert_eq!(e.str_field("sketch"), Some("f2hh"));
        assert_eq!(e.u64_field("updates"), Some(9));
        assert_eq!(e.u64_field("fill"), Some(4));
        assert_eq!(e.u64_field("capacity"), Some(8));
        assert_eq!(e.u64_field("evictions"), Some(1));
        assert_eq!(e.u64_field("prunes"), Some(2));
        assert_eq!(e.u64_field("merges"), Some(3));
    }

    #[test]
    fn summary_table_lists_counters_gauges_and_census() {
        let rec = Recorder::enabled();
        rec.incr("edges", 3);
        rec.gauge("estimate", 7.5);
        rec.event("lane", &[]);
        rec.event("lane", &[]);
        let table = rec.summary_table();
        assert!(table.contains("edges"), "{table}");
        assert!(table.contains("estimate"), "{table}");
        assert!(table.contains("lane"), "{table}");
        assert!(table.contains('2'), "{table}");
    }

    #[test]
    fn non_finite_gauges_render_as_null() {
        let rec = Recorder::enabled();
        rec.gauge("bad", f64::NAN);
        let mut buf = Vec::new();
        rec.write_ndjson(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = json::Json::parse(text.trim()).unwrap();
        assert!(matches!(parsed.get("value"), Some(json::Json::Null)));
    }
}
