//! Minimal JSON tree: a hand-rolled recursive-descent parser and
//! renderer over `std`, shared by the NDJSON validation paths (CI, CLI
//! tests) and the bench binaries that emit `results/BENCH_*.json`.
//!
//! Numbers are kept as `f64` (ample for telemetry: counts here stay
//! far below 2⁵³). Object keys keep insertion order so rendered files
//! are stable and diff-friendly.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integer or float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document. Trailing content (other than
    /// whitespace) is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Render as indented JSON text (`indent` spaces per level).
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 1e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => push_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    push_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from key/value pairs (convenience for emitters).
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Telemetry strings never need surrogate pairs;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "x"}, null], "c": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(Json::as_arr)
                .and_then(|a| a[1].get("b"))
                .and_then(Json::as_str),
            Some("x")
        );
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn render_parse_round_trip() {
        let v = Json::obj(vec![
            ("name", "exp_throughput".into()),
            ("rows", Json::Arr(vec![
                Json::obj(vec![("alpha", 2.0.into()), ("meps", 1.25.into())]),
                Json::obj(vec![("alpha", 8.0.into()), ("meps", 2.5.into())]),
            ])),
            ("ok", true.into()),
            ("note", Json::Null),
        ]);
        let compact = v.render();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.render_pretty(2);
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
    }

    #[test]
    fn escaped_strings_round_trip() {
        let v = Json::Str("a\"b\\c\nd\u{3}".into());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }
}
