//! `bench_compare` binary edge cases: each degenerate input must be a
//! clear non-zero exit with a diagnostic on stderr, never a vacuous
//! `PASS`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bench_compare")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn bench_compare")
}

fn tmp(name: &str, contents: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("bench-compare-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp json");
    path
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn baseline_without_suffix_keys_is_rejected_not_vacuously_passed() {
    // No *edges_per_s / *words leaves anywhere: identity keys only.
    let base = tmp("nosuffix-base.json", r#"{"n": 100, "m": 10, "k": 5, "seed": 1}"#);
    let fresh = tmp("nosuffix-fresh.json", r#"{"n": 100, "m": 10, "k": 5, "seed": 1}"#);
    let out = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "identical suffix-free documents must not PASS: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = stderr(&out);
    assert!(
        err.contains("nothing to gate"),
        "expected a vacuous-gate diagnostic, got: {err}"
    );
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(fresh);
}

#[test]
fn gated_documents_still_pass_and_fail_as_before() {
    let base = tmp(
        "gated-base.json",
        r#"{"n": 100, "edges_per_s": 1000.0, "estimator_words": 50}"#,
    );
    let ok = tmp(
        "gated-ok.json",
        r#"{"n": 100, "edges_per_s": 900.0, "estimator_words": 50}"#,
    );
    let out = run(&[base.to_str().unwrap(), ok.to_str().unwrap()]);
    assert!(out.status.success(), "within-tolerance run failed: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    let bloated = tmp(
        "gated-bloated.json",
        r#"{"n": 100, "edges_per_s": 1000.0, "estimator_words": 51}"#,
    );
    let out = run(&[base.to_str().unwrap(), bloated.to_str().unwrap()]);
    assert!(!out.status.success(), "space increase must fail");
    assert!(stderr(&out).contains("space regression"), "{}", stderr(&out));
    for p in [base, ok, bloated] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn missing_files_and_malformed_json_are_clear_errors() {
    let out = run(&["/nonexistent/base.json", "/nonexistent/fresh.json"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("read /nonexistent/base.json"), "{}", stderr(&out));

    let good = tmp("err-good.json", r#"{"edges_per_s": 1.0}"#);
    let bad = tmp("err-bad.json", "{not json");
    let out = run(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("parse"), "{}", stderr(&out));
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn usage_and_tolerance_validation() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));

    let a = tmp("tol-a.json", r#"{"edges_per_s": 1.0}"#);
    let out = run(&[a.to_str().unwrap(), a.to_str().unwrap(), "--tolerance", "2.0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("tolerance"), "{}", stderr(&out));
    let _ = std::fs::remove_file(a);
}
