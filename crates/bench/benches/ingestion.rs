//! Per-edge vs batched ingestion (the batched ingestion engine's reason
//! to exist): wall-clock of a full pass through `MaxCoverEstimator` on
//! an RMAT workload, comparing `observe` against `observe_batch` across
//! batch sizes and thread counts. The estimates must be bit-identical
//! in every configuration — the bench asserts it while measuring.

use std::hint::black_box;

use kcov_bench::{coarse_config, fmt, median_secs, print_table};
use kcov_core::MaxCoverEstimator;
use kcov_stream::gen::{rmat_incidence, RmatParams};
use kcov_stream::{edge_stream, ArrivalOrder};

fn main() {
    let (n, m, k, alpha) = (50_000usize, 4_000usize, 64usize, 8.0f64);
    let system = rmat_incidence(n, m, 600_000, RmatParams::default(), 11);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(5));
    let total = edges.len() as f64;
    let config = coarse_config(3, n, 1);

    let reference = MaxCoverEstimator::run(n, m, k, alpha, &config, &edges);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let serial_secs = median_secs(
        || {
            black_box(MaxCoverEstimator::run(n, m, k, alpha, &config, &edges));
        },
        3,
    );
    rows.push(vec![
        "per-edge observe".into(),
        "-".into(),
        "1".into(),
        fmt(serial_secs * 1e3),
        fmt(total / serial_secs / 1e6),
        "1.00".into(),
    ]);

    for &batch in &[256usize, 4096, 65_536] {
        for &threads in &[1usize, 2, 4] {
            let config = config.clone().with_threads(threads);
            let out = MaxCoverEstimator::run_batched(n, m, k, alpha, &config, &edges, batch);
            assert_eq!(
                reference.estimate.to_bits(),
                out.estimate.to_bits(),
                "batched path diverged at batch={batch} threads={threads}"
            );
            let secs = median_secs(
                || {
                    black_box(MaxCoverEstimator::run_batched(
                        n, m, k, alpha, &config, &edges, batch,
                    ));
                },
                3,
            );
            rows.push(vec![
                "observe_batch".into(),
                batch.to_string(),
                threads.to_string(),
                fmt(secs * 1e3),
                fmt(total / secs / 1e6),
                format!("{:.2}", serial_secs / secs),
            ]);
        }
    }

    print_table(
        &format!(
            "ingestion: per-edge vs batched (rmat n={n} m={m}, {} edges, k={k}, alpha={alpha})",
            edges.len()
        ),
        &["path", "batch", "threads", "ms", "Medges/s", "speedup"],
        &rows,
    );
    println!("all configurations produced bit-identical estimates");

    // shard_merge group: the stream split across S merged estimator
    // replicas (DESIGN.md §8). Timing includes replica cloning and the
    // finalize-time merge fold.
    let mut shard_rows: Vec<Vec<String>> = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let config = config.clone().with_shards(shards);
        let out = MaxCoverEstimator::run_sharded(n, m, k, alpha, &config, &edges, 4096);
        assert_eq!(
            reference.estimate.to_bits(),
            out.estimate.to_bits(),
            "sharded path diverged at shards={shards}"
        );
        let secs = median_secs(
            || {
                black_box(MaxCoverEstimator::run_sharded(
                    n, m, k, alpha, &config, &edges, 4096,
                ));
            },
            3,
        );
        shard_rows.push(vec![
            "run_sharded".into(),
            "4096".into(),
            shards.to_string(),
            fmt(secs * 1e3),
            fmt(total / secs / 1e6),
            format!("{:.2}", serial_secs / secs),
        ]);
    }
    print_table(
        "shard_merge: stream sharded across merged replicas",
        &["path", "batch", "shards", "ms", "Medges/s", "speedup"],
        &shard_rows,
    );
    println!("all shard counts produced estimates identical to the serial pass");
}
