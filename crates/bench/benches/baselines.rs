//! Criterion benchmarks of the baselines (E1 companion): end-to-end
//! wall-clock of each algorithm class on a shared mid-size workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use kcov_baselines::{greedy_max_cover, mv_set_arrival, MvEdgeArrival, SieveStreaming, SketchedGreedy, SwapStreaming};
use kcov_stream::gen::uniform_fixed_size;
use kcov_stream::{edge_stream, ArrivalOrder};

fn bench_baselines(c: &mut Criterion) {
    let (n, m, k) = (5_000usize, 800usize, 20usize);
    let system = uniform_fixed_size(n, m, 60, 1);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(2));
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));

    group.bench_function("greedy_offline", |b| {
        b.iter(|| black_box(greedy_max_cover(&system, k)))
    });
    group.bench_function("sieve_streaming", |b| {
        b.iter(|| black_box(SieveStreaming::run(&system, k, 0.2)))
    });
    group.bench_function("saha_getoor_swap", |b| {
        b.iter(|| black_box(SwapStreaming::run(&system, k)))
    });
    group.bench_function("mv_set_arrival", |b| {
        b.iter(|| black_box(mv_set_arrival(&system, k, 0.2)))
    });
    group.bench_function("mv_edge_arrival", |b| {
        b.iter(|| black_box(MvEdgeArrival::run(n, m, k, 0.4, 3, &edges)))
    });
    group.bench_function("bem_sketched_greedy", |b| {
        b.iter(|| black_box(SketchedGreedy::run(m, 48, 5, &edges, k)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
