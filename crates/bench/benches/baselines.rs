//! Benchmarks of the baselines (E1 companion): end-to-end wall-clock of
//! each algorithm class on a shared mid-size workload. Std-only timing
//! harness.

use std::hint::black_box;

use kcov_baselines::{
    greedy_max_cover, mv_set_arrival, MvEdgeArrival, SieveStreaming, SketchedGreedy, SwapStreaming,
};
use kcov_bench::{fmt, median_secs, print_table};
use kcov_stream::gen::uniform_fixed_size;
use kcov_stream::{edge_stream, ArrivalOrder};

fn main() {
    let (n, m, k) = (5_000usize, 800usize, 20usize);
    let system = uniform_fixed_size(n, m, 60, 1);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(2));
    let total = edges.len() as f64;

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut bench = |name: &str, f: &mut dyn FnMut()| {
        let secs = median_secs(f, 5);
        rows.push(vec![name.to_string(), fmt(secs * 1e3), fmt(total / secs / 1e6)]);
    };

    bench("greedy_offline", &mut || {
        black_box(greedy_max_cover(&system, k));
    });
    bench("sieve_streaming", &mut || {
        black_box(SieveStreaming::run(&system, k, 0.2));
    });
    bench("saha_getoor_swap", &mut || {
        black_box(SwapStreaming::run(&system, k));
    });
    bench("mv_set_arrival", &mut || {
        black_box(mv_set_arrival(&system, k, 0.2));
    });
    bench("mv_edge_arrival", &mut || {
        black_box(MvEdgeArrival::run(n, m, k, 0.4, 3, &edges));
    });
    bench("bem_sketched_greedy", &mut || {
        black_box(SketchedGreedy::run(m, 48, 5, &edges, k));
    });

    print_table(
        &format!("baselines end-to-end (n={n}, m={m}, k={k}, {} edges)", edges.len()),
        &["algorithm", "ms", "Medges/s"],
        &rows,
    );
}
