//! Micro-benchmarks of the sketch substrate (E7 companion): per-update
//! throughput of every sketch on the estimator's hot path, plus the
//! batched entry points. Run with `cargo bench -p kcov-bench --bench
//! sketches` — std-only timing harness, no external dependency.

use std::hint::black_box;

use kcov_bench::{fmt, median_ns_per_op, print_table};
use kcov_sketch::{
    AmsF2, ContributingConfig, CountSketch, F2Contributing, F2HeavyHitter, Kmv, L0Estimator,
};

const RUNS: usize = 5;
const MIN_MS: u64 = 10;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |name: &str, ns: f64| {
        rows.push(vec![name.to_string(), fmt(ns), fmt(1e9 / ns / 1e6)]);
    };

    {
        let mut kmv = Kmv::new(64, 1);
        let mut i = 0u64;
        row(
            "kmv64_insert",
            median_ns_per_op(
                || {
                    i = i.wrapping_add(0x9e3779b97f4a7c15);
                    kmv.insert(black_box(i));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    {
        // Batched KMV: amortizes the cut-off lookup over the chunk.
        let mut kmv = Kmv::new(64, 1);
        let mut i = 0u64;
        let chunk: Vec<u64> = (0..1024u64)
            .map(|j| j.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let ns_chunk = median_ns_per_op(
            || {
                i = i.wrapping_add(1);
                kmv.insert_batch(black_box(&chunk));
            },
            RUNS,
            MIN_MS,
        );
        row("kmv64_insert_batch1024(per-item)", ns_chunk / 1024.0);
    }
    {
        let mut est = L0Estimator::new(64, 5, 1);
        let mut i = 0u64;
        row(
            "l0_64x5_insert",
            median_ns_per_op(
                || {
                    i = i.wrapping_add(0x9e3779b97f4a7c15);
                    est.insert(black_box(i));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    for cols in [8usize, 32] {
        let mut sk = AmsF2::new(3, cols, 1);
        let mut i = 0u64;
        row(
            &format!("ams_3x{cols}_insert"),
            median_ns_per_op(
                || {
                    i = i.wrapping_add(1);
                    sk.insert(black_box(i % 1000));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    for width in [64usize, 4096] {
        let mut cs = CountSketch::new(5, width, 1);
        let mut i = 0u64;
        row(
            &format!("count_sketch_w{width}_insert"),
            median_ns_per_op(
                || {
                    i = i.wrapping_add(1);
                    cs.insert(black_box(i % 10_000));
                },
                RUNS,
                MIN_MS,
            ),
        );
        for j in 0..10_000u64 {
            cs.insert(j);
        }
        let mut i = 0u64;
        row(
            &format!("count_sketch_w{width}_query"),
            median_ns_per_op(
                || {
                    i = i.wrapping_add(1);
                    black_box(cs.query(black_box(i % 10_000)));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    for phi in [0.1f64, 0.01] {
        let mut hh = F2HeavyHitter::for_phi(phi, 1);
        let mut i = 0u64;
        row(
            &format!("heavy_hitter_phi{phi}_insert"),
            median_ns_per_op(
                || {
                    i = i.wrapping_add(1);
                    hh.insert(black_box(i % 3_000));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    {
        let mut fc = F2Contributing::new(ContributingConfig::new(0.05, 1024), 100_000, 100_000, 1);
        let mut i = 0u64;
        row(
            "contributing_g0.05_r1024_insert",
            median_ns_per_op(
                || {
                    i = i.wrapping_add(1);
                    fc.insert(black_box(i % 20_000));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    {
        // Batched contributing: one sampling-hash evaluation per item.
        let mut fc = F2Contributing::new(ContributingConfig::new(0.05, 1024), 100_000, 100_000, 1);
        let chunk: Vec<u64> = (0..1024u64).map(|j| j % 20_000).collect();
        let ns_chunk = median_ns_per_op(|| fc.insert_batch(black_box(&chunk)), RUNS, MIN_MS);
        row("contributing_insert_batch1024(per-item)", ns_chunk / 1024.0);
    }

    print_table("sketch micro-benchmarks", &["op", "ns/op", "Mops/s"], &rows);
}
