//! Criterion micro-benchmarks of the sketch substrate (E7 companion):
//! per-update throughput of every sketch on the estimator's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kcov_sketch::{
    AmsF2, ContributingConfig, CountSketch, F2Contributing, F2HeavyHitter, Kmv, L0Estimator,
};

fn bench_l0(c: &mut Criterion) {
    let mut group = c.benchmark_group("l0");
    group.throughput(Throughput::Elements(1));
    group.bench_function("kmv64_insert", |b| {
        let mut kmv = Kmv::new(64, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            kmv.insert(black_box(i));
        });
    });
    group.bench_function("estimator64x5_insert", |b| {
        let mut est = L0Estimator::new(64, 5, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            est.insert(black_box(i));
        });
    });
    group.finish();
}

fn bench_f2(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2");
    group.throughput(Throughput::Elements(1));
    for cols in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("ams_insert", cols), &cols, |b, &cols| {
            let mut sk = AmsF2::new(3, cols, 1);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                sk.insert(black_box(i % 1000));
            });
        });
    }
    group.finish();
}

fn bench_count_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch");
    group.throughput(Throughput::Elements(1));
    for width in [64usize, 4096] {
        group.bench_with_input(BenchmarkId::new("insert", width), &width, |b, &w| {
            let mut cs = CountSketch::new(5, w, 1);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                cs.insert(black_box(i % 10_000));
            });
        });
        group.bench_with_input(BenchmarkId::new("query", width), &width, |b, &w| {
            let mut cs = CountSketch::new(5, w, 1);
            for i in 0..10_000u64 {
                cs.insert(i);
            }
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(cs.query(black_box(i % 10_000)));
            });
        });
    }
    group.finish();
}

fn bench_heavy_hitter(c: &mut Criterion) {
    let mut group = c.benchmark_group("heavy_hitter");
    group.throughput(Throughput::Elements(1));
    for phi in [0.1f64, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("insert", format!("phi={phi}")),
            &phi,
            |b, &phi| {
                let mut hh = F2HeavyHitter::for_phi(phi, 1);
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    hh.insert(black_box(i % 3_000));
                });
            },
        );
    }
    group.finish();
}

fn bench_contributing(c: &mut Criterion) {
    let mut group = c.benchmark_group("contributing");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_gamma0.05_r1024", |b| {
        let mut fc =
            F2Contributing::new(ContributingConfig::new(0.05, 1024), 100_000, 100_000, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            fc.insert(black_box(i % 20_000));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_l0,
    bench_f2,
    bench_count_sketch,
    bench_heavy_hitter,
    bench_contributing
);
criterion_main!(benches);
