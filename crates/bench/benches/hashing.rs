//! Criterion micro-benchmarks of the hash families — every sketch
//! update bottoms out in these evaluations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kcov_hash::{four_wise, log_wise, pairwise, MultiplyShift, RangeHash, SignHash, TabulationHash};

fn bench_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly_hash");
    group.throughput(Throughput::Elements(1));
    for (name, h) in [
        ("pairwise", pairwise(1)),
        ("four_wise", four_wise(1)),
        ("log_wise_1e6", log_wise(1_000_000, 1_000_000, 1)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &h, |b, h| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9e3779b97f4a7c15);
                black_box(h.hash(black_box(i)));
            });
        });
    }
    group.finish();
}

fn bench_others(c: &mut Criterion) {
    let mut group = c.benchmark_group("other_hashes");
    group.throughput(Throughput::Elements(1));
    group.bench_function("tabulation", |b| {
        let h = TabulationHash::new(1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            black_box(h.hash_u64(black_box(i)));
        });
    });
    group.bench_function("multiply_shift", |b| {
        let h = MultiplyShift::new(20, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            black_box(h.hash(black_box(i)));
        });
    });
    group.bench_function("sign_hash", |b| {
        let h = SignHash::new(1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            black_box(h.sign(black_box(i)));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_poly, bench_others);
criterion_main!(benches);
