//! Micro-benchmarks of the hash families — every sketch update bottoms
//! out in these evaluations. Std-only timing harness.

use std::hint::black_box;

use kcov_bench::{fmt, median_ns_per_op, print_table};
use kcov_hash::{four_wise, log_wise, pairwise, MultiplyShift, RangeHash, SignHash, TabulationHash};

const RUNS: usize = 5;
const MIN_MS: u64 = 10;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |name: &str, ns: f64| {
        rows.push(vec![name.to_string(), fmt(ns), fmt(1e9 / ns / 1e6)]);
    };

    for (name, h) in [
        ("pairwise", pairwise(1)),
        ("four_wise", four_wise(1)),
        ("log_wise_1e6", log_wise(1_000_000, 1_000_000, 1)),
    ] {
        let mut i = 0u64;
        row(
            name,
            median_ns_per_op(
                || {
                    i = i.wrapping_add(0x9e3779b97f4a7c15);
                    black_box(h.hash(black_box(i)));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    {
        let h = TabulationHash::new(1);
        let mut i = 0u64;
        row(
            "tabulation",
            median_ns_per_op(
                || {
                    i = i.wrapping_add(0x9e3779b97f4a7c15);
                    black_box(h.hash_u64(black_box(i)));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    {
        let h = MultiplyShift::new(20, 1);
        let mut i = 0u64;
        row(
            "multiply_shift",
            median_ns_per_op(
                || {
                    i = i.wrapping_add(0x9e3779b97f4a7c15);
                    black_box(h.hash(black_box(i)));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }
    {
        let h = SignHash::new(1);
        let mut i = 0u64;
        row(
            "sign_hash",
            median_ns_per_op(
                || {
                    i = i.wrapping_add(0x9e3779b97f4a7c15);
                    black_box(h.sign(black_box(i)));
                },
                RUNS,
                MIN_MS,
            ),
        );
    }

    print_table("hash micro-benchmarks", &["hash", "ns/eval", "Mevals/s"], &rows);
}
