//! Benchmarks of the paper's algorithms: per-edge observe throughput of
//! the oracle and the full estimator across α, plus end-to-end runs (E2
//! companion — the wall-clock side of the space/approximation
//! trade-off). Std-only timing harness.

use std::hint::black_box;

use kcov_bench::{fmt, median_ns_per_op, median_secs, print_table};
use kcov_core::{EstimatorConfig, MaxCoverEstimator, Oracle, Params};
use kcov_stream::gen::uniform_fixed_size;
use kcov_stream::{edge_stream, ArrivalOrder, Edge};

const RUNS: usize = 5;
const MIN_MS: u64 = 20;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();

    for alpha in [4.0f64, 16.0] {
        let params = Params::practical(2_000, 20_000, 64, alpha);
        let mut oracle = Oracle::new(20_000, &params, false, 1);
        let mut i = 0u64;
        let ns = median_ns_per_op(
            || {
                i = i.wrapping_add(1);
                oracle.observe(black_box(Edge::new(
                    (i % 2_000) as u32,
                    ((i * 7) % 20_000) as u32,
                )));
            },
            RUNS,
            MIN_MS,
        );
        rows.push(vec![
            format!("oracle_observe alpha={alpha}"),
            fmt(ns),
            fmt(1e9 / ns / 1e6),
        ]);
    }

    for alpha in [4.0f64, 16.0] {
        let mut config = EstimatorConfig::practical(1);
        config.reps = Some(1);
        let mut est = MaxCoverEstimator::new(20_000, 2_000, 64, alpha, &config);
        let mut i = 0u64;
        let ns = median_ns_per_op(
            || {
                i = i.wrapping_add(1);
                est.observe(black_box(Edge::new(
                    (i % 2_000) as u32,
                    ((i * 7) % 20_000) as u32,
                )));
            },
            RUNS,
            MIN_MS,
        );
        rows.push(vec![
            format!("estimator_observe alpha={alpha}"),
            fmt(ns),
            fmt(1e9 / ns / 1e6),
        ]);
    }

    print_table(
        "estimator per-edge throughput",
        &["op", "ns/edge", "Medges/s"],
        &rows,
    );

    // End-to-end: a full pass + finalize on a mid-size instance.
    let system = uniform_fixed_size(5_000, 1_000, 50, 3);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(1));
    let mut e2e: Vec<Vec<String>> = Vec::new();
    {
        let alpha = 8.0f64;
        let secs = median_secs(
            || {
                let mut config = EstimatorConfig::practical(7);
                config.reps = Some(1);
                black_box(MaxCoverEstimator::run(5_000, 1_000, 32, alpha, &config, &edges));
            },
            3,
        );
        e2e.push(vec![
            format!("end_to_end alpha={alpha}"),
            fmt(secs * 1e3),
            fmt(edges.len() as f64 / secs / 1e6),
        ]);
    }
    print_table(
        "estimator end-to-end (full pass + finalize)",
        &["run", "ms", "Medges/s"],
        &e2e,
    );
}
