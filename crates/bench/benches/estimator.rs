//! Criterion benchmarks of the paper's algorithms: per-edge observe
//! throughput of the oracle and the full estimator across α, plus
//! end-to-end runs (E2 companion — the wall-clock side of the
//! space/approximation trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kcov_core::{EstimatorConfig, MaxCoverEstimator, Oracle, Params};
use kcov_stream::gen::uniform_fixed_size;
use kcov_stream::{edge_stream, ArrivalOrder, Edge};

fn bench_oracle_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_observe");
    group.throughput(Throughput::Elements(1));
    for alpha in [4.0f64, 16.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha}")),
            &alpha,
            |b, &alpha| {
                let params = Params::practical(2_000, 20_000, 64, alpha);
                let mut oracle = Oracle::new(20_000, &params, false, 1);
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    oracle.observe(black_box(Edge::new(
                        (i % 2_000) as u32,
                        ((i * 7) % 20_000) as u32,
                    )));
                });
            },
        );
    }
    group.finish();
}

fn bench_estimator_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_observe");
    group.throughput(Throughput::Elements(1));
    for alpha in [4.0f64, 16.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha}")),
            &alpha,
            |b, &alpha| {
                let mut config = EstimatorConfig::practical(1);
                config.reps = Some(1);
                let mut est = MaxCoverEstimator::new(20_000, 2_000, 64, alpha, &config);
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    est.observe(black_box(Edge::new(
                        (i % 2_000) as u32,
                        ((i * 7) % 20_000) as u32,
                    )));
                });
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_end_to_end");
    group.sample_size(10);
    let system = uniform_fixed_size(5_000, 1_000, 50, 3);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(1));
    group.throughput(Throughput::Elements(edges.len() as u64));
    for alpha in [8.0f64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha}")),
            &alpha,
            |b, &alpha| {
                b.iter(|| {
                    let mut config = EstimatorConfig::practical(7);
                    config.reps = Some(1);
                    black_box(MaxCoverEstimator::run(5_000, 1_000, 32, alpha, &config, &edges))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oracle_observe,
    bench_estimator_observe,
    bench_end_to_end
);
criterion_main!(benches);
