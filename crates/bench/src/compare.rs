//! Regression comparison of two `BENCH_*.json` documents (a committed
//! baseline under `results/baseline/` vs a freshly generated file).
//!
//! The two documents must have the identical shape — the same keys in
//! the same order, the same array lengths — and every numeric leaf is
//! classified by its key name:
//!
//! * keys ending in `edges_per_s` are **throughput**: the fresh value
//!   may not fall more than `tolerance` (fractionally) below baseline,
//! * keys ending in `words` are **space**: any increase is a failure
//!   (space here is a deterministic function of the parameters, so
//!   there is no noise to tolerate),
//! * keys ending in `space_slope` are **slope**: the measured log-log
//!   space-vs-α slope (deterministic, fixed-seed) may not drift above
//!   baseline by more than `tolerance·|baseline|` — slopes are
//!   negative, so "above" means the scaling got shallower than the
//!   paper's `m/α²` contract,
//! * keys ending in `speedup` or `_ns` or containing `slope` (other
//!   than the gated `space_slope`) are informational (derived ratios
//!   or per-phase wall-clock timings) and are not checked as absolute
//!   values — but when an object holds **two or more** numeric `_ns`
//!   leaves present in both documents, the *shares* of those sibling
//!   phases are gated: absolute timings are host noise, yet how a
//!   fixed workload's wall clock splits across phases is a property of
//!   the code (the time ledger's attribution, DESIGN.md §15). A leaf's
//!   fraction of its group total may not grow more than `tolerance`
//!   (absolute share points) above baseline,
//! * every other leaf is **identity** (workload shape: `n`, `m`, `k`,
//!   `alpha`, `edges`, `lanes`, names, …) and must match exactly — a
//!   mismatch means the two files describe different experiments and
//!   the throughput/space verdicts would be meaningless.

use kcov_obs::json::Json;

/// Outcome of [`compare_bench`]: how many leaves were checked, the
/// regressions/mismatches found, and informational notes (throughput
/// ratios) for the log.
#[derive(Debug, Default)]
pub struct CompareReport {
    /// Leaves checked under any rule (identity, throughput, space).
    pub checked: usize,
    /// Leaves checked under the throughput rule (`*edges_per_s`).
    pub throughput_leaves: usize,
    /// Leaves checked under the space rule (`*words`).
    pub space_leaves: usize,
    /// Leaves checked under the slope rule (`*space_slope`).
    pub slope_leaves: usize,
    /// Leaves checked under the time-share rule (sibling `*_ns` groups).
    pub timeshare_leaves: usize,
    /// Human-readable failure descriptions; empty means pass.
    pub failures: Vec<String>,
    /// Per-throughput-leaf ratio lines, for context in CI logs.
    pub notes: Vec<String>,
    /// Measured fresh/baseline speedup per estimator throughput leaf
    /// (paths under an `estimator` array ending in `edges_per_s`) — the
    /// hot-path ratios the summary line reports.
    pub speedups: Vec<(String, f64)>,
}

impl CompareReport {
    /// True when no regression or shape mismatch was found.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// True when at least one throughput, space, slope, or time-share
    /// leaf was actually gated. A baseline with none of the tracked
    /// keys (`*edges_per_s`, `*words`, `*space_slope`, sibling `*_ns`
    /// groups) compares vacuously — the caller should treat that as an
    /// error, not a pass.
    pub fn gated_anything(&self) -> bool {
        self.throughput_leaves + self.space_leaves + self.slope_leaves + self.timeshare_leaves > 0
    }
}

enum Rule {
    Throughput,
    Space,
    Slope,
    /// `*_ns` leaves: gated on attribution *share*, not value, and
    /// only in sibling groups — the check runs at the object level
    /// (see [`time_share_check`]), so the per-leaf arm is a no-op.
    TimeShare,
    Identity,
    Informational,
}

fn rule_for(key: &str) -> Rule {
    if key.ends_with("space_slope") {
        // Checked before the generic `slope` informational match: the
        // measured space-vs-α slope is deterministic (fixed seeds) and
        // gated, while derived diagnostic slopes stay informational.
        Rule::Slope
    } else if key.ends_with("edges_per_s") {
        Rule::Throughput
    } else if key.ends_with("words") {
        Rule::Space
    } else if key.ends_with("_ns") {
        // Per-phase hot-path timings (hash / lane-reject /
        // sketch-update): absolute values vary per host and stay
        // unchecked, but sibling groups are gated on share drift at the
        // object level.
        Rule::TimeShare
    } else if key.ends_with("speedup") || key.contains("slope") {
        Rule::Informational
    } else {
        Rule::Identity
    }
}

/// Compare `fresh` against `baseline` with the given fractional
/// throughput `tolerance` (0.25 = fail when fresh throughput drops more
/// than 25% below baseline).
pub fn compare_bench(baseline: &Json, fresh: &Json, tolerance: f64) -> CompareReport {
    let mut report = CompareReport::default();
    walk(baseline, fresh, "$", tolerance, &mut report);
    report
}

/// The [`Rule::TimeShare`] gate, run per object: collect the numeric
/// `*_ns` leaves present in both documents; with two or more siblings
/// forming a phase group, gate each leaf's fraction of the group total
/// against baseline + `tol` share points. Lone `_ns` leaves and groups
/// where either total is zero (untraced runs) compare vacuously.
fn time_share_check(
    b: &[(String, Json)],
    f: &[(String, Json)],
    path: &str,
    tol: f64,
    report: &mut CompareReport,
) {
    let mut pairs: Vec<(&str, f64, f64)> = Vec::new();
    for (key, bv) in b {
        if !key.ends_with("_ns") {
            continue;
        }
        if let (Json::Num(bn), Some(Json::Num(fn_))) =
            (bv, f.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        {
            pairs.push((key, *bn, *fn_));
        }
    }
    if pairs.len() < 2 {
        return;
    }
    let bt: f64 = pairs.iter().map(|(_, bv, _)| bv).sum();
    let ft: f64 = pairs.iter().map(|(_, _, fv)| fv).sum();
    if bt <= 0.0 || ft <= 0.0 {
        return;
    }
    for (key, bv, fv) in pairs {
        report.checked += 1;
        report.timeshare_leaves += 1;
        let bs = bv / bt;
        let fs = fv / ft;
        report.notes.push(format!(
            "{path}.{key}: time share {:.1}% vs baseline {:.1}%",
            fs * 100.0,
            bs * 100.0
        ));
        if fs > bs + tol {
            report.failures.push(format!(
                "{path}.{key}: time-share regression, phase grew from {:.1}% to {:.1}% of its \
                 group (tolerance {:.0} share points)",
                bs * 100.0,
                fs * 100.0,
                tol * 100.0
            ));
        }
    }
}

fn walk(base: &Json, fresh: &Json, path: &str, tol: f64, report: &mut CompareReport) {
    match (base, fresh) {
        (Json::Obj(b), Json::Obj(f)) => {
            time_share_check(b, f, path, tol, report);
            for (key, bv) in b {
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => walk(bv, fv, &format!("{path}.{key}"), tol, report),
                    None => report
                        .failures
                        .push(format!("{path}.{key}: present in baseline, missing in fresh")),
                }
            }
            for (key, _) in f {
                if !b.iter().any(|(k, _)| k == key) {
                    report
                        .failures
                        .push(format!("{path}.{key}: present in fresh, missing in baseline"));
                }
            }
        }
        (Json::Arr(b), Json::Arr(f)) => {
            if b.len() != f.len() {
                report.failures.push(format!(
                    "{path}: array length {} in baseline vs {} in fresh",
                    b.len(),
                    f.len()
                ));
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                walk(bv, fv, &format!("{path}[{i}]"), tol, report);
            }
        }
        (Json::Num(b), Json::Num(f)) => {
            let key = path.rsplit('.').next().unwrap_or(path);
            let key = key.split('[').next().unwrap_or(key);
            match rule_for(key) {
                Rule::Informational => {}
                // Gated as a sibling group in the enclosing-object arm.
                Rule::TimeShare => {}
                Rule::Identity => {
                    report.checked += 1;
                    if b != f {
                        report.failures.push(format!(
                            "{path}: workload identity changed, baseline {b} vs fresh {f}"
                        ));
                    }
                }
                Rule::Space => {
                    report.checked += 1;
                    report.space_leaves += 1;
                    if f > b {
                        report.failures.push(format!(
                            "{path}: space regression, baseline {b} words vs fresh {f} words"
                        ));
                    }
                }
                Rule::Slope => {
                    report.checked += 1;
                    report.slope_leaves += 1;
                    let ceiling = b + b.abs() * tol;
                    report.notes.push(format!(
                        "{path}: slope {f:.4} vs baseline {b:.4} (ceiling {ceiling:.4})"
                    ));
                    if *f > ceiling {
                        report.failures.push(format!(
                            "{path}: space-slope regression, fresh {f:.4} is above baseline \
                             {b:.4} + {:.0}% tolerance (space scaling with alpha got shallower)",
                            tol * 100.0
                        ));
                    }
                }
                Rule::Throughput => {
                    report.checked += 1;
                    report.throughput_leaves += 1;
                    let floor = b * (1.0 - tol);
                    let ratio = if *b > 0.0 { f / b } else { f64::NAN };
                    report
                        .notes
                        .push(format!("{path}: {ratio:.2}x baseline ({f:.0} vs {b:.0} edges/s)"));
                    if path.contains("estimator") && ratio.is_finite() {
                        report.speedups.push((path.to_string(), ratio));
                    }
                    if *f < floor {
                        report.failures.push(format!(
                            "{path}: throughput regression, fresh {f:.0} edges/s is {:.0}% below \
                             baseline {b:.0} (tolerance {:.0}%)",
                            (1.0 - ratio) * 100.0,
                            tol * 100.0
                        ));
                    }
                }
            }
        }
        (b, f) => {
            report.checked += 1;
            if b != f {
                report
                    .failures
                    .push(format!("{path}: baseline {} vs fresh {}", b.render(), f.render()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Json::parse(text).expect("test doc")
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(r#"{"n": 100, "rows": [{"alpha": 2, "edges_per_s": 1000.0, "estimator_words": 50}]}"#);
        let r = compare_bench(&d, &d, 0.25);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.checked, 4);
    }

    #[test]
    fn throughput_within_tolerance_passes_beyond_fails() {
        let base = doc(r#"{"edges_per_s": 1000.0}"#);
        let ok = doc(r#"{"edges_per_s": 800.0}"#);
        assert!(compare_bench(&base, &ok, 0.25).passed());
        let faster = doc(r#"{"edges_per_s": 5000.0}"#);
        assert!(compare_bench(&base, &faster, 0.25).passed());
        let slow = doc(r#"{"edges_per_s": 700.0}"#);
        let r = compare_bench(&base, &slow, 0.25);
        assert!(!r.passed());
        assert!(r.failures[0].contains("throughput regression"), "{:?}", r.failures);
    }

    #[test]
    fn any_space_increase_fails() {
        let base = doc(r#"{"oracle_words": 100}"#);
        let r = compare_bench(&base, &doc(r#"{"oracle_words": 101}"#), 0.25);
        assert!(!r.passed());
        assert!(r.failures[0].contains("space regression"), "{:?}", r.failures);
        assert!(compare_bench(&base, &doc(r#"{"oracle_words": 99}"#), 0.25).passed());
        assert!(compare_bench(&base, &doc(r#"{"oracle_words": 100}"#), 0.25).passed());
    }

    #[test]
    fn gated_leaf_counts_distinguish_vacuous_passes() {
        let d = doc(r#"{"n": 100, "rows": [{"edges_per_s": 1000.0, "estimator_words": 50}]}"#);
        let r = compare_bench(&d, &d, 0.25);
        assert_eq!(r.throughput_leaves, 1);
        assert_eq!(r.space_leaves, 1);
        assert!(r.gated_anything());

        // Identity-only documents pass but gate nothing.
        let identity_only = doc(r#"{"n": 100, "name": "x", "k": 5}"#);
        let r = compare_bench(&identity_only, &identity_only, 0.25);
        assert!(r.passed());
        assert!(!r.gated_anything(), "{r:?}");
    }

    #[test]
    fn identity_leaves_must_match_exactly() {
        let base = doc(r#"{"workload": {"n": 100, "name": "x"}}"#);
        let r = compare_bench(&base, &doc(r#"{"workload": {"n": 101, "name": "x"}}"#), 0.25);
        assert!(!r.passed());
        assert!(r.failures[0].contains("identity"), "{:?}", r.failures);
        let r = compare_bench(&base, &doc(r#"{"workload": {"n": 100, "name": "y"}}"#), 0.25);
        assert!(!r.passed());
    }

    #[test]
    fn shape_drift_fails() {
        let base = doc(r#"{"rows": [{"a": 1}, {"a": 2}]}"#);
        let r = compare_bench(&base, &doc(r#"{"rows": [{"a": 1}]}"#), 0.25);
        assert!(!r.passed());
        assert!(r.failures[0].contains("array length"), "{:?}", r.failures);
        let r = compare_bench(&base, &doc(r#"{"rows": [{"a": 1}, {"b": 2}]}"#), 0.25);
        assert!(!r.passed());
    }

    #[test]
    fn speedup_and_diagnostic_slopes_are_informational() {
        let base = doc(r#"{"speedup": 2.0, "loglog_slope_lanes_vs_alpha": -2.0}"#);
        let fresh = doc(r#"{"speedup": 0.5, "loglog_slope_lanes_vs_alpha": -1.0}"#);
        assert!(compare_bench(&base, &fresh, 0.25).passed());
    }

    #[test]
    fn space_slope_is_gated_against_shallower_scaling() {
        let base = doc(r#"{"estimator_alpha_space_slope": -1.2}"#);
        // Identical and steeper (more negative) slopes pass.
        let r = compare_bench(&base, &base, 0.25);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.slope_leaves, 1);
        assert!(r.gated_anything());
        assert!(compare_bench(&base, &doc(r#"{"estimator_alpha_space_slope": -1.5}"#), 0.25).passed());
        // Within tolerance: -1.2 + 0.25·1.2 = -0.9 is the ceiling.
        assert!(compare_bench(&base, &doc(r#"{"estimator_alpha_space_slope": -0.95}"#), 0.25).passed());
        // Above the ceiling: the scaling got shallower than tolerated.
        let r = compare_bench(&base, &doc(r#"{"estimator_alpha_space_slope": -0.8}"#), 0.25);
        assert!(!r.passed());
        assert!(r.failures[0].contains("space-slope regression"), "{:?}", r.failures);
    }

    #[test]
    fn ledger_words_leaves_are_gated_as_space() {
        // The nested ledger section's `*ledger_words` leaves fall under
        // the existing any-increase-fails space rule via the `words`
        // suffix.
        let base = doc(r#"{"space_ledger": {"lane0_large_set_ledger_words": 963}}"#);
        let r = compare_bench(&base, &doc(r#"{"space_ledger": {"lane0_large_set_ledger_words": 964}}"#), 0.25);
        assert!(!r.passed());
        assert!(r.failures[0].contains("space regression"), "{:?}", r.failures);
        let r = compare_bench(&base, &base, 0.25);
        assert!(r.passed());
        assert_eq!(r.space_leaves, 1);
    }

    #[test]
    fn lone_ns_leaf_stays_informational() {
        // A single `_ns` leaf has no sibling group to take a share of;
        // its absolute value is host noise and must not gate.
        let base = doc(r#"{"total_ns": 100.0}"#);
        let fresh = doc(r#"{"total_ns": 9000.0}"#);
        let r = compare_bench(&base, &fresh, 0.25);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.checked, 0);
        assert!(!r.gated_anything());
    }

    #[test]
    fn ns_sibling_groups_gate_share_drift_not_absolutes() {
        // Uniformly 10x slower wall clock: every share is unchanged, so
        // the group passes even though every absolute value exploded.
        let base = doc(r#"{"hash_ns": 100.0, "lane_reject_ns": 50.0, "sketch_update_ns": 850.0}"#);
        let slower =
            doc(r#"{"hash_ns": 1000.0, "lane_reject_ns": 500.0, "sketch_update_ns": 8500.0}"#);
        let r = compare_bench(&base, &slower, 0.05);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.timeshare_leaves, 3);
        assert!(r.gated_anything());

        // Same total, but the hash phase grew from 10% to 30% of the
        // group — a real attribution shift, gated at 5 share points.
        let shifted =
            doc(r#"{"hash_ns": 300.0, "lane_reject_ns": 50.0, "sketch_update_ns": 650.0}"#);
        let r = compare_bench(&base, &shifted, 0.05);
        assert!(!r.passed());
        assert!(r.failures[0].contains("time-share regression"), "{:?}", r.failures);
    }

    #[test]
    fn untraced_zero_ns_groups_compare_vacuously() {
        // An untraced baseline (all-zero attribution) has no shares to
        // gate against; the group must not divide by zero or fail.
        let zeros = doc(r#"{"hash_ns": 0.0, "lane_reject_ns": 0.0}"#);
        let fresh = doc(r#"{"hash_ns": 70.0, "lane_reject_ns": 30.0}"#);
        let r = compare_bench(&zeros, &fresh, 0.05);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.timeshare_leaves, 0);
        assert!(!r.gated_anything());
        let r = compare_bench(&fresh, &zeros, 0.05);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.timeshare_leaves, 0);
    }

    #[test]
    fn estimator_throughput_leaves_report_measured_speedups() {
        let base = doc(
            r#"{"estimator": [{"alpha": 2, "edges_per_s": 1000.0}], "baselines": [{"edges_per_s": 400.0}]}"#,
        );
        let fresh = doc(
            r#"{"estimator": [{"alpha": 2, "edges_per_s": 12000.0}], "baselines": [{"edges_per_s": 400.0}]}"#,
        );
        let r = compare_bench(&base, &fresh, 0.25);
        assert!(r.passed(), "{:?}", r.failures);
        // Only the estimator leaf lands in the speedup summary; the
        // baseline leaf stays a plain throughput note.
        assert_eq!(r.speedups.len(), 1, "{:?}", r.speedups);
        assert!(r.speedups[0].0.contains("estimator"), "{:?}", r.speedups);
        assert!((r.speedups[0].1 - 12.0).abs() < 1e-9, "{:?}", r.speedups);
        assert_eq!(r.notes.len(), 2);
    }
}
