//! Shared utilities for the experiment binaries (`src/bin/exp_*.rs`)
//! and the dependency-free timing benches (`benches/*.rs`).
//!
//! Each experiment binary regenerates one row of the experiment index in
//! DESIGN.md §5 / EXPERIMENTS.md, printing fixed-width tables to stdout.
//! The benches use [`median_ns_per_op`] / [`time_once`] — a std-only
//! harness (calibrated batch sizes, median of repeated batches) so the
//! workspace builds offline with no external crates.

use std::time::Instant;

pub mod compare;

/// True when `KCOV_BENCH_SMOKE` is set (non-empty, not `"0"`): the
/// experiment binaries shrink to a seconds-scale fixed workload meant
/// for the CI regression gate, keeping the JSON schema unchanged.
pub fn bench_smoke() -> bool {
    std::env::var("KCOV_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Output path for a `BENCH_*.json` file: `KCOV_BENCH_OUT` overrides
/// `default` so CI can write fresh results next to (not on top of) the
/// committed ones.
pub fn bench_out_path(default: &str) -> String {
    std::env::var("KCOV_BENCH_OUT").unwrap_or_else(|_| default.to_string())
}

/// Median nanoseconds per call of `op` (one logical element per call).
/// Calibrates the batch size until one batch takes ≥ `min_batch_ms`,
/// then reports the median over `runs` batches — the standard defense
/// against timer granularity and transient noise without an external
/// benchmarking dependency.
pub fn median_ns_per_op<F: FnMut()>(mut op: F, runs: usize, min_batch_ms: u64) -> f64 {
    assert!(runs >= 1);
    // Calibration: double the batch until it runs long enough to time.
    let mut batch: u64 = 16;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            op();
        }
        let el = t.elapsed();
        if el.as_millis() >= min_batch_ms as u128 || batch >= 1 << 30 {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                op();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// Wall-clock seconds of a single invocation (for end-to-end runs too
/// slow to batch); returns `(seconds, result)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64(), out)
}

/// Median wall-clock seconds of `runs` invocations of `f`.
pub fn median_secs(mut f: impl FnMut(), runs: usize) -> f64 {
    assert!(runs >= 1);
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// An estimator config with a coarser z-guess grid (factor 4 instead of
/// 2) and `reps` repetitions per guess. Costs only a constant factor in
/// the approximation (a guess within 4× of OPT still exists) and makes
/// the polylog lane-count constants commensurate with laptop-scale
/// instances; every experiment states when it uses this.
pub fn coarse_config(seed: u64, n: usize, reps: usize) -> kcov_core::EstimatorConfig {
    let mut config = kcov_core::EstimatorConfig::practical(seed);
    let mut zs = Vec::new();
    let mut z = 16u64;
    while z < 2 * n as u64 {
        zs.push(z);
        z *= 4;
    }
    config.z_guesses = Some(zs);
    config.reps = Some(reps.max(1));
    config
}

/// Per-phase cost breakdown of the estimator's batched hot path over a
/// prepared stream (see DESIGN.md §12/§15): a *single* timed ingest,
/// attributed post-hoc by the estimator's own time ledger
/// ([`kcov_core::MaxCoverEstimator::time_ledger_tree`]) instead of the
/// old re-run-each-phase pricing, so no phase is ever paid twice and
/// the breakdown is exactly the one `maxkcov prof --time` reports.
///
/// * `hash_ns` — shared per-batch preprocessing: fingerprint-column
///   fill (the only place raw ids are hashed) plus the universe mix
///   (the `fingerprints` and `universe` ledger leaves).
/// * `lane_reject_ns` — every lane's universe reduction (the
///   `lane*/reducer` leaves): the work spent deciding an edge does
///   *not* reach a sketch.
/// * `sketch_update_ns` — the lanes' oracle subtrees: admission gates
///   plus sketch updates for surviving edges.
/// * `total_ns` — full batched-ingest wall clock; the three attributed
///   parts are nested inside it, so their sum is ≤ `total_ns` with the
///   gap being loop overhead.
#[derive(Debug, Clone, Copy)]
pub struct HotPathBreakdown {
    /// Fingerprint fill + universe mix time, ns.
    pub hash_ns: u64,
    /// Lane universe-reduction time, ns.
    pub lane_reject_ns: u64,
    /// Oracle (admission + sketch-update) time, ns.
    pub sketch_update_ns: u64,
    /// Full batched-ingest wall clock, ns.
    pub total_ns: u64,
}

/// Split a time ledger into the three hot-path phases: shared
/// preprocessing leaves, per-lane `reducer` leaves, and everything else
/// under each lane (the oracle subtree, including any direct ns parked
/// on the lane node by the bare-leaf apportion fallback).
fn ledger_phases(ledger: &kcov_obs::TimeLedger) -> (u64, u64, u64) {
    let root = &ledger.root;
    let hash = root.get("fingerprints").map_or(0, |n| n.total_ns())
        + root.get("universe").map_or(0, |n| n.total_ns());
    let mut reject = 0u64;
    let mut update = 0u64;
    for (name, lane) in root.children() {
        if !name.starts_with("lane") {
            continue;
        }
        update += lane.ns;
        for (child, node) in lane.children() {
            if child == "reducer" {
                reject += node.total_ns();
            } else {
                update += node.total_ns();
            }
        }
    }
    (hash, reject, update)
}

/// Measure a [`HotPathBreakdown`] by driving `est` over `edges` in
/// chunks of `batch` exactly once, with a live recorder attached so the
/// batch-granular clocks run; the ledger delta across the ingest is the
/// attribution. The estimator ends in the same state as a plain batched
/// ingest of the stream, with its original recorder restored.
pub fn hot_path_breakdown(
    est: &mut kcov_core::MaxCoverEstimator,
    edges: &[kcov_stream::Edge],
    batch: usize,
) -> HotPathBreakdown {
    let batch = batch.max(1);
    assert!(
        est.fingerprints().is_some(),
        "hot-path breakdown needs a non-trivial estimator"
    );
    let (hash0, reject0, update0) = ledger_phases(&est.time_ledger_tree());
    let rec = kcov_obs::Recorder::enabled();
    est.attach_recorder(&rec);
    let t = Instant::now();
    for chunk in edges.chunks(batch) {
        est.observe_batch(chunk);
    }
    let total_ns = t.elapsed().as_nanos() as u64;
    est.attach_recorder(&kcov_obs::Recorder::disabled());
    let (hash, reject, update) = ledger_phases(&est.time_ledger_tree());
    HotPathBreakdown {
        hash_ns: hash.saturating_sub(hash0),
        lane_reject_ns: reject.saturating_sub(reject0),
        sketch_update_ns: update.saturating_sub(update0),
        total_ns,
    }
}

/// Print a fixed-width table: a header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Least-squares slope of `log y` against `log x` — the empirical
/// power-law exponent of a sweep (e.g. space vs α should give ≈ −2).
pub fn log_log_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.max(1e-12).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    let var: f64 = lx.iter().map(|&a| (a - mx) * (a - mx)).sum();
    cov / var
}

/// Geometric mean.
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|&x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Format a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_perfect_power_law() {
        let xs = [1.0f64, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 * x.powf(-2.0)).collect();
        let s = log_log_slope(&xs, &ys);
        assert!((s + 2.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_of_flat_series_is_zero() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [3.0, 3.0, 3.0];
        assert!(log_log_slope(&xs, &ys).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_basic() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geo_mean(&[8.0]) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.0), "12345");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.2345), "1.234");
    }

    #[test]
    fn median_ns_per_op_is_positive_and_sane() {
        let mut x = 0u64;
        let ns = median_ns_per_op(
            || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            },
            3,
            1,
        );
        assert!(ns > 0.0 && ns < 1e6, "ns/op {ns}");
        assert!(x != 0);
    }

    #[test]
    fn time_once_returns_result() {
        let (secs, v) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn median_secs_smoke() {
        let s = median_secs(|| std::hint::black_box(()), 3);
        assert!(s >= 0.0);
    }

    #[test]
    fn print_table_smoke() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }
}
