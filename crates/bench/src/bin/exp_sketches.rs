//! E7 — substrate validation (Theorems 2.10, 2.11, 2.12): accuracy and
//! space of the sketches the max-coverage algorithm is built from.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_sketches
//! ```

use kcov_bench::{fmt, print_table};
use kcov_hash::SplitMix64;
use kcov_sketch::{
    AmsF2, ContributingConfig, F2Contributing, F2HeavyHitter, L0Estimator, SpaceUsage,
};

fn main() {
    println!("E7: sketch substrate accuracy/space (Theorems 2.10-2.12)");

    // L0 estimation: error vs space (Theorem 2.12 wants (1±1/2), Õ(1)).
    let mut rows = Vec::new();
    for k in [16usize, 32, 64, 128, 256] {
        let mut max_rel = 0.0f64;
        let mut space = 0usize;
        for seed in 0..10u64 {
            let mut est = L0Estimator::new(k, 5, seed);
            let truth = 40_000u64;
            for i in 0..truth {
                est.insert(i.wrapping_mul(0x9e3779b97f4a7c15));
            }
            let rel = (est.estimate() - truth as f64).abs() / truth as f64;
            max_rel = max_rel.max(rel);
            space = space.max(est.space_words());
        }
        rows.push(vec![
            k.to_string(),
            space.to_string(),
            fmt(max_rel),
            fmt(1.0 / (k as f64).sqrt()),
        ]);
    }
    print_table(
        "L0 estimation: worst relative error over 10 seeds (n=40k distinct)",
        &["bottom-k", "space(words)", "max rel err", "1/sqrt(k)"],
        &rows,
    );

    // AMS F2: error vs columns.
    let mut rows = Vec::new();
    for cols in [16usize, 64, 256] {
        let mut max_rel = 0.0f64;
        for seed in 0..10u64 {
            let mut sk = AmsF2::new(5, cols, seed);
            let mut rng = SplitMix64::new(seed);
            let mut truth = 0.0;
            for item in 0..2000u64 {
                let f = 1 + rng.next_below(20);
                truth += (f * f) as f64;
                for _ in 0..f {
                    sk.insert(item);
                }
            }
            max_rel = max_rel.max((sk.estimate() - truth).abs() / truth);
        }
        rows.push(vec![
            cols.to_string(),
            max_rel.to_string().chars().take(6).collect(),
            fmt(1.0 / (cols as f64).sqrt()),
        ]);
    }
    print_table(
        "AMS F2: worst relative error over 10 seeds (2000 items, Zipf-ish)",
        &["cols", "max rel err", "1/sqrt(cols)"],
        &rows,
    );

    // F2 heavy hitters: recall of planted heavy items (Theorem 2.10).
    let mut rows = Vec::new();
    for phi in [0.2f64, 0.05, 0.01] {
        let mut recall_hits = 0usize;
        let mut recall_total = 0usize;
        let mut space = 0usize;
        for seed in 0..10u64 {
            let mut hh = F2HeavyHitter::for_phi(phi, seed);
            // Heavy items sized to be exactly phi-heavy with margin 2x.
            let noise_items = 5_000u64;
            let heavy_count = (0.5 / phi) as u64;
            let f2_noise = noise_items as f64;
            let heavy_freq = ((2.0 * phi * f2_noise).sqrt() as u64 + 2)
                .max((2.0 * phi / (1.0 - 2.0 * phi * heavy_count as f64).max(0.1)
                    * f2_noise)
                    .sqrt() as u64
                    + 2);
            for h in 0..heavy_count {
                for _ in 0..heavy_freq {
                    hh.insert(1_000_000 + h);
                }
            }
            for i in 0..noise_items {
                hh.insert(i);
            }
            let f2 = heavy_count as f64 * (heavy_freq * heavy_freq) as f64 + f2_noise;
            let out = hh.heavy_hitters();
            for h in 0..heavy_count {
                if (heavy_freq * heavy_freq) as f64 >= phi * f2 {
                    recall_total += 1;
                    if out.iter().any(|x| x.item == 1_000_000 + h) {
                        recall_hits += 1;
                    }
                }
            }
            space = space.max(hh.space_words());
        }
        rows.push(vec![
            fmt(phi),
            format!("{recall_hits}/{recall_total}"),
            space.to_string(),
            fmt(1.0 / phi),
        ]);
    }
    print_table(
        "F2 heavy hitters: recall of phi-heavy items (Theorem 2.10)",
        &["phi", "recall", "space(words)", "1/phi"],
        &rows,
    );

    // F2-Contributing: detection of a planted contributing class of
    // medium coordinates (not individually heavy) — Theorem 2.11.
    let mut rows = Vec::new();
    for class_size in [8u64, 64, 256] {
        let mut found = 0usize;
        let trials = 10u64;
        for seed in 0..trials {
            let mut fc = F2Contributing::new(
                ContributingConfig::new(0.25, 1024),
                100_000,
                100_000,
                seed,
            );
            // class: class_size coords of frequency 64; noise: 3000 of 1.
            for round in 0..64u64 {
                let _ = round;
                for c in 0..class_size {
                    fc.insert(500_000 + c);
                }
            }
            for i in 0..3000u64 {
                fc.insert(i);
            }
            if fc
                .report()
                .iter()
                .any(|r| (500_000..500_000 + class_size).contains(&r.item))
            {
                found += 1;
            }
        }
        rows.push(vec![
            class_size.to_string(),
            format!("{found}/{trials}"),
        ]);
    }
    print_table(
        "F2-Contributing: planted class detection (Theorem 2.11)",
        &["class size", "detected"],
        &rows,
    );
    println!("\nshape check: errors track 1/sqrt(space); recall complete; classes of");
    println!("all sizes detected via level sampling.");
}
