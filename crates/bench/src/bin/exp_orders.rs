//! E11 — arrival-order robustness: the point of the *general* streaming
//! model is that the algorithm's guarantees hold for every edge order.
//! This experiment runs the estimator on the same instances under
//! set-contiguous, element-contiguous, round-robin and adversarially
//! shuffled orders, and reports the spread of the estimates; it also
//! shows the set-arrival baselines breaking when fed a non-contiguous
//! order (their structural assumption, not a bug).
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_orders
//! ```

use kcov_baselines::SwapStreaming;
use kcov_bench::{coarse_config, fmt, print_table};
use kcov_core::MaxCoverEstimator;
use kcov_stream::gen::{planted_cover, zipf_set_sizes};
use kcov_stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

fn orders() -> Vec<(&'static str, ArrivalOrder)> {
    vec![
        ("set-contiguous", ArrivalOrder::SetContiguous),
        ("element-contiguous", ArrivalOrder::ElementContiguous),
        ("round-robin", ArrivalOrder::RoundRobin),
        ("shuffled(1)", ArrivalOrder::Shuffled(1)),
        ("shuffled(2)", ArrivalOrder::Shuffled(2)),
    ]
}

fn main() {
    println!("E11: arrival-order robustness");
    let workloads: Vec<(&str, SetSystem, usize)> = vec![
        (
            "planted",
            planted_cover(6_000, 800, 20, 0.8, 40, 3).system,
            20,
        ),
        ("zipf", zipf_set_sizes(6_000, 800, 900, 1.05, 4), 20),
    ];
    let alpha = 6.0;
    for (name, system, k) in &workloads {
        let n = system.num_elements();
        let m = system.num_sets();
        let mut rows = Vec::new();
        let mut ests = Vec::new();
        for (oname, order) in orders() {
            let edges = edge_stream(system, order);
            let config = coarse_config(13, n, 2);
            let out = MaxCoverEstimator::run(n, m, *k, alpha, &config, &edges);
            ests.push(out.estimate);
            rows.push(vec![
                oname.into(),
                fmt(out.estimate),
                format!("{:?}", out.winner),
            ]);
        }
        let max = ests.iter().cloned().fold(f64::MIN, f64::max);
        let min = ests.iter().cloned().fold(f64::MAX, f64::min);
        print_table(
            &format!("estimator across orders   [{name}: n={n} m={m} k={k} alpha={alpha}]"),
            &["order", "estimate", "winner"],
            &rows,
        );
        println!("spread max/min = {:.2}", max / min.max(1.0));
    }

    // Set-arrival baseline fed a *simulated* non-contiguous order: we
    // split each set into two halves presented as separate "sets"
    // (the honest way a set-arrival algorithm experiences interleaving:
    // it cannot re-associate the halves). Coverage credit collapses.
    let (name, system, k) = &workloads[0];
    let halves: Vec<Vec<u32>> = system
        .sets()
        .iter()
        .flat_map(|s| {
            let mid = s.len() / 2;
            [s[..mid].to_vec(), s[mid..].to_vec()]
        })
        .collect();
    let split = SetSystem::new(system.num_elements(), halves);
    let whole_res = SwapStreaming::run(system, *k);
    let split_res = SwapStreaming::run(&split, *k);
    // Map split choices back to original sets (j/2) to measure the real
    // coverage the user would obtain.
    let mapped: Vec<usize> = split_res.chosen.iter().map(|&j| j / 2).collect();
    let whole_cov = coverage_of(system, &whole_res.chosen);
    let split_cov = coverage_of(system, &mapped);
    println!(
        "\nset-arrival swap on {name}: contiguous sets → {whole_cov}, sets split in half (interleaving) → {split_cov}"
    );
    println!("\nshape check: the estimator's spread across orders stays a small");
    println!("constant; the set-arrival baseline loses coverage under interleaving.");
}
