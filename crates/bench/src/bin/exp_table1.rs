//! E1 — Table 1 regenerated with *measured* numbers: coverage ratio and
//! space (words) of every implemented algorithm class on shared
//! workloads.
//!
//! Rows mirror the paper's Table 1:
//!   * offline greedy (the 1/(1−1/e) yardstick — not streaming),
//!   * set-arrival: Saha–Getoor swap [37], Sieve-Streaming [9],
//!     McGregor–Vu (2+ε) [34],
//!   * edge-arrival Õ(m): BEM-style sketched greedy [12], McGregor–Vu
//!     element sampling [34],
//!   * edge-arrival Õ(m/α²): this paper's estimator and reporter at
//!     several α.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_table1
//! ```

use kcov_baselines::{
    greedy_max_cover, mv_set_arrival, MvEdgeArrival, SieveStreaming, SketchedGreedy,
    SwapStreaming,
};
use kcov_bench::{fmt, print_table};
use kcov_core::MaxCoverReporter;
use kcov_sketch::SpaceUsage;
use kcov_stream::gen::{planted_cover, uniform_fixed_size, zipf_set_sizes};
use kcov_stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

struct Workload {
    name: &'static str,
    system: SetSystem,
    k: usize,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "uniform",
            system: uniform_fixed_size(8_000, 1_500, 120, 1),
            k: 20,
        },
        Workload {
            name: "zipf",
            system: zipf_set_sizes(8_000, 1_500, 1_200, 1.05, 2),
            k: 20,
        },
        Workload {
            name: "planted",
            system: planted_cover(8_000, 1_500, 20, 0.8, 100, 3).system,
            k: 20,
        },
    ]
}

fn main() {
    println!("E1: Table 1 with measured coverage and space");
    println!("coverage column = real coverage of the returned sets / greedy coverage");
    println!("(estimation-only rows report their estimate / greedy coverage instead)");

    for w in workloads() {
        let n = w.system.num_elements();
        let m = w.system.num_sets();
        let k = w.k;
        let edges = edge_stream(&w.system, ArrivalOrder::Shuffled(99));
        let greedy = greedy_max_cover(&w.system, k);
        let gcov = greedy.coverage as f64;

        let mut rows: Vec<Vec<String>> = Vec::new();
        rows.push(vec![
            "greedy (offline)".into(),
            "-".into(),
            "1/(1-1/e)".into(),
            "1.000".into(),
            format!("{}", w.system.total_edges()),
        ]);

        // Set-arrival baselines.
        {
            let r = SwapStreaming::run(&w.system, k);
            let mut alg = SwapStreaming::new(k);
            for i in 0..m {
                alg.observe_set(i, w.system.set(i));
            }
            rows.push(vec![
                "Saha-Getoor swap [37]".into(),
                "set".into(),
                "O(1)".into(),
                fmt(real_cov(&w.system, &r.chosen) / gcov),
                alg.peak_space_words().to_string(),
            ]);
        }
        {
            let r = SieveStreaming::run(&w.system, k, 0.2);
            let mut alg = SieveStreaming::new(k, 0.2);
            for i in 0..m {
                alg.observe_set(i, w.system.set(i));
            }
            rows.push(vec![
                "Sieve-Streaming [9]".into(),
                "set".into(),
                "2+eps".into(),
                fmt(real_cov(&w.system, &r.chosen) / gcov),
                alg.peak_space_words().to_string(),
            ]);
        }
        {
            let r = mv_set_arrival(&w.system, k, 0.2);
            rows.push(vec![
                "McGregor-Vu thresh [34]".into(),
                "set".into(),
                "2+eps".into(),
                fmt(real_cov(&w.system, &r.chosen) / gcov),
                "~k".into(),
            ]);
        }

        // Edge-arrival Õ(m)-space baselines.
        {
            let mut alg = SketchedGreedy::new(m, 48, 5);
            for &e in &edges {
                alg.observe(e);
            }
            let r = alg.finish(k);
            rows.push(vec![
                "BEM sketched greedy [12]".into(),
                "edge".into(),
                "O(1)".into(),
                fmt(real_cov(&w.system, &r.chosen) / gcov),
                alg.space_words().to_string(),
            ]);
        }
        {
            let mut alg = MvEdgeArrival::new(n, m, k, 0.4, 7);
            for &e in &edges {
                alg.observe(e);
            }
            let r = alg.finish();
            rows.push(vec![
                "MV element sampling [34]".into(),
                "edge".into(),
                "1/(1-1/e-eps)".into(),
                fmt(real_cov(&w.system, &r.chosen) / gcov),
                alg.space_words().to_string(),
            ]);
        }

        // This paper, several alphas.
        for alpha in [4.0, 8.0, 16.0] {
            // Coarse guess grid (see kcov_bench::coarse_config docs).
            let config = kcov_bench::coarse_config(21, n, 1);
            let mut alg = MaxCoverReporter::new(n, m, k, alpha, &config);
            for &e in &edges {
                alg.observe(e);
            }
            let r = alg.finalize();
            let chosen: Vec<usize> = r.sets.iter().map(|&s| s as usize).collect();
            rows.push(vec![
                format!("this paper alpha={alpha}"),
                "edge".into(),
                format!("O~({alpha})"),
                fmt(real_cov(&w.system, &chosen) / gcov),
                r.space_words.to_string(),
            ]);
        }

        print_table(
            &format!(
                "workload {}   [n={n} m={m} k={k} greedy={}]",
                w.name, greedy.coverage
            ),
            &["algorithm", "arrival", "guarantee", "cov/greedy", "space(words)"],
            &rows,
        );
    }
}

fn real_cov(system: &SetSystem, chosen: &[usize]) -> f64 {
    coverage_of(system, chosen) as f64
}
