//! E6 — universe reduction fidelity (Lemma 3.5 / Theorem 3.6).
//!
//! (a) Lemma 3.5 head-on: for `|S| ≥ z`, `Pr[|h(S)| ≥ z/4] ≥ 3/4` under
//!     a 4-wise independent hash — measured success rates across z.
//! (b) End-to-end: the estimate of the full estimator with and without
//!     a correctly-guessed reduction lane, showing the reduction
//!     preserves the answer up to the lemma's constant.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_universe_reduction
//! ```

use kcov_bench::{fmt, print_table};
use kcov_core::{EstimatorConfig, MaxCoverEstimator, UniverseReducer};
use kcov_stream::gen::planted_cover;
use kcov_stream::{edge_stream, ArrivalOrder};

fn main() {
    println!("E6: universe reduction (Lemma 3.5, Theorem 3.6)");

    // (a) Image-size success rates.
    let mut rows = Vec::new();
    for z in [16u64, 64, 256, 1024, 4096] {
        for ratio in [1usize, 2, 4] {
            let size = z as usize * ratio;
            let members: Vec<u64> = (0..size as u64).map(|x| x * 1_000_003 + 17).collect();
            let trials = 400;
            let mut ok = 0;
            let mut image_sum = 0usize;
            for seed in 0..trials {
                let r = UniverseReducer::new(z, 9000 + seed);
                let img = r.image_size(&members);
                image_sum += img;
                if img >= (z / 4) as usize {
                    ok += 1;
                }
            }
            rows.push(vec![
                z.to_string(),
                size.to_string(),
                fmt(ok as f64 / trials as f64),
                fmt(image_sum as f64 / trials as f64),
                fmt(z as f64 / 4.0),
            ]);
        }
    }
    print_table(
        "(a) Lemma 3.5: Pr[|h(S)| >= z/4] for |S| >= z (bound: 3/4)",
        &["z", "|S|", "success rate", "mean |h(S)|", "z/4"],
        &rows,
    );

    // (b) End-to-end: full grid vs single correct z lane.
    let inst = planted_cover(8_000, 1_000, 30, 0.75, 30, 3);
    let opt = inst.planted_coverage as f64;
    let n = inst.system.num_elements();
    let m = inst.system.num_sets();
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(5));
    let mut rows = Vec::new();
    for (label, zs) in [
        ("full guess grid", None),
        ("correct z only (4096)", Some(vec![4096u64])),
        ("z too small (64)", Some(vec![64u64])),
        ("z too large (8192)", Some(vec![8192u64])),
    ] {
        let mut config = EstimatorConfig::practical(13);
        config.z_guesses = zs;
        config.reps = Some(2);
        let out = MaxCoverEstimator::run(n, m, 30, 8.0, &config, &edges);
        rows.push(vec![
            label.into(),
            fmt(out.estimate),
            fmt(out.estimate / opt),
            out.winning_z.to_string(),
        ]);
    }
    print_table(
        &format!("(b) end-to-end with planted OPT = {opt}"),
        &["configuration", "estimate", "estimate/OPT", "winning z"],
        &rows,
    );
    println!("\nshape check: (a) success rate >= 3/4 everywhere (Lemma 3.5);");
    println!("(b) the full grid matches the correct-z lane; wrong z degrades gracefully.");
}
