//! E5 — the reporting variant (Theorem 3.2): real coverage of the
//! reported k-cover vs greedy and the planted optimum, and its
//! `Õ(m/α² + k)` space.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_reporting
//! ```

use kcov_baselines::greedy_max_cover;
use kcov_bench::{fmt, print_table};
use kcov_core::MaxCoverReporter;
use kcov_stream::gen::{common_heavy, few_large, planted_cover};
use kcov_stream::{coverage_of, edge_stream, ArrivalOrder, SetSystem};

struct Case {
    name: &'static str,
    system: SetSystem,
    k: usize,
    opt_hint: Option<usize>,
}

fn main() {
    println!("E5: reporting an alpha-approximate k-cover (Theorem 3.2)");
    let planted = planted_cover(8_000, 1_200, 40, 0.75, 20, 5);
    let cases = vec![
        Case {
            name: "planted",
            k: 40,
            opt_hint: Some(planted.planted_coverage),
            system: planted.system,
        },
        Case {
            name: "common-heavy",
            system: common_heavy(8_000, 1_200, 2),
            k: 24,
            opt_hint: None,
        },
        Case {
            name: "few-large",
            system: few_large(8_000, 1_000, 4, 1_500, 3),
            k: 24,
            opt_hint: None,
        },
    ];

    for alpha in [4.0f64, 8.0, 16.0] {
        let mut rows = Vec::new();
        for case in &cases {
            let n = case.system.num_elements();
            let m = case.system.num_sets();
            let edges = edge_stream(&case.system, ArrivalOrder::Shuffled(31));
            let greedy = greedy_max_cover(&case.system, case.k).coverage as f64;
            // Coarse guess grid (see kcov_bench::coarse_config docs).
            let config = kcov_bench::coarse_config(7, n, 1);
            let mut rep = MaxCoverReporter::new(n, m, case.k, alpha, &config);
            for &e in &edges {
                rep.observe(e);
            }
            let r = rep.finalize();
            let chosen: Vec<usize> = r.sets.iter().map(|&s| s as usize).collect();
            let cov = coverage_of(&case.system, &chosen) as f64;
            rows.push(vec![
                case.name.into(),
                case.opt_hint.map(|o| o.to_string()).unwrap_or("-".into()),
                fmt(greedy),
                r.sets.len().to_string(),
                fmt(cov),
                fmt(cov / greedy),
                fmt(r.estimate),
                format!("{:?}", r.winner),
                r.space_words.to_string(),
            ]);
        }
        print_table(
            &format!("reported covers at alpha={alpha}"),
            &[
                "workload",
                "planted OPT",
                "greedy",
                "|sets|",
                "real cov",
                "cov/greedy",
                "estimate",
                "winner",
                "space(words)",
            ],
            &rows,
        );
    }
    println!("\nshape check: real coverage within ~alpha of greedy; estimate <= real");
    println!("coverage-ish (sound); space shrinks as alpha grows.");
}
