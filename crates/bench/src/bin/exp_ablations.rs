//! E8 — ablations of the design choices DESIGN.md calls out:
//!
//! (a) **Multi-layered set sampling** (§4.1): the paper samples at every
//!     rate `β_g·k/m` for `β_g = 2^i ≤ α` instead of the single classic
//!     rate. On an instance whose common elements live at a *mid*
//!     frequency layer, only the matching layer fires — the single-rate
//!     variant (layer β = 1 alone) misses it.
//! (b) **Universe reduction** (§3.1): running the oracle directly on the
//!     raw universe fails when `OPT ≪ n/η`; the z-guess grid restores
//!     the estimate. This is why Fig 1 wraps the oracle at all.
//! (c) **Offline solver inside `SmallSet`**: full lazy greedy vs
//!     stochastic greedy vs local search on the same instances —
//!     quality/time of the `O(1)`-approximation the paper assumes.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_ablations
//! ```

use std::time::Instant;

use kcov_baselines::{greedy_max_cover, local_search_max_cover, stochastic_greedy};
use kcov_bench::{fmt, print_table};
use kcov_core::{EstimatorConfig, LargeCommon, MaxCoverEstimator, Params};
use kcov_stream::gen::{planted_cover, uniform_fixed_size, zipf_set_sizes};
use kcov_stream::{edge_stream, ArrivalOrder, SetSystem};

/// Instance whose common elements sit at frequency ≈ m/(β*·k): only the
/// β ≥ β* sampling layers can cover them.
fn mid_layer_instance(n: usize, m: usize, k: usize, beta_star: usize, seed: u64) -> SetSystem {
    use kcov_hash::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let common = n / 4;
    let freq = (m / (beta_star * k)).max(2);
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); m];
    // Each common element appears in exactly `freq` random sets.
    for e in 0..common as u32 {
        for _ in 0..freq {
            let s = rng.next_below(m as u64) as usize;
            sets[s].push(e);
        }
    }
    // Rare filler so no set is empty.
    for s in sets.iter_mut() {
        s.push(common as u32 + rng.next_below((n - common) as u64) as u32);
    }
    SetSystem::new(n, sets)
}

fn main() {
    println!("E8: ablations");

    // (a) Multi-layered set sampling: per-layer certified estimates.
    // The classic single-rate policy samples at the *top* rate β = α
    // (enough to cover every common element); its certified value
    // divides by α. The multi-layer variant keeps the layer matching
    // the instance's common-frequency β*, dividing only by ≈ β* — an
    // α/β* factor, visible directly in the per-layer values.
    let (n, m, k) = (8_000usize, 2_000usize, 25usize);
    let alpha = 16.0;
    let mut rows = Vec::new();
    for beta_star in [1usize, 4, 16] {
        let system = mid_layer_instance(n, m, k, beta_star, 3);
        let params = Params::practical(m, n, k, alpha);
        let mut lc = LargeCommon::new(n, &params, false, 9);
        for e in edge_stream(&system, ArrivalOrder::Shuffled(1)) {
            lc.observe(e);
        }
        let lanes = lc.lane_values();
        // Certified value of a firing layer β: (2/3)·VAL/β (Fig 3).
        let cert = |(b, v, t): &(f64, f64, f64)| {
            if v >= t {
                (2.0 / 3.0) * v / b
            } else {
                0.0
            }
        };
        let best_multi = lanes.iter().map(cert).fold(0.0f64, f64::max);
        let top_only = lanes.last().map(cert).unwrap_or(0.0);
        rows.push(vec![
            beta_star.to_string(),
            fmt(best_multi),
            fmt(top_only),
            fmt(best_multi / top_only.max(1e-9)),
        ]);
    }
    print_table(
        "(a) multi-layered set sampling: best layer vs single top-rate (β = α) policy",
        &["beta*", "multi-layer est", "top-rate-only est", "multi/top ratio"],
        &rows,
    );

    // (b) Universe reduction.
    let inst = planted_cover(40_000, 1_500, 20, 0.02, 8, 5); // OPT = 800 ≪ n/4
    let nn = inst.system.num_elements();
    let mm = inst.system.num_sets();
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(2));
    let mut rows = Vec::new();
    for (label, zs) in [
        ("no reduction (z = n)", Some(vec![nn as u64])),
        ("full z grid (Fig 1)", None),
    ] {
        let mut config = EstimatorConfig::practical(11);
        config.z_guesses = zs;
        config.reps = Some(2);
        let out = MaxCoverEstimator::run(nn, mm, 20, 8.0, &config, &edges);
        rows.push(vec![
            label.into(),
            fmt(out.estimate),
            fmt(out.estimate / inst.planted_coverage as f64),
            out.winning_z.to_string(),
        ]);
    }
    print_table(
        &format!(
            "(b) universe reduction with OPT = {} ≪ n/η = {}",
            inst.planted_coverage,
            nn / 4
        ),
        &["configuration", "estimate", "est/OPT", "winning z"],
        &rows,
    );

    // (c) Offline solvers.
    let mut rows = Vec::new();
    for (wname, system, k) in [
        ("uniform", uniform_fixed_size(4_000, 800, 80, 1), 16usize),
        ("zipf", zipf_set_sizes(4_000, 800, 800, 1.1, 2), 16usize),
    ] {
        let t0 = Instant::now();
        let g = greedy_max_cover(&system, k);
        let tg = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let sg = stochastic_greedy(&system, k, 0.1, 7);
        let ts = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ls = local_search_max_cover(&system, k, 0.01, 3);
        let tl = t0.elapsed().as_secs_f64();
        rows.push(vec![
            wname.into(),
            format!("{} ({:.3}s)", g.coverage, tg),
            format!("{} ({:.3}s)", sg.estimated_coverage, ts),
            format!("{} ({:.3}s)", ls.estimated_coverage, tl),
        ]);
    }
    print_table(
        "(c) offline O(1)-approx solvers (quality (time))",
        &["workload", "lazy greedy", "stochastic greedy", "local search"],
        &rows,
    );
    println!("\nshape check: (a) the multi-layer estimate beats the single top-rate");
    println!("policy by ≈ α/β* — the factor Lemma 4.6 attributes to trying every");
    println!("rate; (b) the reduction grid tracks the raw-universe oracle to a small");
    println!("constant — its role is the worst-case η-promise of Theorem 3.6, not a");
    println!("win on benign instances; (c) greedy-class solvers agree within a few");
    println!("percent, so SmallSet's inner O(1)-approximation is not a bottleneck.");
}
