//! E10 — the *approximation* side of the trade-off: the effective
//! approximation factor `OPT / estimate` as α grows, on instances with
//! known planted optima. Theorem 3.1 promises `OPT/estimate ≤ Õ(α)`
//! whenever the estimate is accepted; this experiment traces the actual
//! curve, plus the two-pass extension's improvement at equal α.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_quality
//! ```

use kcov_bench::{coarse_config, fmt, print_table};
use kcov_core::{run_two_pass, MaxCoverEstimator};
use kcov_stream::gen::planted_cover;
use kcov_stream::{coverage_of, edge_stream, ArrivalOrder};

fn main() {
    println!("E10: effective approximation factor vs alpha (planted OPT)");
    let (n, m, k) = (12_000usize, 1_500usize, 30usize);
    let inst = planted_cover(n, m, k, 0.8, 60, 13);
    let opt = inst.planted_coverage as f64;
    let edges = edge_stream(&inst.system, ArrivalOrder::Shuffled(5));
    println!("instance: n={n} m={m} k={k}, OPT = {opt}, {} edges", edges.len());

    let mut rows = Vec::new();
    for alpha in [2.0f64, 4.0, 8.0, 16.0, 32.0] {
        let config = coarse_config(17, n, 2);
        let single = MaxCoverEstimator::run(n, m, k, alpha, &config, &edges);
        let two = run_two_pass(n, m, k, alpha, &config, &edges);
        let chosen: Vec<usize> = two.sets.iter().map(|&s| s as usize).collect();
        let two_real = coverage_of(&inst.system, &chosen) as f64;
        rows.push(vec![
            fmt(alpha),
            fmt(single.estimate),
            fmt(opt / single.estimate.max(1.0)),
            fmt(two.estimate),
            fmt(two_real),
            fmt(opt / two_real.max(1.0)),
        ]);
    }
    print_table(
        "single-pass estimate and two-pass reported cover vs alpha",
        &[
            "alpha",
            "1p estimate",
            "OPT/1p-est",
            "2p estimate",
            "2p real cov",
            "OPT/2p-cov",
        ],
        &rows,
    );
    println!("\nshape check: OPT/estimate grows at most linearly in alpha (Thm 3.1's");
    println!("Õ(α) factor with practical constants); the two-pass cover's real");
    println!("coverage keeps the factor lower at every alpha.");
}
