//! `bench_compare` — the bench regression gate: diff a freshly
//! generated `BENCH_*.json` against its committed baseline and fail on
//! a >25% throughput drop (tolerance overridable), *any* space
//! increase (including the `space_ledger` attribution leaves), a
//! measured `*space_slope` regressing shallower than baseline, or a
//! sibling `*_ns` phase's attribution share drifting above baseline by
//! more than the tolerance in share points (absolute ns stay
//! informational). See [`kcov_bench::compare`] for the leaf
//! classification.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin bench_compare -- \
//!     results/baseline/BENCH_space.json /tmp/BENCH_space.json [--tolerance 0.25]
//! ```
//!
//! Exit status: 0 when every check passes, 1 on any regression or
//! schema mismatch (CI treats that as a failed build).

use std::process::ExitCode;

use kcov_bench::compare::compare_bench;
use kcov_obs::json::Json;

const USAGE: &str = "usage: bench_compare BASELINE.json FRESH.json [--tolerance F]";

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().ok_or("--tolerance needs a value")?;
            tolerance = v
                .parse()
                .map_err(|_| format!("bad tolerance '{v}'"))?;
            if !(0.0..1.0).contains(&tolerance) {
                return Err("tolerance must be in [0, 1)".into());
            }
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return Err(USAGE.into());
    };
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let report = compare_bench(&baseline, &fresh, tolerance);
    if !report.gated_anything() {
        return Err(format!(
            "baseline {baseline_path} has no throughput (*edges_per_s), space (*words), \
             slope (*space_slope), or time-share (sibling *_ns) leaves — nothing to \
             gate, refusing to report a vacuous pass"
        ));
    }
    println!(
        "bench_compare: {} vs {} (throughput tolerance {:.0}%)",
        baseline_path,
        fresh_path,
        tolerance * 100.0
    );
    for note in &report.notes {
        println!("  {note}");
    }
    println!("  {} leaves checked", report.checked);
    if !report.speedups.is_empty() {
        // The hot-path headline: measured speedup of the estimator's
        // batched ingestion over the committed baseline, per alpha.
        let ratios: Vec<String> =
            report.speedups.iter().map(|(_, r)| format!("{r:.2}x")).collect();
        println!(
            "  estimator edges_per_s speedup vs baseline: {} (min {:.2}x over {} leaves)",
            ratios.join(", "),
            report
                .speedups
                .iter()
                .map(|(_, r)| *r)
                .fold(f64::INFINITY, f64::min),
            report.speedups.len()
        );
    }
    if report.passed() {
        println!("PASS");
        Ok(())
    } else {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        Err(format!("{} regression check(s) failed", report.failures.len()))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
