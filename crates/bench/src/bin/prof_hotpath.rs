//! Developer utility: raw per-operation timings of the sketch hot path
//! and a full oracle observe — the quick number to check after touching
//! anything on the update path (criterion benches give the rigorous
//! version; this prints in seconds, not minutes).
//!
//! ```text
//! cargo run --release -p kcov-bench --bin prof_hotpath
//! ```

use std::time::Instant;

fn main() {
    // Raw component timings at 200k ops each.
    let mut hh = kcov_sketch::F2HeavyHitter::for_phi(0.01, 1);
    let t = Instant::now();
    for i in 0..200_000u64 { hh.insert(i % 5000); }
    println!("F2HeavyHitter insert: {:?}/op", t.elapsed() / 200_000);

    let mut ams = kcov_sketch::AmsF2::new(3, 16, 1);
    let t = Instant::now();
    for i in 0..200_000u64 { ams.insert(i % 5000); }
    println!("AmsF2 3x16 insert:    {:?}/op", t.elapsed() / 200_000);

    let mut cs = kcov_sketch::CountSketch::new(5, 4096, 1);
    let t = Instant::now();
    for i in 0..200_000u64 { cs.insert(i % 5000); }
    println!("CountSketch insert:   {:?}/op", t.elapsed() / 200_000);
    let t = Instant::now();
    let mut acc = 0i64;
    for i in 0..200_000u64 { acc += cs.query(i % 5000); }
    println!("CountSketch query:    {:?}/op ({acc})", t.elapsed() / 200_000);

    let mut fc = kcov_sketch::F2Contributing::new(kcov_sketch::ContributingConfig::new(0.01, 64), 10_000, 10_000, 1);
    let t = Instant::now();
    for i in 0..200_000u64 { fc.insert(i % 5000); }
    println!("F2Contributing insert:{:?}/op", t.elapsed() / 200_000);

    // Full oracle observe.
    let params = kcov_core::Params::practical(400, 2000, 50, 8.0);
    let mut oracle = kcov_core::Oracle::new(2000, &params, false, 3);
    let t = Instant::now();
    for i in 0..200_000u64 { oracle.observe(kcov_stream::Edge::new((i % 400) as u32, (i % 2000) as u32)); }
    println!("Oracle observe:       {:?}/op", t.elapsed() / 200_000);

    // Per-subroutine ingest cost at a representative lane: the three
    // oracle cases priced separately over the same fingerprinted chunk
    // stream, to see which case dominates the sketch-update phase.
    {
        let (n, m, k, alpha) = (20_000usize, 2_000usize, 64usize, 8.0f64);
        let system = kcov_stream::gen::uniform_fixed_size(n, m, 60, 1);
        let edges = kcov_stream::edge_stream(&system, kcov_stream::ArrivalOrder::Shuffled(9));
        let base = std::sync::Arc::new(kcov_hash::KWise::new(8, 4242));
        let fps: Vec<u64> = edges
            .iter()
            .map(|e| kcov_hash::RangeHash::hash(&*base, e.set as u64))
            .collect();
        println!("Per-subroutine batched ingest ({} edges, z sweep):", edges.len());
        for z in [256usize, 4096, 16384] {
            let params = kcov_core::Params::practical(m, z, k, alpha);
            let mut lc = kcov_core::LargeCommon::with_base(z, &params, false, 7, base.clone());
            let t = Instant::now();
            for (chunk, fchunk) in edges.chunks(8192).zip(fps.chunks(8192)) {
                lc.observe_fp_batch(chunk, fchunk);
            }
            let lc_ns = t.elapsed().as_nanos() as u64;
            let mut ls = kcov_core::LargeSet::with_base(z, &params, 7, base.clone());
            let t = Instant::now();
            for (chunk, fchunk) in edges.chunks(8192).zip(fps.chunks(8192)) {
                ls.observe_fp_batch(chunk, fchunk);
            }
            let ls_ns = t.elapsed().as_nanos() as u64;
            let ss_ns = if params.small_set_active() {
                let mut ss = kcov_core::SmallSet::with_base(z, &params, 7, base.clone());
                let t = Instant::now();
                for (chunk, fchunk) in edges.chunks(8192).zip(fps.chunks(8192)) {
                    ss.observe_fp_batch(chunk, fchunk);
                }
                t.elapsed().as_nanos() as u64
            } else {
                0
            };
            let per = |ns: u64| ns as f64 / edges.len() as f64;
            println!(
                "  z={z:6}: large_common {:7.1} + large_set {:7.1} + small_set {:7.1} ns/edge",
                per(lc_ns),
                per(ls_ns),
                per(ss_ns)
            );
        }
    }

    // Estimator hot path, per phase: hash+mix / lane reject / sketch
    // update, attributed by the time ledger over one full batched
    // ingest (DESIGN.md §12/§15).
    let (n, m, k, alpha) = (20_000usize, 2_000usize, 64usize, 8.0f64);
    let system = kcov_stream::gen::uniform_fixed_size(n, m, 60, 1);
    let edges = kcov_stream::edge_stream(&system, kcov_stream::ArrivalOrder::Shuffled(9));
    let mut config = kcov_core::EstimatorConfig::practical(3);
    config.reps = Some(1);
    let mut est = kcov_core::MaxCoverEstimator::new(n, m, k, alpha, &config);
    let b = kcov_bench::hot_path_breakdown(&mut est, &edges, 8192);
    let per_edge = |ns: u64| ns as f64 / edges.len() as f64;
    println!(
        "Estimator batched ingest ({} edges, {} lanes, alpha={alpha}):",
        edges.len(),
        est.num_lanes()
    );
    println!("  hash+mix phase:      {:8.1} ns/edge", per_edge(b.hash_ns));
    println!("  lane-reject phase:   {:8.1} ns/edge", per_edge(b.lane_reject_ns));
    println!("  sketch-update phase: {:8.1} ns/edge", per_edge(b.sketch_update_ns));
    println!(
        "  total:               {:8.1} ns/edge ({:.3} Medges/s)",
        per_edge(b.total_ns),
        edges.len() as f64 * 1e3 / b.total_ns as f64,
    );
}
