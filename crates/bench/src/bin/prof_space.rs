//! Developer utility: static space breakdown of the oracle's
//! subroutines and the full estimator — the quick check that a
//! constants change moved the component you meant. Sweeps α and writes
//! the machine-readable breakdown to `results/BENCH_space.json` (the
//! numbers are deterministic functions of the parameters, so the file
//! is stable across hosts).
//!
//! ```text
//! cargo run --release -p kcov-bench --bin prof_space
//! ```

use kcov_bench::{bench_out_path, log_log_slope};
use kcov_core::*;
use kcov_obs::json::Json;
use kcov_sketch::SpaceUsage;

fn main() {
    let (n, m, k) = (20_000usize, 2_000usize, 40usize);

    // Single-point deep dive at alpha = 16 (the historical default).
    let alpha = 16.0;
    let params = Params::practical(m, n, k, alpha);
    println!("s_alpha={} w={} phi1={} phi2={} B={} cap={}",
        params.s_alpha, params.large_set_w(), params.phi1(), params.phi2(),
        params.num_supersets(params.large_set_w()), params.small_set_edge_cap);
    let lc = LargeCommon::new(n, &params, false, 1);
    let ls = LargeSet::new(n, &params, 2);
    let ss = SmallSet::new(n, &params, 3);
    println!("LargeCommon: {} words", lc.space_words());
    println!("LargeSet:    {} words ({} reps)", ls.space_words(), ls.num_reps());
    println!("SmallSet:    {} words ({} lanes)", ss.space_words(), ss.num_lanes());
    let o = Oracle::new(n, &params, false, 4);
    println!("Oracle:      {} words", o.space_words());
    let mut config = EstimatorConfig::practical(5);
    config.reps = Some(1);
    let est = MaxCoverEstimator::new(n, m, k, alpha, &config);
    println!("Estimator:   {} words ({} lanes)", est.space_words(), est.num_lanes());

    // Alpha sweep: per-subroutine and full-estimator words per alpha.
    // The estimator column should fall roughly like alpha^-2 (the
    // Theorem 3.1 trade-off) until additive terms flatten it.
    println!("\nalpha sweep (n={n} m={m} k={k}):");
    println!("{:>7}  {:>12} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "alpha", "large_common", "large_set", "small_set", "oracle", "estimator", "lanes");
    let alphas = [2.0f64, 4.0, 8.0, 16.0, 32.0];
    let mut sweep = Vec::new();
    let mut est_words = Vec::new();
    for &a in &alphas {
        let params = Params::practical(m, n, k, a);
        let lc = LargeCommon::new(n, &params, false, 1);
        let ls = LargeSet::new(n, &params, 2);
        let ss = SmallSet::new(n, &params, 3);
        let o = Oracle::new(n, &params, false, 4);
        let mut config = EstimatorConfig::practical(5);
        config.reps = Some(1);
        let est = MaxCoverEstimator::new(n, m, k, a, &config);
        println!("{a:>7}  {:>12} {:>12} {:>12} {:>12} {:>12} {:>6}",
            lc.space_words(), ls.space_words(), ss.space_words(),
            o.space_words(), est.space_words(), est.num_lanes());
        est_words.push(est.space_words() as f64);
        sweep.push(Json::obj(vec![
            ("alpha", Json::Num(a)),
            ("large_common_words", Json::Num(lc.space_words() as f64)),
            ("large_set_words", Json::Num(ls.space_words() as f64)),
            ("small_set_words", Json::Num(ss.space_words() as f64)),
            ("oracle_words", Json::Num(o.space_words() as f64)),
            ("estimator_words", Json::Num(est.space_words() as f64)),
            ("lanes", Json::Num(est.num_lanes() as f64)),
        ]));
    }
    let slope = log_log_slope(&alphas, &est_words);
    println!("\nlog-log slope of estimator words vs alpha: {slope:.2} (ideal -2)");

    // Space-attribution ledger (DESIGN.md §13) of the alpha = 16 deep
    // dive: leaf words aggregated across lanes (lane indices collapse
    // to `lane*`), so the section stays compact while every
    // `ledger_words` leaf is gated by bench_compare under the
    // any-increase-fails space rule.
    let ledger = est.space_ledger_tree();
    let mut by_path: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for row in ledger.rows().iter().filter(|r| r.children == 0) {
        let norm: Vec<&str> = row
            .path
            .split('/')
            .map(|seg| {
                let lane_idx = seg.strip_prefix("lane").is_some_and(|d| d.parse::<u64>().is_ok());
                if lane_idx { "lane*" } else { seg }
            })
            .collect();
        *by_path.entry(norm.join("/")).or_insert(0) += row.words;
    }
    assert_eq!(
        by_path.values().sum::<u64>(),
        est.space_words() as u64,
        "aggregated ledger leaves must attribute every estimator word"
    );
    let ledger_rows: Vec<Json> = by_path
        .iter()
        .map(|(path, words)| {
            Json::obj(vec![
                ("path", Json::Str(path.clone())),
                ("ledger_words", Json::Num(*words as f64)),
            ])
        })
        .collect();

    let doc = Json::obj(vec![
        ("experiment", Json::Str("space".into())),
        (
            "workload",
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("m", Json::Num(m as f64)),
                ("k", Json::Num(k as f64)),
            ]),
        ),
        ("sweep", Json::Arr(sweep)),
        ("estimator_alpha_space_slope", Json::Num(slope)),
        ("space_ledger", Json::Arr(ledger_rows)),
    ]);
    // The breakdown is a deterministic function of the parameters, so
    // there is no smoke variant: a fresh run on any host must reproduce
    // the committed baseline word-for-word.
    let path = bench_out_path("results/BENCH_space.json");
    let path = path.as_str();
    match std::fs::write(path, doc.render_pretty(2)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
