//! Developer utility: static space breakdown of the oracle's
//! subroutines and the full estimator at one parameter point — the
//! quick check that a constants change moved the component you meant.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin prof_space
//! ```

use kcov_core::*;
use kcov_sketch::SpaceUsage;
fn main() {
    let (n, m, k, alpha) = (20_000usize, 2_000usize, 40usize, 16.0);
    let params = Params::practical(m, n, k, alpha);
    println!("s_alpha={} w={} phi1={} phi2={} B={} cap={}",
        params.s_alpha, params.large_set_w(), params.phi1(), params.phi2(),
        params.num_supersets(params.large_set_w()), params.small_set_edge_cap);
    let lc = LargeCommon::new(n, &params, false, 1);
    let ls = LargeSet::new(n, &params, 2);
    let ss = SmallSet::new(n, &params, 3);
    println!("LargeCommon: {} words", lc.space_words());
    println!("LargeSet:    {} words ({} reps)", ls.space_words(), ls.num_reps());
    println!("SmallSet:    {} words ({} lanes)", ss.space_words(), ss.num_lanes());
    let o = Oracle::new(n, &params, false, 4);
    println!("Oracle:      {} words", o.space_words());
    let mut config = EstimatorConfig::practical(5);
    config.reps = Some(1);
    let est = MaxCoverEstimator::new(n, m, k, alpha, &config);
    println!("Estimator:   {} words ({} lanes)", est.space_words(), est.num_lanes());
}
