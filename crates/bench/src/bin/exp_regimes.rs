//! E3 — the §4 case analysis as an ablation: which oracle subroutine
//! wins on each of the three structural regimes, and what each
//! subroutine alone estimates.
//!
//! The paper's correctness argument is "on any instance at least one of
//! the three subroutines succeeds"; this experiment shows each regime
//! exercising its designated subroutine.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_regimes
//! ```

use kcov_baselines::greedy_max_cover;
use kcov_bench::{fmt, print_table};
use kcov_core::{LargeCommon, LargeSet, Oracle, Params, SmallSet, SubroutineKind};
use kcov_stream::gen::{common_heavy, few_large, planted_cover};
use kcov_stream::{edge_stream, ArrivalOrder, SetSystem};

struct Regime {
    name: &'static str,
    system: SetSystem,
    k: usize,
    expected: SubroutineKind,
}

fn regimes() -> Vec<Regime> {
    vec![
        Regime {
            name: "I: common-heavy",
            system: common_heavy(6_000, 1_200, 1),
            k: 20,
            expected: SubroutineKind::LargeCommon,
        },
        Regime {
            name: "II: few-large",
            system: few_large(6_000, 900, 4, 1_100, 2),
            k: 20,
            expected: SubroutineKind::LargeSet,
        },
        Regime {
            // k = 1 puts the oracle in the sα ≥ 2k branch (Claim 4.3):
            // SmallSet is off and the guarantee rests on LargeSet alone.
            name: "II': single-dominant (k=1)",
            system: few_large(6_000, 900, 1, 1_500, 4),
            k: 1,
            expected: SubroutineKind::LargeSet,
        },
        Regime {
            name: "III: many-small (needle)",
            system: planted_cover(6_000, 1_200, 80, 0.5, 3, 3).system,
            k: 80,
            expected: SubroutineKind::SmallSet,
        },
    ]
}

fn main() {
    println!("E3: oracle subroutine ablation across the paper's three regimes");
    let alpha = 8.0;
    let mut rows = Vec::new();
    for regime in regimes() {
        let n = regime.system.num_elements();
        let m = regime.system.num_sets();
        let k = regime.k;
        let params = Params::practical(m, n, k, alpha);
        let edges = edge_stream(&regime.system, ArrivalOrder::Shuffled(42));
        let greedy = greedy_max_cover(&regime.system, k).coverage as f64;

        // Full oracle (universe reduction skipped: regimes are built
        // with OPT covering a constant fraction already).
        let mut oracle = Oracle::new(n, &params, false, 7);
        // Standalone subroutines for the ablation columns.
        let mut lc = LargeCommon::new(n, &params, false, 17);
        let mut ls = LargeSet::new(n, &params, 27);
        let mut ss = params.small_set_active().then(|| SmallSet::new(n, &params, 37));
        for &e in &edges {
            oracle.observe(e);
            lc.observe(e);
            ls.observe(e);
            if let Some(s) = &mut ss {
                s.observe(e);
            }
        }
        let out = oracle.finalize();
        let sub_est = |r: Option<(f64, kcov_core::Witness)>| {
            r.map(|(v, _)| fmt(v)).unwrap_or_else(|| "infeasible".into())
        };
        rows.push(vec![
            regime.name.into(),
            fmt(greedy),
            sub_est(lc.finalize()),
            sub_est(ls.finalize()),
            ss.as_ref()
                .map(|s| sub_est(s.finalize()))
                .unwrap_or_else(|| "off".into()),
            format!("{:?}", out.winner),
            format!("{:?} (expected)", regime.expected),
        ]);
    }
    print_table(
        &format!("per-regime subroutine estimates   [alpha={alpha}]"),
        &[
            "regime",
            "greedy",
            "LargeCommon",
            "LargeSet",
            "SmallSet",
            "winner",
            "expected",
        ],
        &rows,
    );
    println!("\nshape check: each regime's designated subroutine is feasible (the");
    println!("paper's case analysis guarantees *feasibility*, not that it beats the");
    println!("other — sound — answers; on II the opportunistic SmallSet may win,");
    println!("which is why row II' pins k = 1, where SmallSet is provably off).");
}
