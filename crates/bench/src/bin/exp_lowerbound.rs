//! E4 — the Theorem 3.3 lower bound, traced empirically: distinguishing
//! the §5 DSJ hard instances needs space growing like `m/α²`.
//!
//! (a) Width sweep at fixed (m, α): success probability of the
//!     `L2`/`L∞` distinguisher transitions from chance to reliable as
//!     the sketch width crosses `Θ(m/α²)`.
//! (b) α sweep at fixed success target: the minimal width achieving
//!     ≥ 90% success scales like `1/α²` (log-log slope ≈ −2).
//! (c) The reduction direction: the full `MaxCoverEstimator` decides
//!     DSJ, and a one-way protocol simulation reports its message size.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_lowerbound
//! ```

use kcov_bench::{fmt, log_log_slope, print_table};
use kcov_lowerbound::distinguisher::l2_sweep_point;
use kcov_lowerbound::{run_one_way_protocol, OracleDistinguisher};
use kcov_stream::gen::{dsj_max_cover_instance, DsjKind};
use kcov_stream::Edge;

fn main() {
    println!("E4: lower-bound hard instances (Theorem 3.3, Section 5)");

    // (a) Width sweep.
    let (m, alpha, ipp) = (8192usize, 16usize, 384usize);
    let trials = 12;
    let mut rows = Vec::new();
    for width in [4usize, 16, 64, 128, 256, 512, 1024, 4096] {
        let stats = l2_sweep_point(m, alpha, ipp, 5, width, trials, 11);
        rows.push(vec![
            width.to_string(),
            fmt(width as f64 / (m as f64 / (alpha * alpha) as f64)),
            fmt(stats.no_recall),
            fmt(stats.yes_recall),
            fmt(stats.success()),
            stats.space_words.to_string(),
        ]);
    }
    print_table(
        &format!("(a) success vs sketch width   [m={m} alpha={alpha}, m/alpha^2={}]", m / (alpha * alpha)),
        &["width", "width/(m/a^2)", "no-recall", "yes-recall", "success", "space(words)"],
        &rows,
    );

    // (b) Minimal sufficient width vs alpha.
    let m = 8192usize;
    let mut rows = Vec::new();
    let mut alphas_f = Vec::new();
    let mut widths_f = Vec::new();
    for alpha in [8usize, 16, 32, 64] {
        let ipp = (m / (2 * alpha)).min((m - 1) / alpha - 1);
        let mut found = None;
        let mut width = 2usize;
        while width <= m {
            let stats = l2_sweep_point(m, alpha, ipp, 5, width, 10, 23 + alpha as u64);
            if stats.success() >= 0.9 {
                found = Some(width);
                break;
            }
            width *= 2;
        }
        let w = found.unwrap_or(m);
        rows.push(vec![
            alpha.to_string(),
            w.to_string(),
            fmt(m as f64 / (alpha * alpha) as f64),
            fmt(w as f64 * (alpha * alpha) as f64 / m as f64),
        ]);
        alphas_f.push(alpha as f64);
        widths_f.push(w as f64);
    }
    print_table(
        &format!("(b) minimal width for 90% success vs alpha   [m={m}]"),
        &["alpha", "min width", "m/alpha^2", "width*(a^2/m)"],
        &rows,
    );
    let slope = log_log_slope(&alphas_f, &widths_f);
    println!("fitted log-log slope of min-width vs alpha: {slope:.2}   (paper: -2)");

    // (c) Reduction direction: the estimator decides DSJ as a one-way
    // protocol.
    let (m, alpha, ipp) = (2048usize, 64usize, 16usize);
    let mut rows = Vec::new();
    for seed in 0..4u64 {
        for kind in [DsjKind::No, DsjKind::Yes] {
            let inst = dsj_max_cover_instance(m, alpha, ipp, kind, seed);
            let (decided_no, space) =
                OracleDistinguisher::new(m, alpha, 2.0, 77 + seed).decide_no_case(&inst);
            // Also simulate the one-way protocol for message sizes.
            let players: Vec<Vec<Edge>> = inst
                .players
                .iter()
                .enumerate()
                .map(|(i, t)| t.iter().map(|&j| Edge::new(j, i as u32)).collect())
                .collect();
            let mut est = kcov_core::MaxCoverEstimator::new(
                alpha,
                m,
                1,
                2.0,
                &kcov_core::EstimatorConfig::practical(77 + seed),
            );
            let run = run_one_way_protocol(&mut est, &players);
            rows.push(vec![
                format!("{kind:?}"),
                seed.to_string(),
                if decided_no { "No" } else { "Yes" }.into(),
                fmt(run.answer),
                space.to_string(),
                run.max_message_words().to_string(),
            ]);
        }
    }
    print_table(
        &format!("(c) estimator as DSJ protocol   [m={m} alpha={alpha} players]"),
        &["case", "seed", "decided", "answer", "space(words)", "max message(words)"],
        &rows,
    );
    println!("\nshape check: (a) success transitions around width ~ m/alpha^2;");
    println!("(b) slope ~ -2; (c) all cases decided correctly.");
}
