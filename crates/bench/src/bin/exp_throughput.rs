//! E9 — stream throughput: edges/second of the estimator (per α) and of
//! every streaming baseline on a shared workload, plus the batched
//! ingestion engine's threads × batch-size matrix on the default RMAT
//! workload. Not a paper figure (the paper does not evaluate
//! wall-clock), but a required deployment-side view of the trade-off:
//! space is not the only cost of small α.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_throughput
//! ```

use std::time::Instant;

use kcov_baselines::{MvEdgeArrival, SketchedGreedy};
use kcov_bench::{bench_out_path, bench_smoke, coarse_config, fmt, print_table};
use kcov_core::{EstimatorConfig, MaxCoverEstimator};
use kcov_obs::json::Json;
use kcov_stream::gen::{rmat_incidence, uniform_fixed_size, RmatParams};
use kcov_stream::{edge_stream, ArrivalOrder, Edge};

fn throughput<F: FnMut(Edge)>(edges: &[Edge], mut observe: F) -> f64 {
    // Repeat the pass until enough wall clock accumulates: the scalar
    // baselines run millions of edges per second, so a single pass over
    // the smoke workload lasts ~2 ms and its reading is scheduler
    // noise — which the bench_compare gate would then flag as a fake
    // regression. Re-feeding a stateful algorithm is fine here; only
    // the per-edge cost is being priced, not the answer.
    let t0 = Instant::now();
    let mut seen = 0u64;
    for _ in 0..1000 {
        for &e in edges {
            observe(e);
        }
        seen += edges.len() as u64;
        if t0.elapsed().as_millis() >= 100 {
            break;
        }
    }
    seen as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    println!("E9: per-edge throughput of the streaming algorithms");
    // KCOV_BENCH_SMOKE shrinks every workload to a seconds-scale fixed
    // instance for the CI regression gate; the JSON schema is unchanged
    // so bench_compare can diff smoke runs against a smoke baseline.
    let smoke = bench_smoke();
    if smoke {
        println!("(KCOV_BENCH_SMOKE: reduced workloads)");
    }
    // Smoke k stays below m/32 so even alpha=32 avoids the trivial
    // `k*alpha >= m` branch — the hot-path breakdown needs lanes.
    let (n, m, k) = if smoke {
        (5_000usize, 500usize, 12usize)
    } else {
        (50_000usize, 5_000usize, 64usize)
    };
    let system = uniform_fixed_size(n, m, if smoke { 40 } else { 100 }, 1);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(9));
    println!("workload: n={n} m={m} k={k}, {} edges", edges.len());

    let mut rows = Vec::new();
    let mut json_estimator = Vec::new();
    let mut json_baselines = Vec::new();
    for alpha in [2.0f64, 8.0, 32.0] {
        let mut config = EstimatorConfig::practical(3);
        config.reps = Some(1);
        // The production hot path: batched ingestion through the shared
        // fingerprint block (DESIGN.md §12), attributed per phase —
        // hash+mix, lane rejection, sketch updates — by the estimator's
        // own time ledger (DESIGN.md §15), so these are the exact
        // numbers `maxkcov prof --time` reports. Best of three runs:
        // the regression gate compares against a committed baseline, so
        // one slow-scheduled pass must not read as a fake regression.
        let runs = if smoke { 3 } else { 1 };
        let mut est = MaxCoverEstimator::new(n, m, k, alpha, &config);
        let mut b = kcov_bench::hot_path_breakdown(&mut est, &edges, 8192);
        for _ in 1..runs {
            let mut fresh = MaxCoverEstimator::new(n, m, k, alpha, &config);
            let rb = kcov_bench::hot_path_breakdown(&mut fresh, &edges, 8192);
            if rb.total_ns < b.total_ns {
                b = rb;
                est = fresh;
            }
        }
        let eps = edges.len() as f64 * 1e9 / b.total_ns as f64;
        let per_edge = |ns: u64| ns as f64 / edges.len() as f64;
        rows.push(vec![
            format!("this paper alpha={alpha}"),
            fmt(eps / 1e6),
            est.num_lanes().to_string(),
        ]);
        println!(
            "  alpha={alpha}: hash {:.0} + lane-reject {:.0} + sketch-update {:.0} ns/edge",
            per_edge(b.hash_ns),
            per_edge(b.lane_reject_ns),
            per_edge(b.sketch_update_ns)
        );
        json_estimator.push(Json::obj(vec![
            ("alpha", Json::Num(alpha)),
            ("edges_per_s", Json::Num(eps)),
            ("lanes", Json::Num(est.num_lanes() as f64)),
            ("hash_ns", Json::Num(b.hash_ns as f64)),
            ("lane_reject_ns", Json::Num(b.lane_reject_ns as f64)),
            ("sketch_update_ns", Json::Num(b.sketch_update_ns as f64)),
        ]));
    }
    {
        let mut alg = SketchedGreedy::new(m, 48, 5);
        let eps = throughput(&edges, |e| alg.observe(e));
        rows.push(vec!["BEM sketched greedy".into(), fmt(eps / 1e6), "-".into()]);
        json_baselines.push(Json::obj(vec![
            ("name", Json::Str("bem_sketched_greedy".into())),
            ("edges_per_s", Json::Num(eps)),
        ]));
    }
    {
        let mut alg = MvEdgeArrival::new(n, m, k, 0.4, 7);
        let eps = throughput(&edges, |e| alg.observe(e));
        rows.push(vec!["MV element sampling".into(), fmt(eps / 1e6), "-".into()]);
        json_baselines.push(Json::obj(vec![
            ("name", Json::Str("mv_element_sampling".into())),
            ("edges_per_s", Json::Num(eps)),
        ]));
    }
    print_table(
        "edge-arrival observe throughput",
        &["algorithm", "Medges/s", "(z,rep) lanes"],
        &rows,
    );
    println!("\nshape check: throughput falls with the lane count (log n guesses),");
    println!("not with alpha directly; the Õ(m) baselines are faster per edge but");
    println!("hold asymptotically more state.");

    // Batched ingestion matrix: threads × batch size on the default RMAT
    // workload. Every cell must produce the bit-identical estimate of
    // the serial per-edge pass (the engine's determinism contract).
    println!("\nE9b: batched ingestion engine, threads x batch size (rmat workload)");
    let (bn, bm, bk, balpha) = if smoke {
        (5_000usize, 400usize, 16usize, 8.0f64)
    } else {
        (50_000usize, 4_000usize, 64usize, 8.0f64)
    };
    let bsystem = rmat_incidence(
        bn,
        bm,
        if smoke { 60_000 } else { 600_000 },
        RmatParams::default(),
        11,
    );
    let bedges = edge_stream(&bsystem, ArrivalOrder::Shuffled(5));
    let bconfig = coarse_config(3, bn, 2);
    println!("workload: n={bn} m={bm} k={bk} alpha={balpha}, {} edges", bedges.len());

    let t0 = Instant::now();
    let reference = MaxCoverEstimator::run(bn, bm, bk, balpha, &bconfig, &bedges);
    let serial_eps = bedges.len() as f64 / t0.elapsed().as_secs_f64();

    let mut matrix = vec![vec![
        "per-edge".into(),
        "-".into(),
        fmt(serial_eps / 1e6),
        "1.00".into(),
        format!("{:.1}", reference.estimate),
    ]];
    let mut json_batched = Vec::new();
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let batch_sizes: &[usize] = if smoke { &[1024] } else { &[1024, 16_384] };
    for &threads in thread_counts {
        for &batch in batch_sizes {
            let config = bconfig.clone().with_threads(threads);
            let t0 = Instant::now();
            let out = MaxCoverEstimator::run_batched(bn, bm, bk, balpha, &config, &bedges, batch);
            let eps = bedges.len() as f64 / t0.elapsed().as_secs_f64();
            assert_eq!(
                reference.estimate.to_bits(),
                out.estimate.to_bits(),
                "estimate diverged at threads={threads} batch={batch}"
            );
            matrix.push(vec![
                threads.to_string(),
                batch.to_string(),
                fmt(eps / 1e6),
                format!("{:.2}", eps / serial_eps),
                format!("{:.1}", out.estimate),
            ]);
            json_batched.push(Json::obj(vec![
                ("threads", Json::Num(threads as f64)),
                ("batch", Json::Num(batch as f64)),
                ("edges_per_s", Json::Num(eps)),
                ("speedup", Json::Num(eps / serial_eps)),
            ]));
        }
    }
    print_table(
        "batched ingestion: threads x batch size",
        &["threads", "batch", "Medges/s", "speedup", "estimate"],
        &matrix,
    );
    println!("\nall cells bit-identical to the serial per-edge estimate — thread");
    println!("count and chunking change wall-clock only, never the answer.");

    // Sharded ingestion matrix: the stream is partitioned across S full
    // estimator replicas (scoped threads) merged at finalize. Every
    // cell must report the identical estimate of the serial pass (the
    // merge contract of DESIGN.md §8); the timing column includes the
    // replica clones and the final merge fold.
    println!("\nE12: sharded ingestion, shards x batch size (same rmat workload)");
    let mut shard_matrix = vec![vec![
        "serial".into(),
        "-".into(),
        fmt(serial_eps / 1e6),
        "1.00".into(),
        format!("{:.1}", reference.estimate),
    ]];
    let mut json_sharded = Vec::new();
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    for &shards in shard_counts {
        for &batch in batch_sizes {
            let config = bconfig.clone().with_shards(shards);
            let t0 = Instant::now();
            let out = MaxCoverEstimator::run_sharded(bn, bm, bk, balpha, &config, &bedges, batch);
            let eps = bedges.len() as f64 / t0.elapsed().as_secs_f64();
            assert_eq!(
                reference.estimate.to_bits(),
                out.estimate.to_bits(),
                "estimate diverged at shards={shards} batch={batch}"
            );
            shard_matrix.push(vec![
                shards.to_string(),
                batch.to_string(),
                fmt(eps / 1e6),
                format!("{:.2}", eps / serial_eps),
                format!("{:.1}", out.estimate),
            ]);
            json_sharded.push(Json::obj(vec![
                ("shards", Json::Num(shards as f64)),
                ("batch", Json::Num(batch as f64)),
                ("edges_per_s", Json::Num(eps)),
                ("speedup", Json::Num(eps / serial_eps)),
            ]));
        }
    }
    print_table(
        "sharded ingestion: shards x batch size",
        &["shards", "batch", "Medges/s", "speedup", "estimate"],
        &shard_matrix,
    );
    println!("\nall cells identical to the serial estimate — sharding the stream");
    println!("across merged replicas never changes the answer. Each shard runs a");
    println!("full replica, so S shards cost S times the state. On a single-core");
    println!("container any speedup over the per-edge reference comes from the");
    println!("batched engine inside each replica, not from shard parallelism —");
    println!("compare against the E9b threads=1 rows, not the serial row.");

    // Machine-readable twin of the tables above (timings vary per host;
    // the schema and the determinism assertions do not).
    let doc = Json::obj(vec![
        ("experiment", Json::Str("throughput".into())),
        (
            "workload",
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("m", Json::Num(m as f64)),
                ("k", Json::Num(k as f64)),
                ("edges", Json::Num(edges.len() as f64)),
            ]),
        ),
        ("estimator", Json::Arr(json_estimator)),
        ("baselines", Json::Arr(json_baselines)),
        (
            "rmat_workload",
            Json::obj(vec![
                ("n", Json::Num(bn as f64)),
                ("m", Json::Num(bm as f64)),
                ("k", Json::Num(bk as f64)),
                ("alpha", Json::Num(balpha)),
                ("edges", Json::Num(bedges.len() as f64)),
                ("serial_edges_per_s", Json::Num(serial_eps)),
            ]),
        ),
        ("batched", Json::Arr(json_batched)),
        ("sharded", Json::Arr(json_sharded)),
    ]);
    let path = bench_out_path("results/BENCH_throughput.json");
    let path = path.as_str();
    match std::fs::write(path, doc.render_pretty(2)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
