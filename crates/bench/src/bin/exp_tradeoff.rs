//! E2 — the headline trade-off (Theorem 3.1 / abstract): measured space
//! of `EstimateMaxCover` scales as `Θ̃(m/α²)`.
//!
//! Two sweeps on uniform instances:
//!   (a) fixed `m`, α ∈ {2, 4, 8, 16, 32}: fitted log-log slope of
//!       space vs α should be ≈ −2;
//!   (b) fixed α, m doubling: fitted slope of space vs m should be ≈ +1.
//!
//! ```text
//! cargo run --release -p kcov-bench --bin exp_tradeoff
//! ```

use kcov_bench::{fmt, log_log_slope, print_table};
use kcov_core::MaxCoverEstimator;
use kcov_sketch::SpaceUsage;
use kcov_stream::gen::uniform_fixed_size;
use kcov_stream::{edge_stream, ArrivalOrder};

fn measure(n: usize, m: usize, k: usize, alpha: f64, seed: u64) -> (f64, usize, f64) {
    let system = uniform_fixed_size(n, m, (n / 50).max(4), seed);
    let edges = edge_stream(&system, ArrivalOrder::Shuffled(seed));
    // Coarse guess grid, 1 rep: space scaling is per-lane (see
    // kcov_bench::coarse_config docs).
    let config = kcov_bench::coarse_config(seed ^ 0xabc, n, 1);
    let mut est = MaxCoverEstimator::new(n, m, k, alpha, &config);
    let t0 = std::time::Instant::now();
    for &e in &edges {
        est.observe(e);
    }
    let out = est.finalize();
    let secs = t0.elapsed().as_secs_f64();
    (out.estimate, est.space_words(), secs)
}

fn main() {
    println!("E2: space/approximation trade-off of EstimateMaxCover (Theorem 3.1)");
    println!("expectation: space ∝ m/α² — slope vs α ≈ -2, slope vs m ≈ +1");

    // Sweep (a): alpha at fixed m. The measured space decomposes as
    // `c·(m/α²)·L(α) + floor`: `L(α)` is the number of dyadic class-size
    // levels the contributing-class finder runs (`≈ log(3sα)`, one of
    // the log factors the paper's Õ(·) suppresses), and `floor` is the
    // α-independent skeleton (hash coefficients, per-level AMS cells,
    // the Õ(1) fallback branch), estimated at α = √m where the m/α²
    // term is O(1). The fit is on the floor-subtracted, per-level
    // component — exactly the `m/α²` the theorem claims.
    let (n, m, k) = (20_000usize, 4_000usize, 64usize);
    let sqrt_m = (m as f64).sqrt();
    // Floor probe: k reduced so k·α < m keeps the non-trivial path.
    let k_floor = ((m as f64 / (2.0 * sqrt_m)) as usize).clamp(1, k);
    let (_, floor_raw, _) = measure(n, m, k_floor, sqrt_m, 7);
    let levels = |alpha: f64| -> f64 {
        let p = kcov_core::Params::practical(m, n, k, alpha);
        let r1 = (3.0 * p.s_alpha).max(2.0);
        // One unsampled level + subsampled levels with modulus in
        // (survivors=12, next_pow2(r1)].
        let max_level = (r1.log2().ceil()).max(0.0);
        1.0 + (max_level - 12f64.log2().floor()).max(0.0)
    };
    let floor_words = (floor_raw as f64 / levels(sqrt_m)).max(0.0);
    let alphas = [2.0, 4.0, 8.0, 16.0];
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &alpha in &alphas {
        let (est, words, secs) = measure(n, m, k, alpha, 7);
        let lv = levels(alpha);
        let component = (words as f64 / lv - floor_words).max(1.0);
        rows.push(vec![
            fmt(alpha),
            words.to_string(),
            fmt(lv),
            fmt(component),
            fmt(m as f64 / (alpha * alpha)),
            fmt(est),
            fmt(secs),
        ]);
        xs.push(alpha);
        ys.push(component);
    }
    print_table(
        &format!(
            "(a) space vs alpha   [n={n} m={m} k={k}; per-level floor={floor_words:.0} words]"
        ),
        &[
            "alpha",
            "space(words)",
            "levels L(α)",
            "(space/L)-floor",
            "m/alpha^2",
            "estimate",
            "sec",
        ],
        &rows,
    );
    let slope_a = log_log_slope(&xs, &ys);
    println!("fitted log-log slope of (space/L − floor) vs alpha: {slope_a:.2}   (paper: -2)");

    // Sweep (b): m at fixed alpha.
    let alpha = 8.0;
    let ms = [1_000usize, 2_000, 4_000, 8_000, 16_000];
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &m in &ms {
        let (est, words, secs) = measure(n, m, k, alpha, 11);
        rows.push(vec![
            m.to_string(),
            words.to_string(),
            fmt(m as f64 / (alpha * alpha)),
            fmt(est),
            fmt(secs),
        ]);
        xs.push(m as f64);
        ys.push(words as f64);
    }
    print_table(
        &format!("(b) space vs m   [n={n} alpha={alpha} k={k}]"),
        &["m", "space(words)", "m/alpha^2", "estimate", "sec"],
        &rows,
    );
    let slope_b = log_log_slope(&xs, &ys);
    println!("fitted log-log slope vs m: {slope_b:.2}   (paper: +1)");
}
