//! AMS second-frequency-moment (`F2`) estimation — Alon, Matias & Szegedy
//! (reference [5] of the paper).
//!
//! `F2(a⃗) = Σ_j a⃗[j]²` is the squared `L2` norm of the frequency vector.
//! The paper uses `L2`-norm sketches both in the lower-bound discussion
//! (α-approximating `L∞` via `L2` sketches in `O(m/α²)` space) and as the
//! yardstick that defines heavy hitters and contributing classes (§2.2).
//!
//! Each basic estimator keeps `Z = Σ_j s(j)·a⃗[j]` for a 4-wise independent
//! sign hash `s`; `E[Z²] = F2` and `Var[Z²] ≤ 2·F2²`. Averaging `c` basic
//! estimators brings the variance down; the median of `r` averages boosts
//! the success probability (median-of-means).

use kcov_hash::{SeedSequence, SignHash};
use kcov_obs::{LedgerNode, SketchStats};

use crate::space::SpaceUsage;

/// Median-of-means AMS `F2` sketch.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    rows: usize,
    cols: usize,
    signs: Vec<SignHash>,
    counters: Vec<i64>,
    /// Telemetry: merge invocations absorbed.
    merges: u64,
}

impl AmsF2 {
    /// `rows` = number of averages to take the median of (success
    /// probability `1 − 2^{-Ω(rows)}`), `cols` = basic estimators per
    /// average (relative error `O(1/√cols)`).
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(rows >= 1 && cols >= 1, "rows and cols must be positive");
        let mut seq = SeedSequence::labeled(seed, "ams-f2");
        AmsF2 {
            rows,
            cols,
            signs: (0..rows * cols).map(|_| SignHash::new(seq.next_seed())).collect(),
            counters: vec![0i64; rows * cols],
            merges: 0,
        }
    }

    /// Default accuracy: ~±15% with probability ≥ 1 − 2⁻⁵.
    pub fn with_default_accuracy(seed: u64) -> Self {
        AmsF2::new(5, 48, seed)
    }

    /// Observe one occurrence of `item` (insertion-only update).
    #[inline]
    pub fn insert(&mut self, item: u64) {
        self.update(item, 1);
    }

    /// General signed update (`a⃗[item] += delta`).
    #[inline]
    pub fn update(&mut self, item: u64, delta: i64) {
        for (z, s) in self.counters.iter_mut().zip(self.signs.iter()) {
            *z += s.sign(item) * delta;
        }
    }

    /// Observe one occurrence of each item in a chunk. Counters are
    /// linear in the updates, so the final state is identical to
    /// per-item insertion; iterating estimator-outer keeps each sign
    /// hash hot across the chunk and accumulates into a register.
    pub fn insert_batch(&mut self, items: &[u64]) {
        for (z, s) in self.counters.iter_mut().zip(self.signs.iter()) {
            let mut acc = 0i64;
            for &item in items {
                acc += s.sign(item);
            }
            *z += acc;
        }
    }

    /// Estimate `F2(a⃗)`.
    pub fn estimate(&self) -> f64 {
        let mut avgs: Vec<f64> = (0..self.rows)
            .map(|r| {
                let base = r * self.cols;
                let sum: f64 = self.counters[base..base + self.cols]
                    .iter()
                    .map(|&z| (z as f64) * (z as f64))
                    .sum();
                sum / self.cols as f64
            })
            .collect();
        avgs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        avgs[avgs.len() / 2]
    }

    /// Estimate the `L2` norm `√F2`.
    pub fn estimate_l2(&self) -> f64 {
        self.estimate().sqrt()
    }

    /// `(rows, cols)` shape (wire serialization).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The per-cell sign hashes (wire serialization).
    pub fn sign_hashes(&self) -> &[SignHash] {
        &self.signs
    }

    /// The raw counters (wire serialization).
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Rebuild from parts. Fails on shape mismatches.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        signs: Vec<SignHash>,
        counters: Vec<i64>,
    ) -> Result<Self, String> {
        if rows == 0 || cols == 0 {
            return Err("rows and cols must be positive".into());
        }
        if rows.checked_mul(cols) != Some(signs.len()) || counters.len() != signs.len() {
            return Err("signs/counters must both have rows*cols entries".into());
        }
        Ok(AmsF2 {
            rows,
            cols,
            signs,
            counters,
            merges: 0,
        })
    }

    /// Merge a sketch built with the same shape and seed (AMS sketches
    /// are linear: counters add). Panics on shape or sign-hash
    /// mismatch.
    pub fn merge(&mut self, other: &AmsF2) {
        assert_eq!(self.rows, other.rows, "AmsF2 merge requires identical configuration (rows)");
        assert_eq!(self.cols, other.cols, "AmsF2 merge requires identical configuration (columns)");
        // A single ±1 probe collides half the time; probe a batch.
        let probe =
            |s: &SignHash| -> u32 { (0..32).map(|i| u32::from(s.sign(i) > 0) << i).sum() };
        assert_eq!(
            probe(&self.signs[0]),
            probe(&other.signs[0]),
            "AmsF2 merge requires identical hash functions"
        );
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.merges += 1 + other.merges;
    }

    /// Telemetry snapshot (fixed table: fill = capacity = cells).
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            updates: 0,
            fill: self.counters.len() as u64,
            capacity: self.counters.len() as u64,
            evictions: 0,
            prunes: 0,
            merges: self.merges,
        }
    }
}

impl SpaceUsage for AmsF2 {
    fn space_words(&self) -> usize {
        self.counters.len() + self.signs.iter().map(SignHash::space_words).sum::<usize>()
    }

    fn space_ledger(&self, node: &mut LedgerNode) {
        node.leaf("counters", self.counters.len());
        node.leaf("signs", self.signs.iter().map(SignHash::space_words).sum::<usize>());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_f2(freqs: &[(u64, i64)]) -> f64 {
        freqs.iter().map(|&(_, f)| (f * f) as f64).sum()
    }

    #[test]
    fn empty_stream_is_zero() {
        let sk = AmsF2::with_default_accuracy(1);
        assert_eq!(sk.estimate(), 0.0);
    }

    #[test]
    fn single_item_exact() {
        // One item with frequency f: every basic estimator is (±f)² = f².
        let mut sk = AmsF2::new(3, 4, 7);
        for _ in 0..9 {
            sk.insert(42);
        }
        assert_eq!(sk.estimate(), 81.0);
    }

    #[test]
    fn uniform_frequencies_within_tolerance() {
        let mut sk = AmsF2::new(7, 96, 2024);
        let freqs: Vec<(u64, i64)> = (0..500).map(|i| (i as u64, 10)).collect();
        for &(item, f) in &freqs {
            for _ in 0..f {
                sk.insert(item);
            }
        }
        let truth = exact_f2(&freqs);
        let est = sk.estimate();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.25, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn skewed_frequencies_within_tolerance() {
        let mut sk = AmsF2::new(7, 128, 99);
        // One heavy item dominating F2 plus a light tail.
        let mut freqs: Vec<(u64, i64)> = vec![(0, 1000)];
        freqs.extend((1..2000).map(|i| (i as u64, 1)));
        for &(item, f) in &freqs {
            for _ in 0..f {
                sk.insert(item);
            }
        }
        let truth = exact_f2(&freqs);
        let est = sk.estimate();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.25, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn signed_updates_cancel() {
        let mut sk = AmsF2::new(3, 8, 5);
        sk.update(7, 5);
        sk.update(7, -5);
        assert_eq!(sk.estimate(), 0.0);
    }

    #[test]
    fn l2_is_sqrt_of_f2() {
        let mut sk = AmsF2::new(3, 8, 5);
        for _ in 0..4 {
            sk.insert(1);
        }
        assert!((sk.estimate_l2() - sk.estimate().sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ledger_mirrors_space_words() {
        let sk = AmsF2::new(3, 8, 5);
        let mut node = LedgerNode::new();
        sk.space_ledger(&mut node);
        assert_eq!(node.total_words(), sk.space_words() as u64);
        assert_eq!(node.get("counters").unwrap().words, 24);
    }

    #[test]
    fn space_scales_with_rows_times_cols() {
        let small = AmsF2::new(2, 8, 1).space_words();
        let large = AmsF2::new(4, 16, 1).space_words();
        assert!(large >= 4 * small - 8, "space should scale: {small} vs {large}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = AmsF2::new(3, 8, 123);
        let mut b = AmsF2::new(3, 8, 123);
        for i in 0..100u64 {
            a.insert(i % 13);
            b.insert(i % 13);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn merge_is_linear() {
        let mut left = AmsF2::new(3, 16, 9);
        let mut right = AmsF2::new(3, 16, 9);
        let mut both = AmsF2::new(3, 16, 9);
        for i in 0..500u64 {
            left.insert(i % 40);
            both.insert(i % 40);
            right.insert(i % 23);
            both.insert(i % 23);
        }
        left.merge(&right);
        assert_eq!(left.estimate(), both.estimate());
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let mut a = AmsF2::new(2, 4, 1);
        let b = AmsF2::new(2, 4, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_shape_mismatch() {
        let mut a = AmsF2::new(2, 4, 1);
        let b = AmsF2::new(3, 4, 1);
        a.merge(&b);
    }
}
