//! CountMin sketch (Cormode–Muthukrishnan): biased-upward `L1` point
//! frequency estimation. Not used by the paper's algorithm itself (which
//! is `L2`-based), but a standard companion tool used by the set-arrival
//! streaming baselines and handy for workload diagnostics.

use kcov_hash::{pairwise, KWise, RangeHash, SeedSequence};
use kcov_obs::{LedgerNode, SketchStats};

use crate::space::SpaceUsage;

/// A CountMin sketch over `u64` items with non-negative updates.
#[derive(Debug, Clone)]
pub struct CountMin {
    rows: usize,
    width: usize,
    hashes: Vec<KWise>,
    table: Vec<u64>,
    /// Telemetry: merge invocations absorbed.
    merges: u64,
}

impl CountMin {
    /// `rows` hash rows of `width` counters each. Point-query
    /// overestimate is at most `F1/width` per row w.p. 1/2, so the
    /// row-minimum is within `O(F1/width)` w.h.p.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows >= 1, "need at least one row");
        assert!(width >= 2, "width must be at least 2");
        let mut seq = SeedSequence::labeled(seed, "count-min");
        CountMin {
            rows,
            width,
            hashes: (0..rows).map(|_| pairwise(seq.next_seed())).collect(),
            table: vec![0u64; rows * width],
            merges: 0,
        }
    }

    /// Observe `count` occurrences of `item`.
    #[inline]
    pub fn insert(&mut self, item: u64, count: u64) {
        for row in 0..self.rows {
            let b = self.hashes[row].hash_to_range(item, self.width as u64) as usize;
            self.table[row * self.width + b] += count;
        }
    }

    /// `(rows, width)` shape (wire serialization).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.width)
    }

    /// The per-row hashes (wire serialization).
    pub fn hashes(&self) -> &[KWise] {
        &self.hashes
    }

    /// The raw counter table, row-major (wire serialization).
    pub fn table(&self) -> &[u64] {
        &self.table
    }

    /// Rebuild from parts. Fails on shape mismatches.
    pub fn from_parts(
        rows: usize,
        width: usize,
        hashes: Vec<KWise>,
        table: Vec<u64>,
    ) -> Result<Self, String> {
        if rows == 0 || width < 2 {
            return Err("bad CountMin shape".into());
        }
        if hashes.len() != rows || rows.checked_mul(width) != Some(table.len()) {
            return Err("CountMin parts have inconsistent lengths".into());
        }
        Ok(CountMin {
            rows,
            width,
            hashes,
            table,
            merges: 0,
        })
    }

    /// Merge a sketch built with the same shape and seed (linear).
    /// Panics on mismatch.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.rows, other.rows, "CountMin merge requires identical configuration (rows)");
        assert_eq!(
            self.width,
            other.width,
            "CountMin merge requires identical configuration (width)"
        );
        assert_eq!(
            self.hashes[0].hash(0x5eed_c0de),
            other.hashes[0].hash(0x5eed_c0de),
            "CountMin merge requires identical hash functions"
        );
        for (a, &b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
        self.merges += 1 + other.merges;
    }

    /// Telemetry snapshot (fixed table: fill = capacity = cells).
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            updates: 0,
            fill: self.table.len() as u64,
            capacity: self.table.len() as u64,
            evictions: 0,
            prunes: 0,
            merges: self.merges,
        }
    }

    /// Upper-bound estimate of the frequency of `item` (never
    /// underestimates).
    pub fn query(&self, item: u64) -> u64 {
        (0..self.rows)
            .map(|row| {
                let b = self.hashes[row].hash_to_range(item, self.width as u64) as usize;
                self.table[row * self.width + b]
            })
            .min()
            .expect("at least one row")
    }
}

impl SpaceUsage for CountMin {
    fn space_words(&self) -> usize {
        self.table.len() + self.hashes.iter().map(KWise::space_words).sum::<usize>()
    }

    fn space_ledger(&self, node: &mut LedgerNode) {
        node.leaf("rows", self.table.len());
        node.leaf("hashes", self.hashes.iter().map(KWise::space_words).sum::<usize>());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(4, 32, 1);
        for i in 0..200u64 {
            cm.insert(i, 1 + i % 5);
        }
        for i in 0..200u64 {
            assert!(cm.query(i) > i % 5, "underestimate for {i}");
        }
    }

    #[test]
    fn exact_on_sparse_input() {
        let mut cm = CountMin::new(5, 256, 2);
        cm.insert(10, 7);
        cm.insert(20, 3);
        assert_eq!(cm.query(10), 7);
        assert_eq!(cm.query(20), 3);
        assert_eq!(cm.query(30), 0);
    }

    #[test]
    fn overestimate_bounded_on_uniform_stream() {
        let mut cm = CountMin::new(5, 512, 3);
        for i in 0..1000u64 {
            cm.insert(i, 1);
        }
        // F1 = 1000, width 512: expected collision mass per bucket ~2.
        let mut worst = 0u64;
        for i in 0..1000u64 {
            worst = worst.max(cm.query(i) - 1);
        }
        assert!(worst <= 10, "overestimate {worst} too large");
    }

    #[test]
    fn space_counts_table() {
        let cm = CountMin::new(2, 16, 1);
        assert!(cm.space_words() >= 32);
    }

    #[test]
    fn ledger_mirrors_space_words() {
        let cm = CountMin::new(3, 32, 4);
        let mut node = LedgerNode::new();
        cm.space_ledger(&mut node);
        assert_eq!(node.total_words(), cm.space_words() as u64);
        assert_eq!(node.get("rows").unwrap().words, 96);
    }

    #[test]
    fn merge_is_linear() {
        let mut left = CountMin::new(3, 64, 9);
        let mut right = CountMin::new(3, 64, 9);
        let mut both = CountMin::new(3, 64, 9);
        for i in 0..100u64 {
            left.insert(i, 1);
            both.insert(i, 1);
            right.insert(i + 50, 3);
            both.insert(i + 50, 3);
        }
        left.merge(&right);
        for i in 0..150u64 {
            assert_eq!(left.query(i), both.query(i));
        }
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let mut a = CountMin::new(2, 8, 1);
        let b = CountMin::new(2, 8, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_shape_mismatch() {
        let mut a = CountMin::new(2, 8, 1);
        let b = CountMin::new(2, 16, 1);
        a.merge(&b);
    }
}
