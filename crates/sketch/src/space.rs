//! Space accounting.
//!
//! The paper's central claim is a space bound — `Θ̃(m/α²)` words — so this
//! workspace measures space explicitly instead of trusting asymptotics.
//! Every sketch, every sub-algorithm and the full estimator implement
//! [`SpaceUsage`], reporting the number of resident 64-bit words of
//! *algorithmic state*: counters, hash coefficients, stored samples and
//! candidate lists. Transient per-update scratch space is excluded, as is
//! constant per-object overhead (a handful of lengths and parameters),
//! matching how space is counted in the streaming literature.
//!
//! [`SpaceUsage::space_ledger`] refines the scalar total into an
//! attribution tree ([`LedgerNode`]): every implementation mirrors its
//! own `space_words` arithmetic term by term (explicit `overhead`
//! leaves for the literal constants), so the ledger's leaf sum equals
//! `space_words()` **exactly** — the finalize invariant the estimator
//! asserts and `maxkcov prof` re-audits from traces.

use kcov_obs::LedgerNode;

/// Number of resident 64-bit words of algorithmic state.
pub trait SpaceUsage {
    /// Current space in 64-bit words.
    fn space_words(&self) -> usize;

    /// Current space in bytes (8 × words).
    fn space_bytes(&self) -> usize {
        self.space_words() * 8
    }

    /// Attribute this object's resident words (and, where tracked, its
    /// update heat) into `node`. The default treats the object as one
    /// opaque leaf; structured implementations add component children
    /// instead and must keep Σ attributed words == `space_words()`.
    fn space_ledger(&self, node: &mut LedgerNode) {
        node.words += self.space_words() as u64;
    }
}

/// Sum the space of a slice of accountable components.
pub fn total_words<T: SpaceUsage>(items: &[T]) -> usize {
    items.iter().map(SpaceUsage::space_words).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl SpaceUsage for Fixed {
        fn space_words(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn bytes_are_eight_times_words() {
        assert_eq!(Fixed(10).space_bytes(), 80);
    }

    #[test]
    fn totals_sum() {
        let items = [Fixed(1), Fixed(2), Fixed(3)];
        assert_eq!(total_words(&items), 6);
    }

    #[test]
    fn empty_total_is_zero() {
        let items: [Fixed; 0] = [];
        assert_eq!(total_words(&items), 0);
    }

    #[test]
    fn default_ledger_is_one_opaque_leaf() {
        let mut node = LedgerNode::new();
        Fixed(7).space_ledger(&mut node);
        Fixed(3).space_ledger(&mut node);
        assert_eq!(node.words, 10);
        assert!(node.is_leaf());
        assert_eq!(node.total_words(), Fixed(7).space_words() as u64 + 3);
    }
}
