//! Cache-resident sketch arenas: compact, contiguous storage primitives
//! shared by every sketch family.
//!
//! PR 8's space ledger attributed most of the estimator's resident words
//! — and `maxkcov prof` most of its sketch-update time — to thousands of
//! small node-based containers: a `BTreeSet` per KMV summary, a
//! `HashMap` per heavy-hitter candidate list, a `HashMap` per
//! `LargeSet` repetition. Each hides pointer-chasing, per-node
//! allocation and poor locality behind an innocent API. This module
//! replaces them with two flat structures:
//!
//! * [`SortedSlab`] — a bottom-k summary as one sorted array. The
//!   saturated hot path rejects a non-improving value with a single
//!   compare against the cached maximum (the last slot), and an
//!   accepted value costs one `memmove` inside a line-sized buffer.
//! * [`OaMap`] — an open-addressing hash table (power-of-two capacity,
//!   linear probing) keyed by `u64`. Lookups touch one cache line in
//!   the common case instead of walking `std` hash-map metadata.
//!
//! Both are *logically* equivalent to the containers they replace: the
//! sketch state they hold (the value set, the key→count map) is
//! identical, every consumer canonicalizes iteration order before it
//! affects an estimate, a trace byte or a wire byte, and the space
//! ledger counts logical entries, not slots. The pre-arena layouts are
//! kept behind [`Backend::Reference`] so the `arena_parity` suite can
//! prove byte-identical behavior end-to-end; select it with
//! `KCOV_SKETCH_BACKEND=reference` (anything else, including unset,
//! selects the arena layout).

use std::sync::OnceLock;

/// Which storage layout sketches allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Flat arena storage (default): [`SortedSlab`] / [`OaMap`].
    Arena,
    /// Pre-arena layout (`BTreeSet` / `std` `HashMap`), retained for the
    /// differential parity suite.
    Reference,
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// The storage backend for this process, resolved once from the
/// `KCOV_SKETCH_BACKEND` environment variable (`reference` selects the
/// pre-arena layout; anything else is the arena).
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| match std::env::var("KCOV_SKETCH_BACKEND") {
        Ok(v) if v == "reference" => Backend::Reference,
        _ => Backend::Arena,
    })
}

/// SplitMix64 finalizer — the probe mix for [`OaMap`], also exported
/// for salted one-compare gates over keys that are themselves hash
/// outputs (e.g. `LargeSet`'s per-repetition element-sampling gate,
/// where the input pseudo-element already carries 4-wise independence
/// and the finalizer only decorrelates repetitions).
#[inline]
pub fn probe_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---- SortedSlab ------------------------------------------------------

/// A bottom-k summary stored as one sorted (ascending) flat array.
///
/// Replaces `BTreeSet<u64>` in KMV summaries: same value set, same
/// ascending iteration, but the saturated reject path is one compare
/// against the last slot and an accepted insert is one binary search
/// plus one `memmove` — no per-node allocation, no pointer chasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedSlab {
    cap: usize,
    vals: Vec<u64>,
}

impl SortedSlab {
    /// An empty slab keeping at most `cap` values.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "SortedSlab needs capacity >= 1");
        SortedSlab {
            cap,
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of kept values.
    #[inline]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no values are kept.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// True once `cap` values are resident.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.vals.len() == self.cap
    }

    /// The current maximum (the eviction cut-off), if any.
    #[inline]
    pub fn max(&self) -> Option<u64> {
        self.vals.last().copied()
    }

    /// Insert `v` while below capacity. Returns `false` on duplicates.
    /// Panics when full — callers must switch to
    /// [`SortedSlab::insert_evict`] at saturation.
    pub fn insert_unsaturated(&mut self, v: u64) -> bool {
        assert!(!self.is_full(), "insert_unsaturated on a full slab");
        match self.vals.binary_search(&v) {
            Ok(_) => false,
            Err(idx) => {
                self.vals.insert(idx, v);
                true
            }
        }
    }

    /// Insert `v` into a full slab, evicting the current maximum.
    /// Returns `false` (no state change) when `v` is a duplicate or does
    /// not beat the maximum.
    #[inline]
    pub fn insert_evict(&mut self, v: u64) -> bool {
        debug_assert!(self.is_full());
        if v >= self.vals[self.cap - 1] {
            return false;
        }
        match self.vals.binary_search(&v) {
            Ok(_) => false,
            Err(idx) => {
                // One shift drops the maximum and opens slot `idx`.
                self.vals.copy_within(idx..self.cap - 1, idx + 1);
                self.vals[idx] = v;
                true
            }
        }
    }

    /// The kept values, ascending.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.vals
    }

    /// Rebuild from arbitrary values (sorted + deduplicated; the caller
    /// checks the pre-dedup length against its own capacity contract).
    pub fn from_values(cap: usize, mut vals: Vec<u64>) -> Self {
        assert!(cap >= 1, "SortedSlab needs capacity >= 1");
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= cap, "values exceed slab capacity");
        // No up-front reservation: `cap` may come from untrusted wire
        // bytes (the decoder validates value counts, not capacities),
        // and the slab only ever grows to the values actually inserted.
        SortedSlab { cap, vals }
    }
}

// ---- OaMap -----------------------------------------------------------

/// Open-addressing `u64 → V` map: power-of-two slot array, linear
/// probing, growth at ¾ load. Replaces `std` `HashMap`s in candidate
/// lists and per-repetition sample tables.
///
/// Iteration order is slot order — deterministic for a fixed insertion
/// sequence but *not* canonical; consumers sort by key before any
/// order-sensitive use, exactly as they already did for the `std` maps.
#[derive(Debug, Clone)]
pub struct OaMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> Default for OaMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> OaMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        OaMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// An empty map with room for `n` entries before regrowth.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = Self::new();
        if n > 0 {
            m.rehash((n * 4 / 3 + 1).next_power_of_two().max(8));
        }
        m
    }

    /// Number of resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap * 4 > self.len * 4);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        for (k, v) in old.into_iter().flatten() {
            let mask = self.mask();
            let mut i = probe_mix(k) as usize & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((k, v));
        }
    }

    #[inline]
    fn grow_if_needed(&mut self) {
        if self.slots.is_empty() {
            self.rehash(8);
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.rehash(self.slots.len() * 2);
        }
    }

    /// Shared probe: index of `key`'s slot, or of the empty slot where
    /// it would be inserted.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        debug_assert!(!self.slots.is_empty());
        let mask = self.mask();
        let mut i = probe_mix(key) as usize & mask;
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return i,
                None => return i,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Borrow the value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        match &self.slots[self.probe(key)] {
            Some((_, v)) => Some(v),
            None => None,
        }
    }

    /// Mutably borrow the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        let i = self.probe(key);
        match &mut self.slots[i] {
            Some((_, v)) => Some(v),
            None => None,
        }
    }

    /// Mutably borrow the value for `key`, inserting `default()` first
    /// when absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        self.grow_if_needed();
        let i = self.probe(key);
        if self.slots[i].is_none() {
            self.slots[i] = Some((key, default()));
            self.len += 1;
        }
        match &mut self.slots[i] {
            Some((_, v)) => v,
            None => unreachable!("slot just filled"),
        }
    }

    /// Insert or overwrite.
    #[inline]
    pub fn set(&mut self, key: u64, value: V) {
        self.grow_if_needed();
        let i = self.probe(key);
        if self.slots[i].is_none() {
            self.len += 1;
        }
        self.slots[i] = Some((key, value));
    }

    /// Iterate entries in slot order (not canonical — sort before any
    /// order-sensitive use).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterate entries mutably in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(k, v)| (*k, &mut *v)))
    }

    /// Keep only entries satisfying the predicate, rebuilding the slot
    /// array (tombstone-free removal; cost is one pass).
    pub fn retain(&mut self, mut pred: impl FnMut(u64, &mut V) -> bool) {
        let cap = self.slots.len();
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(cap, || None);
        self.len = 0;
        for (k, mut v) in old.into_iter().flatten() {
            if pred(k, &mut v) {
                let mask = self.mask();
                let mut i = probe_mix(k) as usize & mask;
                while self.slots[i].is_some() {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Some((k, v));
                self.len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashMap};

    #[test]
    fn slab_matches_btreeset_bottom_k() {
        let k = 16;
        let mut slab = SortedSlab::new(k);
        let mut tree: BTreeSet<u64> = BTreeSet::new();
        let mut x = 7u64;
        for _ in 0..5_000 {
            x = probe_mix(x);
            let v = x % 997; // force duplicates
            if slab.is_full() {
                slab.insert_evict(v);
            } else {
                slab.insert_unsaturated(v);
            }
            tree.insert(v);
            while tree.len() > k {
                let max = *tree.iter().next_back().unwrap();
                tree.remove(&max);
            }
            let want: Vec<u64> = tree.iter().copied().collect();
            assert_eq!(slab.values(), &want[..]);
        }
    }

    #[test]
    fn slab_saturated_reject_is_stateless() {
        let mut slab = SortedSlab::new(4);
        for v in [10u64, 20, 30, 40] {
            assert!(slab.insert_unsaturated(v));
        }
        let before = slab.values().to_vec();
        assert!(!slab.insert_evict(40)); // equal to max
        assert!(!slab.insert_evict(99)); // above max
        assert!(!slab.insert_evict(20)); // duplicate below max
        assert_eq!(slab.values(), &before[..]);
        assert!(slab.insert_evict(15));
        assert_eq!(slab.values(), &[10, 15, 20, 30]);
    }

    #[test]
    fn slab_from_values_sorts_and_dedups() {
        let slab = SortedSlab::from_values(8, vec![5, 1, 5, 3]);
        assert_eq!(slab.values(), &[1, 3, 5]);
        assert_eq!(slab.len(), 3);
        assert!(!slab.is_full());
    }

    #[test]
    #[should_panic(expected = "values exceed slab capacity")]
    fn slab_from_values_rejects_overflow() {
        let _ = SortedSlab::from_values(2, vec![1, 2, 3]);
    }

    #[test]
    fn oamap_matches_std_hashmap() {
        let mut oa: OaMap<i64> = OaMap::new();
        let mut std_map: HashMap<u64, i64> = HashMap::new();
        let mut x = 3u64;
        for round in 0..3_000i64 {
            x = probe_mix(x);
            let key = x % 513;
            *oa.get_or_insert_with(key, || 0) += round;
            *std_map.entry(key).or_insert(0) += round;
        }
        assert_eq!(oa.len(), std_map.len());
        let mut got: Vec<(u64, i64)> = oa.iter().map(|(k, v)| (k, *v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, i64)> = std_map.iter().map(|(k, v)| (*k, *v)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        for (k, v) in &want {
            assert_eq!(oa.get(*k), Some(v));
        }
        assert_eq!(oa.get(u64::MAX), None);
    }

    #[test]
    fn oamap_retain_rebuilds_without_loss() {
        let mut oa: OaMap<i64> = OaMap::new();
        for k in 0..100u64 {
            oa.set(k, k as i64);
        }
        oa.retain(|k, _| k % 3 == 0);
        assert_eq!(oa.len(), 34);
        for k in 0..100u64 {
            assert_eq!(oa.get(k).is_some(), k % 3 == 0, "key {k}");
        }
        // Post-retain inserts still probe correctly.
        oa.set(1, -1);
        assert_eq!(oa.get(1), Some(&-1));
        assert_eq!(oa.len(), 35);
    }

    #[test]
    fn oamap_get_mut_and_overwrite() {
        let mut oa: OaMap<u64> = OaMap::with_capacity(4);
        assert!(oa.is_empty());
        oa.set(9, 1);
        *oa.get_mut(9).unwrap() += 5;
        assert_eq!(oa.get(9), Some(&6));
        oa.set(9, 0);
        assert_eq!(oa.get(9), Some(&0));
        assert_eq!(oa.len(), 1);
        assert!(oa.get_mut(10).is_none());
    }

    #[test]
    fn oamap_zero_key_and_growth() {
        let mut oa: OaMap<u64> = OaMap::new();
        oa.set(0, 42); // 0 must be an ordinary key, not a sentinel
        for k in 1..1_000u64 {
            oa.set(k, k);
        }
        assert_eq!(oa.get(0), Some(&42));
        assert_eq!(oa.len(), 1_000);
    }

    #[test]
    fn backend_defaults_to_arena() {
        // The test harness never sets KCOV_SKETCH_BACKEND, so the
        // resolved backend is the arena.
        assert_eq!(backend(), Backend::Arena);
    }
}
