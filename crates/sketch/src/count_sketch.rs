//! CountSketch — Charikar, Chen & Farach-Colton (reference [18] of the
//! paper), the linear sketch behind `F2`/`L2` heavy hitters
//! (Theorem 2.10).
//!
//! A `rows × width` table of counters. Row `r` hashes each item to a
//! bucket (pairwise-independent) and a sign (4-wise independent); the
//! point-query estimate of `a⃗[i]` is the median over rows of
//! `sign_r(i) · table[r][bucket_r(i)]`. With `width = O(1/φ)` the additive
//! error of each row is `O(√(φ·F2))` with constant probability, so medians
//! over `O(log)` rows recover every `φ`-heavy hitter to within a
//! `(1 ± 1/2)` factor.

use kcov_hash::{four_wise, pairwise, KWise, RangeHash, SeedSequence, SignHash};
use kcov_obs::{LedgerNode, SketchStats};

use crate::space::SpaceUsage;

/// A CountSketch frequency sketch over `u64` items.
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: usize,
    width: usize,
    buckets: Vec<KWise>,
    signs: Vec<SignHash>,
    table: Vec<i64>,
    /// Heat telemetry: update operations absorbed (one add per batch on
    /// the hot path; each update writes one counter per row). Merged by
    /// addition, zeroed by plain wire reconstruction, restored by the
    /// full-state sidecar.
    updates: u64,
    /// Telemetry: merge invocations absorbed.
    merges: u64,
}

impl CountSketch {
    /// Create a sketch with `rows` independent rows of `width` counters.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!((1..=32).contains(&rows), "rows must be in 1..=32");
        assert!(width >= 2, "width must be at least 2");
        let mut seq = SeedSequence::labeled(seed, "count-sketch");
        CountSketch {
            rows,
            width,
            buckets: (0..rows).map(|_| pairwise(seq.next_seed())).collect(),
            signs: (0..rows)
                .map(|_| {
                    let s = four_wise(seq.next_seed());
                    // Pairwise signs suffice for point-query unbiasedness
                    // (the 4-wise requirement belongs to the AMS f2 bound,
                    // which the median over rows cushions); the shorter
                    // polynomial halves the per-row sign cost on the
                    // row-inner hot loop. The wire format carries the full
                    // coefficient vector, so the degree round-trips.
                    SignHash::pairwise(seq.next_seed() ^ s.hash(0))
                })
                .collect(),
            table: vec![0i64; rows * width],
            updates: 0,
            merges: 0,
        }
    }

    /// Row/bucket index for an item in a given row.
    #[inline]
    fn slot(&self, row: usize, item: u64) -> usize {
        row * self.width + self.buckets[row].hash_to_range(item, self.width as u64) as usize
    }

    /// Observe one occurrence of `item`.
    #[inline]
    pub fn insert(&mut self, item: u64) {
        self.update(item, 1);
    }

    /// General signed update (`a⃗[item] += delta`).
    #[inline]
    pub fn update(&mut self, item: u64, delta: i64) {
        self.updates += 1;
        for row in 0..self.rows {
            let slot = self.slot(row, item);
            self.table[slot] += self.signs[row].sign(item) * delta;
        }
    }

    /// Observe one occurrence of each item in a chunk. The table is a
    /// linear sketch, so updates commute and the final state is
    /// identical to per-item insertion; iterating row-outer keeps each
    /// row's bucket/sign hash and table stripe hot across the chunk.
    pub fn insert_batch(&mut self, items: &[u64]) {
        self.updates += items.len() as u64;
        let w = self.width as u64;
        for row in 0..self.rows {
            let bucket = &self.buckets[row];
            let sign = &self.signs[row];
            let stripe = &mut self.table[row * self.width..(row + 1) * self.width];
            for &item in items {
                stripe[bucket.hash_to_range(item, w) as usize] += sign.sign(item);
            }
        }
    }

    /// Batched signed updates (`a⃗[item] += delta` for each pair), same
    /// row-outer amortization as [`CountSketch::insert_batch`].
    pub fn update_batch(&mut self, updates: &[(u64, i64)]) {
        self.updates += updates.len() as u64;
        let w = self.width as u64;
        for row in 0..self.rows {
            let bucket = &self.buckets[row];
            let sign = &self.signs[row];
            let stripe = &mut self.table[row * self.width..(row + 1) * self.width];
            for &(item, delta) in updates {
                stripe[bucket.hash_to_range(item, w) as usize] += sign.sign(item) * delta;
            }
        }
    }

    /// Point query: median-of-rows estimate of `a⃗[item]`.
    pub fn query(&self, item: u64) -> i64 {
        // Stack buffer: rows are small and this is on the hot path.
        let mut buf = [0i64; 32];
        let rows = self.rows.min(32);
        for (row, slot) in buf.iter_mut().enumerate().take(rows) {
            *slot = self.signs[row].sign(item) * self.table[self.slot(row, item)];
        }
        let ests = &mut buf[..rows];
        ests.sort_unstable();
        let mid = ests.len() / 2;
        if ests.len() % 2 == 1 {
            ests[mid]
        } else {
            // Round the two-middle average toward zero to stay
            // conservative for threshold comparisons.
            (ests[mid - 1] + ests[mid]) / 2
        }
    }

    /// Estimate `F2(a⃗)` from the sketch itself. Each row is a
    /// width-bucketed AMS estimator: `Σ_b table[r][b]²` has expectation
    /// `F2` (the cross terms vanish under the 4-wise independent signs)
    /// and variance `O(F2²/width)`; the median over rows boosts the
    /// success probability exactly as in Alon–Matias–Szegedy. A pure
    /// function of the linear table, so it commutes with
    /// [`CountSketch::merge`] and round-trips bit-exactly through the
    /// wire format.
    pub fn f2_estimate(&self) -> f64 {
        let mut per_row: Vec<f64> = (0..self.rows)
            .map(|r| {
                let stripe = &self.table[r * self.width..(r + 1) * self.width];
                let sum: i128 = stripe.iter().map(|&c| (c as i128) * (c as i128)).sum();
                sum as f64
            })
            .collect();
        per_row.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mid = per_row.len() / 2;
        if per_row.len() % 2 == 1 {
            per_row[mid]
        } else {
            (per_row[mid - 1] + per_row[mid]) / 2.0
        }
    }

    /// Merge a sketch built with the same shape and seed (CountSketch is
    /// a linear sketch: tables add). Panics on mismatch.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(
            self.rows,
            other.rows,
            "CountSketch merge requires identical configuration (rows)"
        );
        assert_eq!(
            self.width,
            other.width,
            "CountSketch merge requires identical configuration (width)"
        );
        assert_eq!(
            (self.buckets[0].hash(0x5eed_c0de), self.signs[0].sign(0x5eed_c0de)),
            (other.buckets[0].hash(0x5eed_c0de), other.signs[0].sign(0x5eed_c0de)),
            "CountSketch merge requires identical hash functions"
        );
        for (a, &b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
        self.merges += 1 + other.merges;
        self.updates += other.updates;
    }

    /// Heat counter: update operations absorbed so far.
    pub fn heat_updates(&self) -> u64 {
        self.updates
    }

    /// Restore the heat counter after wire reconstruction
    /// ([`CountSketch::from_parts`] deliberately zeroes it — telemetry
    /// is not state).
    pub fn restore_telemetry(&mut self, updates: u64) {
        self.updates = updates;
    }

    /// Telemetry snapshot (fixed table: fill = capacity = cells).
    /// `updates` stays 0 here: the heat counter is surfaced through the
    /// space ledger, and the `"sketch"` event layout predates it (its
    /// bytes are part of the trace bit-neutrality contract).
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            updates: 0,
            fill: self.table.len() as u64,
            capacity: self.table.len() as u64,
            evictions: 0,
            prunes: 0,
            merges: self.merges,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The per-row bucket hashes (wire serialization).
    pub fn bucket_hashes(&self) -> &[KWise] {
        &self.buckets
    }

    /// The per-row sign hashes (wire serialization).
    pub fn sign_hashes(&self) -> &[SignHash] {
        &self.signs
    }

    /// The raw counter table, row-major (wire serialization).
    pub fn table(&self) -> &[i64] {
        &self.table
    }

    /// Rebuild from parts. Fails on shape mismatches.
    pub fn from_parts(
        rows: usize,
        width: usize,
        buckets: Vec<KWise>,
        signs: Vec<SignHash>,
        table: Vec<i64>,
    ) -> Result<Self, String> {
        if !(1..=32).contains(&rows) || width < 2 {
            return Err("bad CountSketch shape".into());
        }
        if buckets.len() != rows || signs.len() != rows || rows.checked_mul(width) != Some(table.len()) {
            return Err("CountSketch parts have inconsistent lengths".into());
        }
        Ok(CountSketch {
            rows,
            width,
            buckets,
            signs,
            table,
            updates: 0,
            merges: 0,
        })
    }
}

impl SpaceUsage for CountSketch {
    fn space_words(&self) -> usize {
        self.table.len()
            + self.buckets.iter().map(KWise::space_words).sum::<usize>()
            + self.signs.iter().map(SignHash::space_words).sum::<usize>()
    }

    /// Mirrors `space_words` exactly: the counter table plus the per-row
    /// bucket/sign hashes. Heat lands on the `rows` leaf — every update
    /// writes one counter per row, so `touched_words = updates × rows`.
    fn space_ledger(&self, node: &mut LedgerNode) {
        let rows = node.child("rows");
        rows.words += self.table.len() as u64;
        rows.updates += self.updates;
        rows.touched_words += self.updates * self.rows as u64;
        node.leaf(
            "hashes",
            self.buckets.iter().map(KWise::space_words).sum::<usize>()
                + self.signs.iter().map(SignHash::space_words).sum::<usize>(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_recovered_exactly() {
        let mut cs = CountSketch::new(5, 16, 3);
        for _ in 0..25 {
            cs.insert(7);
        }
        assert_eq!(cs.query(7), 25);
    }

    #[test]
    fn absent_item_near_zero_on_sparse_stream() {
        let mut cs = CountSketch::new(5, 64, 11);
        for i in 0..10u64 {
            cs.insert(i);
        }
        // With 10 items of weight 1 in 64 buckets, any fixed absent item
        // collides rarely; the median estimate should be small.
        let est = cs.query(9999);
        assert!(est.abs() <= 2, "absent item estimate {est}");
    }

    #[test]
    fn heavy_item_estimate_within_half() {
        let mut cs = CountSketch::new(7, 256, 2024);
        // Heavy item of frequency 1000 against 5000 noise items of freq 1.
        for _ in 0..1000 {
            cs.insert(0);
        }
        for i in 1..=5000u64 {
            cs.insert(i);
        }
        let est = cs.query(0);
        assert!(
            (500..=1500).contains(&est),
            "heavy estimate {est} outside (1±1/2)·1000"
        );
    }

    #[test]
    fn signed_updates_cancel() {
        let mut cs = CountSketch::new(3, 8, 5);
        cs.update(4, 10);
        cs.update(4, -10);
        assert_eq!(cs.query(4), 0);
    }

    #[test]
    fn linearity_of_updates() {
        let mut a = CountSketch::new(3, 16, 9);
        let mut b = CountSketch::new(3, 16, 9);
        a.update(1, 3);
        a.update(1, 4);
        b.update(1, 7);
        assert_eq!(a.query(1), b.query(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CountSketch::new(4, 32, 77);
        let mut b = CountSketch::new(4, 32, 77);
        for i in 0..500u64 {
            a.insert(i % 37);
            b.insert(i % 37);
        }
        for i in 0..37u64 {
            assert_eq!(a.query(i), b.query(i));
        }
    }

    #[test]
    fn space_counts_table_and_hashes() {
        let cs = CountSketch::new(2, 8, 1);
        assert!(cs.space_words() >= 16, "at least the table");
    }

    #[test]
    fn merge_is_linear() {
        let mut left = CountSketch::new(3, 32, 9);
        let mut right = CountSketch::new(3, 32, 9);
        let mut both = CountSketch::new(3, 32, 9);
        for i in 0..200u64 {
            left.insert(i % 17);
            both.insert(i % 17);
            right.update(i % 11, 2);
            both.update(i % 11, 2);
        }
        left.merge(&right);
        for i in 0..17u64 {
            assert_eq!(left.query(i), both.query(i));
        }
    }

    #[test]
    fn f2_estimate_exact_for_single_item() {
        // One item of frequency f: every row has a single ±f counter, so
        // each row's sum of squares — and hence the median — is f².
        let mut cs = CountSketch::new(5, 16, 3);
        for _ in 0..12 {
            cs.insert(42);
        }
        assert_eq!(cs.f2_estimate(), 144.0);
    }

    #[test]
    fn f2_estimate_within_tolerance_and_commutes_with_merge() {
        let mut left = CountSketch::new(7, 256, 9);
        let mut right = CountSketch::new(7, 256, 9);
        let mut both = CountSketch::new(7, 256, 9);
        for i in 0..4_000u64 {
            left.insert(i % 500);
            both.insert(i % 500);
            right.insert(i % 313);
            both.insert(i % 313);
        }
        left.merge(&right);
        // Pure function of the (linear) table: bit-identical post-merge.
        assert_eq!(left.f2_estimate().to_bits(), both.f2_estimate().to_bits());
        // And close to the exact F2 of the combined stream.
        let mut freqs = std::collections::HashMap::new();
        for i in 0..4_000u64 {
            *freqs.entry(i % 500).or_insert(0i64) += 1;
            *freqs.entry(i % 313).or_insert(0i64) += 1;
        }
        let truth: f64 = freqs.values().map(|&f| (f * f) as f64).sum();
        let est = both.f2_estimate();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.25, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let mut a = CountSketch::new(2, 8, 1);
        let b = CountSketch::new(2, 8, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_shape_mismatch() {
        let mut a = CountSketch::new(2, 8, 1);
        let b = CountSketch::new(2, 16, 1);
        a.merge(&b);
    }

    #[test]
    fn heat_updates_count_operations_and_ledger_is_exact() {
        let mut cs = CountSketch::new(3, 16, 9);
        for i in 0..10u64 {
            cs.insert(i);
        }
        cs.update(3, -2);
        cs.insert_batch(&[1, 2, 3]);
        cs.update_batch(&[(4, 5), (6, -1)]);
        assert_eq!(cs.heat_updates(), 10 + 1 + 3 + 2);
        let mut other = CountSketch::new(3, 16, 9);
        other.insert_batch(&[7, 8]);
        cs.merge(&other);
        assert_eq!(cs.heat_updates(), 18);
        // Ledger mirrors the space arithmetic exactly and prices the
        // table traffic at rows words per update.
        let mut node = kcov_obs::LedgerNode::new();
        cs.space_ledger(&mut node);
        assert_eq!(node.total_words(), cs.space_words() as u64);
        let rows = node.get("rows").unwrap();
        assert_eq!(rows.words, 48);
        assert_eq!(rows.updates, 18);
        assert_eq!(rows.touched_words, 18 * 3);
        // Plain wire reconstruction starts the heat counter clean;
        // restore re-applies it.
        let mut back = CountSketch::from_parts(
            cs.rows(),
            cs.width(),
            cs.bucket_hashes().to_vec(),
            cs.sign_hashes().to_vec(),
            cs.table().to_vec(),
        )
        .unwrap();
        assert_eq!(back.heat_updates(), 0);
        back.restore_telemetry(18);
        assert_eq!(back.heat_updates(), 18);
    }

    #[test]
    fn mean_error_shrinks_with_width() {
        // Wider sketches give smaller point-query error on a fixed noisy
        // stream (averaged over items to damp noise).
        let build = |width: usize| {
            let mut cs = CountSketch::new(5, width, 31);
            for i in 0..3000u64 {
                cs.insert(i % 600);
            }
            let mut err = 0.0;
            for i in 0..600u64 {
                err += (cs.query(i) - 5).abs() as f64;
            }
            err / 600.0
        };
        let narrow = build(8);
        let wide = build(512);
        assert!(
            wide <= narrow,
            "wide sketch error {wide} should not exceed narrow {narrow}"
        );
        // F2 = 600·25; a width-512 row has additive error ~√(F2/512) ≈ 5,
        // and the median over 5 rows brings the mean |error| down to ~1.
        assert!(wide < 3.0, "wide sketch error too large: {wide}");
    }
}
