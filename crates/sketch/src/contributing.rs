//! `γ`-contributing class detection — Theorem 2.11, after Indyk & Woodruff
//! (reference [29] of the paper).
//!
//! Partition the coordinates of `a⃗` into dyadic frequency classes
//! `R_t = { j : 2^{t−1} < a⃗[j] ≤ 2^t }` (Definition 2.7). A class is
//! `γ`-contributing when `|R_t| · 2^{2t} ≥ γ·F2(a⃗)`. The `F2-Contributing`
//! routine (paper §2.2, pseudocode after Theorem 2.11) guesses the class
//! size `n_t ∈ {2^i}` in parallel; for each guess it subsamples
//! *coordinates* at a rate that keeps ~polylog members of a class of that
//! size alive (Claim 2.8), and feeds the surviving substream to an
//! `F2`-heavy-hitter structure: Lemma 2.9 shows a surviving member of a
//! `γ`-contributing class is an `Ω̃(γ)`-heavy hitter of the sampled
//! substream. The union of per-level reports therefore contains a member
//! of every `γ`-contributing class, with `(1 ± 1/2)`-approximate
//! frequencies, in `Õ(1/γ)` space.

use kcov_hash::{log_wise, KWise, RangeHash, SeedSequence};
use kcov_obs::{LedgerNode, SketchStats};

use crate::heavy_hitter::{F2HeavyHitter, HeavyHitterConfig, HeavyItem};
use crate::space::SpaceUsage;

/// Configuration for [`F2Contributing`].
#[derive(Debug, Clone)]
pub struct ContributingConfig {
    /// Contribution threshold `γ`.
    pub gamma: f64,
    /// `r`: only look for contributing classes of size ≤ `r` (the paper's
    /// `F2-Contributing(γ, r)` second argument, crucial in Appendix B to
    /// keep common-element noise out of the reported supersets).
    pub max_class_size: u64,
    /// Expected number of surviving members of a class whose size matches
    /// the level's guess (the paper's `12·log m`; practical default 16).
    pub survivors_per_class: u64,
    /// The heavy-hitter threshold used inside each level is
    /// `φ = γ · phi_factor`. The paper divides by `Θ(log n · log^{c+1} m)`
    /// (Lemma 2.9); `phi_factor` is that reciprocal, exposed as a knob.
    pub phi_factor: f64,
    /// CountSketch width multiplier for the per-level heavy hitters
    /// (`width = hh_width_factor / φ`). The default (32) gives tight
    /// `(1 ± 1/2)` frequency estimates; callers whose thresholds carry
    /// their own slack (e.g. `LargeSet`) can run leaner.
    pub hh_width_factor: f64,
    /// CountSketch rows for the per-level heavy hitters.
    pub hh_rows: usize,
    /// Candidate-list capacity multiplier (`capacity = factor / φ`).
    /// The default (8) tracks the Theorem 2.10 interface; callers that
    /// only need the top contributing classes can run much leaner —
    /// the candidate lists otherwise dominate space when the universe
    /// of coordinates is small relative to `1/φ`.
    pub hh_capacity_factor: f64,
    /// Independence degree of the shared coordinate-sampling hash.
    /// `None` (the default) uses the paper's `Θ(log(mn))`-wise degree
    /// (Claim 2.8). Callers that feed the finder *already-fingerprinted*
    /// keys — outputs of an upstream `Θ(log(mn))`-wise hash — can pass a
    /// small fixed degree here: the composition stays as independent as
    /// the weaker stage, and the Horner loop on the per-update hot path
    /// shrinks accordingly.
    pub sampling_degree: Option<usize>,
}

impl ContributingConfig {
    /// Defaults for a threshold `γ` and class-size bound `r`.
    pub fn new(gamma: f64, max_class_size: u64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!(max_class_size >= 1, "class size bound must be >= 1");
        ContributingConfig {
            gamma,
            max_class_size,
            survivors_per_class: 16,
            phi_factor: 0.25,
            hh_width_factor: 32.0,
            hh_rows: 5,
            hh_capacity_factor: 8.0,
            sampling_degree: None,
        }
    }
}

/// One reported coordinate: which size-guess level found it, the
/// coordinate, and its `(1 ± 1/2)`-approximate frequency *in the full
/// stream* (coordinates are sampled whole, so the substream frequency of
/// a surviving coordinate equals its true frequency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContributingReport {
    /// Level index (class-size guess `2^level`).
    pub level: u32,
    /// The coordinate.
    pub item: u64,
    /// Approximate frequency.
    pub est: i64,
}

/// Single-pass `γ`-contributing class finder (Theorem 2.11 interface).
#[derive(Debug, Clone)]
pub struct F2Contributing {
    /// One shared `Θ(log mn)`-wise sampling hash; level `i` keeps a
    /// coordinate iff `hash(j) mod 2^i < keep_i`. The levels are nested
    /// (the classic dyadic structure), each individually as independent
    /// as the hash — and the hash is evaluated once per update instead
    /// of once per level.
    hash: KWise,
    levels: Vec<Level>,
}

#[derive(Debug, Clone)]
struct Level {
    /// Keep a coordinate iff `hash(j) mod 2^i < keep`, i.e. with
    /// probability `keep / 2^i`.
    modulus: u64,
    keep: u64,
    hh: F2HeavyHitter,
}

impl F2Contributing {
    /// Create a finder for threshold `config.gamma`, guessing class sizes
    /// `2^0, 2^1, …` up to `config.max_class_size`. `m` and `n` size the
    /// `Θ(log(mn))`-wise sampling hashes (Claim 2.8).
    pub fn new(config: ContributingConfig, m: usize, n: usize, seed: u64) -> Self {
        let mut seq = SeedSequence::labeled(seed, "f2-contributing");
        let max_level = config.max_class_size.max(1).next_power_of_two().trailing_zeros();
        let phi = (config.gamma * config.phi_factor).clamp(1e-9, 1.0);
        let hh_config = |phi: f64| {
            let mut c = HeavyHitterConfig::for_phi(phi);
            c.width_factor = config.hh_width_factor;
            c.rows = config.hh_rows;
            c.capacity_factor = config.hh_capacity_factor;
            c
        };
        let hash = match config.sampling_degree {
            Some(d) => KWise::new(d, seq.next_seed()),
            None => log_wise(m, n, seq.next_seed()),
        };
        // Levels whose modulus does not exceed `survivors_per_class`
        // sample with probability 1 and are therefore identical to the
        // unsampled level — build one unsampled level plus the truly
        // subsampled ones. (Classes of size ≤ survivors are caught by
        // the unsampled heavy hitter directly, exactly as in the paper's
        // small-i guesses.)
        let mut levels = vec![Level {
            modulus: 1,
            keep: 1,
            hh: F2HeavyHitter::new(hh_config(phi), seq.next_seed()),
        }];
        for i in 1..=max_level {
            let modulus = 1u64 << i;
            if modulus <= config.survivors_per_class {
                continue;
            }
            levels.push(Level {
                modulus,
                keep: config.survivors_per_class,
                hh: F2HeavyHitter::new(hh_config(phi), seq.next_seed()),
            });
        }
        F2Contributing { hash, levels }
    }

    /// Two-tier finder: one dyadic level schedule up to
    /// `max(wide.max_class_size, narrow.max_class_size)`, with one
    /// shared sampling hash. Levels whose modulus stays within
    /// `wide.max_class_size` carry `wide`'s heavy-hitter shape; deeper
    /// levels carry `narrow`'s.
    ///
    /// A caller that runs two thresholded searches over the *same item
    /// stream* (e.g. `LargeSet`'s Case-1/Case-2 pair, whose class-size
    /// bounds differ but whose dyadic subsampling is identical) would
    /// otherwise instantiate two finders whose shared-modulus levels
    /// receive byte-identical substreams — every candidate tracker and
    /// CountSketch on those levels is duplicated work. The paired
    /// schedule keeps exactly one structure per level: the overlap tier
    /// uses the wide (smaller-`φ`) sketch, which estimates at least as
    /// tightly as either original, and only the class sizes one search
    /// reaches alone pay for their own levels.
    ///
    /// The two configs must agree on `survivors_per_class` and
    /// `sampling_degree` (they share the level schedule and the hash).
    pub fn new_paired(
        wide: ContributingConfig,
        narrow: ContributingConfig,
        m: usize,
        n: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            wide.survivors_per_class, narrow.survivors_per_class,
            "paired finders share the level schedule"
        );
        assert_eq!(
            wide.sampling_degree, narrow.sampling_degree,
            "paired finders share the sampling hash"
        );
        let mut seq = SeedSequence::labeled(seed, "f2-contributing");
        let wide_p2 = wide.max_class_size.max(1).next_power_of_two();
        let max_class = wide.max_class_size.max(narrow.max_class_size);
        let max_level = max_class.max(1).next_power_of_two().trailing_zeros();
        let hh_config = |c: &ContributingConfig| {
            let phi = (c.gamma * c.phi_factor).clamp(1e-9, 1.0);
            let mut h = HeavyHitterConfig::for_phi(phi);
            h.width_factor = c.hh_width_factor;
            h.rows = c.hh_rows;
            h.capacity_factor = c.hh_capacity_factor;
            h
        };
        let hash = match wide.sampling_degree {
            Some(d) => KWise::new(d, seq.next_seed()),
            None => log_wise(m, n, seq.next_seed()),
        };
        let tier = |modulus: u64| {
            if modulus <= wide_p2 {
                hh_config(&wide)
            } else {
                hh_config(&narrow)
            }
        };
        let mut levels = vec![Level {
            modulus: 1,
            keep: 1,
            hh: F2HeavyHitter::new(tier(1), seq.next_seed()),
        }];
        for i in 1..=max_level {
            let modulus = 1u64 << i;
            if modulus <= wide.survivors_per_class {
                continue;
            }
            levels.push(Level {
                modulus,
                keep: wide.survivors_per_class,
                hh: F2HeavyHitter::new(tier(modulus), seq.next_seed()),
            });
        }
        F2Contributing { hash, levels }
    }

    /// Observe one stream update to coordinate `item`.
    pub fn insert(&mut self, item: u64) {
        let h = self.hash.hash(item);
        for level in &mut self.levels {
            // Moduli are powers of two (validated by `from_parts` and by
            // construction), so the residue is a mask — value-identical
            // to `h % modulus`, minus the division.
            if h & (level.modulus - 1) < level.keep {
                level.hh.insert(item);
            }
        }
    }

    /// Observe a chunk of updates. The shared sampling hash is evaluated
    /// once per item for the whole chunk (through the blocked
    /// [`RangeHash::hash_batch`] evaluator); each level then consumes its
    /// surviving sub-chunk in arrival order, so every per-level heavy
    /// hitter sees the exact item sequence the per-item path feeds it.
    pub fn insert_batch(&mut self, items: &[u64]) {
        let mut hashes: Vec<u64> = Vec::new();
        self.hash.hash_batch(items, &mut hashes);
        self.insert_batch_prehashed(items, &hashes);
    }

    /// [`F2Contributing::insert_batch`] with the sampling hashes already
    /// evaluated: `hashes[i]` must equal `self.sampling_hash().hash(items[i])`.
    /// Lets a caller that owns two finders over the same item stream and
    /// the same sampling hash (e.g. `LargeSet`'s paired case-1/case-2
    /// finders) evaluate the hash batch once and feed both.
    pub fn insert_batch_prehashed(&mut self, items: &[u64], hashes: &[u64]) {
        debug_assert_eq!(items.len(), hashes.len());
        debug_assert!(
            items.first().is_none_or(|&i| self.hash.hash(i) == hashes[0]),
            "prehashed values disagree with the sampling hash"
        );
        // Successive dyadic levels are usually *nested*: `keep` fits
        // inside the previous level's admitted window (`keep ≤
        // min(prev_keep, prev_modulus)`), or the previous level admitted
        // everything. Whenever that holds, the gather filters the
        // previous level's survivor column instead of rescanning the
        // whole chunk, so the scan work telescopes geometrically with
        // depth. Membership and order are unchanged either way — the
        // per-level heavy hitter sees the exact item sequence the
        // per-item path feeds it.
        let mut surv_items: Vec<u64> = Vec::with_capacity(items.len());
        let mut surv_hashes: Vec<u64> = Vec::new();
        let mut next_items: Vec<u64> = Vec::new();
        let mut next_hashes: Vec<u64> = Vec::new();
        let mut prev: Option<(u64, u64)> = None;
        for level in &mut self.levels {
            let mask = level.modulus - 1;
            let nested = prev.is_some_and(|(pm, pk)| pk >= pm || level.keep <= pk.min(pm));
            let (src_items, src_hashes): (&[u64], &[u64]) = if nested {
                (&surv_items, &surv_hashes)
            } else {
                (items, hashes)
            };
            next_items.clear();
            next_hashes.clear();
            for (&item, &h) in src_items.iter().zip(src_hashes) {
                if h & mask < level.keep {
                    next_items.push(item);
                    next_hashes.push(h);
                }
            }
            level.hh.insert_batch(&next_items);
            std::mem::swap(&mut surv_items, &mut next_items);
            std::mem::swap(&mut surv_hashes, &mut next_hashes);
            prev = Some((level.modulus, level.keep));
        }
    }

    /// Report a representative of every contributing class: the union of
    /// per-level heavy hitters, deduplicated by coordinate, sorted by
    /// decreasing estimate. When a coordinate is reported by several
    /// levels, the estimate from the *highest* level is kept: its
    /// substream is the sparsest, so its CountSketch collision noise is
    /// the smallest.
    pub fn report(&self) -> Vec<ContributingReport> {
        let mut out: Vec<ContributingReport> = Vec::new();
        for level in &self.levels {
            let level_idx = level.modulus.trailing_zeros();
            for HeavyItem { item, est } in level.hh.heavy_hitters() {
                out.push(ContributingReport {
                    level: level_idx,
                    item,
                    est,
                });
            }
        }
        out.sort_by(|a, b| a.item.cmp(&b.item).then(b.level.cmp(&a.level)));
        out.dedup_by_key(|r| r.item);
        out.sort_by(|a, b| b.est.cmp(&a.est).then(a.item.cmp(&b.item)));
        out
    }

    /// Number of size-guess levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The shared sampling hash (wire serialization).
    pub fn sampling_hash(&self) -> &KWise {
        &self.hash
    }

    /// Per-level `(modulus, keep, heavy hitter)` triples (wire
    /// serialization).
    pub fn level_parts(&self) -> Vec<(u64, u64, &F2HeavyHitter)> {
        self.levels.iter().map(|l| (l.modulus, l.keep, &l.hh)).collect()
    }

    /// Rebuild from parts (inverse of the accessors). Fails on an empty
    /// or malformed level schedule.
    pub fn from_parts(
        hash: KWise,
        levels: Vec<(u64, u64, F2HeavyHitter)>,
    ) -> Result<Self, String> {
        if levels.is_empty() {
            return Err("need at least one level".into());
        }
        let mut prev = 0u64;
        for &(modulus, keep, _) in &levels {
            if !modulus.is_power_of_two() || keep == 0 || keep > modulus {
                return Err(format!("malformed level (modulus {modulus}, keep {keep})"));
            }
            if modulus <= prev {
                return Err("level moduli must be strictly increasing".into());
            }
            prev = modulus;
        }
        Ok(F2Contributing {
            hash,
            levels: levels
                .into_iter()
                .map(|(modulus, keep, hh)| Level { modulus, keep, hh })
                .collect(),
        })
    }

    /// Merge a finder built with the same configuration and seed over a
    /// disjoint stream shard. Coordinate sampling is a pure function of
    /// the shared hash, so each level's surviving substream is the
    /// disjoint union of the shards' substreams and the per-level heavy
    /// hitters merge under their own contract. Panics on configuration
    /// or seed mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.levels.len(),
            other.levels.len(),
            "F2Contributing merge requires identical configuration (levels)"
        );
        assert_eq!(
            self.hash.hash(0x5eed_c0de),
            other.hash.hash(0x5eed_c0de),
            "F2Contributing merge requires identical hash functions"
        );
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            assert_eq!(
                (a.modulus, a.keep),
                (b.modulus, b.keep),
                "F2Contributing merge requires identical configuration (level schedule)"
            );
            a.hh.merge(&b.hh);
        }
    }

    /// Restore per-level heavy-hitter telemetry counters
    /// (`(prunes, evictions, merges, sketch_updates)` tuples, level
    /// order) after wire reconstruction. Fails when the slice length
    /// disagrees with the level count.
    pub fn restore_telemetry(&mut self, counters: &[(u64, u64, u64, u64)]) -> Result<(), String> {
        if counters.len() != self.levels.len() {
            return Err(format!(
                "{} telemetry entries for {} levels",
                counters.len(),
                self.levels.len()
            ));
        }
        for (level, &(prunes, evictions, merges, cs_updates)) in
            self.levels.iter_mut().zip(counters)
        {
            level.hh.restore_telemetry(prunes, evictions, merges, cs_updates);
        }
        Ok(())
    }

    /// Telemetry snapshot aggregated over the per-level heavy hitters'
    /// candidate trackers.
    pub fn stats(&self) -> SketchStats {
        let mut agg = SketchStats::default();
        for level in &self.levels {
            agg.absorb(level.hh.stats());
        }
        agg
    }
}

impl SpaceUsage for F2Contributing {
    fn space_words(&self) -> usize {
        self.hash.space_words()
            + self.levels.iter().map(|l| l.hh.space_words() + 2).sum::<usize>()
    }

    /// Mirrors `space_words` term by term: the shared sampling hash, the
    /// per-level heavy hitters (aggregated into one `levels` subtree —
    /// level counts vary with `α`, and per-level children would multiply
    /// trace events without changing any audit), and a 2-word `overhead`
    /// leaf per level for the `(modulus, keep)` schedule.
    fn space_ledger(&self, node: &mut LedgerNode) {
        node.leaf("hash", self.hash.space_words());
        let levels = node.child("levels");
        for level in &self.levels {
            level.hh.space_ledger(levels);
        }
        node.leaf("overhead", 2 * self.levels.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed a frequency vector (item, freq) pairs in round-robin order.
    fn feed(fc: &mut F2Contributing, freqs: &[(u64, u64)]) {
        let max_f = freqs.iter().map(|&(_, f)| f).max().unwrap_or(0);
        for round in 0..max_f {
            for &(item, f) in freqs {
                if round < f {
                    fc.insert(item);
                }
            }
        }
    }

    #[test]
    fn single_heavy_coordinate_is_its_own_class() {
        // One coordinate with freq 512 against 100 coords of freq 1:
        // class {512-freq coord} contributes 512^2/(512^2+100) ≈ 1.
        let mut fc = F2Contributing::new(ContributingConfig::new(0.5, 64), 1000, 1000, 7);
        feed(&mut fc, &[(42, 512)]);
        for i in 0..100u64 {
            fc.insert(100 + i);
        }
        let rep = fc.report();
        assert!(rep.iter().any(|r| r.item == 42), "missing the heavy class: {rep:?}");
        let est = rep.iter().find(|r| r.item == 42).unwrap().est;
        assert!((256..=768).contains(&est), "estimate {est}");
    }

    #[test]
    fn large_class_of_medium_coordinates_detected() {
        // 64 coordinates of frequency 32 each: the class R_5 contributes
        // all of F2 (plus tiny noise); a singleton heavy hitter does NOT
        // exist (32^2 = 1024 vs F2 = 64*1024 = 65536, ratio 1/64), so only
        // the level-sampling mechanism can find it.
        let mut fc = F2Contributing::new(ContributingConfig::new(0.5, 256), 10_000, 10_000, 11);
        let freqs: Vec<(u64, u64)> = (0..64).map(|i| (i as u64, 32)).collect();
        feed(&mut fc, &freqs);
        let rep = fc.report();
        assert!(
            rep.iter().any(|r| r.item < 64),
            "no member of the contributing class found: {rep:?}"
        );
        // The found member's estimate should be near 32 (within 1±1/2).
        let member = rep.iter().find(|r| r.item < 64).unwrap();
        assert!(
            (16..=48).contains(&member.est),
            "member estimate {} out of band",
            member.est
        );
    }

    #[test]
    fn respects_class_size_bound() {
        // With max_class_size = 1 only level 0 exists: the unsampled
        // stream. A contributing class of ~64 medium coordinates is then
        // findable only if each member alone is a phi-heavy hitter, which
        // it is not; the report must NOT contain low-frequency noise
        // either.
        let fc = F2Contributing::new(ContributingConfig::new(0.5, 1), 100, 100, 3);
        assert_eq!(fc.num_levels(), 1);
    }

    #[test]
    fn report_deduplicates_items() {
        let mut fc = F2Contributing::new(ContributingConfig::new(0.3, 128), 1000, 1000, 5);
        feed(&mut fc, &[(9, 300)]);
        let rep = fc.report();
        let count = rep.iter().filter(|r| r.item == 9).count();
        assert_eq!(count, 1, "item must appear once: {rep:?}");
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let fc = F2Contributing::new(ContributingConfig::new(0.2, 64), 100, 100, 1);
        assert!(fc.report().is_empty());
    }

    #[test]
    fn space_scales_inversely_with_gamma() {
        let coarse = F2Contributing::new(ContributingConfig::new(0.5, 64), 1000, 1000, 1);
        let fine = F2Contributing::new(ContributingConfig::new(0.005, 64), 1000, 1000, 1);
        assert!(fine.space_words() > coarse.space_words());
    }

    #[test]
    fn levels_cover_size_bound() {
        let fc = F2Contributing::new(ContributingConfig::new(0.1, 100), 1000, 1000, 1);
        // One unsampled level + subsampled levels 32, 64, 128 (moduli
        // above survivors_per_class = 16), covering sizes up to 128 ≥
        // 100.
        assert_eq!(fc.num_levels(), 4);
    }

    #[test]
    fn two_contributing_classes_both_represented() {
        // Class A: one coord of freq 256 (contribution 65536).
        // Class B: 16 coords of freq 64 (contribution 16*4096 = 65536).
        // Both classes are ~0.5-contributing.
        let mut fc = F2Contributing::new(ContributingConfig::new(0.25, 64), 10_000, 10_000, 23);
        let mut freqs: Vec<(u64, u64)> = vec![(0, 256)];
        freqs.extend((1..=16).map(|i| (i as u64, 64)));
        feed(&mut fc, &freqs);
        let rep = fc.report();
        assert!(rep.iter().any(|r| r.item == 0), "class A missing: {rep:?}");
        assert!(
            rep.iter().any(|r| (1..=16).contains(&r.item)),
            "class B missing: {rep:?}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn invalid_gamma_rejected() {
        let _ = ContributingConfig::new(-0.1, 10);
    }

    #[test]
    fn merge_matches_serial_report() {
        let proto = F2Contributing::new(ContributingConfig::new(0.25, 64), 1000, 1000, 19);
        let mut left = proto.clone();
        let mut right = proto.clone();
        let mut serial = proto.clone();
        let mut freqs: Vec<(u64, u64)> = vec![(0, 256)];
        freqs.extend((1..=16).map(|i| (i as u64, 64)));
        // Split the round-robin stream at round 100: the first chunk to
        // the left shard, the rest to the right.
        let max_f = freqs.iter().map(|&(_, f)| f).max().unwrap();
        for round in 0..max_f {
            for &(item, f) in &freqs {
                if round < f {
                    serial.insert(item);
                    if round < 100 {
                        left.insert(item);
                    } else {
                        right.insert(item);
                    }
                }
            }
        }
        left.merge(&right);
        assert_eq!(left.report(), serial.report());
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_seed_mismatch() {
        let mut a = F2Contributing::new(ContributingConfig::new(0.5, 16), 100, 100, 1);
        let b = F2Contributing::new(ContributingConfig::new(0.5, 16), 100, 100, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_level_mismatch() {
        let mut a = F2Contributing::new(ContributingConfig::new(0.5, 16), 100, 100, 1);
        let b = F2Contributing::new(ContributingConfig::new(0.5, 256), 100, 100, 1);
        a.merge(&b);
    }

    #[test]
    fn stats_aggregate_over_levels() {
        let mut fc = F2Contributing::new(ContributingConfig::new(0.25, 64), 1000, 1000, 19);
        feed(&mut fc, &[(4, 128), (9, 40)]);
        let st = fc.stats();
        // Level 0 is unsampled, so it alone sees the whole stream.
        assert!(st.updates >= 168);
        assert!(st.capacity > 0);
        assert_eq!(st.merges, 0);
    }

    #[test]
    fn ledger_mirrors_space_words_and_restores_heat() {
        let mut fc = F2Contributing::new(ContributingConfig::new(0.25, 64), 1000, 1000, 19);
        feed(&mut fc, &[(4, 128), (9, 40)]);
        let mut node = LedgerNode::new();
        fc.space_ledger(&mut node);
        assert_eq!(node.total_words(), fc.space_words() as u64);
        assert_eq!(node.get("hash").unwrap().words, fc.sampling_hash().space_words() as u64);
        assert_eq!(node.get("overhead").unwrap().words, 2 * fc.num_levels() as u64);
        // Level 0 is unsampled: its CountSketch saw every update, so the
        // aggregated subtree carries at least the full stream's heat.
        assert!(node.get("levels").unwrap().total_updates() >= 168);

        // The 4-tuple restore path re-applies inner-sketch heat exactly.
        let heat: Vec<(u64, u64, u64, u64)> = fc
            .level_parts()
            .iter()
            .map(|(_, _, hh)| {
                let st = hh.stats();
                (st.prunes, st.evictions, st.merges, hh.sketch().heat_updates())
            })
            .collect();
        let levels: Vec<(u64, u64, F2HeavyHitter)> = fc
            .level_parts()
            .into_iter()
            .map(|(m, k, hh)| (m, k, hh.clone()))
            .collect();
        let mut back = F2Contributing::from_parts(fc.sampling_hash().clone(), levels).unwrap();
        // Clones keep heat; clobber it to prove restore actually writes.
        let zeros = vec![(0u64, 0, 0, 0); fc.num_levels()];
        back.restore_telemetry(&zeros).unwrap();
        let mut zeroed = LedgerNode::new();
        back.space_ledger(&mut zeroed);
        assert_ne!(zeroed, node, "zeroed heat must be visible in the ledger");
        back.restore_telemetry(&heat).unwrap();
        let mut back_node = LedgerNode::new();
        back.space_ledger(&mut back_node);
        assert_eq!(back_node, node);
        assert!(back.restore_telemetry(&heat[..1]).is_err());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut fc = F2Contributing::new(ContributingConfig::new(0.3, 64), 500, 500, 3);
        feed(&mut fc, &[(4, 128), (9, 40)]);
        let levels: Vec<(u64, u64, F2HeavyHitter)> = fc
            .level_parts()
            .into_iter()
            .map(|(m, k, hh)| (m, k, hh.clone()))
            .collect();
        let back = F2Contributing::from_parts(fc.sampling_hash().clone(), levels).unwrap();
        assert_eq!(fc.report(), back.report());
        assert!(F2Contributing::from_parts(fc.sampling_hash().clone(), Vec::new()).is_err());
        let bad = vec![(3u64, 1u64, F2HeavyHitter::for_phi(0.5, 1))];
        assert!(F2Contributing::from_parts(fc.sampling_hash().clone(), bad).is_err());
    }
}
