//! BJKST distinct-elements sketch — Bar-Yossef, Jayram, Kumar, Sivakumar
//! & Trevisan (reference [11] of the paper), the second classical `L0`
//! algorithm behind Theorem 2.12.
//!
//! Instead of keeping the k smallest hash values (KMV), BJKST keeps a
//! *level-sampled* set: an item survives at level `ℓ` when its hash has
//! at least `ℓ` trailing zero bits; the level rises whenever the buffer
//! overflows, halving the expected survivors. The estimate is
//! `|buffer| · 2^level`. Compared to [`crate::Kmv`] it has the same
//! `O(1/ε²)`-space/`(1 ± ε)` trade-off but O(1) amortized updates with
//! no ordered structure — the variant of choice when updates dominate.

use std::collections::HashSet;

use kcov_hash::{pairwise, KWise, RangeHash};
use kcov_obs::{LedgerNode, SketchStats};

use crate::space::SpaceUsage;

/// A single BJKST summary.
#[derive(Debug, Clone)]
pub struct Bjkst {
    hash: KWise,
    /// Current sampling level: items kept iff `trailing_zeros(h) >= level`.
    level: u32,
    /// Surviving (distinct) hash values.
    buffer: HashSet<u64>,
    /// Overflow bound: relative error is `O(1/√capacity)`.
    capacity: usize,
    /// Telemetry: level rises (each halves the expected survivors).
    level_rises: u64,
    /// Telemetry: merge invocations absorbed.
    merges: u64,
}

impl Bjkst {
    /// Create a summary with the given buffer capacity (`≥ 8`).
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 8, "BJKST needs capacity >= 8");
        Bjkst {
            hash: pairwise(seed),
            level: 0,
            buffer: HashSet::with_capacity(capacity + 1),
            capacity,
            level_rises: 0,
            merges: 0,
        }
    }

    /// Observe one item (duplicates are free).
    pub fn insert(&mut self, item: u64) {
        let h = self.hash.hash(item);
        if (h.trailing_zeros()) >= self.level {
            self.buffer.insert(h);
            while self.buffer.len() > self.capacity {
                self.level += 1;
                self.level_rises += 1;
                let level = self.level;
                self.buffer.retain(|&v| v.trailing_zeros() >= level);
            }
        }
    }

    /// Estimate of the number of distinct items seen.
    pub fn estimate(&self) -> f64 {
        self.buffer.len() as f64 * (1u64 << self.level.min(63)) as f64
    }

    /// Current sampling level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The configured buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sampling hash (wire serialization).
    pub fn hash(&self) -> &KWise {
        &self.hash
    }

    /// The surviving hash values, ascending (wire serialization; sorted
    /// so the encoding is canonical).
    pub fn buffer_values(&self) -> Vec<u64> {
        let mut vals: Vec<u64> = self.buffer.iter().copied().collect();
        vals.sort_unstable();
        vals
    }

    /// Rebuild from parts (inverse of the accessors). Fails when the
    /// buffer exceeds the capacity or holds a value below the level.
    pub fn from_parts(
        capacity: usize,
        level: u32,
        hash: KWise,
        values: Vec<u64>,
    ) -> Result<Self, String> {
        if capacity < 8 {
            return Err("BJKST needs capacity >= 8".into());
        }
        if values.len() > capacity {
            return Err(format!("{} buffered values exceed capacity {capacity}", values.len()));
        }
        if values.iter().any(|&v| v.trailing_zeros() < level) {
            return Err(format!("buffered value below sampling level {level}"));
        }
        Ok(Bjkst {
            hash,
            level,
            buffer: values.into_iter().collect(),
            capacity,
            level_rises: 0,
            merges: 0,
        })
    }

    /// Merge another summary built with the *same capacity and seed*
    /// (linearity over set union): raise both to the higher level and
    /// unite buffers. Panics on configuration or seed mismatch
    /// (detected via a probe value).
    pub fn merge(&mut self, other: &Bjkst) {
        assert_eq!(
            self.capacity,
            other.capacity,
            "Bjkst merge requires identical configuration (capacity)"
        );
        assert_eq!(
            self.hash.hash(0x5eed_c0de),
            other.hash.hash(0x5eed_c0de),
            "Bjkst merge requires identical hash functions"
        );
        self.level = self.level.max(other.level);
        let level = self.level;
        self.buffer.retain(|&v| v.trailing_zeros() >= level);
        for &v in &other.buffer {
            if v.trailing_zeros() >= level {
                self.buffer.insert(v);
            }
        }
        while self.buffer.len() > self.capacity {
            self.level += 1;
            self.level_rises += 1;
            let level = self.level;
            self.buffer.retain(|&v| v.trailing_zeros() >= level);
        }
        self.merges += 1 + other.merges;
        self.level_rises += other.level_rises;
    }

    /// Telemetry snapshot (fill, capacity, level rises as prunes,
    /// merges).
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            updates: 0,
            fill: self.buffer.len() as u64,
            capacity: self.capacity as u64,
            evictions: 0,
            prunes: self.level_rises,
            merges: self.merges,
        }
    }
}

impl SpaceUsage for Bjkst {
    fn space_words(&self) -> usize {
        self.buffer.len() + self.hash.space_words() + 2
    }

    fn space_ledger(&self, node: &mut LedgerNode) {
        node.leaf("buffer", self.buffer.len());
        node.leaf("hash", self.hash.space_words());
        node.leaf("overhead", 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_streams() {
        let mut b = Bjkst::new(64, 1);
        for i in 0..40u64 {
            b.insert(i);
            b.insert(i);
        }
        assert_eq!(b.level(), 0);
        assert_eq!(b.estimate(), 40.0);
    }

    #[test]
    fn estimates_large_streams_within_tolerance() {
        let mut worst = 0.0f64;
        for seed in 0..10u64 {
            let mut b = Bjkst::new(256, seed);
            let truth = 30_000u64;
            for i in 0..truth {
                b.insert(i.wrapping_mul(0x9e3779b97f4a7c15));
            }
            let rel = (b.estimate() - truth as f64).abs() / truth as f64;
            worst = worst.max(rel);
        }
        assert!(worst < 0.25, "worst relative error {worst}");
    }

    #[test]
    fn level_rises_with_stream_size() {
        let mut b = Bjkst::new(16, 3);
        for i in 0..10_000u64 {
            b.insert(i);
        }
        assert!(b.level() >= 6, "level {} too low for 10k/16", b.level());
        assert!(b.buffer.len() <= 16);
    }

    #[test]
    fn duplicates_do_not_move_the_estimate() {
        let mut a = Bjkst::new(64, 5);
        let mut b = Bjkst::new(64, 5);
        for i in 0..5_000u64 {
            a.insert(i);
            b.insert(i);
            b.insert(i % 100);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut left = Bjkst::new(64, 9);
        let mut right = Bjkst::new(64, 9);
        let mut both = Bjkst::new(64, 9);
        for i in 0..4_000u64 {
            left.insert(i);
            both.insert(i);
        }
        for i in 2_000..6_000u64 {
            right.insert(i);
            both.insert(i);
        }
        left.merge(&right);
        assert_eq!(left.estimate(), both.estimate());
    }

    #[test]
    #[should_panic(expected = "identical hash functions")]
    fn merge_rejects_mismatched_seeds() {
        let mut a = Bjkst::new(16, 1);
        let b = Bjkst::new(16, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical configuration")]
    fn merge_rejects_capacity_mismatch() {
        // Same seed, different capacity: the overflow schedules differ,
        // so the merged level would not match the union stream's.
        let mut a = Bjkst::new(16, 1);
        let b = Bjkst::new(32, 1);
        a.merge(&b);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let mut b = Bjkst::new(16, 4);
        for i in 0..5_000u64 {
            b.insert(i);
        }
        let back =
            Bjkst::from_parts(b.capacity(), b.level(), b.hash().clone(), b.buffer_values())
                .unwrap();
        assert_eq!(b.estimate(), back.estimate());
        assert!(Bjkst::from_parts(4, 0, b.hash().clone(), Vec::new()).is_err());
        assert!(Bjkst::from_parts(8, 3, b.hash().clone(), vec![1]).is_err());
    }

    #[test]
    fn stats_track_level_rises_and_merges() {
        let mut b = Bjkst::new(16, 3);
        for i in 0..10_000u64 {
            b.insert(i);
        }
        let st = b.stats();
        assert_eq!(st.capacity, 16);
        assert!(st.fill <= 16);
        assert_eq!(st.prunes, u64::from(b.level()));
        let other = Bjkst::new(16, 3);
        b.merge(&other);
        assert_eq!(b.stats().merges, 1);
    }

    #[test]
    fn ledger_mirrors_space_words() {
        let mut b = Bjkst::new(32, 7);
        for i in 0..1_000u64 {
            b.insert(i);
        }
        let mut node = LedgerNode::new();
        b.space_ledger(&mut node);
        assert_eq!(node.total_words(), b.space_words() as u64);
        assert_eq!(node.get("overhead").unwrap().words, 2);
    }

    #[test]
    fn space_bounded_by_capacity() {
        let mut b = Bjkst::new(32, 7);
        for i in 0..100_000u64 {
            b.insert(i);
        }
        assert!(b.space_words() <= 32 + 2 + 2 + 1);
    }
}
