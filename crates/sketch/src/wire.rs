//! Wire format: compact, dependency-free binary serialization of every
//! sketch.
//!
//! Purpose: the lower-bound harness (`kcov-lowerbound`) simulates
//! one-way communication protocols whose messages are algorithm states.
//! `SpaceUsage` counts resident words; this module makes the message
//! *literal* — a byte buffer another party can decode into an identical
//! sketch and keep feeding. Also useful for checkpointing long streams
//! and for shipping shard sketches in the distributed-merge pattern.
//!
//! Format: little-endian, length-prefixed vectors, a one-byte tag per
//! sketch type, no versioning (an in-workspace format, not an archive
//! format). Hash functions travel as their full coefficient vectors, so
//! the decoded object is behaviorally identical, not just statistically
//! equivalent.

use kcov_hash::{KWise, SignHash};
use kcov_obs::{Histogram, SketchStats};

use crate::ams_f2::AmsF2;
use crate::bjkst::Bjkst;
use crate::contributing::F2Contributing;
use crate::count_min::CountMin;
use crate::count_sketch::CountSketch;
use crate::heavy_hitter::{F2HeavyHitter, HeavyHitterConfig};
use crate::l0::{Kmv, L0Estimator};

/// Decode error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Build a [`WireError`] from a message (shared by the full-state
/// decoders in `kcov-core`).
pub fn err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

/// A type with a self-describing binary encoding.
pub trait WireEncode: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode from the front of `input`, advancing it past the value.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode a whole buffer, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut input = bytes;
        let v = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(err(format!("{} trailing bytes", input.len())));
        }
        Ok(v)
    }
}

// ---- primitives -----------------------------------------------------
//
// The primitives are `pub`: the full-state encodings (estimator, lanes,
// oracle, subroutines) live next to their private fields in `kcov-core`
// and compose these building blocks there.

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Consume a little-endian `u64`.
pub fn take_u64(input: &mut &[u8]) -> Result<u64, WireError> {
    if input.len() < 8 {
        return Err(err("truncated u64"));
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

/// Consume a little-endian `i64`.
pub fn take_i64(input: &mut &[u8]) -> Result<i64, WireError> {
    Ok(take_u64(input)? as i64)
}

/// Append an `f64` as its bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Consume an `f64` bit pattern.
pub fn take_f64(input: &mut &[u8]) -> Result<f64, WireError> {
    Ok(f64::from_bits(take_u64(input)?))
}

/// Append a length-prefixed `u64` vector.
pub fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Consume a length-prefixed `u64` vector (length bounds-checked
/// against the remaining input before any allocation).
pub fn take_u64s(input: &mut &[u8]) -> Result<Vec<u64>, WireError> {
    let n = take_u64(input)? as usize;
    if n > input.len() / 8 {
        return Err(err(format!("truncated vector of {n} u64s")));
    }
    (0..n).map(|_| take_u64(input)).collect()
}

/// Append a hash function as its full coefficient vector.
pub fn put_kwise(out: &mut Vec<u8>, h: &KWise) {
    put_u64s(out, &h.coefficients());
}

/// Consume a hash function (rejects empty coefficient vectors, which
/// the polynomial-hash constructor would panic on).
pub fn take_kwise(input: &mut &[u8]) -> Result<KWise, WireError> {
    let coeffs = take_u64s(input)?;
    if coeffs.is_empty() {
        return Err(err("empty hash coefficient vector"));
    }
    Ok(KWise::from_coefficients(&coeffs))
}

/// Append a sign hash as its full coefficient vector.
pub fn put_sign(out: &mut Vec<u8>, h: &SignHash) {
    put_u64s(out, &h.coefficients());
}

/// Consume a sign hash (rejects empty coefficient vectors).
pub fn take_sign(input: &mut &[u8]) -> Result<SignHash, WireError> {
    let coeffs = take_u64s(input)?;
    if coeffs.is_empty() {
        return Err(err("empty sign-hash coefficient vector"));
    }
    Ok(SignHash::from_coefficients(&coeffs))
}

// ---- full-state framing ---------------------------------------------
//
// Individual sketches keep their original one-tag framing (an
// in-workspace format). Full replica states — the payloads shipped
// between worker processes and the coordinator — get a *versioned
// header* plus length-prefixed sections, so a reader can reject a
// foreign or stale payload before decoding anything, and a corrupt
// section length cannot walk the cursor into a neighboring section.

/// Magic prefix of every full-state payload ("KCOVWIRE").
pub const WIRE_MAGIC: u64 = 0x4b43_4f56_5749_5245;
/// Version of the full-state wire format. Bump on any layout change;
/// decoders reject every version but their own (full-state payloads are
/// replica checkpoints, not archives — there is nothing to migrate).
/// Version history: 1 = original; 2 = hash-once hot path (fingerprint
/// bases in the estimator state, count-based heavy-hitter candidate
/// pairs, no embedded AMS sketch); 3 = heat counters in the telemetry
/// sidecars (per-repetition KMV updates, per-level CountSketch
/// updates) so decoded replicas carry exact space-ledger heat; 4 =
/// time-attribution ns fields in the telemetry sidecars (per-lane
/// ingest/reduce totals, per-stage hash/universe/trivial totals,
/// per-heartbeat cumulative lane ns) so decoded worker replicas
/// preserve time-ledger attribution.
pub const WIRE_VERSION: u64 = 4;

/// Append the versioned full-state header: magic, version, payload tag.
pub fn put_header(out: &mut Vec<u8>, tag: u64) {
    put_u64(out, WIRE_MAGIC);
    put_u64(out, WIRE_VERSION);
    put_u64(out, tag);
}

/// Consume and validate a full-state header.
pub fn take_header(input: &mut &[u8], expect_tag: u64) -> Result<(), WireError> {
    let magic = take_u64(input)?;
    if magic != WIRE_MAGIC {
        return Err(err(format!("bad wire magic {magic:#018x}")));
    }
    let version = take_u64(input)?;
    if version != WIRE_VERSION {
        return Err(err(format!(
            "unsupported wire version {version} (this build reads {WIRE_VERSION})"
        )));
    }
    let tag = take_u64(input)?;
    if tag != expect_tag {
        return Err(err(format!(
            "unexpected payload tag {tag:#x} (expected {expect_tag:#x})"
        )));
    }
    Ok(())
}

/// Append a length-prefixed section: tag, body byte length, body. The
/// length is patched in after the body is written.
pub fn put_section(out: &mut Vec<u8>, tag: u64, body: impl FnOnce(&mut Vec<u8>)) {
    put_u64(out, tag);
    let len_at = out.len();
    put_u64(out, 0);
    body(out);
    let len = (out.len() - len_at - 8) as u64;
    out[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

/// Split off a length-prefixed section body, validating the tag and
/// bounds-checking the declared length against the remaining input.
pub fn take_section<'a>(input: &mut &'a [u8], expect_tag: u64) -> Result<&'a [u8], WireError> {
    let tag = take_u64(input)?;
    if tag != expect_tag {
        return Err(err(format!(
            "unexpected section tag {tag:#x} (expected {expect_tag:#x})"
        )));
    }
    let len = take_u64(input)? as usize;
    if input.len() < len {
        return Err(err(format!(
            "truncated section {expect_tag:#x}: {len} bytes declared, {} available",
            input.len()
        )));
    }
    let (body, rest) = input.split_at(len);
    *input = rest;
    Ok(body)
}

/// Require that a section body was fully consumed by its decoder.
pub fn expect_section_end(tag: u64, body: &[u8]) -> Result<(), WireError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(err(format!(
            "{} trailing bytes in section {tag:#x}",
            body.len()
        )))
    }
}

// ---- sketches -------------------------------------------------------

const TAG_KMV: u64 = 0x4b4d56; // "KMV"
const TAG_AMS: u64 = 0x414d53; // "AMS"
const TAG_CS: u64 = 0x4353; // "CS"
const TAG_CM: u64 = 0x434d; // "CM"
const TAG_L0: u64 = 0x4c30; // "L0"
const TAG_BJKST: u64 = 0x424a4b5354; // "BJKST"
const TAG_HH: u64 = 0x4848; // "HH"
const TAG_FC: u64 = 0x4643; // "FC"
const TAG_HIST: u64 = 0x48495354; // "HIST"

impl WireEncode for Kmv {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_KMV);
        put_u64(out, self.k() as u64);
        put_kwise(out, self.hash());
        put_u64s(out, &self.kept_values());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_KMV {
            return Err(err("bad KMV tag"));
        }
        let k = take_u64(input)? as usize;
        let hash = take_kwise(input)?;
        let vals = take_u64s(input)?;
        Kmv::from_parts(k, hash, vals).map_err(err)
    }
}

impl WireEncode for AmsF2 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_AMS);
        let (rows, cols) = self.shape();
        put_u64(out, rows as u64);
        put_u64(out, cols as u64);
        for s in self.sign_hashes() {
            put_sign(out, s);
        }
        put_u64(out, self.counters().len() as u64);
        for &c in self.counters() {
            put_i64(out, c);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_AMS {
            return Err(err("bad AMS tag"));
        }
        let rows = take_u64(input)? as usize;
        let cols = take_u64(input)? as usize;
        let cells = rows
            .checked_mul(cols)
            .filter(|&c| c <= input.len())
            .ok_or_else(|| err(format!("AMS table {rows} x {cols} exceeds input")))?;
        let signs = (0..cells)
            .map(|_| take_sign(input))
            .collect::<Result<Vec<_>, _>>()?;
        let n = take_u64(input)? as usize;
        if n != cells {
            return Err(err("AMS counter count mismatch"));
        }
        let counters = (0..n).map(|_| take_i64(input)).collect::<Result<Vec<_>, _>>()?;
        AmsF2::from_parts(rows, cols, signs, counters).map_err(err)
    }
}

impl WireEncode for CountSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_CS);
        put_u64(out, self.rows() as u64);
        put_u64(out, self.width() as u64);
        for b in self.bucket_hashes() {
            put_kwise(out, b);
        }
        for s in self.sign_hashes() {
            put_sign(out, s);
        }
        put_u64(out, self.table().len() as u64);
        for &c in self.table() {
            put_i64(out, c);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_CS {
            return Err(err("bad CountSketch tag"));
        }
        let rows = take_u64(input)? as usize;
        let width = take_u64(input)? as usize;
        let buckets = (0..rows).map(|_| take_kwise(input)).collect::<Result<Vec<_>, _>>()?;
        let signs = (0..rows).map(|_| take_sign(input)).collect::<Result<Vec<_>, _>>()?;
        let n = take_u64(input)? as usize;
        if rows.checked_mul(width) != Some(n) || n > input.len() / 8 {
            return Err(err("CountSketch table size mismatch"));
        }
        let table = (0..n).map(|_| take_i64(input)).collect::<Result<Vec<_>, _>>()?;
        CountSketch::from_parts(rows, width, buckets, signs, table).map_err(err)
    }
}

impl WireEncode for CountMin {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_CM);
        let (rows, width) = self.shape();
        put_u64(out, rows as u64);
        put_u64(out, width as u64);
        for h in self.hashes() {
            put_kwise(out, h);
        }
        put_u64s(out, self.table());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_CM {
            return Err(err("bad CountMin tag"));
        }
        let rows = take_u64(input)? as usize;
        let width = take_u64(input)? as usize;
        let hashes = (0..rows).map(|_| take_kwise(input)).collect::<Result<Vec<_>, _>>()?;
        let table = take_u64s(input)?;
        CountMin::from_parts(rows, width, hashes, table).map_err(err)
    }
}

impl WireEncode for L0Estimator {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_L0);
        put_u64(out, self.repetitions().len() as u64);
        for r in self.repetitions() {
            r.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_L0 {
            return Err(err("bad L0Estimator tag"));
        }
        let n = take_u64(input)? as usize;
        if n > input.len() {
            // Each repetition needs at least one byte; cheap sanity cap
            // so a corrupt length cannot drive a huge allocation loop.
            return Err(err("L0Estimator repetition count exceeds input"));
        }
        let reps = (0..n).map(|_| Kmv::decode(input)).collect::<Result<Vec<_>, _>>()?;
        L0Estimator::from_parts(reps).map_err(err)
    }
}

impl WireEncode for Bjkst {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_BJKST);
        put_u64(out, self.capacity() as u64);
        put_u64(out, u64::from(self.level()));
        put_kwise(out, self.hash());
        put_u64s(out, &self.buffer_values());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_BJKST {
            return Err(err("bad BJKST tag"));
        }
        let capacity = take_u64(input)? as usize;
        let level = take_u64(input)? as u32;
        let hash = take_kwise(input)?;
        let values = take_u64s(input)?;
        Bjkst::from_parts(capacity, level, hash, values).map_err(err)
    }
}

impl WireEncode for F2HeavyHitter {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_HH);
        let c = self.config();
        put_f64(out, c.phi);
        put_u64(out, c.rows as u64);
        put_f64(out, c.width_factor);
        put_f64(out, c.capacity_factor);
        put_f64(out, c.report_slack);
        self.sketch().encode(out);
        put_u64(out, self.items_seen());
        let candidates = self.candidate_entries();
        put_u64(out, candidates.len() as u64);
        for (item, count) in candidates {
            put_u64(out, item);
            put_i64(out, count);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_HH {
            return Err(err("bad F2HeavyHitter tag"));
        }
        let config = HeavyHitterConfig {
            phi: take_f64(input)?,
            rows: take_u64(input)? as usize,
            width_factor: take_f64(input)?,
            capacity_factor: take_f64(input)?,
            report_slack: take_f64(input)?,
        };
        let sketch = CountSketch::decode(input)?;
        let items_seen = take_u64(input)?;
        let n = take_u64(input)? as usize;
        if n > input.len() / 16 {
            return Err(err(format!("truncated candidate list of {n} entries")));
        }
        let candidates = (0..n)
            .map(|_| Ok((take_u64(input)?, take_i64(input)?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        F2HeavyHitter::from_parts(config, sketch, candidates, items_seen).map_err(err)
    }
}

impl WireEncode for F2Contributing {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_FC);
        put_kwise(out, self.sampling_hash());
        let levels = self.level_parts();
        put_u64(out, levels.len() as u64);
        for (modulus, keep, hh) in levels {
            put_u64(out, modulus);
            put_u64(out, keep);
            hh.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_FC {
            return Err(err("bad F2Contributing tag"));
        }
        let hash = take_kwise(input)?;
        let n = take_u64(input)? as usize;
        if n > input.len() {
            return Err(err("F2Contributing level count exceeds input"));
        }
        let levels = (0..n)
            .map(|_| Ok((take_u64(input)?, take_u64(input)?, F2HeavyHitter::decode(input)?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        F2Contributing::from_parts(hash, levels).map_err(err)
    }
}

impl WireEncode for Histogram {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_HIST);
        put_u64(out, self.sum());
        put_u64(out, self.min().unwrap_or(0));
        put_u64(out, self.max().unwrap_or(0));
        // Sparse bucket list: the dense array is 65 words but telemetry
        // histograms typically occupy a handful of buckets.
        let buckets: Vec<(usize, u64)> = self.nonzero_buckets().collect();
        put_u64(out, buckets.len() as u64);
        for (i, c) in buckets {
            put_u64(out, i as u64);
            put_u64(out, c);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_HIST {
            return Err(err("bad Histogram tag"));
        }
        let sum = take_u64(input)?;
        let min = take_u64(input)?;
        let max = take_u64(input)?;
        let n = take_u64(input)? as usize;
        if n > input.len() / 16 {
            return Err(err(format!("truncated histogram bucket list of {n} entries")));
        }
        let buckets = (0..n)
            .map(|_| Ok((take_u64(input)? as usize, take_u64(input)?)))
            .collect::<Result<Vec<_>, WireError>>()?;
        Histogram::from_parts(&buckets, sum, min, max)
            .ok_or_else(|| err("inconsistent histogram parts"))
    }
}

const TAG_STATS: u64 = 0x53544154; // "STAT"

impl WireEncode for SketchStats {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, TAG_STATS);
        put_u64(out, self.updates);
        put_u64(out, self.fill);
        put_u64(out, self.capacity);
        put_u64(out, self.evictions);
        put_u64(out, self.prunes);
        put_u64(out, self.merges);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        if take_u64(input)? != TAG_STATS {
            return Err(err("bad SketchStats tag"));
        }
        Ok(SketchStats {
            updates: take_u64(input)?,
            fill: take_u64(input)?,
            capacity: take_u64(input)?,
            evictions: take_u64(input)?,
            prunes: take_u64(input)?,
            merges: take_u64(input)?,
        })
    }
}

// ---- telemetry-preserving composites --------------------------------
//
// `from_parts` deliberately zeroes telemetry counters ("telemetry is
// not state"), which is right for the lower-bound harness but wrong for
// replica shipping: a coordinator folding worker files must report the
// same eviction/prune/merge counts as the equivalent in-process run.
// These helpers pair the structural encoding with a counter sidecar and
// restore it after reconstruction.

/// Encode an `L0Estimator` plus its per-repetition telemetry counters
/// (heat updates, evictions, merges — v3 layout).
pub fn put_l0_full(out: &mut Vec<u8>, l0: &L0Estimator) {
    l0.encode(out);
    put_u64(out, l0.repetitions().len() as u64);
    for rep in l0.repetitions() {
        let st = rep.stats();
        put_u64(out, rep.heat_updates());
        put_u64(out, st.evictions);
        put_u64(out, st.merges);
    }
}

/// Decode an `L0Estimator` and restore its telemetry sidecar.
pub fn take_l0_full(input: &mut &[u8]) -> Result<L0Estimator, WireError> {
    let mut l0 = L0Estimator::decode(input)?;
    let n = take_u64(input)? as usize;
    if n > input.len() / 24 {
        return Err(err(format!("truncated L0 telemetry sidecar of {n} entries")));
    }
    let counters = (0..n)
        .map(|_| Ok((take_u64(input)?, take_u64(input)?, take_u64(input)?)))
        .collect::<Result<Vec<_>, WireError>>()?;
    l0.restore_telemetry(&counters).map_err(err)?;
    Ok(l0)
}

/// Encode an `F2Contributing` plus its per-level telemetry counters
/// (prunes, evictions, merges, CountSketch heat updates — v3 layout).
pub fn put_fc_full(out: &mut Vec<u8>, fc: &F2Contributing) {
    fc.encode(out);
    let levels = fc.level_parts();
    put_u64(out, levels.len() as u64);
    for (_, _, hh) in levels {
        let st = hh.stats();
        put_u64(out, st.prunes);
        put_u64(out, st.evictions);
        put_u64(out, st.merges);
        put_u64(out, hh.sketch().heat_updates());
    }
}

/// Decode an `F2Contributing` and restore its telemetry sidecar.
pub fn take_fc_full(input: &mut &[u8]) -> Result<F2Contributing, WireError> {
    let mut fc = F2Contributing::decode(input)?;
    let n = take_u64(input)? as usize;
    if n > input.len() / 32 {
        return Err(err(format!("truncated F2C telemetry sidecar of {n} entries")));
    }
    let counters = (0..n)
        .map(|_| {
            Ok((take_u64(input)?, take_u64(input)?, take_u64(input)?, take_u64(input)?))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    fc.restore_telemetry(&counters).map_err(err)?;
    Ok(fc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmv_roundtrip_preserves_behavior() {
        let mut kmv = Kmv::new(16, 7);
        for i in 0..5_000u64 {
            kmv.insert(i * 3);
        }
        let bytes = kmv.to_bytes();
        let mut back = Kmv::from_bytes(&bytes).unwrap();
        assert_eq!(kmv.estimate(), back.estimate());
        // Continued streaming matches.
        let mut original = kmv.clone();
        for i in 0..1_000u64 {
            original.insert(999_000 + i);
            back.insert(999_000 + i);
        }
        assert_eq!(original.estimate(), back.estimate());
    }

    #[test]
    fn ams_roundtrip() {
        let mut sk = AmsF2::new(3, 8, 5);
        for i in 0..2_000u64 {
            sk.insert(i % 97);
        }
        let back = AmsF2::from_bytes(&sk.to_bytes()).unwrap();
        assert_eq!(sk.estimate(), back.estimate());
    }

    #[test]
    fn count_sketch_roundtrip_and_continue() {
        let mut cs = CountSketch::new(5, 64, 9);
        for i in 0..3_000u64 {
            cs.insert(i % 211);
        }
        let mut back = CountSketch::from_bytes(&cs.to_bytes()).unwrap();
        for i in 0..211u64 {
            assert_eq!(cs.query(i), back.query(i));
        }
        back.insert(3);
        assert_eq!(back.query(3), cs.query(3) + 1);
    }

    #[test]
    fn count_min_roundtrip() {
        let mut cm = CountMin::new(4, 32, 3);
        for i in 0..500u64 {
            cm.insert(i % 50, 2);
        }
        let back = CountMin::from_bytes(&cm.to_bytes()).unwrap();
        for i in 0..50u64 {
            assert_eq!(cm.query(i), back.query(i));
        }
    }

    #[test]
    fn l0_estimator_roundtrip_and_continue() {
        let mut est = L0Estimator::new(32, 3, 11);
        for i in 0..4_000u64 {
            est.insert(i * 7);
        }
        let mut back = L0Estimator::from_bytes(&est.to_bytes()).unwrap();
        assert_eq!(est.estimate(), back.estimate());
        let mut original = est.clone();
        for i in 0..2_000u64 {
            original.insert(500_000 + i);
            back.insert(500_000 + i);
        }
        assert_eq!(original.estimate(), back.estimate());
    }

    #[test]
    fn bjkst_roundtrip_and_continue() {
        let mut b = Bjkst::new(64, 23);
        for i in 0..8_000u64 {
            b.insert(i);
        }
        let mut back = Bjkst::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(b.estimate(), back.estimate());
        assert_eq!(b.level(), back.level());
        let mut original = b.clone();
        for i in 8_000..16_000u64 {
            original.insert(i);
            back.insert(i);
        }
        assert_eq!(original.estimate(), back.estimate());
    }

    #[test]
    fn heavy_hitter_roundtrip_and_continue() {
        let mut hh = F2HeavyHitter::for_phi(0.05, 31);
        for i in 0..3_000u64 {
            hh.insert(i % 40);
            hh.insert(7); // dominant item
        }
        let mut back = F2HeavyHitter::from_bytes(&hh.to_bytes()).unwrap();
        assert_eq!(hh.heavy_hitters(), back.heavy_hitters());
        assert_eq!(hh.items_seen(), back.items_seen());
        assert_eq!(hh.f2_estimate().to_bits(), back.f2_estimate().to_bits());
        let mut original = hh.clone();
        for i in 0..1_000u64 {
            original.insert(i % 13);
            back.insert(i % 13);
        }
        assert_eq!(original.heavy_hitters(), back.heavy_hitters());
        assert_eq!(original.candidate_entries(), back.candidate_entries());
    }

    #[test]
    fn contributing_roundtrip_and_continue() {
        use crate::contributing::ContributingConfig;
        let mut fc = F2Contributing::new(ContributingConfig::new(0.25, 64), 1000, 1000, 41);
        for round in 0..300u64 {
            fc.insert(5);
            fc.insert(100 + round % 20);
        }
        let mut back = F2Contributing::from_bytes(&fc.to_bytes()).unwrap();
        assert_eq!(fc.report(), back.report());
        let mut original = fc.clone();
        for round in 0..200u64 {
            original.insert(9);
            back.insert(9);
            original.insert(400 + round);
            back.insert(400 + round);
        }
        assert_eq!(original.report(), back.report());
    }

    #[test]
    fn new_type_truncations_rejected() {
        let mut hh = F2HeavyHitter::for_phi(0.2, 3);
        hh.insert(1);
        let bytes = hh.to_bytes();
        for cut in [0usize, 1, 7, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(F2HeavyHitter::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let b = Bjkst::new(8, 1);
        let bytes = b.to_bytes();
        assert!(Bjkst::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let est = L0Estimator::new(8, 2, 1);
        let bytes = est.to_bytes();
        assert!(L0Estimator::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn new_type_wrong_tags_rejected() {
        let est = L0Estimator::new(8, 2, 1);
        assert!(Bjkst::from_bytes(&est.to_bytes()).is_err());
        let b = Bjkst::new(8, 1);
        assert!(L0Estimator::from_bytes(&b.to_bytes()).is_err());
        let hh = F2HeavyHitter::for_phi(0.5, 1);
        assert!(F2Contributing::from_bytes(&hh.to_bytes()).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let mut kmv = Kmv::new(8, 1);
        kmv.insert(5);
        let bytes = kmv.to_bytes();
        for cut in [0, 1, 7, bytes.len() - 1] {
            assert!(Kmv::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wrong_tag_rejected() {
        let cm = CountMin::new(2, 8, 1);
        let bytes = cm.to_bytes();
        assert!(Kmv::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let kmv = Kmv::new(8, 1);
        let mut bytes = kmv.to_bytes();
        bytes.push(0);
        let e = Kmv::from_bytes(&bytes).unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn histogram_roundtrip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 3, 300, 70_000, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(back, h);
        // Merge after the round trip behaves like merge before it.
        let mut extra = Histogram::new();
        extra.record(42);
        let mut a = h.clone();
        a.merge(&extra);
        let mut b = back;
        b.merge(&extra);
        assert_eq!(a, b);
        // Empty histogram round-trips to the identity.
        let empty = Histogram::from_bytes(&Histogram::new().to_bytes()).unwrap();
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn histogram_truncation_and_corruption_rejected() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 9, 1000] {
            h.record(v);
        }
        let bytes = h.to_bytes();
        for cut in [0usize, 1, 7, 8, 31, bytes.len() / 2, bytes.len() - 1] {
            assert!(Histogram::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Histogram::from_bytes(&trailing).is_err());
        // Wrong tag.
        let kmv = Kmv::new(8, 1);
        assert!(Histogram::from_bytes(&kmv.to_bytes()).is_err());
        // Out-of-range bucket index: patch the first bucket entry.
        let mut corrupt = bytes.clone();
        let first_bucket_at = 8 * 5; // tag, sum, min, max, len
        corrupt[first_bucket_at..first_bucket_at + 8].copy_from_slice(&99u64.to_le_bytes());
        assert!(Histogram::from_bytes(&corrupt).is_err());
        // Inconsistent envelope: min > max.
        let mut bad_env = bytes;
        bad_env[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // min field
        assert!(Histogram::from_bytes(&bad_env).is_err());
    }

    #[test]
    fn full_state_sidecars_restore_ledger_heat() {
        use crate::space::SpaceUsage;
        use kcov_obs::LedgerNode;
        let ledger = |s: &dyn SpaceUsage| {
            let mut node = LedgerNode::new();
            s.space_ledger(&mut node);
            node
        };
        let mut est = L0Estimator::new(32, 3, 11);
        for i in 0..4_000u64 {
            est.insert(i * 7);
        }
        let mut buf = Vec::new();
        put_l0_full(&mut buf, &est);
        let mut input = buf.as_slice();
        let back = take_l0_full(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(ledger(&back), ledger(&est));
        assert!(ledger(&est).total_updates() > 0, "heat must be nonzero to test restore");

        use crate::contributing::ContributingConfig;
        let mut fc = F2Contributing::new(ContributingConfig::new(0.25, 64), 1000, 1000, 41);
        for round in 0..300u64 {
            fc.insert(5);
            fc.insert(100 + round % 20);
        }
        let mut buf = Vec::new();
        put_fc_full(&mut buf, &fc);
        let mut input = buf.as_slice();
        let back = take_fc_full(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(ledger(&back), ledger(&fc));
        assert!(ledger(&fc).total_updates() > 0, "heat must be nonzero to test restore");
    }

    #[test]
    fn encoded_size_tracks_space_words() {
        use crate::space::SpaceUsage;
        let mut kmv = Kmv::new(64, 2);
        for i in 0..10_000u64 {
            kmv.insert(i);
        }
        let bytes = kmv.to_bytes().len();
        let words = kmv.space_words();
        // Encoding is words × 8 plus small framing overhead.
        assert!(bytes >= words * 8, "bytes {bytes} vs words {words}");
        assert!(bytes <= words * 8 + 64, "framing too heavy: {bytes} vs {words}");
    }
}
