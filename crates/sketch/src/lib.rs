//! Streaming sketches used by the maximum-coverage algorithms of
//! Indyk & Vakilian (PODS 2019).
//!
//! The paper's §2 reviews the vector-sketching toolkit its algorithms
//! compose; this crate implements each tool from scratch:
//!
//! * [`l0`] — distinct-element (`L0`) estimation (Theorem 2.12), built on
//!   bottom-k / KMV summaries with median boosting.
//! * [`ams_f2`] — the Alon–Matias–Szegedy second frequency moment sketch
//!   (reference [5]), needed for heavy-hitter thresholds.
//! * [`count_sketch`] — the Charikar–Chen–Farach-Colton CountSketch
//!   (reference [18]), the linear sketch behind `F2` heavy hitters.
//! * [`heavy_hitter`] — insertion-only `φ`-heavy-hitter tracking with
//!   `(1 ± 1/2)`-approximate frequencies (Theorem 2.10).
//! * [`contributing`] — `γ`-contributing class detection via per-level
//!   subsampling + heavy hitters (Theorem 2.11, after Indyk–Woodruff [29]).
//! * [`count_min`] — CountMin sketch, an auxiliary `L1` frequency
//!   estimator used by baselines.
//! * [`space`] — the [`SpaceUsage`] accounting trait every sketch and
//!   every algorithm in the workspace implements, so the paper's
//!   space/approximation trade-offs are *measured* in words, not assumed.
//!
//! All sketches process streams of `u64` item identifiers, are seeded
//! explicitly, and are insertion-only unless documented otherwise
//! (CountSketch and CountMin also accept signed updates).

pub mod ams_f2;
pub mod arena;
pub mod bjkst;
pub mod contributing;
pub mod count_min;
pub mod count_sketch;
pub mod heavy_hitter;
pub mod l0;
pub mod space;
pub mod wire;

pub use ams_f2::AmsF2;
pub use arena::{backend, probe_mix, Backend, OaMap, SortedSlab};
pub use bjkst::Bjkst;
pub use contributing::{ContributingConfig, ContributingReport, F2Contributing};
pub use count_min::CountMin;
pub use count_sketch::CountSketch;
pub use heavy_hitter::{F2HeavyHitter, HeavyHitterConfig, HeavyItem};
pub use l0::{Kmv, L0Estimator};
pub use space::SpaceUsage;
pub use wire::{WireEncode, WireError};
